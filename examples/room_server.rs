//! Multi-room serving demo: admit a fleet of concurrent `SceneEngine` rooms,
//! pump frames through the worker pool, and print the scheduler's own
//! accounting next to the `serve.*` metric export.
//!
//! Run with: `cargo run --release --example room_server -- --rooms=256 --ticks=120`
//!
//! Useful knobs:
//!   --rooms=N       concurrent rooms (default 256)
//!   --ticks=N       pump rounds (default 120)
//!   --budget-ms=F   per-frame SLO budget; enables the degradation ladder
//!                   (also honors AFTER_SLO_BUDGET_MS; omit both for the
//!                   fully deterministic no-shedding mode)
//!   AFTER_THREADS   worker-pool width (default: available parallelism)

use after_xr::xr_graph::geom::Point2;
use after_xr::xr_serve::{RoomConfig, RoomServer, ServerConfig};
use after_xr::xr_session::{Frame, SceneConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROOM_N: usize = 8;

fn walk_frame(room_seed: u64, tick: u64) -> Frame {
    let mut rng = StdRng::seed_from_u64(room_seed ^ tick.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let positions =
        (0..ROOM_N).map(|_| Point2::new(rng.gen_range(-4.0..4.0), rng.gen_range(-4.0..4.0))).collect();
    Frame::new(positions)
}

fn main() {
    let mut rooms = 256usize;
    let mut ticks = 120u64;
    let mut budget_ms: Option<f64> = None;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--rooms=") {
            rooms = v.parse().expect("--rooms=N");
        } else if let Some(v) = arg.strip_prefix("--ticks=") {
            ticks = v.parse().expect("--ticks=N");
        } else if let Some(v) = arg.strip_prefix("--budget-ms=") {
            budget_ms = Some(v.parse().expect("--budget-ms=F"));
        } else {
            eprintln!("unknown argument {arg} (expected --rooms=, --ticks=, --budget-ms=)");
            std::process::exit(2);
        }
    }

    // metrics registry for the serve.* namespace; --trace/--metrics envs of
    // the table binaries are not needed here, we print the snapshot directly
    let ctx = after_xr::xr_obs::ObsCtx::new(true, false);
    let _guard = ctx.install();

    let slo = budget_ms.map(after_xr::xr_obs::SloConfig::new).or_else(after_xr::xr_obs::SloConfig::from_env);
    let mut server = RoomServer::new(ServerConfig { max_rooms: rooms, slo, ..ServerConfig::default() });
    println!(
        "admitting {rooms} rooms ({} workers, budget {})",
        server.config().workers,
        match &server.config().slo {
            Some(cfg) => format!("{} ms", cfg.budget_ms),
            None => "none — ladder inert".to_string(),
        }
    );

    let scene = SceneConfig {
        body_radius: 0.2,
        mr_mask: (0..ROOM_N).map(|i| i % 2 == 0).collect(),
        room_diagonal: 8.0 * std::f64::consts::SQRT_2,
    };
    let ids: Vec<_> = (0..rooms)
        .map(|_| server.admit(RoomConfig::new(ROOM_N, scene.clone(), vec![0, 3])).expect("under the cap"))
        .collect();

    let start = std::time::Instant::now();
    let mut processed = 0usize;
    for round in 0..ticks {
        for &id in &ids {
            server.enqueue(id, walk_frame(id.0, round));
        }
        processed += server.pump().frames();
    }
    let elapsed = start.elapsed().as_secs_f64();

    let stats = server.stats();
    println!(
        "{processed} frames over {ticks} rounds in {elapsed:.2}s ({:.0} frames/s)",
        processed as f64 / elapsed
    );
    println!(
        "stats: enqueued {} coalesced {} shed {} level-transitions {}",
        stats.enqueued, stats.coalesced, stats.shed, stats.transitions
    );

    let snapshot = after_xr::xr_obs::metrics_snapshot().expect("metrics context installed");
    if let Some(tick) = snapshot.histogram("serve.room.tick.ms") {
        println!(
            "tick latency: p50 {:.4} ms  p95 {:.4} ms  p99 {:.4} ms  max {:.4} ms",
            tick.p50, tick.p95, tick.p99, tick.max
        );
    }
    println!("\nserve.* metric export:");
    for (key, c) in &snapshot.counters {
        let name = key.display();
        if name.starts_with("serve.") || name.starts_with("slo.serve.") {
            println!("  counter {name} = {c}");
        }
    }
    for (key, g) in &snapshot.gauges {
        let name = key.display();
        if name.starts_with("serve.") || name.starts_with("slo.serve.") {
            println!("  gauge   {name} = {g}");
        }
    }
}
