//! Quickstart: build a social-XR conferencing scenario, train POSHGNN, and
//! compare it against a trivial baseline on the AFTER utility.
//!
//! Run with: `cargo run --release --example quickstart`

use after_xr::poshgnn::recommender::AfterRecommender;
use after_xr::poshgnn::{evaluate_sequence, PoshGnn, PoshGnnConfig, TargetContext};
use after_xr::xr_baselines::NearestRecommender;
use after_xr::xr_datasets::{Dataset, DatasetKind, ScenarioConfig};

fn main() {
    // 1. Generate a synthetic social universe (a stand-in for the gated
    //    Mozilla Hubs workshop data) and sample a conferencing room from it.
    let dataset = Dataset::generate(DatasetKind::Hubs, 7);
    let config = ScenarioConfig {
        n_participants: 24,
        vr_fraction: 0.5,
        time_steps: 40,
        room_side: 8.0,
        body_radius: 0.25,
        seed: 42,
    };
    let scenario = dataset.sample_scenario(&config);
    println!(
        "room: {} participants ({} MR / {} VR), {} time steps",
        scenario.n(),
        scenario.mr_count(),
        scenario.n() - scenario.mr_count(),
        scenario.t_max()
    );

    // 2. Pick a target user and materialize her view of the problem:
    //    occlusion graphs, distances, candidate masks, utilities.
    let target = 0;
    let beta = 0.5; // equal weight on preference and social presence
    let ctx = TargetContext::new(&scenario, target, beta);

    // 3. Train POSHGNN on a *different* room sampled from the same universe.
    let train_scenario = dataset.sample_scenario(&ScenarioConfig { seed: 43, ..config });
    let train_ctx = TargetContext::new(&train_scenario, 1, beta);
    let mut model = PoshGnn::new(PoshGnnConfig::default());
    let losses = model.train(std::slice::from_ref(&train_ctx), 60);
    println!(
        "trained {} parameters, loss {:.3} → {:.3}",
        model.parameter_count(),
        losses.first().unwrap(),
        losses.last().unwrap()
    );

    // 4. Run a full episode and score it with the AFTER utility (Def. 3).
    let recs = model.run_episode(&ctx);
    let ours = evaluate_sequence(&ctx, &recs);

    let mut nearest = NearestRecommender::new(8);
    let base = evaluate_sequence(&ctx, &nearest.run_episode(&ctx));

    println!("\n{:<22}{:>12}{:>12}", "metric", "POSHGNN", "Nearest");
    println!("{:<22}{:>12.1}{:>12.1}", "AFTER utility", ours.after_utility, base.after_utility);
    println!("{:<22}{:>12.1}{:>12.1}", "preference", ours.preference, base.preference);
    println!("{:<22}{:>12.1}{:>12.1}", "social presence", ours.social_presence, base.social_presence);
    println!(
        "{:<22}{:>11.1}%{:>11.1}%",
        "view occlusion",
        100.0 * ours.view_occlusion_rate,
        100.0 * base.view_occlusion_rate
    );
}
