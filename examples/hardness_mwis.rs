//! The hardness construction behind Theorem 1, made concrete: MWIS on a
//! geometric intersection graph reduces to a single-step AFTER instance,
//! and the exact solver's cost explodes while the greedy+local-search
//! approximation stays cheap — the efficiency/effectiveness dilemma (C2)
//! that motivates POSHGNN's partial-resolution design.
//!
//! Run with: `cargo run --release --example hardness_mwis`

use std::time::Instant;

use after_xr::xr_graph::{
    gig_to_dog, local_search_improve, mwis_exact, mwis_greedy, weights_to_preferences, DiskGig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("MWIS on random unit-disk graphs (the paper's NP-hardness anchor)\n");
    println!(
        "{:>6}{:>8}{:>12}{:>12}{:>12}{:>14}{:>14}",
        "disks", "edges", "exact W", "greedy W", "greedy+LS", "exact time", "greedy time"
    );

    let mut rng = StdRng::seed_from_u64(99);
    for n in [10usize, 16, 22, 28, 34, 40] {
        let side = (n as f64).sqrt() * 1.6;
        let gig = DiskGig::random_unit_disks(n, side, 1.0, &mut rng);
        let weights: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 / 7.0).collect();

        let t0 = Instant::now();
        let exact = mwis_exact(&gig.graph, &weights);
        let exact_time = t0.elapsed();

        let t1 = Instant::now();
        let greedy = mwis_greedy(&gig.graph, &weights);
        let improved = local_search_improve(&gig.graph, &weights, &greedy);
        let greedy_time = t1.elapsed();

        println!(
            "{:>6}{:>8}{:>12.2}{:>12.2}{:>12.2}{:>12.1?}{:>12.1?}",
            n,
            gig.graph.edge_count(),
            exact.weight,
            greedy.weight,
            improved.weight,
            exact_time,
            greedy_time
        );
    }

    // The Lemma 1 reduction: the GIG becomes a dynamic occlusion graph with
    // T = 0 whose isolated extra node is the target user; node weights map
    // into preference utilities (1-β)·p(v,w) ∈ [0,1].
    let mut rng = StdRng::seed_from_u64(123);
    let gig = DiskGig::random_unit_disks(18, 7.0, 1.0, &mut rng);
    let (dog, target) = gig_to_dog(&gig.graph);
    let weights: Vec<f64> = (0..18).map(|i| (i % 5) as f64 + 1.0).collect();
    let prefs = weights_to_preferences(&weights);

    println!("\nLemma 1 reduction check:");
    println!(
        "  GIG: {} disks / {} intersections  →  DOG: {} nodes (target user = node {target}, isolated, T = 0)",
        gig.len(),
        gig.graph.edge_count(),
        dog.node_count()
    );
    println!(
        "  rescaled preferences lie in [0,1]: min {:.3}, max {:.3}",
        prefs.iter().cloned().fold(f64::INFINITY, f64::min),
        prefs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    );

    let mut w2 = weights.clone();
    w2.push(0.0);
    let direct = mwis_exact(&gig.graph, &weights);
    let via_dog = mwis_exact(dog.at(0), &w2);
    println!(
        "  optimal MWIS weight — direct: {:.2}, via the AFTER instance: {:.2} (equal ⇒ reduction preserved)",
        direct.weight, via_dog.weight
    );
}
