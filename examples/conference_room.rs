//! A large XR-based videoconference (the paper's motivating workload): a
//! 200-person Timik-like crowd in a 10 m room, T = 100 steps, comparing
//! POSHGNN against representative baselines for several target users.
//!
//! Run with: `cargo run --release --example conference_room`
//! (trains three models; takes a few minutes)

use after_xr::poshgnn::{LossParams, PoshGnn, PoshGnnConfig};
use after_xr::xr_baselines::{GraFrankConfig, GraFrankRecommender, NearestRecommender, RandomRecommender};
use after_xr::xr_datasets::{Dataset, DatasetKind, ScenarioConfig};
use after_xr::xr_eval::{build_contexts, pick_targets, run_method};

fn main() {
    let dataset = Dataset::generate(DatasetKind::Timik, 11);
    let scenario_cfg =
        ScenarioConfig { n_participants: 150, time_steps: 80, seed: 1001, ..Default::default() };
    let test_scenario = dataset.sample_scenario(&scenario_cfg);
    let train_scenario = dataset.sample_scenario(&ScenarioConfig { seed: 2001, ..scenario_cfg });

    println!(
        "conference: {} users in a {:.0} m room, {} steps, {} MR participants",
        test_scenario.n(),
        test_scenario.room.width(),
        test_scenario.t_max(),
        test_scenario.mr_count()
    );

    let targets = pick_targets(&test_scenario, 3, 5);
    let test_ctx = build_contexts(&test_scenario, &targets, 0.5);
    let train_ctx = build_contexts(&train_scenario, &pick_targets(&train_scenario, 3, 6), 0.5);

    println!("training POSHGNN on {} target episodes…", train_ctx.len());
    let mut posh = PoshGnn::new(PoshGnnConfig { loss: LossParams::default(), ..Default::default() });
    posh.train(&train_ctx, 60);

    let mut grafrank = GraFrankRecommender::fit(&test_scenario, GraFrankConfig::default());
    let mut nearest = NearestRecommender::new(10);
    let mut random = RandomRecommender::new(10, 99);

    println!(
        "\n{:<12}{:>14}{:>12}{:>14}{:>14}",
        "method", "AFTER utility", "preference", "social pres.", "occlusion"
    );
    let mut posh_res = run_method(&mut posh, &test_ctx);
    for result in [
        &mut posh_res,
        &mut run_method(&mut grafrank, &test_ctx),
        &mut run_method(&mut nearest, &test_ctx),
        &mut run_method(&mut random, &test_ctx),
    ] {
        println!(
            "{:<12}{:>14.1}{:>12.1}{:>14.1}{:>13.1}%",
            result.name,
            result.mean.after_utility,
            result.mean.preference,
            result.mean.social_presence,
            100.0 * result.mean.view_occlusion_rate
        );
    }

    println!(
        "\nPOSHGNN recommends {:.1} users/step at {:.2} ms/step — comfortably real-time.",
        posh_res.mean.mean_recommended, posh_res.ms_per_step
    );
}
