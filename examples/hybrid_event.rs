//! Hybrid participation (the paper's P4): how the MR/VR mix changes what an
//! AFTER recommender can deliver. Physically present MR participants force
//! themselves onto co-located users' viewports and physically occlude
//! recommendation candidates; remote VR users can be rendered or hidden at
//! will. This example sweeps the VR proportion and reports POSHGNN's
//! delivered utility plus the size of the hybrid-participation candidate
//! mask `m_t`.
//!
//! Run with: `cargo run --release --example hybrid_event`

use after_xr::poshgnn::{PoshGnn, PoshGnnConfig, TargetContext};
use after_xr::xr_datasets::{Dataset, DatasetKind, Interface, ScenarioConfig};
use after_xr::xr_eval::{build_contexts, pick_targets, run_method};

fn main() {
    let dataset = Dataset::generate(DatasetKind::Smm, 21);
    println!("sweeping the share of remote (VR) participants in an 80-person hybrid event\n");
    println!(
        "{:>8}{:>16}{:>14}{:>16}{:>22}",
        "VR %", "AFTER utility", "preference", "social pres.", "mean candidates m_t"
    );

    for vr in [0.25, 0.5, 0.75] {
        let cfg = ScenarioConfig {
            n_participants: 80,
            vr_fraction: vr,
            time_steps: 50,
            seed: 3001,
            ..Default::default()
        };
        let test_scenario = dataset.sample_scenario(&cfg);
        let train_scenario = dataset.sample_scenario(&ScenarioConfig { seed: 4001, ..cfg });

        // evaluate from the perspective of MR targets — they are the ones
        // whose candidate pool shrinks when the room is full of bodies
        let mr_targets: Vec<usize> = (0..test_scenario.n())
            .filter(|&v| test_scenario.interfaces[v] == Interface::Mr)
            .take(3)
            .collect();
        let test_ctx = build_contexts(&test_scenario, &mr_targets, 0.5);
        let train_ctx = build_contexts(&train_scenario, &pick_targets(&train_scenario, 3, 9), 0.5);

        let mut model = PoshGnn::new(PoshGnnConfig::default());
        model.train(&train_ctx, 50);
        let result = run_method(&mut model, &test_ctx);

        // average size of the candidate mask across the MR targets' episodes
        let mask_size: f64 = test_ctx
            .iter()
            .map(|ctx: &TargetContext| {
                let total: usize = ctx.candidate_mask.iter().map(|m| m.iter().filter(|&&b| b).count()).sum();
                total as f64 / ctx.candidate_mask.len() as f64
            })
            .sum::<f64>()
            / test_ctx.len() as f64;

        println!(
            "{:>7.0}%{:>16.1}{:>14.1}{:>16.1}{:>22.1}",
            vr * 100.0,
            result.mean.after_utility,
            result.mean.preference,
            result.mean.social_presence,
            mask_size
        );
    }

    println!("\nMore remote users → fewer physical blockers → a larger candidate pool and");
    println!("more recommendation freedom, which is exactly the paper's Table VII trend.");
}
