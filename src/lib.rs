//! # after-xr
//!
//! Facade crate for the AFTER / POSHGNN reproduction (ICDE 2024):
//! *Adaptive Friend Discovery for Temporal-spatial and Social-aware XR*.
//!
//! The workspace is organized bottom-up; this crate simply re-exports every
//! member so applications can depend on a single crate:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`xr_tensor`] | dense matrices, tape autodiff, Adam/SGD |
//! | [`xr_graph`] | social graphs, occlusion graphs, circular-arc converter, MWIS |
//! | [`xr_crowd`] | ORCA reciprocal collision avoidance |
//! | [`xr_datasets`] | synthetic Timik/SMM/Hubs universes, scenario sampling |
//! | [`xr_gnn`] | GCN/GRU/DCGRU layers |
//! | [`poshgnn`] | the AFTER problem, utility evaluator, and POSHGNN model |
//! | [`xr_baselines`] | Random, Nearest, MvAGC, GraFrank, DCRNN, TGCN, COMURNet |
//! | [`xr_eval`] | metrics, statistics, experiment runners, user-study simulator |
//! | [`xr_obs`] | tracing spans, metrics registry, SLO tracking, flight recorder |
//! | [`xr_session`] | frame-driven `SceneEngine`, f32 serving kernels |
//! | [`xr_serve`] | multi-room scheduler: mailboxes, admission control, degradation |
//!
//! See `examples/quickstart.rs` for an end-to-end tour and
//! `examples/room_server.rs` for the multi-room serving layer.

pub use poshgnn;
pub use xr_baselines;
pub use xr_crowd;
pub use xr_datasets;
pub use xr_eval;
pub use xr_gnn;
pub use xr_graph;
pub use xr_obs;
pub use xr_serve;
pub use xr_session;
pub use xr_tensor;
