//! Soak and determinism suite for the multi-room serving layer.
//!
//! The soak test drives 1k+ concurrent rooms through hundreds of pump rounds
//! under join/leave churn and asserts the serving SLO holds (p99 tick within
//! budget), shedding stays under a pinned ceiling, and — once every room has
//! left — the registry gauges drain back to zero. The determinism test runs
//! the same workload at `workers = 1` and `workers = 8` and requires
//! byte-identical per-room decision streams plus an identical
//! metrics-snapshot structure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xr_graph::geom::Point2;
use xr_obs::ObsCtx;
use xr_serve::{Decision, RoomConfig, RoomId, RoomServer, ServerConfig};
use xr_session::{Frame, SceneConfig};

/// Participants per soak room (kept small: the soak stresses room *count*
/// and churn, not per-room scene size).
const ROOM_N: usize = 8;

fn soak_scene() -> SceneConfig {
    SceneConfig {
        body_radius: 0.2,
        mr_mask: (0..ROOM_N).map(|i| i % 2 == 0).collect(),
        room_diagonal: 8.0 * std::f64::consts::SQRT_2,
    }
}

fn soak_room() -> RoomConfig {
    RoomConfig::new(ROOM_N, soak_scene(), vec![0, 3])
}

/// A deterministic per-room random-walk frame: positions are a pure function
/// of `(room_seed, tick)`, so every worker count sees the same streams.
fn walk_frame(room_seed: u64, tick: u64) -> Frame {
    let mut rng = StdRng::seed_from_u64(room_seed ^ tick.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let positions =
        (0..ROOM_N).map(|_| Point2::new(rng.gen_range(-4.0..4.0), rng.gen_range(-4.0..4.0))).collect();
    Frame::new(positions)
}

#[test]
fn soak_1k_rooms_with_churn_holds_slo_and_drains_cleanly() {
    const ROOMS: usize = 1024;
    const ROUNDS: u64 = 220;
    const CHURN_EVERY: u64 = 20;
    const CHURN_ROOMS: usize = 32;
    const BUDGET_MS: f64 = 250.0;
    /// Frames the scheduler may shed over the whole soak before the test
    /// fails — the generous budget should make shedding rare to nonexistent.
    const SHED_CEILING: u64 = 64;

    let ctx = ObsCtx::new(true, false);
    let _guard = ctx.install();

    let mut server = RoomServer::new(ServerConfig {
        max_rooms: ROOMS + CHURN_ROOMS,
        slo: Some(xr_obs::SloConfig::new(BUDGET_MS)),
        ..ServerConfig::default()
    });

    // seed the fleet; each room's walk stream is keyed by its (never reused)
    // room id, so churn replacements get fresh trajectories
    let mut active: Vec<RoomId> =
        (0..ROOMS).map(|_| server.admit(soak_room()).expect("seed admission under the cap")).collect();

    let mut rng = StdRng::seed_from_u64(0x50AC_2026);
    let mut frames_sent: u64 = 0;
    for round in 0..ROUNDS {
        // churn: a slice of rooms leaves, replacements join
        if round > 0 && round % CHURN_EVERY == 0 {
            for _ in 0..CHURN_ROOMS {
                let slot = rng.gen_range(0..active.len());
                let id = active.swap_remove(slot);
                assert!(server.leave(id), "active room {id:?} must be removable");
            }
            for _ in 0..CHURN_ROOMS {
                active.push(server.admit(soak_room()).expect("churn admission under the cap"));
            }
        }

        for &id in &active {
            server.enqueue(id, walk_frame(id.0, round));
            frames_sent += 1;
        }
        let report = server.pump();
        assert!(report.frames() > 0, "a loaded round must process frames");
    }

    let stats = server.stats();
    assert_eq!(stats.enqueued, frames_sent);
    assert!(stats.shed <= SHED_CEILING, "shed {} frames over the soak (ceiling {SHED_CEILING})", stats.shed);
    // everything sent was either served or (rarely) shed/coalesced
    assert_eq!(stats.processed + stats.shed + stats.coalesced, frames_sent);

    let mid = xr_obs::metrics_snapshot().expect("metrics context is installed");
    let tick = mid.histogram("serve.room.tick.ms").expect("tick histogram exists");
    assert_eq!(tick.count, stats.processed);
    assert!(tick.p99 <= BUDGET_MS, "p99 tick {}ms blew the {BUDGET_MS}ms budget", tick.p99);
    assert_eq!(mid.gauge("serve.rooms.active"), Some(active.len() as f64));

    // drain: every room leaves; the registry gauges must return to zero and
    // no pending frames may survive their rooms
    for id in active.drain(..) {
        assert!(server.leave(id));
    }
    assert_eq!(server.room_count(), 0);
    assert_eq!(server.pending_total(), 0);
    let end = xr_obs::metrics_snapshot().expect("metrics context is installed");
    assert_eq!(end.gauge("serve.rooms.active"), Some(0.0));
    assert_eq!(end.gauge("serve.rooms.degraded"), Some(0.0));
    assert_eq!(end.gauge("serve.mailbox.pending"), Some(0.0));
}

/// Runs a fixed 64-room × 48-round workload (no churn, no budget) at the
/// given worker count under a fresh metrics context; returns every room's
/// decision stream plus the metrics snapshot.
fn run_fixed_workload(workers: usize) -> (Vec<(u64, Vec<Decision>)>, xr_obs::MetricsSnapshot) {
    const ROOMS: usize = 64;
    const ROUNDS: u64 = 48;

    let ctx = ObsCtx::new(true, false);
    let _guard = ctx.install();

    let mut server = RoomServer::new(ServerConfig {
        max_rooms: ROOMS,
        workers,
        slo: None, // ladder inert: determinism must not depend on timing
        ..ServerConfig::default()
    });
    let ids: Vec<RoomId> =
        (0..ROOMS).map(|_| server.admit(soak_room()).expect("admission under the cap")).collect();

    let mut streams: Vec<(u64, Vec<Decision>)> = ids.iter().map(|id| (id.0, Vec::new())).collect();
    for round in 0..ROUNDS {
        for &id in &ids {
            server.enqueue(id, walk_frame(id.0, round));
        }
        for drain in server.pump().rooms {
            let slot = ids.iter().position(|id| *id == drain.room).unwrap();
            streams[slot].1.extend(drain.decisions);
        }
    }
    let snapshot = xr_obs::metrics_snapshot().expect("metrics context is installed");
    (streams, snapshot)
}

/// Runs the stadium workload (one room, N = 10k, pruned K = 64) at the
/// given worker count under a fresh metrics context.
fn run_stadium_workload(workers: usize, frames: &[Vec<Point2>]) -> (Vec<Decision>, xr_obs::MetricsSnapshot) {
    const STADIUM_N: usize = 10_000;
    let venue = xr_datasets::VenueConfig::stadium(STADIUM_N, 0xCAFE);
    let scene = SceneConfig {
        body_radius: venue.body_radius,
        mr_mask: venue.mr_mask(),
        room_diagonal: venue.room_diagonal(),
    };
    // 32 viewers spread across the bowl
    let viewers: Vec<usize> = (0..STADIUM_N).step_by(STADIUM_N / 32).take(32).collect();
    let mut config = RoomConfig::new(STADIUM_N, scene, viewers);
    config.prune_k = Some(64);

    let ctx = ObsCtx::new(true, false);
    let _guard = ctx.install();
    let mut server = RoomServer::new(ServerConfig {
        max_rooms: 1,
        workers,
        slo: None, // p99 is asserted from the histogram, not the ladder
        ..ServerConfig::default()
    });
    let id = server.admit(config).expect("stadium admission");
    let mut stream = Vec::new();
    for frame in frames {
        server.enqueue(id, Frame::new(frame.clone()));
        for drain in server.pump().rooms {
            stream.extend(drain.decisions);
        }
    }
    let snapshot = xr_obs::metrics_snapshot().expect("metrics context is installed");
    assert_eq!(server.stats().enqueued, frames.len() as u64);
    assert_eq!(server.stats().processed, frames.len() as u64, "stadium room must shed nothing");
    (stream, snapshot)
}

#[test]
fn stadium_room_at_10k_users_serves_pruned_within_budget_and_deterministically() {
    const ROUNDS: usize = 24;
    const BUDGET_MS: f64 = 250.0;

    let mut sim = xr_datasets::VenueSim::new(xr_datasets::VenueConfig::stadium(10_000, 0xCAFE));
    let frames: Vec<Vec<Point2>> = (0..ROUNDS).map(|_| sim.next_frame()).collect();

    let (serial, snap1) = run_stadium_workload(1, &frames);
    let (threaded, snap8) = run_stadium_workload(8, &frames);

    // exact frame accounting: one decision per frame, in order, at Full level
    assert_eq!(serial.len(), ROUNDS);
    for (t, d) in serial.iter().enumerate() {
        assert_eq!(d.seq, t as u64);
        assert_eq!(d.level, xr_serve::ServeLevel::Full);
        assert_eq!(d.per_viewer.len(), 32);
    }
    // worker-count determinism on the full decision stream
    assert_eq!(serial, threaded, "stadium decisions diverged between 1 and 8 workers");
    let counts = |s: &xr_obs::MetricsSnapshot| {
        s.histograms.iter().map(|(k, h)| (k.display(), h.count)).collect::<Vec<_>>()
    };
    assert_eq!(counts(&snap1), counts(&snap8));

    let tick = snap1.histogram("serve.room.tick.ms").expect("tick histogram exists");
    assert_eq!(tick.count, ROUNDS as u64);
    // latency budget only means something on optimized builds
    if !cfg!(debug_assertions) {
        assert!(tick.p99 <= BUDGET_MS, "p99 stadium tick {}ms blew the {BUDGET_MS}ms budget", tick.p99);
    }
}

#[test]
fn decision_streams_are_identical_at_one_and_eight_workers() {
    let (serial, snap1) = run_fixed_workload(1);
    let (threaded, snap8) = run_fixed_workload(8);

    assert_eq!(serial.len(), threaded.len());
    for ((id_a, stream_a), (id_b, stream_b)) in serial.iter().zip(&threaded) {
        assert_eq!(id_a, id_b);
        assert_eq!(stream_a, stream_b, "room {id_a}: decision streams diverged between 1 and 8 workers");
    }

    // the metrics structure must be worker-count independent too: same
    // counter rows with the same totals, same gauge rows, same histogram
    // rows with the same counts (timings differ; shapes and totals may not)
    assert_eq!(snap1.counters, snap8.counters);
    assert_eq!(snap1.gauges, snap8.gauges);
    let names = |s: &xr_obs::MetricsSnapshot| {
        s.histograms.iter().map(|(k, h)| (k.display(), h.count)).collect::<Vec<_>>()
    };
    assert_eq!(names(&snap1), names(&snap8));
}
