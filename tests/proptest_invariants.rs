//! Property-based invariants spanning the geometry, evaluation, and
//! reduction layers.

use after_xr::poshgnn::{evaluate_sequence, TargetContext};
use after_xr::xr_crowd::Room;
use after_xr::xr_datasets::{generate_trajectories_with_motion, Interface, MotionProfile, Scenario};
use after_xr::xr_graph::geom::Point2;
use after_xr::xr_graph::{gig_to_dog, mwis_exact, mwis_greedy, DiskGig, OcclusionConverter};
use after_xr::xr_session::{Frame, SceneConfig, SceneEngine};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random positions inside a 10×10 room, none coincident with index 0.
fn positions_strategy(n: usize) -> impl Strategy<Value = Vec<Point2>> {
    proptest::collection::vec((0.3f64..9.7, 0.3f64..9.7), n)
        .prop_map(|pts| pts.into_iter().map(|(x, y)| Point2::new(x, y)).collect())
}

fn scenario_from(positions: Vec<Point2>, beta: f64) -> (Scenario, TargetContext) {
    let n = positions.len();
    let pref: Vec<Vec<f64>> = (0..n)
        .map(|v| (0..n).map(|w| if v == w { 0.0 } else { ((v * 13 + w * 7) % 10) as f64 / 10.0 }).collect())
        .collect();
    let soc: Vec<Vec<f64>> = (0..n)
        .map(|v| (0..n).map(|w| if v == w { 0.0 } else { ((v + w) % 3) as f64 / 4.0 }).collect())
        .collect();
    let scenario = Scenario {
        dataset: "prop".into(),
        participants: (0..n).collect(),
        interfaces: (0..n).map(|i| if i % 2 == 0 { Interface::Mr } else { Interface::Vr }).collect(),
        preference: pref,
        social: soc,
        trajectories: vec![positions.clone(), positions],
        room: Room::new(10.0, 10.0),
        body_radius: 0.25,
    };
    let ctx = TargetContext::new(&scenario, 0, beta);
    (scenario, ctx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Occlusion graphs are symmetric and the target is always isolated.
    #[test]
    fn occlusion_graph_invariants(positions in positions_strategy(12)) {
        let conv = OcclusionConverter::new(0.25);
        let g = conv.static_graph(0, &positions);
        prop_assert_eq!(g.degree(0), 0);
        for (a, b) in g.edges() {
            prop_assert!(g.has_edge(b, a));
            prop_assert!(a != 0 && b != 0);
        }
    }

    /// A displayed user occluded under mask M stays occluded under any
    /// superset of M (adding more displayed users can only add blockers).
    #[test]
    fn visibility_is_antitone_in_the_display_set(positions in positions_strategy(10)) {
        let conv = OcclusionConverter::new(0.25);
        let mut small = vec![false; 10];
        for w in [1usize, 3, 5] {
            small[w] = true;
        }
        let mut big = small.clone();
        for w in [2usize, 4, 6, 7, 8, 9] {
            big[w] = true;
        }
        let vis_small = conv.visibility(0, &positions, &small);
        let vis_big = conv.visibility(0, &positions, &big);
        for w in [1usize, 3, 5] {
            // occluded in the small set ⇒ occluded in the big set
            if !vis_small[w] {
                prop_assert!(!vis_big[w], "user {w} gained visibility from extra blockers");
            }
        }
    }

    /// Total AFTER utility is bounded by the sum of available utilities and
    /// is non-negative; occlusion rate is a valid fraction.
    #[test]
    fn utility_bounds(positions in positions_strategy(12), beta in 0.0f64..1.0) {
        let (_, ctx) = scenario_from(positions, beta);
        let rec = vec![true; 12];
        let recs = vec![rec.clone(), rec];
        let b = evaluate_sequence(&ctx, &recs);
        let max_per_step: f64 = (0..12).map(|w| (1.0 - beta) * ctx.preference[w] + beta * ctx.social[w]).sum();
        prop_assert!(b.after_utility >= 0.0);
        prop_assert!(b.after_utility <= 2.0 * max_per_step + 1e-9);
        prop_assert!((0.0..=1.0).contains(&b.view_occlusion_rate));
    }

    /// Recommending strictly fewer users never increases the occlusion count
    /// of the remaining users (monotone blocking).
    #[test]
    fn fewer_recommendations_never_hurt_visibility(positions in positions_strategy(12)) {
        let (_, ctx) = scenario_from(positions, 0.0);
        let all = vec![true; 12];
        let mut half = vec![false; 12];
        for w in (1..12).step_by(2) {
            half[w] = true;
        }
        let vis_all = ctx.visibility(0, &all);
        let vis_half = ctx.visibility(0, &half);
        for w in (1..12).step_by(2) {
            if vis_all[w] {
                prop_assert!(vis_half[w], "user {w} lost visibility when blockers were removed");
            }
        }
    }

    /// Incremental O(Δ) scene maintenance is an optimization, not an
    /// approximation: under coherence-swept ORCA walks (bounded steps,
    /// teleports, dwells) plus mid-session join/leave churn — modeled as
    /// teleports to and from a shared lobby point — every tick's state is
    /// bit-identical to the from-scratch oracle's.
    #[test]
    fn incremental_scene_state_is_bitwise_from_scratch(
        seed in 0u64..10_000,
        teleport in 0.0f64..0.4,
        dwell in 0.0f64..0.5,
        step_cap in 0.05f64..1.5,
        churn in 0.0f64..0.3,
        jitter in 0.0f64..0.05,
        snap in 0.0f64..0.1,
    ) {
        let (n, ticks) = (10usize, 6usize);
        let room = Room::new(8.0, 8.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let profile = MotionProfile {
            max_step: Some(step_cap),
            teleport_prob: teleport,
            dwell_prob: dwell,
            jitter,
        };
        let mut frames = generate_trajectories_with_motion(n, ticks, room, 0.25, &profile, &mut rng);
        // join/leave churn on a fixed frame width: absent users park at a
        // shared lobby point far outside the room
        let lobby = Point2::new(30.0, 30.0);
        let mut present = vec![true; n];
        for frame in frames.iter_mut().skip(1) {
            for i in 0..n {
                if rng.gen_range(0.0..1.0) < churn {
                    present[i] = !present[i];
                }
                if !present[i] {
                    frame[i] = lobby;
                }
            }
        }

        let scene = SceneConfig {
            body_radius: 0.25,
            mr_mask: (0..n).map(|i| i % 2 == 0).collect(),
            room_diagonal: 8.0 * std::f64::consts::SQRT_2,
        };
        let viewers = [0usize, 4, 7];
        // snapping is shared ingest semantics: set on both engines, equality
        // must hold for any epsilon (including one absorbing the jitter)
        let mut inc = SceneEngine::new(n, scene.clone(), &viewers);
        inc.set_incremental(true);
        inc.set_snap_epsilon(snap);
        // this invariant sweeps dense rows, so it pins the full-N path
        // regardless of any ambient AFTER_PRUNE_K
        inc.set_prune_k(0);
        let mut oracle = SceneEngine::new(n, scene, &viewers);
        oracle.set_incremental(false);
        oracle.set_snap_epsilon(snap);
        oracle.set_prune_k(0);
        for frame in &frames {
            inc.push(Frame::new(frame.clone()));
            oracle.push(Frame::new(frame.clone()));
        }
        for t in 0..frames.len() {
            let (si, so) = (inc.state(t), oracle.state(t));
            for i in 0..n {
                for (j, (a, b)) in si.distance_row(i).iter().zip(so.distance_row(i)).enumerate() {
                    prop_assert!(
                        a.to_bits() == b.to_bits(),
                        "distance[{}][{}] at t={}: incremental {:?} vs scratch {:?}", i, j, t, a, b
                    );
                }
            }
            for &v in &viewers {
                let (vi, vo) = (inc.view(v, t), oracle.view(v, t));
                prop_assert_eq!(vi.occlusion(), vo.occlusion(), "viewer {} occlusion at t={}", v, t);
                prop_assert_eq!(
                    vi.candidate_mask(), vo.candidate_mask(),
                    "viewer {} candidate mask at t={}", v, t
                );
            }
        }
    }

    /// Thm. 1 reduction: the MWIS optimum is preserved through gig_to_dog,
    /// and greedy never exceeds exact.
    #[test]
    fn reduction_and_solver_ordering(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let gig = DiskGig::random_unit_disks(12, 6.0, 1.0, &mut rng);
        let w: Vec<f64> = (0..12).map(|i| 0.1 + (i % 4) as f64).collect();
        let exact = mwis_exact(&gig.graph, &w);
        let greedy = mwis_greedy(&gig.graph, &w);
        prop_assert!(greedy.weight <= exact.weight + 1e-9);

        let (dog, _) = gig_to_dog(&gig.graph);
        let mut w2 = w.clone();
        w2.push(0.0);
        let via = mwis_exact(dog.at(0), &w2);
        prop_assert!((via.weight - exact.weight).abs() < 1e-9);
    }
}
