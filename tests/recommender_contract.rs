//! Contract tests: every recommender in the workspace honours the
//! [`AfterRecommender`] interface — correct decision shapes, never
//! recommending the target, and clean episode resets.

use after_xr::poshgnn::recommender::AfterRecommender;
use after_xr::poshgnn::{PoshGnn, PoshGnnConfig, PoshVariant, StepView, TargetContext};
use after_xr::xr_baselines::{
    ComurNetConfig, ComurNetRecommender, GraFrankConfig, GraFrankRecommender, MvAgcRecommender, MwisOracle,
    NearestRecommender, RandomRecommender, RnnConfig, RnnKind, RnnRecommender,
};
use after_xr::xr_datasets::{Dataset, DatasetKind, Scenario, ScenarioConfig};
use after_xr::xr_eval::RenderAllRecommender;

fn scenario() -> Scenario {
    let dataset = Dataset::generate(DatasetKind::Hubs, 2);
    dataset.sample_scenario(&ScenarioConfig {
        n_participants: 14,
        vr_fraction: 0.5,
        time_steps: 6,
        room_side: 6.0,
        body_radius: 0.2,
        seed: 3,
    })
}

fn all_recommenders(scenario: &Scenario) -> Vec<Box<dyn AfterRecommender>> {
    vec![
        Box::new(PoshGnn::new(PoshGnnConfig::default())),
        Box::new(PoshGnn::new(PoshGnnConfig { variant: PoshVariant::PdrWithMia, ..Default::default() })),
        Box::new(PoshGnn::new(PoshGnnConfig { variant: PoshVariant::PdrOnly, ..Default::default() })),
        Box::new(RandomRecommender::new(4, 1)),
        Box::new(NearestRecommender::new(4)),
        Box::new(MvAgcRecommender::fit(scenario, 3, 2, 5)),
        Box::new(GraFrankRecommender::fit(
            scenario,
            GraFrankConfig { iterations: 20, top_k: 4, ..Default::default() },
        )),
        Box::new(RnnRecommender::new(RnnKind::Tgcn, RnnConfig::default())),
        Box::new(RnnRecommender::new(RnnKind::Dcrnn, RnnConfig::default())),
        Box::new(ComurNetRecommender::new(ComurNetConfig {
            rollouts: 2,
            max_actions: 4,
            ..Default::default()
        })),
        Box::new(MwisOracle::new()),
        Box::new(RenderAllRecommender),
    ]
}

/// Methods that consult the hybrid-participation mask `m_t`. `PdrOnly` and
/// `ComurNet` ignore it *by design* (the former is the raw-features ablation,
/// the latter replicates the original ComurNet action space), and the
/// remaining baselines score on social/spatial signals alone — so the hard
/// mask guarantee is only claimed for these.
fn mask_aware_recommenders() -> Vec<Box<dyn AfterRecommender>> {
    vec![
        Box::new(PoshGnn::new(PoshGnnConfig::default())),
        Box::new(PoshGnn::new(PoshGnnConfig { variant: PoshVariant::PdrWithMia, ..Default::default() })),
        Box::new(MwisOracle::new()),
    ]
}

#[test]
fn every_method_satisfies_the_interface_contract() {
    let scenario = scenario();
    let ctx = TargetContext::new(&scenario, 0, 0.5);
    for mut rec in all_recommenders(&scenario) {
        let name = rec.name();
        assert!(!name.is_empty());
        let episode = rec.run_episode(&ctx);
        assert_eq!(episode.len(), ctx.t_max() + 1, "{name}: wrong episode length");
        for (t, decision) in episode.iter().enumerate() {
            assert_eq!(decision.len(), ctx.n, "{name}: wrong decision width at t={t}");
            assert!(!decision[ctx.target], "{name}: recommended the target herself at t={t}");
        }
        assert!(rec.latency_steps() <= 10, "{name}: absurd latency");
    }
}

#[test]
fn method_names_are_unique() {
    let scenario = scenario();
    let names: Vec<String> = all_recommenders(&scenario).iter().map(|r| r.name()).collect();
    let mut sorted = names.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), names.len(), "duplicate method names: {names:?}");
}

#[test]
fn every_method_is_deterministic_under_a_fixed_seed() {
    let scenario = scenario();
    let ctx = TargetContext::new(&scenario, 0, 0.5);
    // two identically constructed instances must produce identical episodes
    let twins = all_recommenders(&scenario).into_iter().zip(all_recommenders(&scenario));
    for (mut a, mut b) in twins {
        let name = a.name();
        assert_eq!(a.run_episode(&ctx), b.run_episode(&ctx), "{name}: nondeterministic under fixed seed");
    }
}

#[test]
fn decisions_stay_inside_the_unit_hypercube() {
    // Boolean decisions embed as {0,1}^|V| ⊂ [0,1]^|V|; the learned model's
    // underlying soft scores must land in the open hypercube too.
    let scenario = scenario();
    let ctx = TargetContext::new(&scenario, 0, 0.5);
    for variant in [PoshVariant::Full, PoshVariant::PdrWithMia, PoshVariant::PdrOnly] {
        let mut model = PoshGnn::new(PoshGnnConfig { variant, ..Default::default() });
        model.begin_episode(&StepView::new(&ctx, 0));
        for t in 0..=ctx.t_max() {
            let soft = model.soft_recommend(&ctx, t);
            assert_eq!(soft.len(), ctx.n, "{variant:?}: wrong score width at t={t}");
            for (w, &s) in soft.iter().enumerate() {
                assert!((0.0..=1.0).contains(&s), "{variant:?}: score {s} for user {w} at t={t}");
            }
        }
    }
    for mut rec in all_recommenders(&scenario) {
        let name = rec.name();
        for (t, decision) in rec.run_episode(&ctx).iter().enumerate() {
            assert_eq!(decision.len(), ctx.n, "{name}: wrong decision width at t={t}");
        }
    }
}

#[test]
fn mask_aware_methods_never_recommend_masked_candidates() {
    let scenario = scenario();
    // An MR target is where the mask binds: physically co-present bodies can
    // occlude candidates out of m_t. Pick one and confirm the mask actually
    // excludes someone, so this test cannot pass vacuously.
    let mr = scenario.interfaces.iter().position(|&i| i == after_xr::xr_datasets::Interface::Mr).unwrap();
    let ctx = TargetContext::new(&scenario, mr, 0.5);
    let masked_out: usize =
        ctx.candidate_mask.iter().map(|m| m.iter().filter(|&&b| !b).count()).sum::<usize>();
    assert!(masked_out > ctx.candidate_mask.len(), "mask never binds; pick a different seed");

    for mut rec in mask_aware_recommenders() {
        let name = rec.name();
        for (t, decision) in rec.run_episode(&ctx).iter().enumerate() {
            for (w, &shown) in decision.iter().enumerate() {
                assert!(
                    !shown || ctx.candidate_mask[t][w],
                    "{name}: recommended masked-out user {w} at t={t}"
                );
            }
        }
    }
}

#[test]
fn vr_targets_see_everyone_and_still_never_themselves() {
    let scenario = scenario();
    // A VR target's mask is everyone-but-target; the only exclusion any
    // method must enforce there is the target herself.
    let vr = scenario.interfaces.iter().position(|&i| i == after_xr::xr_datasets::Interface::Vr).unwrap();
    let ctx = TargetContext::new(&scenario, vr, 0.5);
    for mask in &ctx.candidate_mask {
        assert_eq!(mask.iter().filter(|&&b| b).count(), ctx.n - 1);
    }
    for mut rec in all_recommenders(&scenario) {
        let name = rec.name();
        for (t, decision) in rec.run_episode(&ctx).iter().enumerate() {
            assert!(!decision[vr], "{name}: recommended the VR target to herself at t={t}");
        }
    }
}

#[test]
fn decisions_never_depend_on_future_frames() {
    assert_no_lookahead();
}

#[test]
fn decisions_never_depend_on_future_frames_under_either_maintenance_mode() {
    // Incremental O(Δ) scene maintenance carries warm per-viewer caches
    // across ticks; the no-lookahead contract must survive both the warm
    // path and the from-scratch oracle.
    xr_check::golden::with_incremental(true, assert_no_lookahead);
    xr_check::golden::with_incremental(false, assert_no_lookahead);
}

fn assert_no_lookahead() {
    // The stepwise contract: a view at tick t exposes only ticks 0..=t, so
    // rewriting the world strictly after t_cut must leave every decision at
    // or before t_cut untouched — for every method in the workspace.
    let original = scenario();
    let t_cut = 3;
    let mut perturbed = original.clone();
    for (t, frame) in perturbed.trajectories.iter_mut().enumerate() {
        if t > t_cut {
            for p in frame.iter_mut() {
                p.x = (p.x * 0.5 + 0.7).min(5.5);
                p.y = (p.y * 0.3 + 1.1).min(5.5);
            }
        }
    }
    assert_ne!(original.trajectories, perturbed.trajectories, "perturbation was a no-op");

    let ctx_a = TargetContext::new(&original, 0, 0.5);
    let ctx_b = TargetContext::new(&perturbed, 0, 0.5);
    // Both instance sets are fitted on the *original* scenario — offline
    // training data is not the stepwise input under test here.
    let twins = all_recommenders(&original).into_iter().zip(all_recommenders(&original));
    for (mut a, mut b) in twins {
        let name = a.name();
        a.begin_episode(&StepView::new(&ctx_a, 0));
        b.begin_episode(&StepView::new(&ctx_b, 0));
        for t in 0..=t_cut {
            let da = a.recommend_step(&StepView::new(&ctx_a, t));
            let db = b.recommend_step(&StepView::new(&ctx_b, t));
            assert_eq!(da, db, "{name}: decision at t={t} changed when frames after t={t_cut} moved");
        }
    }
}

#[test]
fn views_refuse_to_serve_the_future() {
    let scenario = scenario();
    let ctx = TargetContext::new(&scenario, 0, 0.5);
    let view = StepView::new(&ctx, 2);
    assert_eq!(view.occlusion_at(2), view.occlusion());
    let peek = std::panic::catch_unwind(|| view.occlusion_at(3));
    assert!(peek.is_err(), "a view at t=2 handed out tick 3");
}

#[test]
fn stateful_methods_reset_between_episodes() {
    let scenario = scenario();
    let ctx = TargetContext::new(&scenario, 1, 0.5);
    // recurrent models must produce identical episodes back to back
    for kind in [RnnKind::Tgcn, RnnKind::Dcrnn] {
        let mut rec = RnnRecommender::new(kind, RnnConfig::default());
        assert_eq!(rec.run_episode(&ctx), rec.run_episode(&ctx), "{kind:?} leaked state");
    }
    let mut posh = PoshGnn::new(PoshGnnConfig::default());
    assert_eq!(posh.run_episode(&ctx), posh.run_episode(&ctx), "POSHGNN leaked state");
}
