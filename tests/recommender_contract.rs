//! Contract tests: every recommender in the workspace honours the
//! [`AfterRecommender`] interface — correct decision shapes, never
//! recommending the target, and clean episode resets.

use after_xr::poshgnn::recommender::AfterRecommender;
use after_xr::poshgnn::{PoshGnn, PoshGnnConfig, PoshVariant, TargetContext};
use after_xr::xr_baselines::{
    ComurNetConfig, ComurNetRecommender, GraFrankConfig, GraFrankRecommender, MvAgcRecommender,
    NearestRecommender, RandomRecommender, RnnConfig, RnnKind, RnnRecommender,
};
use after_xr::xr_datasets::{Dataset, DatasetKind, Scenario, ScenarioConfig};
use after_xr::xr_eval::RenderAllRecommender;

fn scenario() -> Scenario {
    let dataset = Dataset::generate(DatasetKind::Hubs, 2);
    dataset.sample_scenario(&ScenarioConfig {
        n_participants: 14,
        vr_fraction: 0.5,
        time_steps: 6,
        room_side: 6.0,
        body_radius: 0.2,
        seed: 3,
    })
}

fn all_recommenders(scenario: &Scenario) -> Vec<Box<dyn AfterRecommender>> {
    vec![
        Box::new(PoshGnn::new(PoshGnnConfig::default())),
        Box::new(PoshGnn::new(PoshGnnConfig { variant: PoshVariant::PdrWithMia, ..Default::default() })),
        Box::new(PoshGnn::new(PoshGnnConfig { variant: PoshVariant::PdrOnly, ..Default::default() })),
        Box::new(RandomRecommender::new(4, 1)),
        Box::new(NearestRecommender::new(4)),
        Box::new(MvAgcRecommender::fit(scenario, 3, 2, 5)),
        Box::new(GraFrankRecommender::fit(
            scenario,
            GraFrankConfig { iterations: 20, top_k: 4, ..Default::default() },
        )),
        Box::new(RnnRecommender::new(RnnKind::Tgcn, RnnConfig::default())),
        Box::new(RnnRecommender::new(RnnKind::Dcrnn, RnnConfig::default())),
        Box::new(ComurNetRecommender::new(ComurNetConfig {
            rollouts: 2,
            max_actions: 4,
            ..Default::default()
        })),
        Box::new(RenderAllRecommender),
    ]
}

#[test]
fn every_method_satisfies_the_interface_contract() {
    let scenario = scenario();
    let ctx = TargetContext::new(&scenario, 0, 0.5);
    for mut rec in all_recommenders(&scenario) {
        let name = rec.name();
        assert!(!name.is_empty());
        let episode = rec.run_episode(&ctx);
        assert_eq!(episode.len(), ctx.t_max() + 1, "{name}: wrong episode length");
        for (t, decision) in episode.iter().enumerate() {
            assert_eq!(decision.len(), ctx.n, "{name}: wrong decision width at t={t}");
            assert!(!decision[ctx.target], "{name}: recommended the target herself at t={t}");
        }
        assert!(rec.latency_steps() <= 10, "{name}: absurd latency");
    }
}

#[test]
fn method_names_are_unique() {
    let scenario = scenario();
    let names: Vec<String> = all_recommenders(&scenario).iter().map(|r| r.name()).collect();
    let mut sorted = names.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), names.len(), "duplicate method names: {names:?}");
}

#[test]
fn stateful_methods_reset_between_episodes() {
    let scenario = scenario();
    let ctx = TargetContext::new(&scenario, 1, 0.5);
    // recurrent models must produce identical episodes back to back
    for kind in [RnnKind::Tgcn, RnnKind::Dcrnn] {
        let mut rec = RnnRecommender::new(kind, RnnConfig::default());
        assert_eq!(rec.run_episode(&ctx), rec.run_episode(&ctx), "{kind:?} leaked state");
    }
    let mut posh = PoshGnn::new(PoshGnnConfig::default());
    assert_eq!(posh.run_episode(&ctx), posh.run_episode(&ctx), "POSHGNN leaked state");
}
