//! End-to-end integration: dataset generation → scenario sampling → target
//! context → training → recommendation → evaluation, across crates.

use after_xr::poshgnn::recommender::AfterRecommender;
use after_xr::poshgnn::{evaluate_sequence, PoshGnn, PoshGnnConfig, StepView, TargetContext};
use after_xr::xr_baselines::{NearestRecommender, RandomRecommender};
use after_xr::xr_datasets::{Dataset, DatasetKind, ScenarioConfig};
use after_xr::xr_eval::{build_contexts, pick_targets, run_method};

fn small_cfg(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        n_participants: 20,
        vr_fraction: 0.5,
        time_steps: 15,
        room_side: 7.0,
        body_radius: 0.2,
        seed,
    }
}

#[test]
fn trained_poshgnn_beats_random_on_a_fresh_room() {
    // One unlucky (dataset, scenario) draw can let Random win a single room,
    // so this asserts the *median* margin over three fixed seed tuples
    // instead of one draw — deterministic, and robust to a single bad room.
    let seeds: [(u64, u64, u64); 3] = [(3, 1, 2), (13, 4, 8), (23, 6, 12)];
    let mut margins = Vec::with_capacity(seeds.len());
    for (dataset_seed, train_seed, test_seed) in seeds {
        let dataset = Dataset::generate(DatasetKind::Hubs, dataset_seed);
        let train = dataset.sample_scenario(&small_cfg(train_seed));
        let test = dataset.sample_scenario(&small_cfg(test_seed));

        let train_ctx = build_contexts(&train, &[0, 5], 0.5);
        let test_ctx = build_contexts(&test, &[3], 0.5);

        let mut model = PoshGnn::new(PoshGnnConfig::default());
        model.train(&train_ctx, 40);
        let ours = run_method(&mut model, &test_ctx);

        let mut random = RandomRecommender::new(6, 9);
        let base = run_method(&mut random, &test_ctx);
        margins.push(ours.mean.after_utility - base.mean.after_utility);
    }
    let mut sorted = margins.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2];
    assert!(median > 0.0, "POSHGNN should beat Random on the median room; margins = {margins:?}");
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let dataset = Dataset::generate(DatasetKind::Smm, 4);
        let scenario = dataset.sample_scenario(&small_cfg(5));
        let ctx = TargetContext::new(&scenario, 2, 0.5);
        let mut model = PoshGnn::new(PoshGnnConfig::default());
        model.train(std::slice::from_ref(&ctx), 5);
        let recs = model.run_episode(&ctx);
        evaluate_sequence(&ctx, &recs)
    };
    let a = run();
    let b = run();
    assert_eq!(a.after_utility, b.after_utility);
    assert_eq!(a.view_occlusion_rate, b.view_occlusion_rate);
}

#[test]
fn latency_penalty_hurts_delivered_utility() {
    // The same decisions delivered late must never score better.
    struct Delayed<R>(R, usize);
    impl<R: AfterRecommender> AfterRecommender for Delayed<R> {
        fn name(&self) -> String {
            format!("{}+lag", self.0.name())
        }
        fn begin_episode(&mut self, view: &StepView<'_>) {
            self.0.begin_episode(view);
        }
        fn recommend_step(&mut self, view: &StepView<'_>) -> Vec<bool> {
            self.0.recommend_step(view)
        }
        fn latency_steps(&self) -> usize {
            self.1
        }
    }

    let dataset = Dataset::generate(DatasetKind::Hubs, 6);
    let scenario = dataset.sample_scenario(&small_cfg(7));
    let ctx = build_contexts(&scenario, &pick_targets(&scenario, 2, 1), 0.5);

    let on_time = run_method(&mut Delayed(NearestRecommender::new(6), 0), &ctx);
    let late = run_method(&mut Delayed(NearestRecommender::new(6), 4), &ctx);
    assert!(
        late.mean.after_utility <= on_time.mean.after_utility,
        "stale delivery should not outperform on-time delivery"
    );
}

#[test]
fn evaluation_respects_beta_decomposition() {
    let dataset = Dataset::generate(DatasetKind::Timik, 8);
    let scenario = dataset.sample_scenario(&small_cfg(9));
    for beta in [0.0, 0.3, 0.7, 1.0] {
        let ctx = TargetContext::new(&scenario, 1, beta);
        let mut nearest = NearestRecommender::new(5);
        let recs = nearest.run_episode(&ctx);
        let b = evaluate_sequence(&ctx, &recs);
        assert!(b.consistent_with_beta(beta, 1e-9), "decomposition broke at beta = {beta}");
    }
}

#[test]
fn mr_and_vr_targets_get_different_candidate_pools() {
    let dataset = Dataset::generate(DatasetKind::Smm, 10);
    let scenario = dataset.sample_scenario(&small_cfg(11));
    let mr = scenario.interfaces.iter().position(|&i| i == after_xr::xr_datasets::Interface::Mr).unwrap();
    let vr = scenario.interfaces.iter().position(|&i| i == after_xr::xr_datasets::Interface::Vr).unwrap();
    let ctx_mr = TargetContext::new(&scenario, mr, 0.5);
    let ctx_vr = TargetContext::new(&scenario, vr, 0.5);

    let pool = |ctx: &TargetContext| -> usize { ctx.candidate_mask[0].iter().filter(|&&b| b).count() };
    // the VR target sees everyone as a candidate; the MR target may lose
    // candidates behind physical bodies
    assert_eq!(pool(&ctx_vr), scenario.n() - 1);
    assert!(pool(&ctx_mr) < scenario.n());
}
