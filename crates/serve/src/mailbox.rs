//! Per-room frame mailbox: a bounded SPSC-style ring with coalescing.
//!
//! Each room owns one [`FrameMailbox`]. The ingest side ([`enqueue`]) stamps
//! every frame with a strictly increasing sequence number; the scheduler
//! side ([`pop`] / [`drain_keep_newest`]) consumes frames in FIFO order.
//! When a room falls behind — its ring is full at the next enqueue — the
//! **oldest pending frame is coalesced away**: position frames supersede
//! each other, so dropping the stalest one loses no information a newer
//! frame doesn't carry. The invariants the property tests pin:
//!
//! * delivered sequence numbers are strictly increasing within a room, and
//! * a coalesced-over (dropped) frame is never delivered afterwards — once
//!   a newer frame displaced it, the stale frame is gone for good.
//!
//! [`enqueue`]: FrameMailbox::enqueue
//! [`pop`]: FrameMailbox::pop
//! [`drain_keep_newest`]: FrameMailbox::drain_keep_newest

use xr_session::Frame;

/// A frame plus the arrival sequence number the mailbox stamped on it.
#[derive(Debug, Clone)]
pub struct SeqFrame {
    /// Arrival order within this room (0-based, never reused).
    pub seq: u64,
    /// The position frame itself.
    pub frame: Frame,
}

/// What one [`FrameMailbox::enqueue`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnqueueOutcome {
    /// Sequence number assigned to the enqueued frame.
    pub seq: u64,
    /// Sequence number of the stale frame this enqueue coalesced away, if
    /// the ring was full.
    pub coalesced: Option<u64>,
}

/// Bounded per-room frame ring. See the module docs for the coalescing
/// contract.
#[derive(Debug)]
pub struct FrameMailbox {
    slots: Box<[Option<SeqFrame>]>,
    head: usize,
    len: usize,
    next_seq: u64,
    last_delivered: Option<u64>,
    coalesced_total: u64,
}

impl FrameMailbox {
    /// A mailbox holding at most `capacity` pending frames.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> FrameMailbox {
        assert!(capacity >= 1, "mailbox capacity must be at least 1");
        FrameMailbox {
            slots: (0..capacity).map(|_| None).collect(),
            head: 0,
            len: 0,
            next_seq: 0,
            last_delivered: None,
            coalesced_total: 0,
        }
    }

    /// Maximum pending frames.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Pending frames.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no frame is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total frames coalesced away over the mailbox's lifetime.
    pub fn coalesced_total(&self) -> u64 {
        self.coalesced_total
    }

    /// Sequence number of the most recently delivered frame, if any.
    pub fn last_delivered(&self) -> Option<u64> {
        self.last_delivered
    }

    /// Stamps `frame` with the next sequence number and appends it. When the
    /// ring is full, the oldest pending frame is dropped (coalesced) to make
    /// room — the outcome reports its sequence number so the caller can
    /// count the decision.
    pub fn enqueue(&mut self, frame: Frame) -> EnqueueOutcome {
        let seq = self.next_seq;
        self.next_seq += 1;
        let coalesced = if self.len == self.slots.len() {
            let dropped = self.slots[self.head].take().expect("full ring has no empty head");
            self.head = (self.head + 1) % self.slots.len();
            self.len -= 1;
            self.coalesced_total += 1;
            Some(dropped.seq)
        } else {
            None
        };
        let tail = (self.head + self.len) % self.slots.len();
        self.slots[tail] = Some(SeqFrame { seq, frame });
        self.len += 1;
        EnqueueOutcome { seq, coalesced }
    }

    /// Removes and returns the oldest pending frame (FIFO).
    pub fn pop(&mut self) -> Option<SeqFrame> {
        if self.len == 0 {
            return None;
        }
        let sf = self.slots[self.head].take().expect("non-empty ring has a head frame");
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        debug_assert!(self.last_delivered.is_none_or(|last| sf.seq > last), "delivery went backwards");
        self.last_delivered = Some(sf.seq);
        Some(sf)
    }

    /// Load-shedding drain: drops every pending frame except the newest and
    /// delivers that one. Returns the surviving frame (if any) and the
    /// number of frames shed.
    pub fn drain_keep_newest(&mut self) -> (Option<SeqFrame>, u64) {
        if self.len == 0 {
            return (None, 0);
        }
        let mut shed = 0u64;
        while self.len > 1 {
            let tossed = self.slots[self.head].take().expect("non-empty ring has a head frame");
            debug_assert!(self.last_delivered.is_none_or(|last| tossed.seq > last));
            self.head = (self.head + 1) % self.slots.len();
            self.len -= 1;
            shed += 1;
        }
        (self.pop(), shed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xr_graph::geom::Point2;

    fn frame(tag: f64) -> Frame {
        Frame::new(vec![Point2::new(tag, -tag)])
    }

    #[test]
    fn fifo_below_capacity() {
        let mut mb = FrameMailbox::new(4);
        for t in 0..3 {
            let out = mb.enqueue(frame(t as f64));
            assert_eq!(out.seq, t);
            assert_eq!(out.coalesced, None);
        }
        assert_eq!(mb.len(), 3);
        for t in 0..3 {
            let sf = mb.pop().unwrap();
            assert_eq!(sf.seq, t);
            assert_eq!(sf.frame.positions[0].x, t as f64);
        }
        assert!(mb.pop().is_none());
        assert_eq!(mb.coalesced_total(), 0);
    }

    #[test]
    fn full_ring_coalesces_the_oldest_frame() {
        let mut mb = FrameMailbox::new(2);
        assert_eq!(mb.enqueue(frame(0.0)).coalesced, None);
        assert_eq!(mb.enqueue(frame(1.0)).coalesced, None);
        // seq 0 is the stalest pending frame; seq 2 displaces it
        assert_eq!(mb.enqueue(frame(2.0)).coalesced, Some(0));
        assert_eq!(mb.len(), 2);
        assert_eq!(mb.coalesced_total(), 1);
        assert_eq!(mb.pop().unwrap().seq, 1);
        assert_eq!(mb.pop().unwrap().seq, 2);
    }

    #[test]
    fn drain_keep_newest_shed_counts() {
        let mut mb = FrameMailbox::new(8);
        for t in 0..5 {
            mb.enqueue(frame(t as f64));
        }
        let (survivor, shed) = mb.drain_keep_newest();
        assert_eq!(survivor.unwrap().seq, 4);
        assert_eq!(shed, 4);
        assert!(mb.is_empty());
        let (none, zero) = mb.drain_keep_newest();
        assert!(none.is_none());
        assert_eq!(zero, 0);
    }

    #[test]
    fn capacity_one_always_keeps_the_newest() {
        let mut mb = FrameMailbox::new(1);
        for t in 0..10 {
            mb.enqueue(frame(t as f64));
        }
        assert_eq!(mb.coalesced_total(), 9);
        let sf = mb.pop().unwrap();
        assert_eq!(sf.seq, 9, "only the newest frame survives");
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_panics() {
        FrameMailbox::new(0);
    }
}
