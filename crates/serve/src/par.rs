//! Minimal scoped-thread work-queue parallelism — the deterministic worker
//! pool shared by the experiment runner and the multi-room scheduler.
//!
//! Moved here from `xr_eval` (which re-exports it unchanged) when the
//! serving layer grew its own consumer: the room scheduler and the
//! comparison/ablation drivers decompose the same way, into independent
//! cells (rooms, or method × scenario × seed) that derive all randomness
//! from fixed per-cell seeds, never from a shared RNG, so results regenerate
//! **identically at any thread count** — only wall-clock timing varies.
//!
//! Implemented on `std::thread::scope` with an atomic index queue: no
//! external dependency, no unsafe, and workers borrow the shared read-only
//! inputs (scenarios, contexts, room slots) directly from the caller's
//! stack.
//!
//! Observability: the caller's installed [`xr_obs::ObsCtx`] (if any) is
//! propagated into every worker, so spans, events, and metrics recorded
//! inside parallel cells land in the same registry/trace as the spawning
//! thread's — and progress/warning output goes through `xr_obs` events
//! instead of raw `eprintln!`, keeping multi-worker logs interleaving-safe.
//!
//! Event names stay under the historical `xr_eval.par` prefix: they are
//! pinned by the obs-smoke golden and external dashboards, and renaming a
//! metric is an interface break regardless of which crate emits it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count: the `AFTER_THREADS` environment variable when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`].
///
/// `AFTER_THREADS=1` forces the sequential path — useful for timing
/// baselines and for the determinism tests that compare thread counts.
pub fn thread_count() -> usize {
    match std::env::var("AFTER_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                xr_obs::warn_event!("xr_eval.par.invalid_threads", ignored = format!("{v:?}"));
                default_threads()
            }
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `0..n` on [`thread_count`] scoped workers, returning the
/// results in index order (element `i` is `f(i)`).
///
/// Work is distributed dynamically through an atomic counter, so uneven cell
/// costs (COMURNet vs. Random, a degraded room vs. an idle one) still
/// balance. With one worker — or one item — this degrades to a plain
/// sequential loop on the calling thread. A panic in `f` propagates to the
/// caller when the scope joins.
pub fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_indexed_with(thread_count(), n, f)
}

/// [`par_map_indexed`] with an explicit worker count — the building block
/// the default entry point wraps. The room scheduler pins this at server
/// construction, and the tests use it to exercise the threaded path
/// regardless of the host's core count.
pub fn par_map_indexed_with<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.min(n);
    if workers <= 1 {
        return (0..n)
            .map(|i| {
                let value = f(i);
                xr_obs::event!("xr_eval.par.item_done", index = i);
                value
            })
            .collect();
    }
    let ctx = xr_obs::current_ctx();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let (f, next, slots) = (&f, &next, &slots);
        for _ in 0..workers {
            let ctx = ctx.clone();
            scope.spawn(move || {
                // telemetry from this worker merges into the caller's sinks
                let _obs = ctx.as_ref().map(xr_obs::ObsCtx::install);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = f(i);
                    *slots[i].lock().expect("result slot poisoned") = Some(value);
                    xr_obs::event!("xr_eval.par.item_done", index = i);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("result slot poisoned").expect("worker skipped a slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        // forced to 4 workers so the threaded path runs even on 1-core hosts
        let out = par_map_indexed_with(4, 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, |i| i + 7), vec![7]);
        assert_eq!(par_map_indexed_with(8, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn uneven_work_still_covers_every_index() {
        // later indices are much cheaper: dynamic scheduling must not drop any
        let out = par_map_indexed_with(4, 23, |i| {
            let spin = if i < 3 { 200_000 } else { 10 };
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_add(k ^ i as u64);
            }
            (i, std::hint::black_box(acc))
        });
        for (i, slot) in out.iter().enumerate() {
            assert_eq!(slot.0, i);
        }
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn observability_context_propagates_to_workers() {
        let ctx = xr_obs::ObsCtx::new(true, false);
        let _guard = ctx.install();
        let out = par_map_indexed_with(4, 10, |i| {
            xr_obs::counter_add("par.test.cells", &[], 1);
            i
        });
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counter("par.test.cells"), Some(10), "worker telemetry must merge");
        assert_eq!(snap.counter("events.xr_eval.par.item_done"), Some(10));
    }
}
