//! One served room: a [`SceneEngine`] behind a mailbox, plus the SLO-driven
//! degradation ladder.
//!
//! ## Degradation ladder
//!
//! A room serves at one of three levels, ordered by cost:
//!
//! 1. [`ServeLevel::Full`] — the f64 [`SceneEngine`] ingests the frame
//!    (bit-exact shared scene state) and each registered viewer gets a
//!    top-k-nearest recommendation over their candidate mask.
//! 2. [`ServeLevel::ServeF32`] — the engine is bypassed; the per-viewer
//!    scene quantities are re-derived in f32 (`xr_session::serve32` SIMD
//!    kernels: distance row, occlusion graph, candidate mask) and the same
//!    top-k decision runs on f32 distances.
//! 3. [`ServeLevel::MaskOnly`] — cheapest: an O(N) f32 distance row and the
//!    coarse candidate set (everyone but the viewer and coincident users),
//!    with no occlusion pruning and no scoring. An over-approximation served
//!    only under pressure.
//!
//! Past the last rung the scheduler sheds whole frames: a room that is
//! *still* persistently over budget at [`ServeLevel::MaskOnly`] has its
//! backlog collapsed to the newest frame on every drain.
//!
//! Escalation is driven by the measured per-frame latency against the
//! `AFTER_SLO_BUDGET_MS` budget (via [`xr_obs::SloTracker`], so every miss
//! also lands in the `slo.serve.room.tick.*` metrics): `escalate_after`
//! consecutive misses move the room one rung down, `recover_after`
//! consecutive in-budget frames move it one rung back up. Without a
//! configured budget the policy is inert and every room stays at
//! [`ServeLevel::Full`] — which is also what the determinism and
//! differential suites pin, since degradation decisions depend on wall
//! clock.

use xr_session::serve32::{
    candidate_mask_f32, candidate_mask_f32_shortlist, distance_row_f32, occlusion_graph_f32, shortlist_f32,
};
use xr_session::{Frame, SceneConfig, SceneEngine};

use crate::mailbox::FrameMailbox;

/// Serving level — the degradation ladder, cheapest last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ServeLevel {
    /// f64 engine ingest + top-k-nearest over the exact candidate mask.
    Full,
    /// f32 serve kernels + top-k-nearest; the engine is bypassed.
    ServeF32,
    /// f32 distance row + coarse candidate set; no occlusion, no scoring.
    MaskOnly,
}

impl ServeLevel {
    /// Stable label for metrics.
    pub fn name(self) -> &'static str {
        match self {
            ServeLevel::Full => "full",
            ServeLevel::ServeF32 => "serve_f32",
            ServeLevel::MaskOnly => "mask_only",
        }
    }

    /// One rung cheaper, saturating at [`ServeLevel::MaskOnly`].
    pub fn degraded(self) -> ServeLevel {
        match self {
            ServeLevel::Full => ServeLevel::ServeF32,
            _ => ServeLevel::MaskOnly,
        }
    }

    /// One rung richer, saturating at [`ServeLevel::Full`].
    pub fn recovered(self) -> ServeLevel {
        match self {
            ServeLevel::MaskOnly => ServeLevel::ServeF32,
            _ => ServeLevel::Full,
        }
    }
}

/// Per-room configuration handed to `RoomServer::admit`.
#[derive(Debug, Clone)]
pub struct RoomConfig {
    /// Participant count (frame width).
    pub n: usize,
    /// Scene constants (body radius, MR mask, room diagonal).
    pub scene: SceneConfig,
    /// Registered viewers — the users recommendations are computed for.
    pub viewers: Vec<usize>,
    /// Recommendation size for the top-k-nearest decision.
    pub top_k: usize,
    /// Mailbox capacity (pending frames before coalescing).
    pub mailbox_capacity: usize,
    /// Scene-state retention handed to [`SceneEngine::set_state_retention`]:
    /// `Some(k)` keeps the last `k` ticks (the serving default — a
    /// long-running room must not accumulate every tick), `None` keeps all
    /// (what the differential/replay suites use to inspect history).
    pub retain_states: Option<usize>,
    /// Crowd-scale shortlist size handed to [`SceneEngine::set_prune_k`]:
    /// `Some(k)` makes the room's engine build per-viewer K-candidate
    /// shortlists instead of dense full-scene state (and the f32 rung serve
    /// from the same shortlists), `None` inherits the process-wide
    /// `AFTER_PRUNE_K` default. Stadium-scale rooms must set this — the
    /// dense path allocates an N×N distance matrix per retained tick.
    pub prune_k: Option<usize>,
}

impl RoomConfig {
    /// A room with serving defaults: top-5 recommendations, a 4-frame
    /// mailbox, and 2 retained scene states.
    pub fn new(n: usize, scene: SceneConfig, viewers: Vec<usize>) -> RoomConfig {
        RoomConfig { n, scene, viewers, top_k: 5, mailbox_capacity: 4, retain_states: Some(2), prune_k: None }
    }
}

/// One processed frame's output: the per-viewer recommendation masks, in the
/// room's registered-viewer (slot) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// Mailbox sequence number of the frame this decision answers.
    pub seq: u64,
    /// Serving level the frame was processed at.
    pub level: ServeLevel,
    /// `per_viewer[slot][w]` — recommend user `w` to the slot's viewer.
    pub per_viewer: Vec<Vec<bool>>,
}

/// Top-k-nearest decision on an f64 distance row: among candidates left by
/// `mask`, recommend the `k` nearest (ties broken by user id — fully
/// deterministic). This is the serving-side decision rule shared by the
/// scheduler and the sequential reference the differential subject drives.
pub fn decide_topk_f64(mask: &[bool], distances: &[f64], k: usize) -> Vec<bool> {
    let mut candidates: Vec<usize> = (0..mask.len()).filter(|&w| mask[w]).collect();
    candidates.sort_by(|&a, &b| distances[a].total_cmp(&distances[b]).then(a.cmp(&b)));
    candidates.truncate(k);
    let mut out = vec![false; mask.len()];
    for w in candidates {
        out[w] = true;
    }
    out
}

/// [`decide_topk_f64`] on the f32 serve-path distance row.
pub fn decide_topk_f32(mask: &[bool], distances: &[f32], k: usize) -> Vec<bool> {
    let mut candidates: Vec<usize> = (0..mask.len()).filter(|&w| mask[w]).collect();
    candidates.sort_by(|&a, &b| distances[a].total_cmp(&distances[b]).then(a.cmp(&b)));
    candidates.truncate(k);
    let mut out = vec![false; mask.len()];
    for w in candidates {
        out[w] = true;
    }
    out
}

/// A room slot owned by the server: engine + mailbox + ladder state.
#[derive(Debug)]
pub struct Room {
    engine: SceneEngine,
    mailbox: FrameMailbox,
    config: RoomConfig,
    /// Registered viewers in slot order (the engine's deduplicated list).
    viewers: Vec<usize>,
    level: ServeLevel,
    slo: Option<xr_obs::SloTracker>,
    /// Consecutive over-budget frames at the current level.
    over_streak: u32,
    /// Consecutive in-budget frames at the current level.
    under_streak: u32,
    /// Frames processed (all levels — the policy clock).
    frames_processed: u64,
    /// Frames shed by `drain_keep_newest` while over budget at the last rung.
    frames_shed: u64,
    /// Ladder transitions (either direction).
    transitions: u64,
    /// f32 scratch (structure-of-arrays positions for the serve kernels).
    xs: Vec<f32>,
    ys: Vec<f32>,
}

impl Room {
    pub(crate) fn new(config: RoomConfig, slo: Option<xr_obs::SloTracker>) -> Room {
        let mut engine = SceneEngine::new(config.n, config.scene.clone(), &config.viewers);
        // the room times whole frames itself (decision included, at every
        // ladder level); an engine-level tracker would double-count
        engine.set_slo(None);
        engine.set_state_retention(config.retain_states);
        if let Some(k) = config.prune_k {
            engine.set_prune_k(k);
        }
        let viewers = engine.viewers().to_vec();
        let mailbox = FrameMailbox::new(config.mailbox_capacity);
        Room {
            engine,
            mailbox,
            viewers,
            level: ServeLevel::Full,
            slo,
            over_streak: 0,
            under_streak: 0,
            frames_processed: 0,
            frames_shed: 0,
            transitions: 0,
            xs: vec![0.0; config.n],
            ys: vec![0.0; config.n],
            config,
        }
    }

    /// The room's scene engine (reference — what the differential subject
    /// compares against bare engines).
    pub fn engine(&self) -> &SceneEngine {
        &self.engine
    }

    /// The room's mailbox.
    pub(crate) fn mailbox_mut(&mut self) -> &mut FrameMailbox {
        &mut self.mailbox
    }

    /// Pending frames.
    pub fn pending(&self) -> usize {
        self.mailbox.len()
    }

    /// Frames coalesced away by the mailbox.
    pub fn coalesced(&self) -> u64 {
        self.mailbox.coalesced_total()
    }

    /// Current ladder level.
    pub fn level(&self) -> ServeLevel {
        self.level
    }

    /// Frames processed so far (all levels).
    pub fn frames_processed(&self) -> u64 {
        self.frames_processed
    }

    /// Frames shed so far.
    pub fn frames_shed(&self) -> u64 {
        self.frames_shed
    }

    /// Ladder transitions so far (either direction).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Room configuration.
    pub fn config(&self) -> &RoomConfig {
        &self.config
    }

    /// Whether the room is currently shedding: over budget persistently at
    /// the cheapest rung.
    pub fn is_shedding(&self, escalate_after: u32) -> bool {
        self.level == ServeLevel::MaskOnly && self.over_streak >= escalate_after
    }

    /// Processes one frame at the current level. Returns the decision; the
    /// caller measures latency and feeds it back via [`Room::observe_tick`].
    pub(crate) fn process(&mut self, seq: u64, frame: Frame) -> Decision {
        let level = self.level;
        let per_viewer = match level {
            ServeLevel::Full => {
                let t = self.engine.push(frame);
                let (engine, viewers, k) = (&self.engine, &self.viewers, self.config.top_k);
                viewers
                    .iter()
                    .map(|&v| {
                        let view = engine.view(v, t);
                        if let Some(cs) = view.candidates() {
                            // pruned engine: the shortlist already carries the
                            // mask and distances of its K members
                            let mut out = vec![false; engine.n()];
                            for w in cs.decide_topk(k) {
                                out[w as usize] = true;
                            }
                            out
                        } else {
                            decide_topk_f64(view.candidate_mask(), view.distances(), k)
                        }
                    })
                    .collect()
            }
            ServeLevel::ServeF32 => {
                self.load_f32(&frame);
                let prune_k = self.engine.prune_k();
                let mut row = vec![0.0f32; self.config.n];
                self.viewers
                    .iter()
                    .map(|&v| {
                        distance_row_f32(self.xs[v], self.ys[v], &self.xs, &self.ys, &mut row);
                        if prune_k > 0 {
                            // pruned f32 rung: shortlist the K nearest, then
                            // run the occlusion mask on members only — O(N + K²)
                            let ids = shortlist_f32(v, &row, prune_k);
                            let mask = candidate_mask_f32_shortlist(
                                v,
                                self.config.scene.mr_mask[v],
                                &ids,
                                &row,
                                &self.xs,
                                &self.ys,
                                self.config.scene.body_radius as f32,
                                &self.config.scene.mr_mask,
                            );
                            let mut members: Vec<u32> =
                                ids.iter().zip(&mask).filter(|&(_, &m)| m).map(|(&w, _)| w).collect();
                            members.sort_by(|&a, &b| {
                                row[a as usize].total_cmp(&row[b as usize]).then(a.cmp(&b))
                            });
                            members.truncate(self.config.top_k);
                            let mut out = vec![false; self.config.n];
                            for w in members {
                                out[w as usize] = true;
                            }
                            out
                        } else {
                            let graph = occlusion_graph_f32(
                                v,
                                &self.xs,
                                &self.ys,
                                self.config.scene.body_radius as f32,
                            );
                            let mask = candidate_mask_f32(
                                v,
                                self.config.scene.mr_mask[v],
                                &row,
                                &graph,
                                &self.config.scene.mr_mask,
                            );
                            decide_topk_f32(&mask, &row, self.config.top_k)
                        }
                    })
                    .collect()
            }
            ServeLevel::MaskOnly => {
                self.load_f32(&frame);
                let mut row = vec![0.0f32; self.config.n];
                self.viewers
                    .iter()
                    .map(|&v| {
                        distance_row_f32(self.xs[v], self.ys[v], &self.xs, &self.ys, &mut row);
                        // coarse candidate set: everyone except the viewer
                        // and coincident users; no occlusion, no ranking
                        (0..self.config.n).map(|w| w != v && row[w] >= 1e-9).collect()
                    })
                    .collect()
            }
        };
        let seq_decision = Decision { seq, level, per_viewer };
        self.frames_processed += 1;
        seq_decision
    }

    fn load_f32(&mut self, frame: &Frame) {
        for (i, p) in frame.positions.iter().enumerate() {
            self.xs[i] = p.x as f32;
            self.ys[i] = p.y as f32;
        }
    }

    /// Feeds one measured frame latency into the SLO tracker and the ladder
    /// policy. Returns `Some((from, to))` when the room changed level.
    pub(crate) fn observe_tick(
        &mut self,
        elapsed_ms: f64,
        escalate_after: u32,
        recover_after: u32,
    ) -> Option<(ServeLevel, ServeLevel)> {
        let slo = self.slo.as_mut()?;
        let tick = self.frames_processed.saturating_sub(1);
        let verdict = slo.record(tick, elapsed_ms);
        if verdict.missed {
            self.over_streak += 1;
            self.under_streak = 0;
        } else {
            self.under_streak += 1;
            self.over_streak = 0;
        }
        if verdict.missed && self.over_streak >= escalate_after && self.level != ServeLevel::MaskOnly {
            let from = self.level;
            self.level = self.level.degraded();
            self.over_streak = 0;
            self.transitions += 1;
            return Some((from, self.level));
        }
        if !verdict.missed && self.under_streak >= recover_after && self.level != ServeLevel::Full {
            let from = self.level;
            self.level = self.level.recovered();
            self.under_streak = 0;
            self.transitions += 1;
            return Some((from, self.level));
        }
        None
    }

    /// Records a shed batch.
    pub(crate) fn note_shed(&mut self, shed: u64) {
        self.frames_shed += shed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use xr_graph::geom::Point2;

    fn room(n: usize, budget_ms: Option<f64>) -> Room {
        let scene = SceneConfig {
            body_radius: 0.25,
            mr_mask: (0..n).map(|i| i % 2 == 0).collect(),
            room_diagonal: 10.0,
        };
        let config = RoomConfig::new(n, scene, vec![0, 1]);
        let slo =
            budget_ms.map(|b| xr_obs::SloTracker::new("serve.room.tick", xr_obs::SloConfig::new(b), &[]));
        Room::new(config, slo)
    }

    fn frame(n: usize, seed: u64) -> Frame {
        let mut rng = StdRng::seed_from_u64(seed);
        Frame::new((0..n).map(|_| Point2::new(rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0))).collect())
    }

    #[test]
    fn topk_decisions_are_deterministic_and_k_sized() {
        let mask = vec![false, true, true, true, true];
        let d = vec![0.0, 3.0, 1.0, 2.0, 4.0];
        let out = decide_topk_f64(&mask, &d, 2);
        assert_eq!(out, vec![false, false, true, true, false]);
        let d32: Vec<f32> = d.iter().map(|&x| x as f32).collect();
        assert_eq!(decide_topk_f32(&mask, &d32, 2), out);
        // k larger than the candidate set recommends everyone eligible
        assert_eq!(decide_topk_f64(&mask, &d, 10).iter().filter(|&&b| b).count(), 4);
    }

    #[test]
    fn topk_breaks_distance_ties_by_user_id() {
        let mask = vec![true, true, true, true];
        let d = vec![1.0, 1.0, 1.0, 1.0];
        assert_eq!(decide_topk_f64(&mask, &d, 2), vec![true, true, false, false]);
    }

    #[test]
    fn full_level_decisions_match_engine_state() {
        let mut r = room(10, None);
        let f = frame(10, 3);
        let d = r.process(0, f.clone());
        assert_eq!(d.level, ServeLevel::Full);
        assert_eq!(d.per_viewer.len(), 2);
        // self is never recommended
        assert!(!d.per_viewer[0][0]);
        assert!(!d.per_viewer[1][1]);
        let mut reference = SceneEngine::new(10, r.config().scene.clone(), &[0, 1]);
        reference.push(f);
        let view = reference.view(0, 0);
        let expect = decide_topk_f64(view.candidate_mask(), view.distances(), 5);
        assert_eq!(d.per_viewer[0], expect);
    }

    #[test]
    fn pruned_room_at_full_k_matches_the_dense_room() {
        let n = 12;
        let mut dense = room(n, None);
        let scene = dense.config().scene.clone();
        let mut config = RoomConfig::new(n, scene, vec![0, 1]);
        config.prune_k = Some(n - 1);
        let mut pruned = Room::new(config, None);
        for i in 0..6 {
            let f = frame(n, 100 + i);
            let d_dense = dense.process(i, f.clone());
            let d_pruned = pruned.process(i, f);
            assert_eq!(d_pruned.per_viewer, d_dense.per_viewer, "frame {i}");
        }
    }

    #[test]
    fn pruned_room_serves_from_the_shortlist_at_small_k() {
        let n = 16;
        let scene = SceneConfig {
            body_radius: 0.25,
            mr_mask: (0..n).map(|i| i % 2 == 0).collect(),
            room_diagonal: 10.0,
        };
        let mut config = RoomConfig::new(n, scene, vec![0]);
        config.prune_k = Some(4);
        config.top_k = 3;
        let mut r = Room::new(config, None);
        let d = r.process(0, frame(n, 7));
        assert_eq!(d.level, ServeLevel::Full);
        let recommended: Vec<usize> = (0..n).filter(|&w| d.per_viewer[0][w]).collect();
        assert!(recommended.len() <= 3);
        // every recommendation comes from the 4-member shortlist
        let view = r.engine().view(0, 0);
        let cs = view.candidates().expect("pruned engine exposes shortlists");
        for w in recommended {
            assert!(cs.contains(w), "recommended user {w} outside the shortlist");
        }
    }

    #[test]
    fn pruned_f32_rung_matches_the_dense_f32_rung_at_full_k() {
        let n = 10;
        let scene = SceneConfig {
            body_radius: 0.25,
            mr_mask: (0..n).map(|i| i % 2 == 0).collect(),
            room_diagonal: 10.0,
        };
        let mut dense = Room::new(RoomConfig::new(n, scene.clone(), vec![0, 1]), None);
        let mut config = RoomConfig::new(n, scene, vec![0, 1]);
        config.prune_k = Some(n - 1);
        let mut pruned = Room::new(config, None);
        // force both rooms onto the f32 rung without the wall-clock policy
        dense.level = ServeLevel::ServeF32;
        pruned.level = ServeLevel::ServeF32;
        for i in 0..4 {
            let f = frame(n, 40 + i);
            let d_dense = dense.process(i, f.clone());
            let d_pruned = pruned.process(i, f);
            assert_eq!(d_dense.level, ServeLevel::ServeF32);
            assert_eq!(d_pruned.per_viewer, d_dense.per_viewer, "frame {i}");
        }
    }

    #[test]
    fn ladder_escalates_on_misses_and_recovers_on_calm() {
        let mut r = room(8, Some(10.0));
        // 4 consecutive injected misses → one rung down
        for i in 0..4 {
            r.process(i, frame(8, i));
            let change = r.observe_tick(50.0, 4, 8);
            if i < 3 {
                assert_eq!(change, None);
            } else {
                assert_eq!(change, Some((ServeLevel::Full, ServeLevel::ServeF32)));
            }
        }
        assert_eq!(r.level(), ServeLevel::ServeF32);
        // 4 more misses → the last rung
        for i in 4..8 {
            r.process(i, frame(8, i));
            r.observe_tick(50.0, 4, 8);
        }
        assert_eq!(r.level(), ServeLevel::MaskOnly);
        // still missing at the last rung → shedding
        for i in 8..12 {
            r.process(i, frame(8, i));
            r.observe_tick(50.0, 4, 8);
        }
        assert!(r.is_shedding(4));
        // calm frames walk the room back up, one rung per recovery window
        for i in 12..20 {
            r.process(i, frame(8, i));
            r.observe_tick(1.0, 4, 8);
        }
        assert_eq!(r.level(), ServeLevel::ServeF32);
        assert!(!r.is_shedding(4));
        for i in 20..28 {
            r.process(i, frame(8, i));
            r.observe_tick(1.0, 4, 8);
        }
        assert_eq!(r.level(), ServeLevel::Full);
        assert_eq!(r.transitions(), 4);
    }

    #[test]
    fn no_budget_means_no_ladder_movement() {
        let mut r = room(8, None);
        for i in 0..32 {
            r.process(i, frame(8, i));
            assert_eq!(r.observe_tick(1e9, 1, 1), None);
        }
        assert_eq!(r.level(), ServeLevel::Full);
    }

    #[test]
    fn degraded_levels_bypass_the_engine() {
        let mut r = room(8, Some(10.0));
        for i in 0..4 {
            r.process(i, frame(8, i));
            r.observe_tick(50.0, 4, 8);
        }
        let ticks_before = r.engine().ticks();
        let d = r.process(4, frame(8, 4));
        assert_eq!(d.level, ServeLevel::ServeF32);
        assert_eq!(r.engine().ticks(), ticks_before, "f32 path must not touch the f64 engine");
        assert_eq!(d.per_viewer[0].len(), 8);
    }
}
