//! The room manager: admission control, per-room mailboxes, and pump rounds
//! over the pinned deterministic worker pool.
//!
//! ## Scheduling model
//!
//! The server is driven in explicit **rounds**: the ingest side enqueues
//! frames into per-room mailboxes at any time ([`RoomServer::enqueue`]), and
//! each [`RoomServer::pump`] call drains every room with pending frames.
//! Rooms are collected in room-id order and mapped over
//! [`crate::par::par_map_indexed_with`] with the worker count **pinned at
//! server construction** — never re-read from the environment mid-run — so a
//! full multi-room run produces byte-identical per-room decision streams at
//! any `AFTER_THREADS` (each room is one independent cell; nothing crosses
//! rooms mid-round).
//!
//! ## Admission control and load shedding
//!
//! [`RoomServer::admit`] rejects rooms beyond `max_rooms` — the server
//! refuses work it cannot schedule rather than letting every room's latency
//! collapse. Under a configured `AFTER_SLO_BUDGET_MS` budget, rooms that
//! persistently miss their per-frame deadline walk down the degradation
//! ladder (see [`crate::room`]); a room still over budget at the cheapest
//! rung has its backlog shed to the newest frame on each drain. Every
//! admission, coalesce, shed, and ladder decision is counted in the
//! `serve.*` metrics, windowed by round through the `xr_obs` timeseries, and
//! therefore surfaced by the Prometheus exporter.

use std::collections::BTreeMap;
use std::sync::Mutex;

use xr_session::Frame;

use crate::par;
use crate::room::{Decision, Room, RoomConfig, ServeLevel};

/// Server-wide configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission cap: rooms beyond this are rejected.
    pub max_rooms: usize,
    /// Worker count for pump rounds, pinned at construction. Defaults to
    /// [`crate::par::thread_count`] (the `AFTER_THREADS` discipline).
    pub workers: usize,
    /// Per-frame latency budget; `None` (no `AFTER_SLO_BUDGET_MS`) disables
    /// the ladder and shedding entirely.
    pub slo: Option<xr_obs::SloConfig>,
    /// Consecutive over-budget frames before a room drops one ladder rung.
    pub escalate_after: u32,
    /// Consecutive in-budget frames before a room climbs one rung back.
    pub recover_after: u32,
    /// Pump rounds per timeseries window for the `serve.*` series.
    pub series_window_rounds: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_rooms: 2048,
            workers: par::thread_count(),
            slo: xr_obs::SloConfig::from_env(),
            escalate_after: 4,
            recover_after: 32,
            series_window_rounds: 8,
        }
    }
}

/// Opaque room handle: monotonically increasing, never reused, so a stale
/// handle from a departed room can never address a newer tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RoomId(pub u64);

/// Why [`RoomServer::admit`] refused a room.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The server is at `max_rooms`.
    AtCapacity {
        /// The configured cap.
        max_rooms: usize,
    },
    /// The room config is unservable (no viewers, or a frame width of 0).
    Invalid(String),
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::AtCapacity { max_rooms } => write!(f, "server at capacity ({max_rooms} rooms)"),
            AdmitError::Invalid(why) => write!(f, "unservable room config: {why}"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// One room's output from a pump round.
#[derive(Debug)]
pub struct RoomDrain {
    /// Which room.
    pub room: RoomId,
    /// Decisions for every frame processed this round, in sequence order.
    pub decisions: Vec<Decision>,
    /// Frames shed from this room's backlog this round.
    pub shed: u64,
    /// The room's ladder level after the round.
    pub level: ServeLevel,
}

/// A whole pump round's output, in room-id order.
#[derive(Debug)]
pub struct PumpReport {
    /// Round index (1-based; incremented per [`RoomServer::pump`]).
    pub round: u64,
    /// Per-room drains for every room that had pending frames.
    pub rooms: Vec<RoomDrain>,
}

impl PumpReport {
    /// Total frames processed this round.
    pub fn frames(&self) -> usize {
        self.rooms.iter().map(|r| r.decisions.len()).sum()
    }
}

/// Aggregate server counters (monotonic, for tests and the bench section —
/// the authoritative export is the `serve.*` metric namespace).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Rooms admitted over the server's lifetime.
    pub admitted: u64,
    /// Admissions refused.
    pub rejected: u64,
    /// Rooms that have left.
    pub closed: u64,
    /// Frames accepted into mailboxes.
    pub enqueued: u64,
    /// Frames coalesced away by full mailboxes.
    pub coalesced: u64,
    /// Frames processed to a decision.
    pub processed: u64,
    /// Frames shed by over-budget rooms.
    pub shed: u64,
    /// Ladder transitions (either direction) across all rooms.
    pub transitions: u64,
}

/// The multi-room serving front end. See the module docs.
pub struct RoomServer {
    config: ServerConfig,
    rooms: BTreeMap<u64, Mutex<Room>>,
    next_id: u64,
    round: u64,
    stats: ServerStats,
}

impl RoomServer {
    /// A server with the given configuration.
    pub fn new(config: ServerConfig) -> RoomServer {
        assert!(config.workers >= 1, "server needs at least one worker");
        assert!(config.series_window_rounds >= 1, "series window must be at least one round");
        RoomServer { config, rooms: BTreeMap::new(), next_id: 0, round: 0, stats: ServerStats::default() }
    }

    /// The pinned configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Currently admitted rooms.
    pub fn room_count(&self) -> usize {
        self.rooms.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Admits a room, or explains why not. Counted (and windowed) as
    /// `serve.admit.accepted` / `serve.admit.rejected`.
    pub fn admit(&mut self, room: RoomConfig) -> Result<RoomId, AdmitError> {
        let window = self.series_window();
        if room.n == 0 {
            return self.reject(window, AdmitError::Invalid("frame width 0".into()));
        }
        if room.viewers.is_empty() {
            return self.reject(window, AdmitError::Invalid("no registered viewers".into()));
        }
        if let Some(&v) = room.viewers.iter().find(|&&v| v >= room.n) {
            return self
                .reject(window, AdmitError::Invalid(format!("viewer {v} out of range (n={})", room.n)));
        }
        if self.rooms.len() >= self.config.max_rooms {
            return self.reject(window, AdmitError::AtCapacity { max_rooms: self.config.max_rooms });
        }
        let slo = self.config.slo.clone().map(|cfg| xr_obs::SloTracker::new("serve.room.tick", cfg, &[]));
        let id = self.next_id;
        self.next_id += 1;
        self.rooms.insert(id, Mutex::new(Room::new(room, slo)));
        self.stats.admitted += 1;
        xr_obs::counter_add("serve.admit.accepted", &[], 1);
        xr_obs::series_counter_add("serve.admit.accepted", &[], window, 1);
        xr_obs::gauge_set("serve.rooms.active", &[], self.rooms.len() as f64);
        Ok(RoomId(id))
    }

    fn reject(&mut self, window: u64, err: AdmitError) -> Result<RoomId, AdmitError> {
        self.stats.rejected += 1;
        xr_obs::counter_add("serve.admit.rejected", &[], 1);
        xr_obs::series_counter_add("serve.admit.rejected", &[], window, 1);
        Err(err)
    }

    /// Removes a room. Pending frames are discarded with it. Returns whether
    /// the id was live.
    pub fn leave(&mut self, id: RoomId) -> bool {
        let existed = self.rooms.remove(&id.0).is_some();
        if existed {
            self.stats.closed += 1;
            xr_obs::counter_add("serve.rooms.closed", &[], 1);
            xr_obs::gauge_set("serve.rooms.active", &[], self.rooms.len() as f64);
            self.refresh_pending_gauge();
        }
        existed
    }

    /// Enqueues one frame for a room. Returns the assigned mailbox sequence
    /// number, or `None` for a dead room id.
    ///
    /// # Panics
    ///
    /// Panics when the frame width differs from the room's `n` (the same
    /// contract as [`xr_session::SceneEngine::push`], enforced early so the
    /// bad frame is attributed to the ingest site, not a later pump round).
    pub fn enqueue(&mut self, id: RoomId, frame: Frame) -> Option<u64> {
        let room = self.rooms.get_mut(&id.0)?;
        let room = room.get_mut().expect("room poisoned");
        assert_eq!(frame.positions.len(), room.config().n, "frame width mismatch for room {}", id.0);
        let outcome = room.mailbox_mut().enqueue(frame);
        self.stats.enqueued += 1;
        xr_obs::counter_add("serve.frames.enqueued", &[], 1);
        if outcome.coalesced.is_some() {
            self.stats.coalesced += 1;
            xr_obs::counter_add("serve.mailbox.coalesced", &[], 1);
            xr_obs::series_counter_add("serve.mailbox.coalesced", &[], self.series_window(), 1);
        }
        Some(outcome.seq)
    }

    /// Drains every room with pending frames on the pinned worker pool.
    /// Returns the round's decisions in room-id order.
    pub fn pump(&mut self) -> PumpReport {
        self.round += 1;
        let round = self.round;
        let window = self.series_window();
        let _span = xr_obs::span!("serve.pump", round = round, rooms = self.rooms.len());
        let (escalate_after, recover_after) = (self.config.escalate_after, self.config.recover_after);

        // deterministic work list: BTreeMap iteration is id-ordered
        let ready: Vec<(u64, &Mutex<Room>)> = self
            .rooms
            .iter()
            .filter(|(_, r)| r.lock().expect("room poisoned").pending() > 0)
            .map(|(&id, r)| (id, r))
            .collect();

        let drains = par::par_map_indexed_with(self.config.workers, ready.len(), |i| {
            let (id, slot) = ready[i];
            let mut room = slot.lock().expect("room poisoned");
            let mut decisions = Vec::with_capacity(room.pending());
            let mut shed_this_round = 0u64;
            if room.is_shedding(escalate_after) {
                let (survivor, shed) = room.mailbox_mut().drain_keep_newest();
                shed_this_round += shed;
                room.note_shed(shed);
                if let Some(sf) = survivor {
                    decisions.push(timed_frame(
                        &mut room,
                        sf.seq,
                        sf.frame,
                        escalate_after,
                        recover_after,
                        window,
                    ));
                }
            } else {
                while let Some(sf) = room.mailbox_mut().pop() {
                    decisions.push(timed_frame(
                        &mut room,
                        sf.seq,
                        sf.frame,
                        escalate_after,
                        recover_after,
                        window,
                    ));
                }
            }
            if shed_this_round > 0 {
                xr_obs::counter_add("serve.shed.frames", &[], shed_this_round);
                xr_obs::series_counter_add("serve.shed.frames", &[], window, shed_this_round);
            }
            xr_obs::counter_add("serve.frames.processed", &[], decisions.len() as u64);
            xr_obs::series_counter_add("serve.frames.processed", &[], window, decisions.len() as u64);
            RoomDrain { room: RoomId(id), decisions, shed: shed_this_round, level: room.level() }
        });

        for drain in &drains {
            self.stats.processed += drain.decisions.len() as u64;
            self.stats.shed += drain.shed;
        }
        self.stats.transitions =
            self.rooms.values().map(|r| r.lock().expect("room poisoned").transitions()).sum();
        self.refresh_pending_gauge();
        let degraded = self
            .rooms
            .values()
            .filter(|r| r.lock().expect("room poisoned").level() != ServeLevel::Full)
            .count();
        xr_obs::gauge_set("serve.rooms.degraded", &[], degraded as f64);
        PumpReport { round, rooms: drains }
    }

    /// Reads a room under its lock; `None` for a dead id. The differential
    /// and soak suites use this to compare engines and ladder state.
    pub fn with_room<R>(&self, id: RoomId, f: impl FnOnce(&Room) -> R) -> Option<R> {
        self.rooms.get(&id.0).map(|m| f(&m.lock().expect("room poisoned")))
    }

    /// Live room ids, ascending.
    pub fn room_ids(&self) -> Vec<RoomId> {
        self.rooms.keys().map(|&id| RoomId(id)).collect()
    }

    /// Total pending frames across all mailboxes.
    pub fn pending_total(&self) -> usize {
        self.rooms.values().map(|r| r.lock().expect("room poisoned").pending()).sum()
    }

    fn refresh_pending_gauge(&self) {
        xr_obs::gauge_set("serve.mailbox.pending", &[], self.pending_total() as f64);
    }

    fn series_window(&self) -> u64 {
        self.round / self.config.series_window_rounds
    }
}

/// Processes one frame with wall-clock timing fed back into the room's SLO
/// tracker and ladder policy, and into the shared `serve.room.tick.ms`
/// histogram (the p50/p99 source for the bench section and the soak test).
fn timed_frame(
    room: &mut Room,
    seq: u64,
    frame: Frame,
    escalate_after: u32,
    recover_after: u32,
    window: u64,
) -> Decision {
    let start = std::time::Instant::now();
    let decision = room.process(seq, frame);
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    xr_obs::observe("serve.room.tick.ms", &[], elapsed_ms);
    if let Some((from, to)) = room.observe_tick(elapsed_ms, escalate_after, recover_after) {
        let direction = if to > from { "serve.degrade.escalate" } else { "serve.degrade.recover" };
        xr_obs::counter_add(direction, &[("to", to.name())], 1);
        xr_obs::series_counter_add("serve.degrade.transitions", &[], window, 1);
        xr_obs::warn_event!("serve.room.level_change", from = from.name(), to = to.name(), seq = seq);
    }
    decision
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use xr_graph::geom::Point2;
    use xr_session::SceneConfig;

    fn scene(n: usize) -> SceneConfig {
        SceneConfig { body_radius: 0.25, mr_mask: (0..n).map(|i| i % 2 == 0).collect(), room_diagonal: 10.0 }
    }

    fn frame(n: usize, seed: u64) -> Frame {
        let mut rng = StdRng::seed_from_u64(seed);
        Frame::new((0..n).map(|_| Point2::new(rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0))).collect())
    }

    fn quiet_config(workers: usize, max_rooms: usize) -> ServerConfig {
        ServerConfig { max_rooms, workers, slo: None, ..ServerConfig::default() }
    }

    #[test]
    fn admission_caps_and_counts() {
        let ctx = xr_obs::ObsCtx::new(true, false);
        let _g = ctx.install();
        let mut server = RoomServer::new(quiet_config(2, 2));
        let a = server.admit(RoomConfig::new(6, scene(6), vec![0])).unwrap();
        let b = server.admit(RoomConfig::new(6, scene(6), vec![1])).unwrap();
        assert_ne!(a, b);
        let err = server.admit(RoomConfig::new(6, scene(6), vec![2])).unwrap_err();
        assert_eq!(err, AdmitError::AtCapacity { max_rooms: 2 });
        // a departure frees a slot, and the new handle is fresh
        assert!(server.leave(a));
        assert!(!server.leave(a), "double leave is a no-op");
        let c = server.admit(RoomConfig::new(6, scene(6), vec![2])).unwrap();
        assert!(c > b);
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counter("serve.admit.accepted"), Some(3));
        assert_eq!(snap.counter("serve.admit.rejected"), Some(1));
        assert_eq!(snap.gauge("serve.rooms.active"), Some(2.0));
    }

    #[test]
    fn invalid_rooms_are_rejected_with_reasons() {
        let mut server = RoomServer::new(quiet_config(1, 8));
        assert!(matches!(server.admit(RoomConfig::new(0, scene(0), vec![])), Err(AdmitError::Invalid(_))));
        assert!(matches!(server.admit(RoomConfig::new(4, scene(4), vec![])), Err(AdmitError::Invalid(_))));
        assert!(matches!(server.admit(RoomConfig::new(4, scene(4), vec![9])), Err(AdmitError::Invalid(_))));
        assert_eq!(server.stats().rejected, 3);
    }

    #[test]
    fn pump_drains_rooms_in_id_order() {
        let mut server = RoomServer::new(quiet_config(4, 16));
        let ids: Vec<RoomId> =
            (0..5).map(|i| server.admit(RoomConfig::new(6, scene(6), vec![i % 6])).unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            server.enqueue(id, frame(6, i as u64)).unwrap();
            server.enqueue(id, frame(6, 100 + i as u64)).unwrap();
        }
        let report = server.pump();
        assert_eq!(report.round, 1);
        assert_eq!(report.rooms.len(), 5);
        assert_eq!(report.frames(), 10);
        let drained: Vec<RoomId> = report.rooms.iter().map(|d| d.room).collect();
        assert_eq!(drained, ids, "room-id order");
        for drain in &report.rooms {
            assert_eq!(drain.decisions.len(), 2);
            assert_eq!(drain.decisions[0].seq, 0);
            assert_eq!(drain.decisions[1].seq, 1);
            assert_eq!(drain.level, ServeLevel::Full);
        }
        assert_eq!(server.pending_total(), 0);
        // an empty round does nothing
        assert_eq!(server.pump().frames(), 0);
    }

    #[test]
    fn enqueue_to_dead_room_is_none_and_width_mismatch_panics() {
        let mut server = RoomServer::new(quiet_config(1, 4));
        let id = server.admit(RoomConfig::new(6, scene(6), vec![0])).unwrap();
        server.leave(id);
        assert_eq!(server.enqueue(id, frame(6, 1)), None);
        let id2 = server.admit(RoomConfig::new(6, scene(6), vec![0])).unwrap();
        let panics = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut s = RoomServer::new(quiet_config(1, 4));
            let rid = s.admit(RoomConfig::new(6, scene(6), vec![0])).unwrap();
            s.enqueue(rid, frame(5, 1));
        }));
        assert!(panics.is_err());
        assert!(server.enqueue(id2, frame(6, 1)).is_some());
    }

    #[test]
    fn worker_counts_do_not_change_decisions() {
        let run = |workers: usize| -> Vec<Vec<Decision>> {
            let mut server = RoomServer::new(quiet_config(workers, 32));
            let ids: Vec<RoomId> = (0..12)
                .map(|i| server.admit(RoomConfig::new(8, scene(8), vec![i % 8, (i + 3) % 8])).unwrap())
                .collect();
            let mut streams: Vec<Vec<Decision>> = vec![Vec::new(); ids.len()];
            for t in 0..6u64 {
                for (k, &id) in ids.iter().enumerate() {
                    server.enqueue(id, frame(8, 1000 * (k as u64 + 1) + t)).unwrap();
                }
                let report = server.pump();
                for drain in report.rooms {
                    let idx = ids.iter().position(|&i| i == drain.room).unwrap();
                    streams[idx].extend(drain.decisions);
                }
            }
            streams
        };
        let one = run(1);
        let eight = run(8);
        assert_eq!(one, eight, "decision streams must be identical at any worker count");
    }

    #[test]
    fn backlogged_rooms_coalesce_and_metrics_see_it() {
        let ctx = xr_obs::ObsCtx::new(true, false);
        let _g = ctx.install();
        let mut server = RoomServer::new(quiet_config(2, 4));
        let mut cfg = RoomConfig::new(6, scene(6), vec![0]);
        cfg.mailbox_capacity = 2;
        let id = server.admit(cfg).unwrap();
        for t in 0..7 {
            server.enqueue(id, frame(6, t)).unwrap();
        }
        // capacity 2: seqs 0..=4 coalesced away, 5 and 6 survive
        assert_eq!(server.stats().coalesced, 5);
        let report = server.pump();
        let seqs: Vec<u64> = report.rooms[0].decisions.iter().map(|d| d.seq).collect();
        assert_eq!(seqs, vec![5, 6]);
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counter("serve.mailbox.coalesced"), Some(5));
        assert_eq!(snap.counter("serve.frames.processed"), Some(2));
        assert_eq!(snap.gauge("serve.mailbox.pending"), Some(0.0));
    }

    #[test]
    fn budgeted_server_walks_rooms_down_the_ladder() {
        // a sub-microsecond budget makes every frame a miss: the room must
        // reach the cheapest rung and start shedding its backlog
        let ctx = xr_obs::ObsCtx::new(true, false);
        let _g = ctx.install();
        let mut config = quiet_config(2, 4);
        config.slo = Some(xr_obs::SloConfig::new(1e-9));
        config.escalate_after = 2;
        let mut server = RoomServer::new(config);
        let mut cfg = RoomConfig::new(10, scene(10), vec![0, 1]);
        cfg.mailbox_capacity = 8;
        let id = server.admit(cfg).unwrap();
        let mut seen_levels = Vec::new();
        for t in 0..12u64 {
            server.enqueue(id, frame(10, t)).unwrap();
            let report = server.pump();
            if let Some(drain) = report.rooms.first() {
                seen_levels.push(drain.level);
            }
        }
        assert_eq!(seen_levels.last(), Some(&ServeLevel::MaskOnly));
        assert!(seen_levels.contains(&ServeLevel::ServeF32), "ladder passes through serve_f32");
        // now stack a backlog: a shedding room keeps only the newest frame
        for t in 100..105u64 {
            server.enqueue(id, frame(10, t)).unwrap();
        }
        let report = server.pump();
        assert_eq!(report.rooms[0].decisions.len(), 1);
        assert_eq!(report.rooms[0].shed, 4);
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counter("serve.shed.frames"), Some(4));
        assert!(snap.counter("serve.degrade.escalate{to=serve_f32}").is_some());
        assert!(snap.counter("serve.degrade.escalate{to=mask_only}").is_some());
        assert!(snap.counter("slo.serve.room.tick.deadline_miss").unwrap() >= 12);
        assert!(snap.histogram("serve.room.tick.ms").unwrap().count >= 12);
    }
}
