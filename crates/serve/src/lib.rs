//! # xr-serve
//!
//! The multi-room serving layer: many concurrent [`xr_session::SceneEngine`]
//! rooms behind bounded per-room frame mailboxes, scheduled in rounds onto a
//! pinned deterministic worker pool, with admission control and an
//! SLO-driven degradation ladder.
//!
//! * [`par`] — the scoped-thread work-queue pool (moved here from `xr_eval`,
//!   which re-exports it): dynamic index scheduling, `AFTER_THREADS`
//!   discipline, `xr_obs` context propagation into workers.
//! * [`mailbox`] — the bounded SPSC-style frame ring with oldest-frame
//!   coalescing and strictly increasing delivery sequence numbers.
//! * [`room`] — one served room: engine + mailbox + the
//!   Full → ServeF32 → MaskOnly degradation ladder and the shared
//!   top-k-nearest decision rule.
//! * [`server`] — the [`RoomServer`] front end: admission control, pump
//!   rounds, load shedding, and the `serve.*` metric namespace (windowed
//!   through `xr_obs` timeseries and exported by the Prometheus renderer).
//!
//! ## Determinism contract
//!
//! With no latency budget configured, a multi-room run is **byte-identical
//! at any worker count**: rooms are independent cells, each round's work
//! list is id-ordered, the pool returns results in index order, and the
//! worker count is pinned at server construction. The ladder and shedding
//! are wall-clock-driven, so the contract is scoped to runs where they stay
//! inert (no budget, or a budget no tick misses) — exactly what the
//! `MultiRoomVsSequential` differential subject and the thread-count
//! determinism test pin.

pub mod mailbox;
pub mod par;
pub mod room;
pub mod server;

pub use mailbox::{EnqueueOutcome, FrameMailbox, SeqFrame};
pub use par::{par_map_indexed, par_map_indexed_with, thread_count};
pub use room::{decide_topk_f32, decide_topk_f64, Decision, Room, RoomConfig, ServeLevel};
pub use server::{AdmitError, PumpReport, RoomDrain, RoomId, RoomServer, ServerConfig, ServerStats};
