//! Property tests for the frame mailbox's coalescing contract: under random
//! enqueue/drain interleavings, delivery never reorders frames within a
//! room and never hands out a stale frame after a newer one was coalesced
//! over it.

use proptest::prelude::*;
use xr_graph::geom::Point2;
use xr_serve::mailbox::FrameMailbox;
use xr_session::Frame;

/// Interleaving alphabet: 0 = enqueue, 1 = pop one, 2 = shed-drain (keep
/// newest), generated alongside a ring capacity.
fn ops_strategy() -> impl Strategy<Value = (usize, Vec<u32>)> {
    (1usize..6, proptest::collection::vec(0u32..3, 1..120))
}

/// Tags each frame with its enqueue index so a delivered frame's payload
/// must match its sequence number.
fn tagged_frame(tag: u64) -> Frame {
    Frame::new(vec![Point2::new(tag as f64, -(tag as f64))])
}

/// Runs one interleaving, asserting the delivery invariants after every op:
/// strictly increasing delivered seqs, payloads matching their seqs, no
/// coalesced-over frame ever delivered afterwards, and the ring bound held.
fn check_interleaving(capacity: usize, ops: &[u32]) {
    let mut mb = FrameMailbox::new(capacity);
    let mut dropped: Vec<u64> = Vec::new(); // coalesced-over seqs
    let mut delivered: Vec<u64> = Vec::new();
    let mut enqueued: u64 = 0;

    for &op in ops {
        match op {
            0 => {
                let outcome = mb.enqueue(tagged_frame(enqueued));
                assert_eq!(outcome.seq, enqueued, "seqs are assigned in arrival order");
                enqueued += 1;
                if let Some(stale) = outcome.coalesced {
                    assert!(stale < outcome.seq, "only older frames get coalesced over");
                    dropped.push(stale);
                }
            }
            1 => {
                if let Some(sf) = mb.pop() {
                    assert_eq!(sf.frame.positions[0].x, sf.seq as f64, "payload matches seq");
                    delivered.push(sf.seq);
                }
            }
            _ => {
                let before = mb.len();
                let (survivor, shed) = mb.drain_keep_newest();
                assert_eq!(shed as usize, before.saturating_sub(1));
                // every shed frame is older than the survivor, so the
                // strictly-increasing delivery invariant below also rules
                // out a shed frame ever being delivered later
                if let Some(sf) = survivor {
                    delivered.push(sf.seq);
                }
            }
        }

        for pair in delivered.windows(2) {
            assert!(pair[0] < pair[1], "delivery order went backwards: {pair:?}");
        }
        for seq in &dropped {
            assert!(!delivered.contains(seq), "stale frame {seq} resurrected");
        }
        assert!(mb.len() <= capacity, "ring never exceeds its bound");
    }

    // end state: accounting adds up — every stamped frame was delivered,
    // dropped, or is still pending
    let coalesced = mb.coalesced_total() as usize;
    assert!(delivered.len() + coalesced <= enqueued as usize);
    assert_eq!(mb.last_delivered(), delivered.last().copied());
}

/// Saturates a mailbox with enqueues only, then drains: the survivors must
/// be exactly the newest `capacity` sequence numbers, in order.
fn check_saturation(capacity: usize, extra: usize) {
    let total = capacity + extra;
    let mut mb = FrameMailbox::new(capacity);
    for tag in 0..total as u64 {
        mb.enqueue(tagged_frame(tag));
    }
    assert_eq!(mb.coalesced_total() as usize, extra);
    let mut seqs = Vec::new();
    while let Some(sf) = mb.pop() {
        seqs.push(sf.seq);
    }
    let expect: Vec<u64> = (extra as u64..total as u64).collect();
    assert_eq!(seqs, expect, "survivors are the newest suffix, FIFO");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random enqueue/pop/shed interleavings uphold the delivery contract.
    #[test]
    fn coalescing_never_reorders_or_resurrects(case in ops_strategy()) {
        check_interleaving(case.0, &case.1);
    }

    /// A saturated mailbox always delivers the newest suffix of seqs.
    #[test]
    fn saturation_keeps_exactly_the_newest_suffix(case in (1usize..6, 0usize..40)) {
        check_saturation(case.0, case.1);
    }
}
