//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! `proptest::collection::vec`, the [`proptest!`] macro (including
//! `#![proptest_config(...)]`), and `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike upstream proptest there is no shrinking: a failing case panics
//! with the sampled inputs in the panic message instead. Case generation is
//! deterministic — the RNG is seeded from the test's case index — so
//! failures reproduce exactly across runs and machines.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, usize, u64, u32, i64, i32);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Size specification: a fixed length or a half-open range of lengths.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec`s of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Re-exports used by `proptest_config` attributes.
    pub use super::ProptestConfig;
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.
    pub use super::test_runner::ProptestConfig;
    pub use super::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(, $($fmt:tt)*)?) => {
        assert_eq!($a, $b $(, $($fmt)*)?);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(, $($fmt:tt)*)?) => {
        assert_ne!($a, $b $(, $($fmt)*)?);
    };
}

/// Declares property tests. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0.0f64..1.0, v in proptest::collection::vec(0u64..9, 4)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    // Deterministic per-case seed → failures reproduce.
                    let mut __proptest_rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(
                        0x5EED_0000_0000_0000u64 ^ u64::from(case),
                    );
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);
                    )+
                    // Render inputs up front: the body closure takes them by value.
                    let __proptest_inputs =
                        [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", ");
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| { $body }));
                    if let Err(err) = result {
                        let msg = err
                            .downcast_ref::<String>()
                            .map(|s| s.as_str())
                            .or_else(|| err.downcast_ref::<&str>().copied())
                            .unwrap_or("<non-string panic>");
                        panic!(
                            "property '{}' failed at case {case}: {msg}\n  inputs: {__proptest_inputs}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.5f64..2.5, k in 3u64..9) {
            prop_assert!((1.5..2.5).contains(&x));
            prop_assert!((3..9).contains(&k));
        }

        #[test]
        fn vec_and_map_compose(v in crate::collection::vec(0.0f64..1.0, 7)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn tuples_and_prop_map(p in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&p));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn failing_property_reports_inputs() {
        // A property that always fails must panic with the case inputs.
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(1))]
                #[allow(unused)]
                fn always_fails(x in 0.0f64..1.0) {
                    prop_assert!(x > 2.0);
                }
            }
            always_fails();
        });
        let err = result.expect_err("property should have failed");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_fails") && msg.contains("inputs"), "{msg}");
    }
}
