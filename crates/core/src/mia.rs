//! MIA — Multi-modal Information Aggregator (paper §IV-A).
//!
//! MIA is the trainable-parameter-free preprocessing module of POSHGNN. At
//! each time step it fuses the target's social utilities, the crowd
//! trajectories, and device information into an attributed occlusion graph:
//!
//! * scene features `x̂_t (N × 4)` — distance-normalized preference `p̂`,
//!   distance-normalized social presence `ŝ`, relative distance, interface;
//! * structural-difference embedding `Δ_t = [e⁰‖e¹‖e²] (N × 3)` with
//!   `e¹ = (A_t − A_{t−1})·1` and `e² = (A_t² − A_{t−1}²)·1`;
//! * hybrid-participation mask `m_t (N × 1)` pruning candidates physically
//!   occluded by co-located MR participants;
//! * the dense adjacency `A_t` of the static occlusion graph.
//!
//! Under a crowd-scale pruned engine (`AFTER_PRUNE_K > 0`), the contexts MIA
//! consumes carry occlusion graphs restricted to each viewer's K-candidate
//! shortlist. Nothing here changes: the structural-difference embedding's
//! edge-deltas `A_t − A_{t−1}` then involve only shortlist pairs by
//! construction, non-member rows of `x̂_t`/`Δ_t` are zero through the zeroed
//! mask and empty adjacency rows, and at `K ≥ N−1` the restricted graphs are
//! the full graphs, so every output is bitwise identical to the dense path.

use std::rc::Rc;

use xr_tensor::{CsrAdj, Matrix};

use crate::problem::TargetContext;

/// Output of MIA for one time step.
#[derive(Debug, Clone)]
pub struct MiaOutput {
    /// Scene features `x̂_t`, shape `N × 4`. All dense fields are `Rc`-shared
    /// so cached slabs flow into tapes via [`xr_tensor::Tape::constant_rc`]
    /// (zero-copy) instead of being copied once per (step, epoch).
    pub features: Rc<Matrix>,
    /// Structural difference embedding `Δ_t`, shape `N × 3`.
    pub delta: Rc<Matrix>,
    /// Candidate mask `m_t` as an `N × 1` 0/1 column.
    pub mask: Rc<Matrix>,
    /// Dense occlusion adjacency `A_t`, shape `N × N`.
    pub adjacency: Rc<Matrix>,
    /// Row-normalized adjacency `D⁻¹A_t` used as the GNN aggregation
    /// operator: mean aggregation keeps activations bounded on dense
    /// occlusion graphs (sum aggregation saturates sigmoids at N = 200,
    /// where occlusion degrees reach the hundreds). The raw `adjacency`
    /// still feeds the loss's occlusion penalty.
    pub adjacency_norm: Rc<Matrix>,
    /// Depth-weighted blocking matrix `B_t` feeding the loss's occlusion
    /// penalty `α·r_tᵀB_t r_t`: `B[w][u] = p̂_w` when `u` stands nearer than
    /// `w` and their arcs overlap (recommending `u` hides `w`, forfeiting
    /// `w`'s preference). This refines Def. 7's symmetric `A_t` — the
    /// quadratic form is unchanged, but the penalty now estimates the
    /// *utility actually lost* to occlusion instead of counting edges.
    pub blocking: Rc<Matrix>,
    /// Preference utilities `p̂_t` (`N × 1`), target zeroed and masked by
    /// `m_t` — these feed the POSHGNN loss.
    pub p_hat: Rc<Matrix>,
    /// Distance-squared-normalized social-presence utilities `ŝ_t` (`N × 1`),
    /// masked by `m_t`.
    pub s_hat: Rc<Matrix>,
    /// Sparse CSR view of `adjacency`. The dense fields above are derived
    /// from these CSR forms (built directly from the occlusion graph's edge
    /// list in O(N + m)) and are kept for the dense-kernel ablation path and
    /// the RNN baselines; POSHGNN's hot path consumes only the CSR fields.
    pub adjacency_csr: Rc<CsrAdj>,
    /// Sparse CSR view of `adjacency_norm` (mean-aggregation operator).
    pub adjacency_norm_csr: Rc<CsrAdj>,
    /// Sparse CSR view of `blocking` (loss occlusion penalty).
    pub blocking_csr: Rc<CsrAdj>,
    /// Transpose of `adjacency_csr`, precomputed for the backward pass so
    /// BPTT tapes allocate no per-episode transposes (they are shared via
    /// [`xr_tensor::Tape::sparse_with_transpose`]).
    pub adjacency_csr_t: Rc<CsrAdj>,
    /// Transpose of `adjacency_norm_csr` (see `adjacency_csr_t`).
    pub adjacency_norm_csr_t: Rc<CsrAdj>,
    /// Transpose of `blocking_csr` (see `adjacency_csr_t`).
    pub blocking_csr_t: Rc<CsrAdj>,
}

/// The Multi-modal Information Aggregator. Stateless and parameter-free; it
/// owns only the feature-engineering recipe.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mia;

impl Mia {
    /// Runs MIA for time step `t`.
    ///
    /// `A_{t-1}` is taken from `ctx.occlusion[t-1]`; at `t = 0` the previous
    /// adjacency is the empty graph (the conference has not started).
    pub fn compute(&self, ctx: &TargetContext, t: usize) -> MiaOutput {
        let _span = xr_obs::span!("poshgnn.mia.compute", t = t);
        let n = ctx.n;
        let adjacency_csr = Rc::new(ctx.occlusion[t].adjacency_csr());
        let adjacency_norm_csr = Rc::new(adjacency_csr.row_normalized());
        let prev_csr = if t == 0 { CsrAdj::empty(n, n) } else { ctx.occlusion[t - 1].adjacency_csr() };
        let deg: Vec<f64> = (0..n).map(|v| ctx.occlusion[t].degree(v) as f64).collect();
        let prev_deg: Vec<f64> = if t == 0 {
            vec![0.0; n]
        } else {
            (0..n).map(|v| ctx.occlusion[t - 1].degree(v) as f64).collect()
        };
        let p2_1 = prev_csr.matvec(&prev_deg);
        self.compute_with_ops(ctx, t, adjacency_csr, adjacency_norm_csr, &deg, &prev_deg, &p2_1).0
    }

    /// MIA body over pre-built adjacency operators: the shared tail of the
    /// from-scratch [`Mia::compute`] and the delta-maintained episode path.
    /// `p2_1` is the predecessor's `A'·(A'·1)` (its own `a2_1`); the step's
    /// `a2_1` is returned alongside the output so an episode loop can thread
    /// it forward instead of re-deriving it from the previous operators.
    #[allow(clippy::too_many_arguments)]
    fn compute_with_ops(
        &self,
        ctx: &TargetContext,
        t: usize,
        adjacency_csr: Rc<CsrAdj>,
        adjacency_norm_csr: Rc<CsrAdj>,
        deg: &[f64],
        prev_deg: &[f64],
        p2_1: &[f64],
    ) -> (MiaOutput, Vec<f64>) {
        let n = ctx.n;
        // Δ_t = [e⁰ ‖ e¹ ‖ e²]; the propagation differences are scaled by
        // 1/N so Δ stays O(1) regardless of crowd size (training stability;
        // the paper leaves the scale unspecified). All structural terms are
        // O(m): `(A − A')·1` is the degree difference, and
        // `(A² − A'²)·1 = A·(A·1) − A'·(A'·1)` is two sparse mat-vecs —
        // no N×N matrix is ever formed here.
        let a2_1 = adjacency_csr.matvec(deg);
        let inv_n = 1.0 / n as f64;
        let delta = Matrix::from_fn(n, 3, |r, c| match c {
            0 => 1.0,
            1 => (deg[r] - prev_deg[r]) * inv_n,
            _ => (a2_1[r] - p2_1[r]) * inv_n,
        });

        let mask = Matrix::from_fn(n, 1, |r, _| if ctx.candidate_mask[t][r] { 1.0 } else { 0.0 });

        // Utility rows with the target zeroed. The loss coefficients stay on
        // the *raw* `p`/`s` scale of Def. 2 — the AFTER utility counts a
        // visible user's full preference regardless of distance, so scaling
        // the loss by distance would misalign training with the objective.
        // Distance enters as an input *feature* instead ("normalization ...
        // so POSHGNN focuses on preference and social presence rather than
        // the users' relative distance"): the network sees proximity but is
        // not paid for it.
        let dist = &ctx.distances[t];
        let zero_target =
            |u: &[f64]| -> Vec<f64> { (0..n).map(|w| if w == ctx.target { 0.0 } else { u[w] }).collect() };
        let p_hat_v = zero_target(&ctx.preference);
        let s_hat_v = zero_target(&ctx.social);

        let p_hat = Matrix::from_fn(n, 1, |r, _| p_hat_v[r] * mask[(r, 0)]);
        let s_hat = Matrix::from_fn(n, 1, |r, _| s_hat_v[r] * mask[(r, 0)]);

        let features = Matrix::from_fn(n, 4, |r, c| match c {
            0 => p_hat[(r, 0)],
            1 => s_hat[(r, 0)],
            2 => (dist[r] / ctx.room_diagonal).min(1.0),
            _ => {
                if ctx.mr_mask[r] {
                    1.0
                } else {
                    0.0
                }
            }
        });

        // depth-weighted blocking matrix for the loss; each occlusion edge
        // contributes one directed entry, so nnz ≤ m
        let blocking_entries: Vec<(usize, usize, f64)> = ctx.occlusion[t]
            .edges()
            .map(|(u, v)| {
                let (near, far) = if dist[u] < dist[v] { (u, v) } else { (v, u) };
                (far, near, p_hat[(far, 0)])
            })
            .collect();
        let blocking_csr = Rc::new(CsrAdj::from_entries(n, n, &blocking_entries));

        let adjacency = Rc::new(adjacency_csr.to_dense());
        let adjacency_norm = Rc::new(adjacency_norm_csr.to_dense());
        let blocking = Rc::new(blocking_csr.to_dense());

        let adjacency_csr_t = Rc::new(adjacency_csr.transpose());
        let adjacency_norm_csr_t = Rc::new(adjacency_norm_csr.transpose());
        let blocking_csr_t = Rc::new(blocking_csr.transpose());

        let out = MiaOutput {
            features: Rc::new(features),
            delta: Rc::new(delta),
            mask: Rc::new(mask),
            adjacency,
            adjacency_norm,
            blocking,
            p_hat: Rc::new(p_hat),
            s_hat: Rc::new(s_hat),
            adjacency_csr,
            adjacency_norm_csr,
            blocking_csr,
            adjacency_csr_t,
            adjacency_norm_csr_t,
            blocking_csr_t,
        };
        (out, a2_1)
    }

    /// Precomputes MIA for every step of an episode as shareable slabs.
    ///
    /// MIA is parameter-free: its output depends only on the context, never
    /// on the model, so one slab serves every training epoch (and every
    /// inference pass) over the same episode. The `Rc` wrapper lets cached
    /// matrices flow into tapes via [`xr_tensor::Tape::constant_rc`] without
    /// cloning.
    ///
    /// By default ([`xr_session::incremental_enabled`]) the adjacency
    /// operators are maintained across steps from occlusion edge-deltas (the
    /// A_t − A_{t−1} MIA literally consumes) instead of rebuilt per step;
    /// `AFTER_INCREMENTAL=0` restores the per-step rebuild as the oracle.
    /// Both paths produce bit-identical slabs — pinned by a unit test here
    /// and by the `CachedVsFreshMia` differential subject across the CI env
    /// matrix.
    pub fn compute_episode(&self, ctx: &TargetContext) -> Vec<Rc<MiaOutput>> {
        let _span = xr_obs::span!("poshgnn.mia.compute_episode", steps = ctx.t_max() + 1);
        if xr_session::incremental_enabled() {
            self.compute_episode_delta(ctx)
        } else {
            self.compute_episode_fresh(ctx)
        }
    }

    /// The per-step-rebuild episode path (the differential oracle).
    pub fn compute_episode_fresh(&self, ctx: &TargetContext) -> Vec<Rc<MiaOutput>> {
        (0..=ctx.t_max()).map(|t| Rc::new(self.compute(ctx, t))).collect()
    }

    /// The delta-maintained episode path: one [`xr_gnn::AdjDeltaCache`]
    /// steps the adjacency/normalized/degree operators from edge-deltas, and
    /// each step's `A·(A·1)` mat-vec is threaded forward as the next step's
    /// `A'·(A'·1)` instead of being re-derived from the previous operators.
    pub fn compute_episode_delta(&self, ctx: &TargetContext) -> Vec<Rc<MiaOutput>> {
        let n = ctx.n;
        let mut cache = xr_gnn::AdjDeltaCache::fresh(&ctx.occlusion[0]);
        // at t = 0 the predecessor is the empty graph: zero degrees, zero
        // propagation — matching the fresh path's `CsrAdj::empty` matvec
        let mut prev_deg = vec![0.0; n];
        let mut p2_1 = vec![0.0; n];
        let mut outs = Vec::with_capacity(ctx.t_max() + 1);
        for t in 0..=ctx.t_max() {
            if t > 0 {
                cache.step(&ctx.occlusion[t - 1], &ctx.occlusion[t]);
            }
            let deg = cache.deg().to_vec();
            let (out, a2_1) =
                self.compute_with_ops(ctx, t, cache.csr(), cache.norm(), &deg, &prev_deg, &p2_1);
            prev_deg = deg;
            p2_1 = a2_1;
            outs.push(Rc::new(out));
        }
        outs
    }

    /// Runs MIA at a step view's tick. MIA's `Δ_t` difference embeddings
    /// only consult ticks `t` and `t-1`, so the causal window is all it
    /// needs — this is the entry point for stepwise (no-lookahead)
    /// recommenders.
    pub fn compute_view(&self, view: &crate::view::StepView<'_>) -> MiaOutput {
        self.compute(view.ctx(), view.t())
    }

    /// [`Mia::raw_features`] at a step view's tick — the stepwise entry
    /// point for the "Only PDR" ablation and the RNN baselines.
    pub fn raw_features_view(&self, view: &crate::view::StepView<'_>) -> Matrix {
        self.raw_features(view.ctx(), view.t())
    }

    /// Raw (un-normalized, un-masked) features for the "Only PDR" ablation:
    /// plain `p`, `s`, absolute distance, interface.
    pub fn raw_features(&self, ctx: &TargetContext, t: usize) -> Matrix {
        let n = ctx.n;
        Matrix::from_fn(n, 4, |r, c| match c {
            0 => {
                if r == ctx.target {
                    0.0
                } else {
                    ctx.preference[r]
                }
            }
            1 => {
                if r == ctx.target {
                    0.0
                } else {
                    ctx.social[r]
                }
            }
            2 => ctx.distances[t][r],
            _ => {
                if ctx.mr_mask[r] {
                    1.0
                } else {
                    0.0
                }
            }
        })
    }
}

/// Row-normalizes a square matrix (zero rows stay zero).
pub fn row_normalize(a: &Matrix) -> Matrix {
    let (n, m) = a.shape();
    assert_eq!(n, m, "row_normalize expects a square matrix");
    let mut out = Matrix::zeros(n, n);
    for r in 0..n {
        let deg: f64 = a.row(r).iter().sum();
        if deg > 0.0 {
            for c in 0..n {
                out[(r, c)] = a[(r, c)] / deg;
            }
        }
    }
    out
}

/// Dense 0/1 adjacency of the static occlusion graph at `t`.
pub fn dense_adjacency(ctx: &TargetContext, t: usize) -> Matrix {
    let n = ctx.n;
    let mut a = Matrix::zeros(n, n);
    for (u, v) in ctx.occlusion[t].edges() {
        a[(u, v)] = 1.0;
        a[(v, u)] = 1.0;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::TargetContext;
    use xr_crowd::Room;
    use xr_datasets::{Interface, Scenario};
    use xr_graph::geom::Point2;

    fn scenario() -> Scenario {
        // target 0 MR; 1 MR blocker east; 2 VR behind blocker; 3 VR north.
        let t0 =
            vec![Point2::new(5.0, 5.0), Point2::new(6.0, 5.0), Point2::new(7.0, 5.02), Point2::new(5.0, 8.0)];
        // t1: user 2 escapes the blocker's shadow
        let mut t1 = t0.clone();
        t1[2] = Point2::new(5.0, 2.0);
        Scenario {
            dataset: "unit".into(),
            participants: vec![0, 1, 2, 3],
            interfaces: vec![Interface::Mr, Interface::Mr, Interface::Vr, Interface::Vr],
            preference: vec![vec![0.0, 0.4, 0.9, 0.6], vec![0.0; 4], vec![0.0; 4], vec![0.0; 4]],
            social: vec![vec![0.0, 0.0, 0.8, 0.5], vec![0.0; 4], vec![0.0; 4], vec![0.0; 4]],
            trajectories: vec![t0, t1],
            room: Room::new(10.0, 10.0),
            body_radius: 0.25,
        }
    }

    fn ctx() -> TargetContext {
        TargetContext::new(&scenario(), 0, 0.5)
    }

    #[test]
    fn output_shapes() {
        let out = Mia.compute(&ctx(), 0);
        assert_eq!(out.features.shape(), (4, 4));
        assert_eq!(out.delta.shape(), (4, 3));
        assert_eq!(out.mask.shape(), (4, 1));
        assert_eq!(out.adjacency.shape(), (4, 4));
        assert_eq!(out.p_hat.shape(), (4, 1));
        assert_eq!(out.s_hat.shape(), (4, 1));
    }

    #[test]
    fn adjacency_matches_occlusion_graph() {
        let c = ctx();
        let out = Mia.compute(&c, 0);
        assert_eq!(out.adjacency[(1, 2)], 1.0, "in-line users are adjacent");
        assert_eq!(out.adjacency[(2, 1)], 1.0, "symmetric");
        assert_eq!(out.adjacency[(1, 3)], 0.0);
        assert_eq!(out.adjacency[(0, 1)], 0.0, "target is isolated");
    }

    #[test]
    fn mask_prunes_physically_occluded_and_zeroes_utilities() {
        let c = ctx();
        let out = Mia.compute(&c, 0);
        assert_eq!(out.mask[(0, 0)], 0.0, "target excluded");
        assert_eq!(out.mask[(2, 0)], 0.0, "behind physical MR user");
        assert_eq!(out.mask[(3, 0)], 1.0);
        assert_eq!(out.p_hat[(2, 0)], 0.0, "pruned users lose their utility");
        assert!(out.p_hat[(3, 0)] > 0.0);
    }

    #[test]
    fn delta_is_all_ones_plus_zero_diffs_when_static() {
        // duplicate frame scenario: Δ's e¹/e² vanish at t=1
        let mut s = scenario();
        s.trajectories[1] = s.trajectories[0].clone();
        let c = TargetContext::new(&s, 0, 0.5);
        let out = Mia.compute(&c, 1);
        for r in 0..4 {
            assert_eq!(out.delta[(r, 0)], 1.0);
            assert_eq!(out.delta[(r, 1)], 0.0);
            assert_eq!(out.delta[(r, 2)], 0.0);
        }
    }

    #[test]
    fn delta_detects_structure_change() {
        let c = ctx();
        let out = Mia.compute(&c, 1); // user 2 moved away: edge (1,2) vanished
        let changed = (0..4).any(|r| out.delta[(r, 1)].abs() > 0.0);
        assert!(changed, "Δ must flag the vanished occlusion edge");
    }

    #[test]
    fn loss_utilities_stay_on_the_raw_def2_scale() {
        // p(2) = 0.9, p(1) = 0.4 for a VR target (no physical pruning):
        // the loss coefficients must match Def. 2's raw utilities exactly —
        // distance is an input feature, not a payoff multiplier.
        let mut s = scenario();
        s.interfaces[0] = Interface::Vr;
        let c = TargetContext::new(&s, 0, 0.5);
        let out = Mia.compute(&c, 0);
        assert_eq!(out.p_hat[(1, 0)], 0.4);
        assert_eq!(out.p_hat[(2, 0)], 0.9);
        assert_eq!(out.s_hat[(2, 0)], 0.8);
    }

    #[test]
    fn p_hat_lies_in_unit_interval_with_zero_target() {
        let out = Mia.compute(&ctx(), 0);
        let vals = out.p_hat.as_slice();
        assert!(vals.iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert_eq!(vals[0], 0.0, "target's own utility is zeroed");
    }

    #[test]
    fn blocking_matrix_is_depth_directed_and_preference_weighted() {
        // VR target: user 1 (near, d=1) overlaps user 2 (far, d≈2, p=0.9).
        let mut s = scenario();
        s.interfaces[0] = Interface::Vr;
        let c = TargetContext::new(&s, 0, 0.5);
        let out = Mia.compute(&c, 0);
        // recommending 1 hides 2 → B[2][1] = p̂(2) = 0.9, not the reverse
        assert!((out.blocking[(2, 1)] - 0.9).abs() < 1e-12);
        assert_eq!(out.blocking[(1, 2)], 0.0);
        // non-overlapping pair carries no penalty
        assert_eq!(out.blocking[(3, 1)], 0.0);
    }

    #[test]
    fn csr_fields_match_dense_fields() {
        for t in 0..2 {
            let out = Mia.compute(&ctx(), t);
            assert!(out.adjacency_csr.to_dense().approx_eq(&out.adjacency, 0.0));
            assert!(out.adjacency_norm_csr.to_dense().approx_eq(&out.adjacency_norm, 1e-15));
            assert!(out.blocking_csr.to_dense().approx_eq(&out.blocking, 0.0));
        }
    }

    #[test]
    fn delta_matches_dense_reference_computation() {
        // The O(m) degree/mat-vec construction must equal the textbook
        // dense form (A−A')·1/N and (A²−A'²)·1/N.
        let c = ctx();
        for t in 0..2 {
            let out = Mia.compute(&c, t);
            let n = c.n;
            let adj = dense_adjacency(&c, t);
            let prev = if t == 0 { Matrix::zeros(n, n) } else { dense_adjacency(&c, t - 1) };
            let ones = Matrix::ones(n, 1);
            let e1 = adj.sub(&prev).matmul(&ones).scale(1.0 / n as f64);
            let a2 = adj.matmul(&adj.matmul(&ones));
            let p2 = prev.matmul(&prev.matmul(&ones));
            let e2 = a2.sub(&p2).scale(1.0 / n as f64);
            for r in 0..n {
                assert!((out.delta[(r, 1)] - e1[(r, 0)]).abs() < 1e-12);
                assert!((out.delta[(r, 2)] - e2[(r, 0)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn delta_episode_path_is_bitwise_identical_to_fresh() {
        // both episode paths must produce the same slabs bit for bit — the
        // delta path is an optimization layer, not an approximation
        let c = ctx();
        let fresh = Mia.compute_episode_fresh(&c);
        let delta = Mia.compute_episode_delta(&c);
        assert_eq!(fresh.len(), delta.len());
        for (t, (f, d)) in fresh.iter().zip(delta.iter()).enumerate() {
            let bits = |m: &Matrix| m.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
            assert_eq!(bits(&f.features), bits(&d.features), "t={t}: features");
            assert_eq!(bits(&f.delta), bits(&d.delta), "t={t}: delta embedding");
            assert_eq!(bits(&f.adjacency), bits(&d.adjacency), "t={t}: adjacency");
            assert_eq!(bits(&f.adjacency_norm), bits(&d.adjacency_norm), "t={t}: adjacency_norm");
            assert_eq!(bits(&f.blocking), bits(&d.blocking), "t={t}: blocking");
            assert_eq!(f.adjacency_csr, d.adjacency_csr, "t={t}: csr");
            assert_eq!(f.adjacency_norm_csr, d.adjacency_norm_csr, "t={t}: norm csr");
            assert_eq!(f.adjacency_csr_t, d.adjacency_csr_t, "t={t}: csr transpose");
        }
    }

    #[test]
    fn raw_features_skip_normalization() {
        let c = ctx();
        let raw = Mia.raw_features(&c, 0);
        assert_eq!(raw[(2, 0)], 0.9, "no pruning in the ablation features");
        assert_eq!(raw[(1, 2)], 1.0, "absolute distance");
        assert_eq!(raw[(1, 3)], 1.0, "MR flag");
        assert_eq!(raw[(2, 3)], 0.0, "VR flag");
    }
}
