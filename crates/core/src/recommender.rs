//! The AFTER recommender interface (paper Def. 1).

use crate::problem::TargetContext;
use crate::view::StepView;

/// An AFTER recommender `F_t(·): V → 2^V` — given a target user's context,
/// it emits the set of users to render at each time step.
///
/// Recommenders are *stateful across a single episode* (POSHGNN carries its
/// hidden state `h_{t-1}` and previous recommendation `r_{t-1}`);
/// [`AfterRecommender::begin_episode`] resets that state.
///
/// The stepwise contract is *no-lookahead by construction*: each step
/// receives a [`StepView`] exposing only ticks `0..=t`, so an implementor
/// outside `poshgnn` has no API through which to read future positions.
pub trait AfterRecommender {
    /// Human-readable method name (used in the result tables).
    fn name(&self) -> String;

    /// Resets per-episode state for a new target episode. The view is at
    /// tick 0 — episode-level constants (`n`, `β`, the utility rows) are
    /// readable; no scene data past the first frame is.
    fn begin_episode(&mut self, view: &StepView<'_>);

    /// Produces the display decision for the view's time step: `rec[w]` is
    /// `true` when user `w` should be rendered for the target. `rec[target]`
    /// is ignored by the evaluator.
    fn recommend_step(&mut self, view: &StepView<'_>) -> Vec<bool>;

    /// Delivery delay in time steps. Real-time methods return 0. Methods
    /// whose per-step computation exceeds the time-step budget (COMURNet
    /// [37] needs ~22 s per step at N = 200 — see the paper's Fig. 2b, where
    /// its `t = 0` result arrives after `t = 2`) deliver stale decisions:
    /// the evaluator applies the decision computed for step `t` at step
    /// `t + latency_steps()`.
    fn latency_steps(&self) -> usize {
        0
    }

    /// Runs a full episode (steps `0..=T`), returning one decision per step.
    /// The driver owns the full context; the method only ever sees the
    /// per-tick views.
    fn run_episode(&mut self, ctx: &TargetContext) -> Vec<Vec<bool>> {
        self.begin_episode(&StepView::new(ctx, 0));
        (0..=ctx.t_max()).map(|t| self.recommend_step(&StepView::new(ctx, t))).collect()
    }
}

/// Converts a probability column into a display decision via thresholding,
/// always excluding the target.
pub fn threshold_decision(probs: &[f64], target: usize, threshold: f64) -> Vec<bool> {
    probs.iter().enumerate().map(|(w, &p)| w != target && p > threshold).collect()
}

/// Selects the indices of the `k` largest values (excluding `target`),
/// breaking ties toward lower indices. Utility shared by Nearest/GraFrank-
/// style top-k recommenders.
///
/// NaN-safe: `total_cmp` orders NaN above every finite score in this
/// descending sort, so a poisoned score degrades into a deterministic pick
/// instead of panicking a serving thread.
pub fn top_k_indices(scores: &[f64], target: usize, k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).filter(|&w| w != target).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// Builds a boolean mask from selected indices.
pub fn mask_from_indices(n: usize, indices: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; n];
    for &i in indices {
        mask[i] = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_excludes_target() {
        let d = threshold_decision(&[0.9, 0.9, 0.1], 0, 0.5);
        assert_eq!(d, vec![false, true, false]);
    }

    #[test]
    fn top_k_orders_by_score() {
        let idx = top_k_indices(&[0.5, 0.9, 0.1, 0.7], 0, 2);
        assert_eq!(idx, vec![1, 3]);
    }

    #[test]
    fn top_k_skips_target_and_handles_small_n() {
        let idx = top_k_indices(&[0.9, 0.1], 0, 5);
        assert_eq!(idx, vec![1]);
    }

    #[test]
    fn top_k_tie_break_is_deterministic() {
        let idx = top_k_indices(&[0.5, 0.5, 0.5, 0.5], 3, 2);
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn top_k_survives_nan_scores() {
        // NaN sorts first (total_cmp descending) but deterministically —
        // no panic, stable output
        let idx = top_k_indices(&[0.5, f64::NAN, 0.9, f64::NAN], 0, 2);
        assert_eq!(idx, vec![1, 3]);
        let all_nan = top_k_indices(&[f64::NAN; 4], 2, 3);
        assert_eq!(all_nan, vec![0, 1, 3]);
    }

    #[test]
    fn mask_round_trip() {
        let mask = mask_from_indices(4, &[1, 3]);
        assert_eq!(mask, vec![false, true, false, true]);
    }
}
