//! POSHGNN — the paper's deep temporal graph learning framework (§IV).
//!
//! Three submodules cooperate:
//!
//! * **MIA** ([`crate::mia`]) preprocesses the scene into an attributed
//!   occlusion graph (no trainable parameters).
//! * **PDR** — a light 2-layer GCN (`4 → 8 → 1`, hidden dim 8 as in §V-A.5)
//!   producing the prototype recommendation `r̃_t` and hidden state `h_t`.
//! * **LWP** — a 3-layer GCN over `[x̂_t ‖ Δ_t ‖ h_{t−1} ‖ r_{t−1}]`
//!   producing the preservation vector `σ`; the gate
//!   `r_t = m_t ⊗ [(1−σ)⊗r̃_t + σ⊗r_{t−1}]` balances continuity against
//!   de-occlusion.
//!
//! Training backpropagates the POSHGNN loss through the whole episode (the
//! recurrent gate links consecutive steps), with Adam at `lr = 1e-2`.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use xr_gnn::{Activation, GcnLayer};
use xr_tensor::{Adam, Matrix, Optimizer, ParamStore, Tape, TapeLinOp, Var};

use crate::loss::{poshgnn_loss, LossParams};
use crate::mia::{Mia, MiaOutput};
use crate::problem::TargetContext;
use crate::recommender::{threshold_decision, AfterRecommender};
use crate::view::StepView;

/// Ablation variants of POSHGNN (paper Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoshVariant {
    /// MIA + PDR + LWP (the full model).
    Full,
    /// MIA + PDR, no LWP gate: `r_t = m_t ⊗ r̃_t`.
    PdrWithMia,
    /// PDR alone on raw features: no normalization, no mask, no gate.
    PdrOnly,
}

impl PoshVariant {
    /// Display name used in the ablation table.
    pub fn name(&self) -> &'static str {
        match self {
            PoshVariant::Full => "Full",
            PoshVariant::PdrWithMia => "PDR w/ MIA",
            PoshVariant::PdrOnly => "Only PDR",
        }
    }
}

/// POSHGNN hyperparameters (§V-A.5 defaults).
#[derive(Debug, Clone, Copy)]
pub struct PoshGnnConfig {
    /// Hidden dimension of both GNNs (paper: 8).
    pub hidden: usize,
    /// Loss hyperparameters `α`, `β`.
    pub loss: LossParams,
    /// Adam learning rate (paper: 1e-2).
    pub learning_rate: f64,
    /// Gradient-norm clip during BPTT.
    pub grad_clip: f64,
    /// Probability threshold converting `r_t` into a display decision.
    pub threshold: f64,
    /// Parameter-initialization seed.
    pub seed: u64,
    /// Which ablation variant to instantiate.
    pub variant: PoshVariant,
    /// Use the paper's literal symmetric edge-count occlusion penalty
    /// (`α·rᵀA_t r`) instead of the depth-weighted blocking refinement
    /// (`α·rᵀB_t r`). Kept for the loss-design ablation experiment.
    pub symmetric_penalty: bool,
    /// Run GNN aggregation and the loss penalty on dense N×N constants
    /// instead of the CSR sparse kernels. The sparse path (default) is
    /// mathematically identical — this flag exists for cross-checking and
    /// for measuring the sparse speedup in benchmarks.
    pub dense_kernels: bool,
    /// Recompute MIA at every (episode, step) instead of precomputing one
    /// shared slab per episode. MIA is parameter-free, so the cached path
    /// (default) is bit-identical; this escape hatch exists for the
    /// differential oracle and A/B benchmarks. Defaults to the
    /// `AFTER_FRESH_MIA=1` environment variable.
    pub fresh_mia: bool,
    /// Build a fresh `Tape` per episode instead of resetting one pooled
    /// arena tape. Same bit-identical contract and purpose as `fresh_mia`.
    /// Defaults to the `AFTER_FRESH_TAPE=1` environment variable.
    pub fresh_tape: bool,
    /// Serve inference on the f32 SIMD path ([`crate::serve`]): weights are
    /// down-converted once, and each recommend step derives the scene, MIA,
    /// and forward pass entirely in f32. Training is unaffected — it always
    /// runs the f64 tape. The f32 stream is pinned against the f64 stream by
    /// a tolerance + top-k-overlap differential subject in `xr_check`.
    /// Defaults to the `AFTER_SERVE_F32=1` environment variable.
    pub serve_f32: bool,
    /// Online serve-path drift monitoring: when `serve_f32` is on and this
    /// is `k > 0`, every `k`-th episode also runs the f64 reference path and
    /// exports top-k-overlap / elementwise-error drift metrics through
    /// `xr_obs` (sampling is per-episode so both recurrent states stay
    /// coherent). `0` disables the shadow comparison. Defaults to the
    /// `AFTER_DRIFT_SAMPLE` environment variable.
    pub drift_sample: usize,
}

impl Default for PoshGnnConfig {
    fn default() -> Self {
        PoshGnnConfig {
            hidden: 8,
            loss: LossParams::default(),
            learning_rate: 1e-2,
            grad_clip: 5.0,
            threshold: 0.5,
            seed: 42,
            variant: PoshVariant::Full,
            symmetric_penalty: false,
            dense_kernels: false,
            fresh_mia: std::env::var("AFTER_FRESH_MIA").map(|v| v == "1").unwrap_or(false),
            fresh_tape: std::env::var("AFTER_FRESH_TAPE").map(|v| v == "1").unwrap_or(false),
            serve_f32: std::env::var("AFTER_SERVE_F32").map(|v| v == "1").unwrap_or(false),
            drift_sample: std::env::var("AFTER_DRIFT_SAMPLE")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0),
        }
    }
}

/// Scene-feature width produced by MIA (p̂, ŝ, distance, interface).
const FEATURE_DIM: usize = 4;
/// Width of `Δ_t`.
const DELTA_DIM: usize = 3;

/// The POSHGNN model.
pub struct PoshGnn {
    config: PoshGnnConfig,
    store: ParamStore,
    optimizer: Adam,
    mia: Mia,
    pdr1: GcnLayer,
    pdr2: GcnLayer,
    lwp1: GcnLayer,
    lwp2: GcnLayer,
    lwp3: GcnLayer,
    /// Inference state: (`h_{t-1}`, `r_{t-1}`), shared into each step's tape
    /// via `constant_rc` instead of cloned.
    episode_state: Option<(Rc<Matrix>, Rc<Matrix>)>,
    /// Per-episode MIA cache for inference, armed (empty) by
    /// `begin_episode` and grown lazily as steps are served — never ahead
    /// of the tick being recommended, so inference stays causal.
    episode_mia: Option<Vec<Option<Rc<MiaOutput>>>>,
    /// Arena tape reset (not reallocated) at every inference step.
    infer_tape: Tape,
    /// Down-converted f32 weights for the serving path; built lazily on the
    /// first f32 recommend step and invalidated whenever parameters change
    /// (training, import, mutable access).
    serve_net: Option<Rc<crate::serve::ServeNet>>,
    /// Per-episode f32 serving state (recurrent `(h, r)`, previous occlusion
    /// graph, episode-constant inputs); reset by `begin_episode`.
    serve_episode: Option<crate::serve::ServeEpisode>,
    /// Episodes started so far — the clock for drift-monitor sampling.
    episodes_seen: u64,
    /// Whether the current episode runs the f64 shadow path alongside f32
    /// for drift metrics. Decided once per episode at `begin_episode`, so
    /// both recurrent states advance together for the whole episode.
    drift_shadow: bool,
}

impl PoshGnn {
    /// Builds a fresh (untrained) POSHGNN.
    pub fn new(config: PoshGnnConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let h = config.hidden;
        let pdr1 = GcnLayer::new(&mut store, "pdr.0", FEATURE_DIM, h, Activation::Relu, &mut rng);
        let pdr2 = GcnLayer::new(&mut store, "pdr.1", h, 1, Activation::Sigmoid, &mut rng);
        let lwp_in = FEATURE_DIM + DELTA_DIM + h + 1;
        let lwp1 = GcnLayer::new(&mut store, "lwp.0", lwp_in, h, Activation::Relu, &mut rng);
        let lwp2 = GcnLayer::new(&mut store, "lwp.1", h, h, Activation::Relu, &mut rng);
        let lwp3 = GcnLayer::new(&mut store, "lwp.2", h, 1, Activation::Sigmoid, &mut rng);
        // Default-off inductive bias: with σ(-2) ≈ 0.12, an untrained model
        // recommends (and preserves) almost nothing; training must push
        // users above threshold on positive evidence. This is what makes the
        // thresholded output selective instead of saturated in dense rooms.
        pdr2.set_bias(&mut store, -2.0);
        lwp3.set_bias(&mut store, -2.0);
        let optimizer = Adam::with_lr(config.learning_rate);
        PoshGnn {
            config,
            store,
            optimizer,
            mia: Mia,
            pdr1,
            pdr2,
            lwp1,
            lwp2,
            lwp3,
            episode_state: None,
            episode_mia: None,
            infer_tape: Tape::new(),
            serve_net: None,
            serve_episode: None,
            episodes_seen: 0,
            drift_shadow: false,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PoshGnnConfig {
        &self.config
    }

    /// Number of scalar trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.store.scalar_count()
    }

    /// One forward step on `tape`. Returns `(r_t, h_t)`. `agg` is the
    /// mean-aggregation operator (`D⁻¹A_t`) — a sparse [`SparseVar`] on the
    /// default path, or a dense constant [`Var`] under
    /// [`PoshGnnConfig::dense_kernels`].
    #[allow(clippy::too_many_arguments)] // internal: one arg per module input
    fn step_on_tape<'t, A: TapeLinOp<'t> + Copy>(
        &self,
        tape: &'t Tape,
        ctx: &TargetContext,
        t: usize,
        mia_out: &MiaOutput,
        agg: A,
        h_prev: Var<'t>,
        r_prev: Var<'t>,
    ) -> (Var<'t>, Var<'t>) {
        let variant = self.config.variant;
        let features = if variant == PoshVariant::PdrOnly {
            tape.constant(self.mia.raw_features(ctx, t))
        } else {
            tape.constant_rc(mia_out.features.clone())
        };

        // PDR: h_t then r̃_t (Eq. 1 stack).
        let (h_t, r_tilde) = {
            let _pdr = xr_obs::span!("poshgnn.pdr.forward");
            let h_t = self.pdr1.forward_agg(tape, &self.store, features, &agg);
            let r_tilde = self.pdr2.forward_agg(tape, &self.store, h_t, &agg);
            (h_t, r_tilde)
        };

        let mask = tape.constant_rc(mia_out.mask.clone());
        let r_t = match variant {
            PoshVariant::PdrOnly => r_tilde,
            PoshVariant::PdrWithMia => mask * r_tilde,
            PoshVariant::Full => {
                let _lwp = xr_obs::span!("poshgnn.lwp.forward");
                let delta = tape.constant_rc(mia_out.delta.clone());
                let lwp_in = tape.concat_cols(&[features, delta, h_prev, r_prev]);
                let z1 = self.lwp1.forward_agg(tape, &self.store, lwp_in, &agg);
                let z2 = self.lwp2.forward_agg(tape, &self.store, z1, &agg);
                let sigma = self.lwp3.forward_agg(tape, &self.store, z2, &agg);
                // preservation gate, as a single fused node
                mask.gate_blend(sigma, r_tilde, r_prev)
            }
        };
        (r_t, h_t)
    }

    /// Dispatches one step to the sparse or dense aggregation kernel.
    fn step_dispatch<'t>(
        &self,
        tape: &'t Tape,
        ctx: &TargetContext,
        t: usize,
        mia_out: &MiaOutput,
        h_prev: Var<'t>,
        r_prev: Var<'t>,
    ) -> (Var<'t>, Var<'t>) {
        if self.config.dense_kernels {
            let agg = tape.constant_rc(mia_out.adjacency_norm.clone());
            self.step_on_tape(tape, ctx, t, mia_out, agg, h_prev, r_prev)
        } else {
            let agg = tape.sparse_with_transpose(
                mia_out.adjacency_norm_csr.clone(),
                mia_out.adjacency_norm_csr_t.clone(),
            );
            self.step_on_tape(tape, ctx, t, mia_out, agg, h_prev, r_prev)
        }
    }

    /// Builds the whole-episode Def. 7 loss on `tape`: the mean per-step
    /// [`poshgnn_loss`], with the recurrent gate linking consecutive steps so
    /// the social-presence term backpropagates across time. This is exactly
    /// the objective `train` descends; it is public so verification tooling
    /// (the `xr_check` finite-difference gradient checker) can differentiate
    /// the same BPTT graph without duplicating the wiring.
    pub fn episode_loss<'t>(&self, tape: &'t Tape, ctx: &TargetContext) -> Var<'t> {
        self.episode_loss_impl(tape, ctx, |t| Rc::new(self.mia.compute(ctx, t)))
    }

    /// [`PoshGnn::episode_loss`] reading MIA from a precomputed per-episode
    /// slab (see [`Mia::compute_episode`]) instead of recomputing it. The
    /// graph, arithmetic, and result are bit-identical — MIA has no
    /// parameters, so its output cannot change between epochs — which the
    /// cached-vs-fresh differential subject in `xr_check` pins.
    pub fn episode_loss_cached<'t>(
        &self,
        tape: &'t Tape,
        ctx: &TargetContext,
        slab: &[Rc<MiaOutput>],
    ) -> Var<'t> {
        assert_eq!(slab.len(), ctx.t_max() + 1, "MIA slab does not cover the episode");
        self.episode_loss_impl(tape, ctx, |t| slab[t].clone())
    }

    fn episode_loss_impl<'t>(
        &self,
        tape: &'t Tape,
        ctx: &TargetContext,
        mut mia_at: impl FnMut(usize) -> Rc<MiaOutput>,
    ) -> Var<'t> {
        let n = ctx.n;
        let mut h_prev = tape.constant_zeros(n, self.config.hidden);
        let mut r_prev = tape.constant_zeros(n, 1);
        let mut total: Option<Var<'_>> = None;
        for t in 0..=ctx.t_max() {
            let step_timer = xr_obs::start_timer();
            let mia_out = mia_at(t);
            let (r_t, h_t) = self.step_dispatch(tape, ctx, t, &mia_out, h_prev, r_prev);
            let l = if self.config.dense_kernels {
                let penalty = if self.config.symmetric_penalty {
                    tape.constant_rc(mia_out.adjacency.clone())
                } else {
                    tape.constant_rc(mia_out.blocking.clone())
                };
                poshgnn_loss(tape, r_t, r_prev, &mia_out.p_hat, &mia_out.s_hat, penalty, self.config.loss)
            } else {
                let penalty = if self.config.symmetric_penalty {
                    tape.sparse_with_transpose(mia_out.adjacency_csr.clone(), mia_out.adjacency_csr_t.clone())
                } else {
                    tape.sparse_with_transpose(mia_out.blocking_csr.clone(), mia_out.blocking_csr_t.clone())
                };
                poshgnn_loss(tape, r_t, r_prev, &mia_out.p_hat, &mia_out.s_hat, penalty, self.config.loss)
            };
            total = Some(match total {
                Some(acc) => acc + l,
                None => l,
            });
            h_prev = h_t;
            r_prev = r_t;
            xr_obs::observe_since("poshgnn.train.step.ms", &[], step_timer);
        }
        let t_steps = (ctx.t_max() + 1) as f64;
        total.expect("episode has at least one step").scale(1.0 / t_steps)
    }

    /// Trains on the given target contexts for `epochs` passes, returning
    /// the mean per-step loss after each epoch. One BPTT tape spans each
    /// episode, so gradients flow through the preservation gate across time.
    pub fn train(&mut self, contexts: &[TargetContext], epochs: usize) -> Vec<f64> {
        let _span = xr_obs::span!("poshgnn.train", epochs = epochs, episodes = contexts.len());
        // MIA depends only on the contexts, so the cached path pays its cost
        // once here instead of `epochs ×` times inside the loop.
        let slabs: Option<Vec<Vec<Rc<MiaOutput>>>> = (!self.config.fresh_mia)
            .then(|| contexts.iter().map(|ctx| self.mia.compute_episode(ctx)).collect());
        let arena = Tape::new();
        let mut history = Vec::with_capacity(epochs);
        for epoch in 0..epochs {
            let _epoch_span = xr_obs::span!("poshgnn.train.epoch", epoch = epoch);
            let mut epoch_loss = 0.0;
            let mut steps = 0usize;
            for (i, ctx) in contexts.iter().enumerate() {
                let episode_timer = xr_obs::start_timer();
                let fresh;
                let tape = if self.config.fresh_tape {
                    fresh = Tape::new();
                    &fresh
                } else {
                    arena.reset();
                    &arena
                };
                let loss = match &slabs {
                    Some(s) => self.episode_loss_cached(tape, ctx, &s[i]),
                    None => self.episode_loss(tape, ctx),
                };
                epoch_loss += loss.scalar();
                steps += 1;
                loss.backward(&mut self.store);
                let grad_norm = self.store.clip_grad_norm(self.config.grad_clip);
                xr_obs::observe("poshgnn.train.grad_norm", &[], grad_norm);
                self.optimizer.step(&mut self.store);
                xr_obs::observe_since("poshgnn.train.episode.ms", &[], episode_timer);
            }
            let mean_loss = epoch_loss / steps.max(1) as f64;
            xr_obs::gauge_set("poshgnn.train.loss", &[], mean_loss);
            history.push(mean_loss);
        }
        self.invalidate_serve_net("train"); // weights changed
        history
    }

    /// The soft recommendation `r_t` for one step during inference,
    /// advancing the episode state. Routes to the f32 serving path when
    /// [`PoshGnnConfig::serve_f32`] is on; the f64 tape path otherwise.
    pub fn soft_recommend(&mut self, ctx: &TargetContext, t: usize) -> Vec<f64> {
        let _span = xr_obs::span!("poshgnn.recommend.step", t = t, n = ctx.n);
        if self.config.serve_f32 {
            let out = self.soft_recommend_f32(ctx, t);
            if self.drift_shadow {
                let reference = self.soft_recommend_f64(ctx, t);
                self.record_serve_drift(ctx, t, &out, &reference);
            }
            return out;
        }
        self.soft_recommend_f64(ctx, t)
    }

    /// The f64 tape inference step — the reference path, also run as the
    /// drift monitor's shadow when sampled.
    fn soft_recommend_f64(&mut self, ctx: &TargetContext, t: usize) -> Vec<f64> {
        let tape = std::mem::take(&mut self.infer_tape);
        tape.reset();
        let (h_prev, r_prev) = match self.episode_state.take() {
            Some((h, r)) => (tape.constant_rc(h), tape.constant_rc(r)),
            None => (tape.constant_zeros(ctx.n, self.config.hidden), tape.constant_zeros(ctx.n, 1)),
        };
        // Serve `t` from the episode cache, computing the entry on first
        // use (the cache is armed empty by `begin_episode` — growing it
        // lazily keeps inference causal). Fresh-MIA mode and direct calls
        // outside an episode compute without caching.
        let mia_out: Rc<MiaOutput> = match &mut self.episode_mia {
            Some(cache) => {
                if cache.len() <= t {
                    cache.resize(t + 1, None);
                }
                if cache[t].is_none() {
                    cache[t] = Some(Rc::new(self.mia.compute(ctx, t)));
                }
                Rc::clone(cache[t].as_ref().unwrap())
            }
            None => Rc::new(self.mia.compute(ctx, t)),
        };
        let (r_t, h_t) = self.step_dispatch(&tape, ctx, t, &mia_out, h_prev, r_prev);
        let r = Rc::new(r_t.value());
        let out = r.as_slice().to_vec();
        self.episode_state = Some((Rc::new(h_t.value()), r));
        self.infer_tape = tape;
        out
    }

    /// The f32 serving step: lazily down-converts the weights, lazily
    /// (re-)creates the per-episode f32 state, and runs the tape-free
    /// [`crate::serve`] forward pass.
    fn soft_recommend_f32(&mut self, ctx: &TargetContext, t: usize) -> Vec<f64> {
        let net = match &self.serve_net {
            Some(net) => Rc::clone(net),
            None => {
                let build_timer = xr_obs::start_timer();
                let net = Rc::new(crate::serve::ServeNet::from_layers(
                    &self.store,
                    &self.pdr1,
                    &self.pdr2,
                    &self.lwp1,
                    &self.lwp2,
                    &self.lwp3,
                    self.config.variant,
                ));
                xr_obs::observe_since("poshgnn.serve.net_build.ms", &[], build_timer);
                xr_obs::counter_add("poshgnn.serve.net_build", &[], 1);
                self.serve_net = Some(Rc::clone(&net));
                net
            }
        };
        // direct calls outside an episode (or a context switch) start fresh
        if self.serve_episode.as_ref().is_none_or(|e| e.n() != ctx.n) {
            self.serve_episode = Some(crate::serve::ServeEpisode::new(ctx, self.config.hidden));
        }
        self.serve_episode.as_mut().expect("just ensured").step(&net, ctx, t)
    }

    /// Exports drift metrics for one sampled step: top-5 ranking overlap and
    /// max elementwise error between the f32 decision scores and the f64
    /// reference, with a warning when agreement falls below the same 0.6
    /// floor the `xr_check` differential subject enforces offline.
    fn record_serve_drift(&self, ctx: &TargetContext, t: usize, served: &[f64], reference: &[f64]) {
        const DRIFT_TOP_K: usize = 5;
        const OVERLAP_FLOOR: f64 = 0.6;
        let overlap = crate::metrics::top_k_overlap(served, reference, DRIFT_TOP_K);
        let max_abs_err = served.iter().zip(reference).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        xr_obs::counter_add("poshgnn.serve.drift.samples", &[], 1);
        xr_obs::observe("poshgnn.serve.drift.topk_overlap", &[], overlap);
        xr_obs::observe("poshgnn.serve.drift.max_abs_err", &[], max_abs_err);
        if overlap < OVERLAP_FLOOR {
            xr_obs::warn_event!(
                "poshgnn.serve.drift.low_overlap",
                t = t,
                n = ctx.n,
                overlap = format!("{overlap:.3}"),
                max_abs_err = format!("{max_abs_err:.2e}")
            );
        }
    }

    /// Drops the stale f32 weight down-conversion (if one was built),
    /// counting the invalidation by cause so serving telemetry shows how
    /// often rebuilds happen and why.
    fn invalidate_serve_net(&mut self, cause: &'static str) {
        if self.serve_net.take().is_some() {
            xr_obs::counter_add("poshgnn.serve.net_invalidated", &[("cause", cause)], 1);
        }
    }

    /// Read-only view of the parameter store: block names, values, and the
    /// gradients of the most recent backward pass.
    pub fn params(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable access to the parameter store. Intended for verification
    /// tooling (finite-difference perturbation in `xr_check`); training code
    /// should go through [`PoshGnn::train`].
    pub fn params_mut(&mut self) -> &mut ParamStore {
        self.invalidate_serve_net("params_mut"); // caller may mutate weights
        &mut self.store
    }

    /// Parameter snapshot for checkpointing.
    pub fn export_params(&self) -> Vec<f64> {
        self.store.export_flat()
    }

    /// Restores a snapshot from [`PoshGnn::export_params`].
    pub fn import_params(&mut self, flat: &[f64]) -> bool {
        self.invalidate_serve_net("import"); // weights changed
        self.store.import_flat(flat)
    }
}

impl AfterRecommender for PoshGnn {
    fn name(&self) -> String {
        match self.config.variant {
            PoshVariant::Full => "POSHGNN".to_string(),
            v => format!("POSHGNN ({})", v.name()),
        }
    }

    fn begin_episode(&mut self, _view: &StepView<'_>) {
        self.episode_state = None;
        self.serve_episode = None;
        // arm the cache empty: entries appear as ticks are served, so the
        // model never computes MIA ahead of the step it is recommending
        self.episode_mia = (!self.config.fresh_mia).then(Vec::new);
        // decide drift sampling per episode: a mid-episode toggle would
        // desynchronize the f64 shadow's recurrent state
        self.drift_shadow = self.config.serve_f32
            && self.config.drift_sample > 0
            && self.episodes_seen.is_multiple_of(self.config.drift_sample as u64)
            && xr_obs::is_active();
        self.episodes_seen += 1;
    }

    fn recommend_step(&mut self, view: &StepView<'_>) -> Vec<bool> {
        let soft = self.soft_recommend(view.ctx(), view.t());
        threshold_decision(&soft, view.target(), self.config.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate_sequence;
    use xr_datasets::{Dataset, DatasetKind, ScenarioConfig};

    fn small_ctx(seed: u64) -> TargetContext {
        let dataset = Dataset::generate(DatasetKind::Hubs, 1);
        let cfg = ScenarioConfig {
            n_participants: 12,
            vr_fraction: 0.5,
            time_steps: 8,
            room_side: 6.0,
            body_radius: 0.15,
            seed,
        };
        let scenario = dataset.sample_scenario(&cfg);
        TargetContext::new(&scenario, 0, 0.5)
    }

    #[test]
    fn model_builds_with_expected_parameter_count() {
        let model = PoshGnn::new(PoshGnnConfig::default());
        // Each GcnLayer holds w_self (in×out), w_neigh (in×out), bias (out).
        // PDR: (4·8 + 4·8 + 8) + (8·1 + 8·1 + 1)
        // LWP: (16·8 + 16·8 + 8) + (8·8 + 8·8 + 8) + (8·1 + 8·1 + 1)
        let pdr = (4 * 8 + 4 * 8 + 8) + (8 + 8 + 1);
        let lwp = (16 * 8 + 16 * 8 + 8) + (8 * 8 + 8 * 8 + 8) + (8 + 8 + 1);
        assert_eq!(model.parameter_count(), pdr + lwp);
    }

    #[test]
    fn untrained_model_emits_valid_probabilities() {
        let ctx = small_ctx(3);
        let mut model = PoshGnn::new(PoshGnnConfig::default());
        model.begin_episode(&StepView::new(&ctx, 0));
        let soft = model.soft_recommend(&ctx, 0);
        assert_eq!(soft.len(), ctx.n);
        assert!(soft.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn training_reduces_loss() {
        let ctx = small_ctx(4);
        let mut model = PoshGnn::new(PoshGnnConfig::default());
        let history = model.train(std::slice::from_ref(&ctx), 25);
        let first = history[0];
        let last = *history.last().unwrap();
        assert!(last < first, "loss did not improve: {first} → {last}");
        assert!(last.is_finite());
    }

    #[test]
    fn trained_model_beats_untrained_on_utility() {
        let train_ctx = small_ctx(5);
        let eval_ctx = small_ctx(6);

        let mut untrained = PoshGnn::new(PoshGnnConfig::default());
        let recs_untrained = untrained.run_episode(&eval_ctx);
        let before = evaluate_sequence(&eval_ctx, &recs_untrained);

        let mut model = PoshGnn::new(PoshGnnConfig::default());
        model.train(std::slice::from_ref(&train_ctx), 40);
        let recs = model.run_episode(&eval_ctx);
        let after = evaluate_sequence(&eval_ctx, &recs);

        assert!(
            after.after_utility >= before.after_utility,
            "training hurt utility: {} → {}",
            before.after_utility,
            after.after_utility
        );
    }

    #[test]
    fn episode_state_resets() {
        let ctx = small_ctx(7);
        let mut model = PoshGnn::new(PoshGnnConfig::default());
        let a = model.run_episode(&ctx);
        let b = model.run_episode(&ctx);
        assert_eq!(a, b, "episodes must be independent and deterministic");
    }

    #[test]
    fn variants_have_distinct_names_and_run() {
        for variant in [PoshVariant::Full, PoshVariant::PdrWithMia, PoshVariant::PdrOnly] {
            let ctx = small_ctx(8);
            let mut model = PoshGnn::new(PoshGnnConfig { variant, ..Default::default() });
            let recs = model.run_episode(&ctx);
            assert_eq!(recs.len(), ctx.t_max() + 1);
            assert!(model.name().contains("POSHGNN"));
        }
    }

    #[test]
    fn pdr_only_ignores_candidate_mask() {
        // With the Full variant, masked-out users can never be recommended.
        let ctx = small_ctx(9);
        let mut full = PoshGnn::new(PoshGnnConfig::default());
        full.begin_episode(&StepView::new(&ctx, 0));
        let soft = full.soft_recommend(&ctx, 0);
        #[allow(clippy::needless_range_loop)] // w is a user id, not a position
        for w in 0..ctx.n {
            if !ctx.candidate_mask[0][w] {
                assert_eq!(soft[w], 0.0, "masked candidate leaked through");
            }
        }
    }

    #[test]
    fn sparse_and_dense_kernels_produce_identical_recommendations() {
        // The CSR path is an implementation detail: training + inference
        // under dense_kernels must give the same decisions.
        let train_ctx = small_ctx(11);
        let eval_ctx = small_ctx(12);

        let mut sparse = PoshGnn::new(PoshGnnConfig::default());
        sparse.train(std::slice::from_ref(&train_ctx), 10);
        let recs_sparse = sparse.run_episode(&eval_ctx);

        let mut dense = PoshGnn::new(PoshGnnConfig { dense_kernels: true, ..Default::default() });
        dense.train(std::slice::from_ref(&train_ctx), 10);
        let recs_dense = dense.run_episode(&eval_ctx);

        assert_eq!(recs_sparse, recs_dense);
    }

    #[test]
    fn f32_serving_tracks_f64_within_tolerance() {
        let train_ctx = small_ctx(13);
        let eval_ctx = small_ctx(14);
        let mut m64 = PoshGnn::new(PoshGnnConfig::default());
        m64.train(std::slice::from_ref(&train_ctx), 10);
        let snapshot = m64.export_params();
        let mut m32 = PoshGnn::new(PoshGnnConfig { serve_f32: true, ..Default::default() });
        assert!(m32.import_params(&snapshot));
        m64.begin_episode(&StepView::new(&eval_ctx, 0));
        m32.begin_episode(&StepView::new(&eval_ctx, 0));
        for t in 0..=eval_ctx.t_max() {
            let s64 = m64.soft_recommend(&eval_ctx, t);
            let s32 = m32.soft_recommend(&eval_ctx, t);
            assert_eq!(s64.len(), s32.len());
            for (w, (a, b)) in s64.iter().zip(&s32).enumerate() {
                assert!((a - b).abs() < 1e-3, "t={t} user {w}: f64 {a} vs f32 {b}");
            }
        }
    }

    #[test]
    fn f32_serving_masked_candidates_stay_zero() {
        let ctx = small_ctx(9);
        let mut model = PoshGnn::new(PoshGnnConfig { serve_f32: true, ..Default::default() });
        model.begin_episode(&StepView::new(&ctx, 0));
        let soft = model.soft_recommend(&ctx, 0);
        #[allow(clippy::needless_range_loop)] // w is a user id, not a position
        for w in 0..ctx.n {
            if !ctx.candidate_mask[0][w] {
                assert_eq!(soft[w], 0.0, "masked candidate leaked through the f32 path");
            }
        }
    }

    #[test]
    fn f32_serving_invalidates_on_weight_changes() {
        let ctx = small_ctx(15);
        let mut model = PoshGnn::new(PoshGnnConfig { serve_f32: true, ..Default::default() });
        model.begin_episode(&StepView::new(&ctx, 0));
        let before = model.soft_recommend(&ctx, 0);
        model.train(std::slice::from_ref(&ctx), 15);
        model.begin_episode(&StepView::new(&ctx, 0));
        let after = model.soft_recommend(&ctx, 0);
        assert_ne!(before, after, "serve net must be rebuilt from retrained weights");
    }

    #[test]
    fn drift_monitor_exports_high_overlap_on_seeded_serve_run() {
        let train_ctx = small_ctx(13);
        let eval_ctx = small_ctx(14);
        let mut m64 = PoshGnn::new(PoshGnnConfig::default());
        m64.train(std::slice::from_ref(&train_ctx), 10);
        let snapshot = m64.export_params();
        let mut model =
            PoshGnn::new(PoshGnnConfig { serve_f32: true, drift_sample: 1, ..Default::default() });
        assert!(model.import_params(&snapshot));
        let ctx_obs = xr_obs::ObsCtx::new(true, false);
        let _g = ctx_obs.install();
        model.begin_episode(&StepView::new(&eval_ctx, 0));
        for t in 0..=eval_ctx.t_max() {
            model.soft_recommend(&eval_ctx, t);
        }
        let snap = ctx_obs.registry.snapshot();
        let steps = (eval_ctx.t_max() + 1) as u64;
        assert_eq!(snap.counter("poshgnn.serve.drift.samples"), Some(steps));
        let overlap = snap.histogram("poshgnn.serve.drift.topk_overlap").expect("overlap exported");
        assert_eq!(overlap.count, steps);
        // the acceptance bar: f32 decisions agree with f64 on ≥60% of the
        // top-5 at every sampled step (same floor as the xr_check subject)
        assert!(overlap.min >= 0.6, "top-5 overlap floor violated: {}", overlap.min);
        let err = snap.histogram("poshgnn.serve.drift.max_abs_err").expect("error exported");
        assert!(err.max < 1e-3, "elementwise drift too large: {}", err.max);
        // import_params happened before the obs ctx was installed, so the
        // invalidation counter only counts in-window causes
        assert_eq!(snap.counter("poshgnn.serve.net_invalidated{cause=import}"), None);
    }

    #[test]
    fn serve_net_invalidations_are_counted_by_cause() {
        let ctx = small_ctx(15);
        let ctx_obs = xr_obs::ObsCtx::new(true, false);
        let _g = ctx_obs.install();
        let mut model = PoshGnn::new(PoshGnnConfig { serve_f32: true, ..Default::default() });
        // nothing built yet: invalidation of an absent net must not count
        model.params_mut();
        model.begin_episode(&StepView::new(&ctx, 0));
        model.soft_recommend(&ctx, 0); // builds the net
        model.train(std::slice::from_ref(&ctx), 1); // invalidates: train
        model.soft_recommend(&ctx, 1); // rebuilds
        model.params_mut(); // invalidates: params_mut
        let snapshot = model.export_params();
        model.soft_recommend(&ctx, 2); // rebuilds
        assert!(model.import_params(&snapshot)); // invalidates: import
        let snap = ctx_obs.registry.snapshot();
        assert_eq!(snap.counter("poshgnn.serve.net_invalidated{cause=train}"), Some(1));
        assert_eq!(snap.counter("poshgnn.serve.net_invalidated{cause=params_mut}"), Some(1));
        assert_eq!(snap.counter("poshgnn.serve.net_invalidated{cause=import}"), Some(1));
        assert_eq!(snap.counter("poshgnn.serve.net_build"), Some(3));
        assert!(snap.histogram("poshgnn.serve.net_build.ms").map(|h| h.count) == Some(3));
    }

    #[test]
    fn export_import_round_trip_preserves_behavior() {
        let ctx = small_ctx(10);
        let mut a = PoshGnn::new(PoshGnnConfig::default());
        a.train(std::slice::from_ref(&ctx), 5);
        let snapshot = a.export_params();
        let recs_a = a.run_episode(&ctx);

        let mut b = PoshGnn::new(PoshGnnConfig::default());
        assert!(b.import_params(&snapshot));
        let recs_b = b.run_episode(&ctx);
        assert_eq!(recs_a, recs_b);
    }
}
