//! The POSHGNN loss (paper Def. 7).
//!
//! For recommendation logits `r_t ∈ [0,1]^N`:
//!
//! ```text
//! L_t = −(1−β)·r_t·p̂_t − β·(r_t ⊗ r_{t−1})·ŝ_t + α·r_tᵀ A_t r_t + γ
//! γ   = Σ_w [(1−β)·p̂_t + β·ŝ_t]          (keeps the loss non-negative)
//! ```
//!
//! The first two terms reward recommending users with high (normalized)
//! preference and *consecutively recommended* friends; the third penalizes
//! recommending occlusion-adjacent pairs; `γ` is a constant offset that does
//! not affect gradients. The same loss trains the DCRNN and TGCN baselines
//! (§V-A.2, "for a fair comparison").

use std::rc::Rc;

use xr_tensor::{Matrix, Tape, TapeLinOp, Var};

/// Hyperparameters of the POSHGNN loss.
#[derive(Debug, Clone, Copy)]
pub struct LossParams {
    /// Occlusion penalty weight `α`. With the depth-weighted blocking
    /// matrix supplied by MIA, `rᵀBr` already measures the preference
    /// expected to be *lost* to occlusion, so `α ≈ 1` makes the penalty an
    /// unbiased price; 0.4 (the tuned default) discounts the union-bound
    /// overcount when several recommended users overlap the same victim
    /// (the paper's 0.01 belongs to its unweighted edge count; it notes α
    /// "can be set based on individuals' preferences").
    pub alpha: f64,
    /// Social-presence weight `β ∈ [0,1]` (paper default 0.5).
    pub beta: f64,
}

impl Default for LossParams {
    fn default() -> Self {
        LossParams { alpha: 0.4, beta: 0.5 }
    }
}

/// Builds the per-step POSHGNN loss on the tape.
///
/// * `r_t`, `r_prev` — `N × 1` recommendation columns (tape nodes, so the
///   social-presence term backpropagates through *both* time steps).
/// * `p_hat`, `s_hat` — the MIA-normalized utility columns, shared onto the
///   tape as zero-copy `Rc` constants (MIA caches them per episode).
/// * `adj` — the `N × N` occlusion penalty operator at `t`: either a dense
///   constant [`Var`] or a sparse [`xr_tensor::SparseVar`] (both implement
///   [`TapeLinOp`]). The quadratic form is evaluated as `r_tᵀ·(A·r_t)`, so
///   the sparse path costs O(nnz) instead of O(N²).
///
/// The three reductions are recorded as fused single nodes
/// ([`Var::dot_scale`], [`Var::dot3_scale`], [`Var::mat_dot_scale`]) whose
/// arithmetic is bit-identical to the unfused `Hadamard`/`Sum`/`Scale`
/// chains they replace — the `xr_check` golden replay pins this.
pub fn poshgnn_loss<'t>(
    tape: &'t Tape,
    r_t: Var<'t>,
    r_prev: Var<'t>,
    p_hat: &Rc<Matrix>,
    s_hat: &Rc<Matrix>,
    adj: impl TapeLinOp<'t>,
    params: LossParams,
) -> Var<'t> {
    let LossParams { alpha, beta } = params;
    let p = tape.constant_rc(p_hat.clone());
    let s = tape.constant_rc(s_hat.clone());
    let gain_p = r_t.dot_scale(p, -(1.0 - beta));
    let gain_s = r_t.dot3_scale(r_prev, s, -beta);
    let occlusion = r_t.t().mat_dot_scale(adj.left_matmul(r_t), alpha);
    let gamma = (1.0 - beta) * p_hat.sum() + beta * s_hat.sum();
    (gain_p + gain_s + occlusion).add_scalar(gamma)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(vals: &[f64]) -> Matrix {
        Matrix::col_vec(vals)
    }

    #[test]
    fn perfect_recommendation_minimizes_loss() {
        // Two independent users with p = s = 1: recommending both in two
        // consecutive steps should give loss exactly γ − gains = 0.
        let tape = Tape::new();
        let r = tape.constant(col(&[1.0, 1.0]));
        let p = Rc::new(col(&[1.0, 1.0]));
        let s = Rc::new(col(&[1.0, 1.0]));
        let adj = tape.constant(Matrix::zeros(2, 2));
        let loss = poshgnn_loss(&tape, r, r, &p, &s, adj, LossParams { alpha: 0.01, beta: 0.5 });
        assert!(loss.scalar().abs() < 1e-12);
    }

    #[test]
    fn empty_recommendation_pays_full_gamma() {
        let tape = Tape::new();
        let r = tape.constant(col(&[0.0, 0.0]));
        let p = Rc::new(col(&[0.6, 0.4]));
        let s = Rc::new(col(&[0.2, 0.0]));
        let adj = tape.constant(Matrix::zeros(2, 2));
        let params = LossParams { alpha: 0.01, beta: 0.5 };
        let loss = poshgnn_loss(&tape, r, r, &p, &s, adj, params);
        let gamma = 0.5 * 1.0 + 0.5 * 0.2;
        assert!((loss.scalar() - gamma).abs() < 1e-12);
    }

    #[test]
    fn occlusion_edge_increases_loss() {
        let p = Rc::new(col(&[0.5, 0.5]));
        let s = Rc::new(col(&[0.0, 0.0]));
        let params = LossParams { alpha: 0.1, beta: 0.5 };

        let run = |edge: bool| {
            let tape = Tape::new();
            let r = tape.constant(col(&[1.0, 1.0]));
            let adj_m = if edge {
                Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap()
            } else {
                Matrix::zeros(2, 2)
            };
            let adj = tape.constant(adj_m);
            poshgnn_loss(&tape, r, r, &p, &s, adj, params).scalar()
        };
        let with_edge = run(true);
        let without = run(false);
        // penalty = α · rᵀAr = 0.1 × 2 = 0.2
        assert!((with_edge - without - 0.2).abs() < 1e-12);
    }

    #[test]
    fn social_gain_requires_previous_recommendation() {
        let p = Rc::new(col(&[0.0]));
        let s = Rc::new(col(&[1.0]));
        let params = LossParams { alpha: 0.0, beta: 1.0 };
        let run = |prev: f64| {
            let tape = Tape::new();
            let r = tape.constant(col(&[1.0]));
            let rp = tape.constant(col(&[prev]));
            let adj = tape.constant(Matrix::zeros(1, 1));
            poshgnn_loss(&tape, r, rp, &p, &s, adj, params).scalar()
        };
        assert!(run(1.0) < run(0.0), "continuity must be rewarded");
        assert!((run(0.0) - 1.0).abs() < 1e-12, "no continuity → full γ");
    }

    #[test]
    fn sparse_and_dense_penalty_operators_agree() {
        use xr_tensor::CsrAdj;

        let p = Rc::new(col(&[0.3, 0.7, 0.1]));
        let s = Rc::new(col(&[0.2, 0.4, 0.9]));
        let adj_m = Matrix::from_vec(3, 3, vec![0.0, 0.5, 0.0, 0.0, 0.0, 0.9, 0.0, 0.0, 0.0]).unwrap();
        let params = LossParams { alpha: 0.4, beta: 0.5 };
        let rv = col(&[0.9, 0.8, 0.2]);

        let tape = Tape::new();
        let r = tape.constant(rv.clone());
        let dense = poshgnn_loss(&tape, r, r, &p, &s, tape.constant(adj_m.clone()), params);

        let tape2 = Tape::new();
        let r2 = tape2.constant(rv);
        let a = tape2.sparse(Rc::new(CsrAdj::from_dense(&adj_m, 0.0)));
        let sparse = poshgnn_loss(&tape2, r2, r2, &p, &s, a, params);

        assert!((dense.scalar() - sparse.scalar()).abs() < 1e-14);
    }

    #[test]
    fn loss_is_nonnegative_for_probability_inputs() {
        // For r ∈ [0,1] and α ≥ 0 the gains are bounded by γ, so L ≥ 0.
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let n = 5;
            let rv: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
            let pv: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
            let sv: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
            let tape = Tape::new();
            let r = tape.constant(col(&rv));
            let rp = tape.constant(col(&rv));
            let adj = tape.constant(Matrix::zeros(n, n));
            let loss = poshgnn_loss(
                &tape,
                r,
                rp,
                &Rc::new(col(&pv)),
                &Rc::new(col(&sv)),
                adj,
                LossParams::default(),
            );
            assert!(loss.scalar() >= -1e-9, "negative loss {}", loss.scalar());
        }
    }
}
