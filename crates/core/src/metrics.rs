//! The AFTER utility (Defs. 2–3) and the evaluation metrics of §V-A.4.

use crate::problem::TargetContext;

/// Accumulated evaluation metrics for one target user over a full episode.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UtilityBreakdown {
    /// Total AFTER utility `Σ_t Σ_{w ∈ F_t(v)} u_t(v, w)` (Def. 3).
    pub after_utility: f64,
    /// Preference component `Σ_t Σ_w 1[v ⇒_t w] · p(v,w)` (unweighted by β,
    /// as reported in the paper's "Preference" rows).
    pub preference: f64,
    /// Social-presence component
    /// `Σ_t Σ_w 1[v ⇒_{t-1} w]·1[v ⇒_t w] · s(v,w)`.
    pub social_presence: f64,
    /// Mean fraction of *recommended* users that end up occluded
    /// (averaged over steps that recommended at least one user).
    pub view_occlusion_rate: f64,
    /// Mean number of users recommended per step.
    pub mean_recommended: f64,
}

/// Evaluates a full recommendation sequence (`recs[t][w]`, `t ∈ 0..=T`)
/// against the AFTER utility.
///
/// `1[v ⇒_t w]` holds when `w` is recommended at `t` and not occluded by any
/// nearer displayed entity (recommended users plus physically present
/// co-located MR participants when the target is MR). `1[v ⇒_{-1} w] = 0`:
/// the conference has not started before `t = 0`.
pub fn evaluate_sequence(ctx: &TargetContext, recs: &[Vec<bool>]) -> UtilityBreakdown {
    assert_eq!(recs.len(), ctx.t_max() + 1, "need one recommendation per time step");
    let n = ctx.n;
    let mut out = UtilityBreakdown::default();
    let mut prev_visible = vec![false; n];
    let mut occl_sum = 0.0;
    let mut occl_steps = 0usize;
    let mut total_rec = 0usize;

    for (t, rec) in recs.iter().enumerate() {
        assert_eq!(rec.len(), n, "recommendation length mismatch at t={t}");
        let vis = ctx.visibility(t, rec);
        let mut rec_count = 0usize;
        let mut occluded = 0usize;
        for w in 0..n {
            if w == ctx.target || !rec[w] {
                continue;
            }
            rec_count += 1;
            let see_now = vis[w];
            if see_now {
                out.preference += ctx.preference[w];
                if prev_visible[w] {
                    out.social_presence += ctx.social[w];
                }
            } else {
                occluded += 1;
            }
            let u = (1.0 - ctx.beta) * (see_now as u8 as f64) * ctx.preference[w]
                + ctx.beta * (prev_visible[w] as u8 as f64) * (see_now as u8 as f64) * ctx.social[w];
            out.after_utility += u;
        }
        if rec_count > 0 {
            occl_sum += occluded as f64 / rec_count as f64;
            occl_steps += 1;
        }
        total_rec += rec_count;
        prev_visible = vis;
    }

    out.view_occlusion_rate = if occl_steps > 0 { occl_sum / occl_steps as f64 } else { 0.0 };
    out.mean_recommended = total_rec as f64 / recs.len() as f64;
    out
}

impl UtilityBreakdown {
    /// Component identity: `after = (1-β)·preference + β·social_presence`.
    pub fn consistent_with_beta(&self, beta: f64, tol: f64) -> bool {
        ((1.0 - beta) * self.preference + beta * self.social_presence - self.after_utility).abs() <= tol
    }

    /// Averages a slice of breakdowns (e.g. across target users).
    pub fn mean(items: &[UtilityBreakdown]) -> UtilityBreakdown {
        if items.is_empty() {
            return UtilityBreakdown::default();
        }
        let k = items.len() as f64;
        UtilityBreakdown {
            after_utility: items.iter().map(|b| b.after_utility).sum::<f64>() / k,
            preference: items.iter().map(|b| b.preference).sum::<f64>() / k,
            social_presence: items.iter().map(|b| b.social_presence).sum::<f64>() / k,
            view_occlusion_rate: items.iter().map(|b| b.view_occlusion_rate).sum::<f64>() / k,
            mean_recommended: items.iter().map(|b| b.mean_recommended).sum::<f64>() / k,
        }
    }
}

/// Fraction of shared indices between the top-`k` rankings of two score
/// vectors, in `[0, 1]`.
///
/// Ranking is descending by score with ascending-index tiebreak — the same
/// order as [`crate::top_k_indices`], and NaN-safe via `total_cmp`. `k` is
/// clamped to the vector length; `k = 0` (or empty inputs) returns 1.0
/// (two empty rankings agree vacuously).
///
/// This is the behavioral-agreement metric shared by the `xr_check`
/// f32-vs-f64 differential subject (which re-exports it) and the online
/// serve-path drift monitor in [`crate::PoshGnn`].
///
/// # Panics
///
/// Panics when the two vectors have different lengths.
pub fn top_k_overlap(a: &[f64], b: &[f64], k: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "score vectors must have equal length");
    let k = k.min(a.len());
    if k == 0 {
        return 1.0;
    }
    let top = |scores: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&x, &y| scores[y].total_cmp(&scores[x]).then(x.cmp(&y)));
        idx.truncate(k);
        idx
    };
    let ta = top(a);
    let tb: std::collections::BTreeSet<usize> = top(b).into_iter().collect();
    let shared = ta.iter().filter(|i| tb.contains(i)).count();
    shared as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use xr_crowd::Room;
    use xr_datasets::{Interface, Scenario};
    use xr_graph::geom::Point2;

    /// Target 0 (VR) with users 1 (near east), 2 (behind 1), 3 (north).
    fn scenario() -> Scenario {
        let positions =
            vec![Point2::new(5.0, 5.0), Point2::new(6.0, 5.0), Point2::new(7.0, 5.02), Point2::new(5.0, 8.0)];
        Scenario {
            dataset: "unit".into(),
            participants: vec![0, 1, 2, 3],
            interfaces: vec![Interface::Vr; 4],
            preference: vec![vec![0.0, 0.4, 0.9, 0.6], vec![0.0; 4], vec![0.0; 4], vec![0.0; 4]],
            social: vec![vec![0.0, 0.0, 0.8, 0.5], vec![0.0; 4], vec![0.0; 4], vec![0.0; 4]],
            trajectories: vec![positions.clone(), positions.clone(), positions],
            room: Room::new(10.0, 10.0),
            body_radius: 0.25,
        }
    }

    fn ctx(beta: f64) -> TargetContext {
        TargetContext::new(&scenario(), 0, beta)
    }

    #[test]
    fn empty_recommendation_scores_zero() {
        let c = ctx(0.5);
        let recs = vec![vec![false; 4]; 3];
        let b = evaluate_sequence(&c, &recs);
        assert_eq!(b.after_utility, 0.0);
        assert_eq!(b.view_occlusion_rate, 0.0);
        assert_eq!(b.mean_recommended, 0.0);
    }

    #[test]
    fn visible_preference_accumulates_each_step() {
        let c = ctx(0.0); // β = 0: pure preference
        let rec = vec![false, false, false, true]; // user 3, always clear
        let recs = vec![rec.clone(), rec.clone(), rec];
        let b = evaluate_sequence(&c, &recs);
        assert!((b.preference - 3.0 * 0.6).abs() < 1e-12);
        assert!((b.after_utility - 1.8).abs() < 1e-12);
        assert_eq!(b.view_occlusion_rate, 0.0);
        assert!(b.consistent_with_beta(0.0, 1e-9));
    }

    #[test]
    fn social_presence_needs_consecutive_visibility() {
        let c = ctx(1.0); // β = 1: pure social presence
        let rec = vec![false, false, false, true]; // friend 3, s = 0.5
                                                   // visible at t=0,1,2 → SP counted at t=1 and t=2 only (t=0 has no past)
        let recs = vec![rec.clone(), rec.clone(), rec.clone()];
        let b = evaluate_sequence(&c, &recs);
        assert!((b.social_presence - 2.0 * 0.5).abs() < 1e-12);
        // interrupting visibility resets the streak
        let recs = vec![rec.clone(), vec![false; 4], rec];
        let b = evaluate_sequence(&c, &recs);
        assert_eq!(b.social_presence, 0.0);
    }

    #[test]
    fn occluded_recommendation_yields_nothing_but_counts_as_occlusion() {
        let c = ctx(0.0);
        // recommend both 1 (front) and 2 (behind 1): 2 is occluded
        let rec = vec![false, true, true, false];
        let recs = vec![rec.clone(), rec.clone(), rec];
        let b = evaluate_sequence(&c, &recs);
        assert!((b.preference - 3.0 * 0.4).abs() < 1e-12, "only front user scores");
        assert!((b.view_occlusion_rate - 0.5).abs() < 1e-12);
        assert_eq!(b.mean_recommended, 2.0);
    }

    #[test]
    fn beta_blends_components() {
        let c = ctx(0.5);
        let rec = vec![false, false, false, true];
        let recs = vec![rec.clone(), rec.clone(), rec];
        let b = evaluate_sequence(&c, &recs);
        assert!(b.consistent_with_beta(0.5, 1e-9));
        assert!((b.after_utility - (0.5 * 1.8 + 0.5 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn mean_aggregates() {
        let a = UtilityBreakdown { after_utility: 2.0, preference: 4.0, ..Default::default() };
        let b = UtilityBreakdown { after_utility: 4.0, preference: 0.0, ..Default::default() };
        let m = UtilityBreakdown::mean(&[a, b]);
        assert_eq!(m.after_utility, 3.0);
        assert_eq!(m.preference, 2.0);
        assert_eq!(UtilityBreakdown::mean(&[]), UtilityBreakdown::default());
    }

    #[test]
    #[should_panic(expected = "one recommendation per time step")]
    fn wrong_length_panics() {
        evaluate_sequence(&ctx(0.5), &[vec![false; 4]]);
    }
}
