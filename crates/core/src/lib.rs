//! # poshgnn
//!
//! The paper's primary contribution: the AFTER problem (Adaptive Friend
//! Discovery for Temporal-spatial and Social-aware XR) and the POSHGNN
//! recommender.
//!
//! * [`problem`] — [`TargetContext`]: one target user's view of an XR
//!   conferencing scenario (occlusion graphs, distances, candidate masks,
//!   utility rows).
//! * [`metrics`] — the AFTER utility (Defs. 2–3) and evaluation metrics.
//! * [`view`] — [`StepView`]: the no-lookahead causal window (ticks
//!   `0..=t`) recommenders receive at each step.
//! * [`recommender`] — the [`AfterRecommender`] trait (Def. 1) every method
//!   (POSHGNN and all baselines) implements.
//! * [`mia`] / [`loss`] / [`model`] — the three POSHGNN submodules: MIA
//!   preprocessing, the POSHGNN loss (Def. 7), and the PDR+LWP network with
//!   its BPTT trainer and ablation variants.

pub mod loss;
pub mod metrics;
pub mod mia;
pub mod model;
pub mod problem;
pub mod recommender;
pub mod serve;
pub mod view;

pub use loss::{poshgnn_loss, LossParams};
pub use metrics::{evaluate_sequence, top_k_overlap, UtilityBreakdown};
pub use mia::{dense_adjacency, Mia, MiaOutput};
pub use model::{PoshGnn, PoshGnnConfig, PoshVariant};
pub use problem::TargetContext;
pub use recommender::{mask_from_indices, threshold_decision, top_k_indices, AfterRecommender};
pub use view::StepView;
