//! The AFTER problem seen from one target user.
//!
//! [`TargetContext`] holds everything a recommender may consult at each time
//! step `t`: the static occlusion graph `O_t^v`, distances to every other
//! participant, the hybrid-participation candidate mask `m_t`, and the
//! target's utility rows `p(v,·)` / `s(v,·)`.
//!
//! Since the streaming refactor, `TargetContext` is a thin *compat wrapper*
//! over the [`xr_session::SceneEngine`]: by default construction pumps the
//! scenario's frames through the engine once and copies out this target's
//! slice of the shared per-tick state. The field layout and every numeric
//! value are byte-identical to the legacy per-target precompute, which is
//! still available behind `AFTER_STREAMING=0` and pinned against the engine
//! path by an `xr_check` differential subject.

use xr_datasets::{Interface, Scenario};
use xr_graph::geom::Point2;
use xr_graph::{OcclusionConverter, UGraph};
use xr_session::SceneEngine;

/// Everything an AFTER recommender may consult for one target user.
#[derive(Debug, Clone)]
pub struct TargetContext {
    /// Local index of the target user in the scenario.
    pub target: usize,
    /// Number of participants `N` (including the target).
    pub n: usize,
    /// Social-presence weight `β ∈ [0,1]` (Def. 2).
    pub beta: f64,
    /// `true` when the target joins through MR (co-located participants are
    /// then physically forced onto her viewport).
    pub target_is_mr: bool,
    /// Static occlusion graphs, one per time step `0..=T`.
    pub occlusion: Vec<UGraph>,
    /// `distances[t][w]`: Euclidean distance from the target to `w` at `t`
    /// (0 for the target itself).
    pub distances: Vec<Vec<f64>>,
    /// Hybrid-participation mask `m_t`: `candidate_mask[t][w]` is `false`
    /// when rendering `w` would be ineffective because a *physically
    /// present* co-located MR participant stands nearer in the same arc.
    pub candidate_mask: Vec<Vec<bool>>,
    /// Per-tick candidate shortlists (`shortlists[t]` = the target's
    /// K-nearest member ids, ascending) when the backing engine ran in
    /// crowd-scale pruned mode (`AFTER_PRUNE_K > 0`); `None` on the full-N
    /// and legacy paths. When present, `occlusion[t]` / `candidate_mask[t]`
    /// are the densified restriction to these members — users outside the
    /// shortlist are not candidates, per the candidate-set contract.
    pub shortlists: Option<Vec<Vec<usize>>>,
    /// Preference utilities `p(v, ·)`.
    pub preference: Vec<f64>,
    /// Social-presence utilities `s(v, ·)`.
    pub social: Vec<f64>,
    /// MR mask over participants (physically present users).
    pub mr_mask: Vec<bool>,
    /// Positions per time step (shared with the scenario).
    pub positions: Vec<Vec<Point2>>,
    /// Occlusion converter (body radius) used for all visibility queries.
    pub converter: OcclusionConverter,
    /// Room diagonal, used to normalize distances into `[0, 1]`.
    pub room_diagonal: f64,
}

impl TargetContext {
    /// Builds the context for `target` within `scenario` with weight `beta`.
    ///
    /// # Panics
    ///
    /// Panics when `target` is out of range or `beta ∉ [0,1]`.
    pub fn new(scenario: &Scenario, target: usize, beta: f64) -> Self {
        Self::with_blocklist(scenario, target, beta, &[])
    }

    /// Like [`TargetContext::new`], but with an inter-user blocklist (the
    /// paper's footnote 8): blocked users are removed from the candidate
    /// mask `m_t` at every time step, so no recommender built on MIA will
    /// ever render them for this target.
    ///
    /// # Panics
    ///
    /// Panics when `target` is out of range, `beta ∉ [0,1]`, or a blocked
    /// id is out of range.
    pub fn with_blocklist(scenario: &Scenario, target: usize, beta: f64, blocked: &[usize]) -> Self {
        assert!(target < scenario.n(), "target {target} out of range");
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
        let n = scenario.n();
        assert!(blocked.iter().all(|&b| b < n), "blocklist entry out of range");

        if xr_session::streaming_enabled() {
            let mut engine = SceneEngine::for_scenario(scenario, &[target]);
            engine.push_scenario(scenario);
            let mut built = Self::from_engine(scenario, engine, &[(target, beta)], blocked);
            built.pop().expect("one request yields one context")
        } else {
            Self::precomputed(scenario, target, beta, blocked)
        }
    }

    /// Builds the contexts of several `(target, beta)` requests over one
    /// scenario through a *single* shared [`SceneEngine`] pass: the distance
    /// matrix and each requested viewer's occlusion structure are maintained
    /// once per tick for the whole scene, instead of once per target.
    ///
    /// Numerically identical to mapping [`TargetContext::new`] over the
    /// requests; under `AFTER_STREAMING=0` it literally is that map.
    ///
    /// # Panics
    ///
    /// Panics when a target is out of range or a beta `∉ [0,1]`.
    pub fn batch(scenario: &Scenario, requests: &[(usize, f64)]) -> Vec<Self> {
        for &(target, beta) in requests {
            assert!(target < scenario.n(), "target {target} out of range");
            assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
        }
        if !xr_session::streaming_enabled() {
            return requests
                .iter()
                .map(|&(target, beta)| Self::precomputed(scenario, target, beta, &[]))
                .collect();
        }
        let viewers: Vec<usize> = requests.iter().map(|&(target, _)| target).collect();
        let mut engine = SceneEngine::for_scenario(scenario, &viewers);
        engine.push_scenario(scenario);
        Self::from_engine(scenario, engine, requests, &[])
    }

    /// Distributes an already-ingested engine's shared state into contexts,
    /// one per `(target, beta)` request — the entry point for callers that
    /// own and configure their engine (e.g. crowd-scale pruned serving via
    /// [`SceneEngine::set_prune_k`]). Every requested target must have been
    /// registered as a viewer at engine construction. When the engine ran
    /// pruned, each context's [`TargetContext::shortlists`] records the
    /// per-tick membership and the dense fields hold the densified
    /// restriction.
    ///
    /// # Panics
    ///
    /// Panics when the engine's participant count differs from the
    /// scenario's, a target is out of range or unregistered, or a beta
    /// `∉ [0,1]`.
    pub fn with_engine(scenario: &Scenario, engine: SceneEngine, requests: &[(usize, f64)]) -> Vec<Self> {
        for &(target, beta) in requests {
            assert!(target < scenario.n(), "target {target} out of range");
            assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
        }
        assert_eq!(engine.n(), scenario.n(), "engine/scenario participant count mismatch");
        Self::from_engine(scenario, engine, requests, &[])
    }

    /// Distributes an ingested engine's shared per-tick state into compat
    /// contexts, one per request. The heavy per-viewer structures (occlusion
    /// graphs, candidate masks) are *moved* out of the engine — each slot's
    /// last requester takes ownership, earlier duplicates clone — so the
    /// shared pass allocates each graph exactly once.
    fn from_engine(
        scenario: &Scenario,
        engine: SceneEngine,
        requests: &[(usize, f64)],
        blocked: &[usize],
    ) -> Vec<Self> {
        let n = scenario.n();
        let frames = engine.ticks();
        let mr_mask = engine.config().mr_mask.clone();
        let converter = *engine.converter();
        let room_diagonal = engine.config().room_diagonal;
        let slots: Vec<usize> = requests
            .iter()
            .map(|&(target, _)| engine.slot_of(target).expect("request registered at construction"))
            .collect();
        let mut slot_uses = vec![0usize; engine.viewers().len()];
        for &s in &slots {
            slot_uses[s] += 1;
        }

        let mut contexts: Vec<TargetContext> = requests
            .iter()
            .map(|&(target, beta)| TargetContext {
                target,
                n,
                beta,
                target_is_mr: scenario.interfaces[target] == Interface::Mr,
                occlusion: Vec::with_capacity(frames),
                distances: Vec::with_capacity(frames),
                candidate_mask: Vec::with_capacity(frames),
                shortlists: None,
                preference: scenario.preference[target].clone(),
                social: scenario.social[target].clone(),
                mr_mask: mr_mask.clone(),
                positions: scenario.trajectories.clone(),
                converter,
                room_diagonal,
            })
            .collect();

        for state in engine.into_states() {
            // capture each requester's shortlist membership before the
            // pruned state is densified by into_parts
            if state.is_pruned() {
                for (ctx, &slot) in contexts.iter_mut().zip(&slots) {
                    let ids: Vec<usize> = state
                        .candidates(slot)
                        .expect("pruned state has a shortlist per slot")
                        .ids()
                        .iter()
                        .map(|&w| w as usize)
                        .collect();
                    ctx.shortlists.get_or_insert_with(Vec::new).push(ids);
                }
            }
            let (_positions, dist_flat, occlusion, masks) = state.into_parts();
            let mut occlusion: Vec<Option<UGraph>> = occlusion.into_iter().map(Some).collect();
            let mut masks: Vec<Option<Vec<bool>>> = masks.into_iter().map(Some).collect();
            let mut remaining = slot_uses.clone();
            for (ctx, &slot) in contexts.iter_mut().zip(&slots) {
                remaining[slot] -= 1;
                let last_user = remaining[slot] == 0;
                let graph = if last_user {
                    occlusion[slot].take().expect("slot state consumed once")
                } else {
                    occlusion[slot].as_ref().expect("slot state present").clone()
                };
                let mut mask = if last_user {
                    masks[slot].take().expect("slot state consumed once")
                } else {
                    masks[slot].as_ref().expect("slot state present").clone()
                };
                for &b in blocked {
                    mask[b] = false;
                }
                ctx.occlusion.push(graph);
                ctx.distances.push(dist_flat[ctx.target * n..(ctx.target + 1) * n].to_vec());
                ctx.candidate_mask.push(mask);
            }
        }
        contexts
    }

    /// The legacy per-target precompute path (`AFTER_STREAMING=0`): redoes
    /// the full O(N²) pairwise visibility work for this one target at every
    /// tick. Kept as the differential oracle for the engine path.
    fn precomputed(scenario: &Scenario, target: usize, beta: f64, blocked: &[usize]) -> Self {
        let n = scenario.n();
        let converter = OcclusionConverter::new(scenario.body_radius);
        let mr_mask = scenario.mr_mask();
        let target_is_mr = scenario.interfaces[target] == Interface::Mr;

        let frames = scenario.trajectories.len();
        let mut occlusion = Vec::with_capacity(frames);
        let mut distances = Vec::with_capacity(frames);
        let mut candidate_mask = Vec::with_capacity(frames);

        for positions in &scenario.trajectories {
            occlusion.push(converter.static_graph(target, positions));
            distances.push((0..n).map(|w| positions[target].distance(positions[w])).collect::<Vec<f64>>());
            let mut mask = physical_candidate_mask(&converter, target, target_is_mr, positions, &mr_mask);
            for &b in blocked {
                mask[b] = false;
            }
            candidate_mask.push(mask);
        }

        let room_diagonal = (scenario.room.width().powi(2) + scenario.room.height().powi(2)).sqrt();

        TargetContext {
            target,
            n,
            beta,
            target_is_mr,
            occlusion,
            distances,
            candidate_mask,
            shortlists: None,
            preference: scenario.preference[target].clone(),
            social: scenario.social[target].clone(),
            mr_mask,
            positions: scenario.trajectories.clone(),
            converter,
            room_diagonal,
        }
    }

    /// Number of recommendation steps `T` (time indices run `0..=T`).
    pub fn t_max(&self) -> usize {
        self.positions.len() - 1
    }

    /// The display set implied by a recommendation at `t`: the recommended
    /// users plus — when the target is MR — every co-located MR participant,
    /// who is physically present whether recommended or not.
    #[allow(clippy::needless_range_loop)] // w is a user id, not a position
    pub fn displayed(&self, recommendation: &[bool]) -> Vec<bool> {
        let mut displayed = recommendation.to_vec();
        displayed[self.target] = false;
        if self.target_is_mr {
            for w in 0..self.n {
                if w != self.target && self.mr_mask[w] {
                    displayed[w] = true;
                }
            }
        }
        displayed
    }

    /// Visibility of every user at `t` under a recommendation (Def. 1's
    /// `1[v ⇒_t w]`, restricted to recommended users by the caller).
    pub fn visibility(&self, t: usize, recommendation: &[bool]) -> Vec<bool> {
        let displayed = self.displayed(recommendation);
        self.converter.visibility(self.target, &self.positions[t], &displayed)
    }
}

/// Candidate mask `m_t` (MIA, hybrid participation): for an MR target,
/// rendering `w` is ineffective when a *physically present* co-located MR
/// participant other than `w` stands nearer in an overlapping arc — the
/// physical body will cover the rendering. VR targets see a fully virtual
/// scene, so every candidate stays available.
fn physical_candidate_mask(
    converter: &OcclusionConverter,
    target: usize,
    target_is_mr: bool,
    positions: &[Point2],
    mr_mask: &[bool],
) -> Vec<bool> {
    let n = positions.len();
    let mut mask = vec![true; n];
    mask[target] = false; // the target never recommends herself
    if !target_is_mr {
        return mask;
    }
    let arcs = converter.arcs(target, positions);
    for w in 0..n {
        if w == target {
            continue;
        }
        let Some(aw) = arcs[w] else {
            mask[w] = false;
            continue;
        };
        for u in 0..n {
            if u == w || u == target || !mr_mask[u] {
                continue;
            }
            if let Some(au) = arcs[u] {
                if au.distance < aw.distance && au.intersects(&aw) {
                    mask[w] = false;
                    break;
                }
            }
        }
    }
    mask
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use xr_crowd::Room;

    /// Hand-built 4-user scenario: target 0 (MR) at origin; 1 = MR blocker
    /// east; 2 = VR behind the blocker; 3 = VR north, clear.
    pub(crate) fn scenario(target_mr: bool) -> Scenario {
        let positions =
            vec![Point2::new(5.0, 5.0), Point2::new(6.0, 5.0), Point2::new(7.0, 5.02), Point2::new(5.0, 8.0)];
        let interfaces = vec![
            if target_mr { Interface::Mr } else { Interface::Vr },
            Interface::Mr,
            Interface::Vr,
            Interface::Vr,
        ];
        let p = vec![
            vec![0.0, 0.4, 0.9, 0.6],
            vec![0.4, 0.0, 0.1, 0.1],
            vec![0.9, 0.1, 0.0, 0.1],
            vec![0.6, 0.1, 0.1, 0.0],
        ];
        let s =
            vec![vec![0.0, 0.0, 0.8, 0.5], vec![0.0; 4], vec![0.8, 0.0, 0.0, 0.0], vec![0.5, 0.0, 0.0, 0.0]];
        Scenario {
            dataset: "unit".into(),
            participants: vec![0, 1, 2, 3],
            interfaces,
            preference: p,
            social: s,
            trajectories: vec![positions.clone(), positions],
            room: Room::new(10.0, 10.0),
            body_radius: 0.25,
        }
    }

    #[test]
    fn context_shapes() {
        let ctx = TargetContext::new(&scenario(true), 0, 0.5);
        assert_eq!(ctx.n, 4);
        assert_eq!(ctx.t_max(), 1);
        assert_eq!(ctx.occlusion.len(), 2);
        assert_eq!(ctx.distances[0].len(), 4);
        assert!((ctx.distances[0][1] - 1.0).abs() < 1e-12);
        assert!(ctx.target_is_mr);
    }

    #[test]
    fn mr_target_prunes_physically_occluded_candidates() {
        let ctx = TargetContext::new(&scenario(true), 0, 0.5);
        let m = &ctx.candidate_mask[0];
        assert!(!m[0], "target is never a candidate");
        assert!(m[1], "the physical blocker itself is visible, hence a candidate");
        assert!(!m[2], "user hidden behind the physical MR participant is pruned");
        assert!(m[3], "clear user remains a candidate");
    }

    #[test]
    fn vr_target_keeps_all_candidates() {
        let ctx = TargetContext::new(&scenario(false), 0, 0.5);
        let m = &ctx.candidate_mask[0];
        assert_eq!(m, &vec![false, true, true, true]);
    }

    #[test]
    fn displayed_forces_colocated_mr_users() {
        let ctx = TargetContext::new(&scenario(true), 0, 0.5);
        let displayed = ctx.displayed(&[false, false, false, true]);
        assert!(displayed[1], "co-located MR participant is physically forced");
        assert!(!displayed[2]);
        assert!(displayed[3]);

        let ctx_vr = TargetContext::new(&scenario(false), 0, 0.5);
        let displayed = ctx_vr.displayed(&[false, false, false, true]);
        assert!(!displayed[1], "VR target sees only recommended users");
    }

    #[test]
    fn visibility_accounts_for_forced_physical_users() {
        let ctx = TargetContext::new(&scenario(true), 0, 0.5);
        // recommend only user 2 (behind the physical MR user 1)
        let vis = ctx.visibility(0, &[false, false, true, false]);
        assert!(!vis[2], "physical MR user occludes the recommendation");
        // for a VR target, user 1 is not displayed, so 2 is visible
        let ctx_vr = TargetContext::new(&scenario(false), 0, 0.5);
        let vis = ctx_vr.visibility(0, &[false, false, true, false]);
        assert!(vis[2]);
    }

    #[test]
    fn blocklist_removes_candidates_everywhere() {
        let ctx = TargetContext::with_blocklist(&scenario(false), 0, 0.5, &[3]);
        for t in 0..ctx.candidate_mask.len() {
            assert!(!ctx.candidate_mask[t][3], "blocked user leaked at t={t}");
        }
        // other users unaffected
        assert!(ctx.candidate_mask[0][1]);
    }

    #[test]
    fn batch_matches_individual_construction_bitwise() {
        // one shared engine pass per scenario vs one engine per target:
        // identical contexts either way
        let scenario = scenario(true);
        let requests = [(0usize, 0.5f64), (1, 0.3), (3, 0.7)];
        let batched = TargetContext::batch(&scenario, &requests);
        for (ctx, &(target, beta)) in batched.iter().zip(&requests) {
            let single = TargetContext::new(&scenario, target, beta);
            assert_eq!(ctx.target, single.target);
            assert_eq!(ctx.occlusion, single.occlusion);
            assert_eq!(ctx.candidate_mask, single.candidate_mask);
            for (a, b) in ctx.distances.iter().flatten().zip(single.distances.iter().flatten()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn batch_of_nothing_is_empty() {
        assert!(TargetContext::batch(&scenario(false), &[]).is_empty());
    }

    #[test]
    fn pruned_engine_context_at_full_k_matches_the_default_bitwise() {
        // a pruned engine with a complete shortlist (K ≥ n−1) must densify
        // into exactly the context the default path builds — the
        // AFTER_PRUNE_K oracle seen from the recommend stack
        let scenario = scenario(true);
        let requests = [(0usize, 0.5f64), (1, 0.3)];
        let viewers: Vec<usize> = requests.iter().map(|&(t, _)| t).collect();
        let mut engine = SceneEngine::for_scenario(&scenario, &viewers);
        engine.set_prune_k(scenario.n() - 1);
        engine.push_scenario(&scenario);
        let pruned = TargetContext::with_engine(&scenario, engine, &requests);
        let default = TargetContext::batch(&scenario, &requests);
        for (p, d) in pruned.iter().zip(&default) {
            assert_eq!(p.occlusion, d.occlusion);
            assert_eq!(p.candidate_mask, d.candidate_mask);
            for (a, b) in p.distances.iter().flatten().zip(d.distances.iter().flatten()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            // complete membership recorded per tick
            let shortlists = p.shortlists.as_ref().expect("pruned engine records shortlists");
            assert_eq!(shortlists.len(), p.positions.len());
            for ids in shortlists {
                assert_eq!(ids.len(), p.n - 1);
            }
            assert!(d.shortlists.is_none(), "default path stays dense");
        }
    }

    #[test]
    fn pruned_engine_context_at_serving_k_restricts_candidates_to_members() {
        let scenario = scenario(true);
        let mut engine = SceneEngine::for_scenario(&scenario, &[0]);
        engine.set_prune_k(2);
        engine.push_scenario(&scenario);
        let ctx = TargetContext::with_engine(&scenario, engine, &[(0, 0.5)]).pop().unwrap();
        let shortlists = ctx.shortlists.as_ref().unwrap();
        for (t, mask) in ctx.candidate_mask.iter().enumerate() {
            for (w, &bit) in mask.iter().enumerate() {
                if !shortlists[t].contains(&w) {
                    assert!(!bit, "non-member {w} leaked into the mask at t={t}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "blocklist entry out of range")]
    fn bad_blocklist_panics() {
        TargetContext::with_blocklist(&scenario(true), 0, 0.5, &[99]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_panics() {
        TargetContext::new(&scenario(true), 9, 0.5);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn bad_beta_panics() {
        TargetContext::new(&scenario(true), 0, 1.5);
    }
}
