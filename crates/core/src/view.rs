//! The no-lookahead step view handed to recommenders.
//!
//! [`StepView`] is a window over a [`TargetContext`] that exposes only ticks
//! `0..=t`. The wrapped context is private and every accessor is either
//! pinned to the current tick or bounds-checked against it, so a recommender
//! implemented outside this crate *cannot* read future positions — the
//! stepwise contract of the online problem (Def. 2's causality: at `t` the
//! method sees `O_t^v`, `r_{t-1}`, and history, never the future) holds at
//! the type level rather than by convention.

use xr_graph::geom::Point2;
use xr_graph::{OcclusionConverter, UGraph};

use crate::problem::TargetContext;

/// A causal window over one target's episode: tick `t` and everything
/// before it, nothing after.
#[derive(Debug, Clone, Copy)]
pub struct StepView<'a> {
    ctx: &'a TargetContext,
    t: usize,
}

impl<'a> StepView<'a> {
    /// A view of `ctx` at tick `t`.
    ///
    /// # Panics
    ///
    /// Panics when `t` exceeds the episode length.
    pub fn new(ctx: &'a TargetContext, t: usize) -> Self {
        assert!(t <= ctx.t_max(), "tick {t} beyond episode end {}", ctx.t_max());
        StepView { ctx, t }
    }

    /// The wrapped context — crate-internal only: in-crate consumers (MIA's
    /// episode pipelines) are covered by the empirical no-lookahead contract
    /// test instead of the type-level restriction.
    pub(crate) fn ctx(&self) -> &'a TargetContext {
        self.ctx
    }

    /// Current tick.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Local index of the target user.
    pub fn target(&self) -> usize {
        self.ctx.target
    }

    /// Number of participants `N`.
    pub fn n(&self) -> usize {
        self.ctx.n
    }

    /// Social-presence weight `β`.
    pub fn beta(&self) -> f64 {
        self.ctx.beta
    }

    /// Whether the target joins through MR.
    pub fn target_is_mr(&self) -> bool {
        self.ctx.target_is_mr
    }

    /// The static occlusion graph `O_t^v` at the current tick.
    pub fn occlusion(&self) -> &'a UGraph {
        &self.ctx.occlusion[self.t]
    }

    /// An occlusion graph from the causal window.
    ///
    /// # Panics
    ///
    /// Panics when `tick > t` — that would be lookahead.
    pub fn occlusion_at(&self, tick: usize) -> &'a UGraph {
        assert!(tick <= self.t, "tick {tick} is in the future of this view (t={})", self.t);
        &self.ctx.occlusion[tick]
    }

    /// Distances from the target to every participant at the current tick.
    pub fn distances(&self) -> &'a [f64] {
        &self.ctx.distances[self.t]
    }

    /// Hybrid-participation candidate mask `m_t` at the current tick.
    pub fn candidate_mask(&self) -> &'a [bool] {
        &self.ctx.candidate_mask[self.t]
    }

    /// The target's candidate shortlist at the current tick (ascending user
    /// ids), when the context came from a crowd-scale pruned engine
    /// (`AFTER_PRUNE_K > 0`); `None` on the full-N and legacy paths. When
    /// present, every mask-true candidate is a member — recommenders can
    /// iterate the K members instead of all N users.
    pub fn candidates(&self) -> Option<&'a [usize]> {
        self.ctx.shortlists.as_ref().map(|s| s[self.t].as_slice())
    }

    /// Preference utilities `p(v, ·)`.
    pub fn preference(&self) -> &'a [f64] {
        &self.ctx.preference
    }

    /// Social-presence utilities `s(v, ·)`.
    pub fn social(&self) -> &'a [f64] {
        &self.ctx.social
    }

    /// MR mask over participants.
    pub fn mr_mask(&self) -> &'a [bool] {
        &self.ctx.mr_mask
    }

    /// Positions at the current tick.
    pub fn positions(&self) -> &'a [Point2] {
        &self.ctx.positions[self.t]
    }

    /// The occlusion converter (body radius) for visibility queries.
    pub fn converter(&self) -> &'a OcclusionConverter {
        &self.ctx.converter
    }

    /// Room diagonal for distance normalization.
    pub fn room_diagonal(&self) -> f64 {
        self.ctx.room_diagonal
    }

    /// Visibility of every user at the current tick under a recommendation.
    pub fn visibility(&self, recommendation: &[bool]) -> Vec<bool> {
        self.ctx.visibility(self.t, recommendation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests::scenario;

    #[test]
    fn view_is_pinned_to_its_tick() {
        let ctx = TargetContext::new(&scenario(true), 0, 0.5);
        let view = StepView::new(&ctx, 1);
        assert_eq!(view.t(), 1);
        assert_eq!(view.target(), 0);
        assert_eq!(view.n(), 4);
        assert_eq!(view.distances(), &ctx.distances[1][..]);
        assert_eq!(view.occlusion(), &ctx.occlusion[1]);
        assert_eq!(view.candidate_mask(), &ctx.candidate_mask[1][..]);
        assert_eq!(view.positions(), &ctx.positions[1][..]);
        // the causal window reaches backwards freely
        assert_eq!(view.occlusion_at(0), &ctx.occlusion[0]);
    }

    #[test]
    fn candidates_are_absent_on_the_dense_path() {
        let ctx = TargetContext::new(&scenario(true), 0, 0.5);
        let view = StepView::new(&ctx, 1);
        assert!(view.candidates().is_none(), "legacy contexts carry no shortlists");
    }

    #[test]
    #[should_panic(expected = "future")]
    fn peeking_past_the_current_tick_panics() {
        let ctx = TargetContext::new(&scenario(true), 0, 0.5);
        let view = StepView::new(&ctx, 0);
        view.occlusion_at(1);
    }

    #[test]
    #[should_panic(expected = "beyond episode end")]
    fn view_past_episode_end_panics() {
        let ctx = TargetContext::new(&scenario(true), 0, 0.5);
        StepView::new(&ctx, 5);
    }
}
