//! The f32 serving path for POSHGNN inference (no tape, no f64).
//!
//! Training and the golden-replay harness stay on the f64 tape stack in
//! [`crate::model`]; this module is the lean twin that a recommend step runs
//! when [`crate::PoshGnnConfig::serve_f32`] is on. The trained weights are
//! down-converted once at activation ([`ServeNet::from_layers`]), and the
//! context's precomputed scene (occlusion graph, distance row, candidate
//! mask) is down-converted once per tick ([`ServeEpisode`]) — the same
//! amortization the f64 path gets from its episode MIA cache. A step then
//! runs the f32 MIA feature recipe and the PDR/LWP forward pass entirely on
//! the `xr_tensor::serve32` kernels; only the returned soft scores are
//! upcast to `f64` at the API boundary. (Clients that stream raw positions
//! instead of prebuilt contexts use the `xr_session::serve32` SIMD scene
//! kernels — distance row, occlusion graph, candidate mask — which are
//! pinned to the f64 scene path by their own lane-equality tests.)
//!
//! The f32 stream is pinned against the f64 stream by the `ServeF32VsF64`
//! differential subject in `xr_check` (tolerance + top-k-overlap oracle, per
//! DESIGN.md §9) rather than bit equality.

use xr_gnn::{Activation, GcnLayer};
use xr_graph::UGraph;
use xr_tensor::serve32::{CsrF32, MatrixF32};
use xr_tensor::ParamStore;

use crate::model::PoshVariant;
use crate::problem::TargetContext;

/// One GCN layer's weights down-converted for serving.
pub struct ServeLayer {
    w_self: MatrixF32,
    w_neigh: MatrixF32,
    bias: Vec<f32>,
    activation: Activation,
}

impl ServeLayer {
    /// Down-converts a trained [`GcnLayer`]'s parameters from the store.
    pub fn from_gcn(store: &ParamStore, layer: &GcnLayer) -> Self {
        let (w_self_id, w_neigh_id, bias_id) = layer.param_ids();
        ServeLayer {
            w_self: MatrixF32::from_f64(store.value(w_self_id)),
            w_neigh: MatrixF32::from_f64(store.value(w_neigh_id)),
            bias: store.value(bias_id).as_slice().iter().map(|&v| v as f32).collect(),
            activation: layer.activation(),
        }
    }

    /// Forward pass `act(H·W₁ + (agg·H)·W₂ + b)` on the f32 kernels.
    pub fn forward(&self, h: &MatrixF32, agg: &CsrF32) -> MatrixF32 {
        let _span = xr_obs::span!("poshgnn.serve.layer");
        let mut own = h.matmul(&self.w_self);
        let neigh = agg.matmul_dense(h).matmul(&self.w_neigh);
        let (rows, cols) = own.shape();
        let o = own.as_mut_slice();
        let ne = neigh.as_slice();
        for r in 0..rows {
            for c in 0..cols {
                let i = r * cols + c;
                o[i] = self.activation.apply_f32(o[i] + ne[i] + self.bias[c]);
            }
        }
        own
    }
}

/// The full POSHGNN forward stack in f32: PDR + LWP weights plus the
/// variant/hidden configuration. Built once per trained snapshot and
/// invalidated by the owning model whenever parameters change.
pub struct ServeNet {
    pdr1: ServeLayer,
    pdr2: ServeLayer,
    lwp1: ServeLayer,
    lwp2: ServeLayer,
    lwp3: ServeLayer,
    variant: PoshVariant,
}

impl ServeNet {
    /// Down-converts the five GCN layers of a POSHGNN model.
    #[allow(clippy::too_many_arguments)] // internal: one arg per layer
    pub fn from_layers(
        store: &ParamStore,
        pdr1: &GcnLayer,
        pdr2: &GcnLayer,
        lwp1: &GcnLayer,
        lwp2: &GcnLayer,
        lwp3: &GcnLayer,
        variant: PoshVariant,
    ) -> Self {
        ServeNet {
            pdr1: ServeLayer::from_gcn(store, pdr1),
            pdr2: ServeLayer::from_gcn(store, pdr2),
            lwp1: ServeLayer::from_gcn(store, lwp1),
            lwp2: ServeLayer::from_gcn(store, lwp2),
            lwp3: ServeLayer::from_gcn(store, lwp3),
            variant,
        }
    }
}

/// One tick's scene quantities down-converted to f32: the MIA inputs a step
/// needs, derived from the context's precomputed f64 scene exactly once.
struct SceneTick {
    /// Target-row distances, `ctx.distances[t]` as f32.
    distances: Vec<f32>,
    /// Candidate mask as 0/1 weights.
    mask_f: Vec<f32>,
    /// Occlusion-graph degrees `A_t·1`.
    deg: Vec<f32>,
    /// One-hop degree propagation `A_t·(A_t·1)` (for MIA's `Δ_t`).
    a_deg: Vec<f32>,
    /// Mean-aggregation operator `D⁻¹A_t` as f32 CSR.
    agg: CsrF32,
}

impl SceneTick {
    fn build(ctx: &TargetContext, t: usize) -> SceneTick {
        let n = ctx.n;
        let g = &ctx.occlusion[t];
        let deg: Vec<f32> = (0..n).map(|v| g.degree(v) as f32).collect();
        let a_deg: Vec<f32> = (0..n).map(|v| g.neighbors(v).iter().map(|&u| deg[u]).sum()).collect();
        SceneTick {
            distances: ctx.distances[t].iter().map(|&d| d as f32).collect(),
            mask_f: ctx.candidate_mask[t].iter().map(|&m| if m { 1.0 } else { 0.0 }).collect(),
            deg,
            a_deg,
            agg: norm_csr_f32(g),
        }
    }
}

/// Per-episode f32 serving state: the episode-constant inputs converted
/// once, the per-tick scene conversions cached (each tick's occlusion
/// graph, distances, and mask are down-converted the first time the tick is
/// stepped), and the recurrent `(h, r)` state.
pub struct ServeEpisode {
    n: usize,
    room_diagonal: f32,
    preference: Vec<f32>,
    social: Vec<f32>,
    mr_flag: Vec<f32>,
    h_prev: MatrixF32,
    r_prev: MatrixF32,
    scene: Vec<Option<SceneTick>>,
}

impl ServeEpisode {
    /// Converts the episode-constant context inputs to f32 and zeroes the
    /// recurrent state.
    pub fn new(ctx: &TargetContext, hidden: usize) -> Self {
        let n = ctx.n;
        let zero_target = |u: &[f64]| -> Vec<f32> {
            (0..n).map(|w| if w == ctx.target { 0.0 } else { u[w] as f32 }).collect()
        };
        ServeEpisode {
            n,
            room_diagonal: ctx.room_diagonal as f32,
            preference: zero_target(&ctx.preference),
            social: zero_target(&ctx.social),
            mr_flag: ctx.mr_mask.iter().map(|&m| if m { 1.0 } else { 0.0 }).collect(),
            h_prev: MatrixF32::zeros(n, hidden),
            r_prev: MatrixF32::zeros(n, 1),
            scene: (0..ctx.occlusion.len()).map(|_| None).collect(),
        }
    }

    /// Number of users this episode state was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    fn ensure_scene(&mut self, ctx: &TargetContext, t: usize) {
        if self.scene[t].is_none() {
            let timer = xr_obs::start_timer();
            self.scene[t] = Some(SceneTick::build(ctx, t));
            xr_obs::observe_since("poshgnn.serve.scene_downconvert.ms", &[], timer);
            xr_obs::counter_add("poshgnn.serve.scene_downconvert", &[], 1);
        }
    }

    /// One f32 recommend step at tick `t`: down-convert the tick's scene if
    /// this is its first visit, run the MIA feature recipe and the forward
    /// pass on the f32 kernels, advance the recurrent state, and return the
    /// soft scores upcast to f64.
    pub fn step(&mut self, net: &ServeNet, ctx: &TargetContext, t: usize) -> Vec<f64> {
        let n = self.n;
        self.ensure_scene(ctx, t);
        if t > 0 {
            self.ensure_scene(ctx, t - 1);
        }
        let scene = self.scene[t].as_ref().expect("scene ensured above");
        let prev = if t > 0 { self.scene[t - 1].as_ref() } else { None };
        let inv_n = 1.0 / n as f32;

        let raw = net.variant == PoshVariant::PdrOnly;
        let mut features = MatrixF32::zeros(n, 4);
        {
            let f = features.as_mut_slice();
            for r in 0..n {
                if raw {
                    // the ablation's raw features: no masking, absolute distance
                    f[r * 4] = self.preference[r];
                    f[r * 4 + 1] = self.social[r];
                    f[r * 4 + 2] = scene.distances[r];
                } else {
                    f[r * 4] = self.preference[r] * scene.mask_f[r];
                    f[r * 4 + 1] = self.social[r] * scene.mask_f[r];
                    f[r * 4 + 2] = (scene.distances[r] / self.room_diagonal).min(1.0);
                }
                f[r * 4 + 3] = self.mr_flag[r];
            }
        }

        // --- forward: PDR, then the LWP gate per variant
        let h_t = net.pdr1.forward(&features, &scene.agg);
        let r_tilde = net.pdr2.forward(&h_t, &scene.agg);
        let r_t = match net.variant {
            PoshVariant::PdrOnly => r_tilde,
            PoshVariant::PdrWithMia => {
                let mut r = r_tilde;
                let s = r.as_mut_slice();
                for (v, &m) in s.iter_mut().zip(&scene.mask_f) {
                    *v *= m;
                }
                r
            }
            PoshVariant::Full => {
                // MIA's Δ_t difference embeddings from this and the previous
                // tick's cached degree propagation
                let mut delta = MatrixF32::zeros(n, 3);
                {
                    let d = delta.as_mut_slice();
                    for r in 0..n {
                        let (pd, pa) = match prev {
                            Some(p) => (p.deg[r], p.a_deg[r]),
                            None => (0.0, 0.0),
                        };
                        d[r * 3] = 1.0;
                        d[r * 3 + 1] = (scene.deg[r] - pd) * inv_n;
                        d[r * 3 + 2] = (scene.a_deg[r] - pa) * inv_n;
                    }
                }
                let lwp_in = concat_cols(&[&features, &delta, &self.h_prev, &self.r_prev]);
                let z1 = net.lwp1.forward(&lwp_in, &scene.agg);
                let z2 = net.lwp2.forward(&z1, &scene.agg);
                let sigma = net.lwp3.forward(&z2, &scene.agg);
                // preservation gate r_t = m ⊗ [(1−σ)⊗r̃ + σ⊗r_prev]
                let mut r = MatrixF32::zeros(n, 1);
                {
                    let out = r.as_mut_slice();
                    let s = sigma.as_slice();
                    let rt = r_tilde.as_slice();
                    let rp = self.r_prev.as_slice();
                    for i in 0..n {
                        out[i] = scene.mask_f[i] * ((1.0 - s[i]) * rt[i] + s[i] * rp[i]);
                    }
                }
                r
            }
        };

        let out: Vec<f64> = r_t.as_slice().iter().map(|&v| v as f64).collect();
        self.h_prev = h_t;
        self.r_prev = r_t;
        out
    }
}

/// Row-normalized f32 CSR (`D⁻¹A`) of an occlusion graph — the GNN mean
/// aggregation operator. Neighbor lists are ascending, so the CSR is valid
/// by construction.
fn norm_csr_f32(g: &UGraph) -> CsrF32 {
    let n = g.node_count();
    let mut row_ptr = Vec::with_capacity(n + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    for v in 0..n {
        let neigh = g.neighbors(v);
        if !neigh.is_empty() {
            let w = 1.0f32 / neigh.len() as f32;
            for &u in neigh {
                col_idx.push(u);
                vals.push(w);
            }
        }
        row_ptr.push(col_idx.len());
    }
    CsrF32::from_parts(n, n, row_ptr, col_idx, vals)
}

/// Column-wise concatenation of f32 matrices with equal row counts.
fn concat_cols(parts: &[&MatrixF32]) -> MatrixF32 {
    let rows = parts[0].rows();
    let cols: usize = parts.iter().map(|p| p.cols()).sum();
    let mut out = MatrixF32::zeros(rows, cols);
    {
        let o = out.as_mut_slice();
        for r in 0..rows {
            let mut c0 = 0;
            for p in parts {
                let pc = p.cols();
                o[r * cols + c0..r * cols + c0 + pc].copy_from_slice(p.row(r));
                c0 += pc;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_matches_f64_definitions() {
        for &v in &[-2.0f32, -0.5, 0.0, 0.5, 2.0] {
            assert_eq!(Activation::None.apply_f32(v), v);
            assert_eq!(Activation::Relu.apply_f32(v), v.max(0.0));
            let s64 = 1.0 / (1.0 + (-(v as f64)).exp());
            assert!((Activation::Sigmoid.apply_f32(v) as f64 - s64).abs() < 1e-6);
            assert!((Activation::Tanh.apply_f32(v) as f64 - (v as f64).tanh()).abs() < 1e-6);
        }
    }

    #[test]
    fn concat_cols_interleaves_rows() {
        let a = MatrixF32::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = MatrixF32::from_vec(2, 1, vec![9.0, 8.0]);
        let c = concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.as_slice(), &[1.0, 2.0, 9.0, 3.0, 4.0, 8.0]);
    }

    #[test]
    fn norm_csr_rows_sum_to_one_or_zero() {
        let mut g = UGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        let csr = norm_csr_f32(&g);
        // row 0 has two neighbors at weight 0.5 each; row 3 is empty
        let ones = MatrixF32::from_vec(4, 1, vec![1.0; 4]);
        let sums = csr.matmul_dense(&ones);
        assert!((sums[(0, 0)] - 1.0).abs() < 1e-6);
        assert!((sums[(1, 0)] - 1.0).abs() < 1e-6);
        assert_eq!(sums[(3, 0)], 0.0);
    }
}
