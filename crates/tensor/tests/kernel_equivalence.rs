//! Property-based equivalence tests for the performance kernels.
//!
//! The hot-path overhaul (blocked matmul, CSR SpMM, sparse autodiff) must be
//! a pure performance change: every optimized kernel is checked here against
//! its straightforward reference implementation on randomized inputs.

use proptest::prelude::*;
use std::rc::Rc;
use xr_tensor::{CsrAdj, Matrix, ParamStore, Tape};

/// Builds a random sparse matrix from normalized `(row, col, value)` triples
/// (unit-interval coordinates scaled to the target shape; duplicates sum).
fn csr_from_raw(rows: usize, cols: usize, raw: &[(f64, f64, f64)]) -> CsrAdj {
    let entries: Vec<(usize, usize, f64)> = raw
        .iter()
        .map(|&(x, y, v)| {
            let r = ((x * rows as f64) as usize).min(rows - 1);
            let c = ((y * cols as f64) as usize).min(cols - 1);
            (r, c, v)
        })
        .collect();
    CsrAdj::from_entries(rows, cols, &entries)
}

fn dense_from_raw(rows: usize, cols: usize, raw: &[f64]) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| raw[(r * cols + c) % raw.len()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The dispatching matmul must match the naive i-k-j loop exactly on
    /// both sides of MATMUL_DISPATCH_THRESHOLD (the dim range straddles it):
    /// the packed register-tiled kernel accumulates over k in ascending
    /// order with identical arithmetic (including the a == 0.0 skip), so
    /// the results are bit-for-bit equal, well inside the 1e-9 contract.
    #[test]
    fn dispatched_matmul_equals_naive(
        dims in (33usize..90, 33usize..90, 33usize..90),
        raw in proptest::collection::vec(-2.0f64..2.0, 64),
    ) {
        let (m, k, n) = dims;
        let a = dense_from_raw(m, k, &raw);
        let b = dense_from_raw(k, n, &raw[32..]);
        let blocked = a.matmul(&b);
        let naive = a.matmul_naive(&b);
        let scale = naive.as_slice().iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
        for (x, y) in blocked.as_slice().iter().zip(naive.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-9 * scale, "blocked {x} vs naive {y}");
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// CSR SpMM must match densifying the operand and multiplying naively.
    #[test]
    fn csr_matmul_dense_equals_dense_reference(
        shape in (2usize..30, 2usize..30, 1usize..6),
        raw in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, -2.0f64..2.0), 40),
        xraw in proptest::collection::vec(-2.0f64..2.0, 32),
    ) {
        let (rows, mid, cols) = shape;
        let csr = csr_from_raw(rows, mid, &raw);
        let x = dense_from_raw(mid, cols, &xraw);
        let sparse = csr.matmul_dense(&x);
        let dense = csr.to_dense().matmul_naive(&x);
        let scale = dense.as_slice().iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
        for (s, d) in sparse.as_slice().iter().zip(dense.as_slice()) {
            prop_assert!((s - d).abs() <= 1e-9 * scale, "sparse {s} vs dense {d}");
        }
    }

    /// matvec and the quadratic form must agree with the dense path.
    #[test]
    fn csr_matvec_and_quadratic_form_match_dense(
        n in 2usize..25,
        raw in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, -1.5f64..1.5), 30),
        vraw in proptest::collection::vec(-1.0f64..1.0, 25),
    ) {
        let csr = csr_from_raw(n, n, &raw);
        let x: Vec<f64> = (0..n).map(|i| vraw[i % vraw.len()]).collect();
        let y: Vec<f64> = (0..n).map(|i| vraw[(i + 7) % vraw.len()]).collect();

        let mv = csr.matvec(&y);
        let dense_mv = csr.to_dense().matmul_naive(&Matrix::col_vec(&y));
        for (a, b) in mv.iter().zip(dense_mv.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-9, "matvec {a} vs {b}");
        }

        let q = csr.quadratic_form(&x, &y);
        let dense_q: f64 = x.iter().zip(mv.iter()).map(|(&a, &b)| a * b).sum();
        prop_assert!((q - dense_q).abs() <= 1e-9);
    }

    /// Backprop through the sparse SpMM op must produce the same parameter
    /// gradient as routing the same adjacency through a dense constant.
    #[test]
    fn spmm_gradient_equals_dense_gradient(
        shape in (2usize..15, 1usize..5),
        raw in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, -1.5f64..1.5), 25),
        xraw in proptest::collection::vec(-1.0f64..1.0, 24),
    ) {
        let (n, cols) = shape;
        let adj = csr_from_raw(n, n, &raw);
        let x0 = dense_from_raw(n, cols, &xraw);
        let weight = dense_from_raw(n, cols, &xraw[5..]);

        let grad_via = |sparse: bool| {
            let mut store = ParamStore::new();
            let xp = store.register("x", x0.clone());
            let tape = Tape::new();
            let x = tape.param(&store, xp);
            let w = tape.constant(weight.clone());
            let agg = if sparse {
                tape.sparse(Rc::new(adj.clone())).matmul(x)
            } else {
                tape.constant(adj.to_dense()).matmul(x)
            };
            (agg * w).sum().backward(&mut store);
            store.grad(xp).clone()
        };

        let gs = grad_via(true);
        let gd = grad_via(false);
        for (a, b) in gs.as_slice().iter().zip(gd.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-9, "sparse grad {a} vs dense grad {b}");
        }
    }
}
