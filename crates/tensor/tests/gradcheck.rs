//! Property-based finite-difference gradient checks for the autodiff engine.
//!
//! For randomly generated parameter values the analytic gradient produced by
//! the tape must match a central finite difference of the loss.

use proptest::prelude::*;
use xr_tensor::{Matrix, ParamStore, Tape};

/// Computes loss and analytic gradient for a loss builder `f`, then compares
/// every partial derivative against a central finite difference.
fn check_gradient(
    values: &[f64],
    rows: usize,
    cols: usize,
    f: impl for<'a> Fn(&'a Tape, xr_tensor::Var<'a>) -> xr_tensor::Var<'a>,
) {
    let mut store = ParamStore::new();
    let w = store.register("w", Matrix::from_vec(rows, cols, values.to_vec()).unwrap());

    let tape = Tape::new();
    let loss = f(&tape, tape.param(&store, w));
    loss.backward(&mut store);
    let analytic = store.grad(w).clone();

    let eps = 1e-5;
    for i in 0..values.len() {
        let eval = |delta: f64| {
            let mut vals = values.to_vec();
            vals[i] += delta;
            let mut s = ParamStore::new();
            let p = s.register("w", Matrix::from_vec(rows, cols, vals).unwrap());
            let t = Tape::new();
            f(&t, t.param(&s, p)).scalar()
        };
        let numeric = (eval(eps) - eval(-eps)) / (2.0 * eps);
        let a = analytic.as_slice()[i];
        let denom = 1.0_f64.max(a.abs()).max(numeric.abs());
        assert!(
            (a - numeric).abs() / denom < 1e-5,
            "grad mismatch at {i}: analytic {a} vs numeric {numeric}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn grad_of_sigmoid_weighted_sum(vals in proptest::collection::vec(-3.0_f64..3.0, 6)) {
        check_gradient(&vals, 2, 3, |tape, w| {
            let c = tape.constant(Matrix::from_fn(2, 3, |r, c| (r + c) as f64 * 0.5 + 0.1));
            (w.sigmoid() * c).sum()
        });
    }

    #[test]
    fn grad_of_tanh_chain(vals in proptest::collection::vec(-2.0_f64..2.0, 4)) {
        check_gradient(&vals, 2, 2, |tape, w| {
            let a = tape.constant(Matrix::from_fn(2, 2, |r, c| 1.0 + (r * 2 + c) as f64));
            a.matmul(w).tanh().sum()
        });
    }

    #[test]
    fn grad_of_quadratic_form(vals in proptest::collection::vec(-2.0_f64..2.0, 3)) {
        check_gradient(&vals, 3, 1, |tape, r| {
            // symmetric adjacency-like constant
            let a = tape.constant(Matrix::from_fn(3, 3, |i, j| if i == j { 0.0 } else { 1.0 }));
            r.t().matmul(a).matmul(r).sum()
        });
    }

    #[test]
    fn grad_of_gate_expression(vals in proptest::collection::vec(0.05_f64..0.95, 4)) {
        // Mimics the POSHGNN preservation gate: (1-σ)⊗r̃ + σ⊗r_prev.
        check_gradient(&vals, 4, 1, |tape, sigma| {
            let r_tilde = tape.constant(Matrix::from_fn(4, 1, |r, _| 0.2 + 0.1 * r as f64));
            let r_prev = tape.constant(Matrix::from_fn(4, 1, |r, _| 0.9 - 0.15 * r as f64));
            let gated = sigma.sigmoid().one_minus() * r_tilde + sigma.sigmoid() * r_prev;
            let weight = tape.constant(Matrix::from_fn(4, 1, |r, _| 1.0 + r as f64));
            (gated * weight).sum()
        });
    }

    #[test]
    fn grad_of_mean_relu(vals in proptest::collection::vec(-3.0_f64..3.0, 6)) {
        // Values away from the ReLU kink (finite differences are invalid at 0).
        let shifted: Vec<f64> = vals.iter().map(|v| if v.abs() < 0.1 { v + 0.2 } else { *v }).collect();
        check_gradient(&shifted, 3, 2, |tape, w| {
            let m = tape.constant(Matrix::from_fn(3, 2, |r, c| 0.3 * (r as f64) - 0.7 * c as f64 + 0.5));
            (w.relu() * m).mean()
        });
    }

    #[test]
    fn grad_through_concat(vals in proptest::collection::vec(-1.0_f64..1.0, 4)) {
        check_gradient(&vals, 2, 2, |tape, w| {
            let other = tape.constant(Matrix::ones(2, 3));
            let cat = tape.concat_cols(&[w, other]);
            let mix = tape.constant(Matrix::from_fn(2, 5, |r, c| (r + 1) as f64 * 0.2 + c as f64 * 0.1));
            (cat * mix).sum()
        });
    }

    #[test]
    fn grad_through_broadcast_bias(vals in proptest::collection::vec(-1.0_f64..1.0, 3)) {
        check_gradient(&vals, 1, 3, |tape, b| {
            let x = tape.constant(Matrix::from_fn(4, 3, |r, c| (r as f64) * 0.5 - c as f64 * 0.25));
            x.add_row_broadcast(b).sigmoid().sum()
        });
    }
}
