//! Checkpointing: save/load a [`ParamStore`]'s parameters to a simple
//! self-describing text format.
//!
//! Format (line-oriented, UTF-8):
//!
//! ```text
//! xr-tensor-checkpoint v1
//! param <name> <rows> <cols>
//! <rows·cols whitespace-separated f64 values (one row per line)>
//! ...
//! ```
//!
//! Values round-trip exactly through Rust's shortest-representation float
//! formatting. Loading validates names and shapes against the receiving
//! store, so a checkpoint can only be restored into an architecturally
//! identical model.

use std::fmt::Write as _;
use std::path::Path;

use crate::matrix::Matrix;
use crate::tape::ParamStore;

/// Error from checkpoint loading.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Structural mismatch or parse failure.
    Format(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Format(m) => write!(f, "checkpoint format error: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

const HEADER: &str = "xr-tensor-checkpoint v1";

/// Serializes all parameters of `store` into the checkpoint text format.
pub fn to_string(store: &ParamStore) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    for id in store.ids() {
        let value = store.value(id);
        let (rows, cols) = value.shape();
        writeln!(out, "param {} {} {}", store.name(id), rows, cols).unwrap();
        for r in 0..rows {
            let row: Vec<String> = value.row(r).iter().map(|x| format!("{x:?}")).collect();
            out.push_str(&row.join(" "));
            out.push('\n');
        }
    }
    out
}

/// Writes a checkpoint file.
pub fn save(store: &ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    std::fs::write(path, to_string(store))?;
    Ok(())
}

/// Restores parameters from checkpoint text into `store`, validating names
/// and shapes.
pub fn from_string(store: &mut ParamStore, text: &str) -> Result<(), CheckpointError> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h == HEADER => {}
        other => return Err(CheckpointError::Format(format!("bad header: {other:?} (expected {HEADER:?})"))),
    }

    let ids: Vec<_> = store.ids().collect();
    let mut new_values: Vec<Matrix> = Vec::with_capacity(ids.len());

    for &id in &ids {
        let expected_name = store.name(id).to_string();
        let (rows, cols) = store.value(id).shape();
        let decl = lines
            .next()
            .ok_or_else(|| CheckpointError::Format(format!("missing declaration for {expected_name}")))?;
        let parts: Vec<&str> = decl.split_whitespace().collect();
        if parts.len() != 4 || parts[0] != "param" {
            return Err(CheckpointError::Format(format!("bad declaration line: {decl:?}")));
        }
        if parts[1] != expected_name {
            return Err(CheckpointError::Format(format!(
                "parameter name mismatch: checkpoint has {:?}, model expects {:?}",
                parts[1], expected_name
            )));
        }
        let (r, c): (usize, usize) = (
            parts[2].parse().map_err(|_| CheckpointError::Format("bad rows".into()))?,
            parts[3].parse().map_err(|_| CheckpointError::Format("bad cols".into()))?,
        );
        if (r, c) != (rows, cols) {
            return Err(CheckpointError::Format(format!(
                "shape mismatch for {expected_name}: checkpoint {r}x{c}, model {rows}x{cols}"
            )));
        }
        let mut data = Vec::with_capacity(rows * cols);
        for row_idx in 0..rows {
            let line = lines.next().ok_or_else(|| {
                CheckpointError::Format(format!("missing row {row_idx} of {expected_name}"))
            })?;
            for token in line.split_whitespace() {
                let v: f64 = token.parse().map_err(|_| {
                    CheckpointError::Format(format!("bad value {token:?} in {expected_name}"))
                })?;
                data.push(v);
            }
        }
        if data.len() != rows * cols {
            return Err(CheckpointError::Format(format!(
                "wrong value count for {expected_name}: got {}, expected {}",
                data.len(),
                rows * cols
            )));
        }
        new_values.push(Matrix::from_vec(rows, cols, data).expect("validated shape"));
    }

    // commit only after everything validated
    for (id, value) in ids.into_iter().zip(new_values) {
        *store.value_mut(id) = value;
    }
    Ok(())
}

/// Reads a checkpoint file into `store`.
pub fn load(store: &mut ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let text = std::fs::read_to_string(path)?;
    from_string(store, &text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ParamStore {
        let mut store = ParamStore::new();
        store.register("layer.weight", Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64 * 0.1 - 0.25));
        store.register("layer.bias", Matrix::from_fn(1, 3, |_, c| -(c as f64) / 7.0));
        store
    }

    #[test]
    fn round_trip_is_exact() {
        let store = sample_store();
        let text = to_string(&store);
        let mut restored = sample_store();
        restored.value_mut(restored.ids().next().unwrap()).fill(9.0);
        from_string(&mut restored, &text).unwrap();
        for (a, b) in store.ids().zip(restored.ids()) {
            assert_eq!(store.value(a).as_slice(), restored.value(b).as_slice());
        }
    }

    #[test]
    fn file_round_trip() {
        let store = sample_store();
        let path = std::env::temp_dir().join("xr_tensor_ckpt_test.txt");
        save(&store, &path).unwrap();
        let mut restored = sample_store();
        restored.value_mut(restored.ids().next().unwrap()).fill(0.0);
        load(&mut restored, &path).unwrap();
        assert_eq!(
            store.value(store.ids().next().unwrap()).as_slice(),
            restored.value(restored.ids().next().unwrap()).as_slice()
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn extreme_values_survive() {
        let mut store = ParamStore::new();
        store.register(
            "w",
            Matrix::from_vec(1, 4, vec![1e-300, -1e300, std::f64::consts::PI, 0.1 + 0.2]).unwrap(),
        );
        let text = to_string(&store);
        let mut restored = ParamStore::new();
        restored.register("w", Matrix::zeros(1, 4));
        from_string(&mut restored, &text).unwrap();
        assert_eq!(
            store.value(store.ids().next().unwrap()).as_slice(),
            restored.value(restored.ids().next().unwrap()).as_slice()
        );
    }

    #[test]
    fn wrong_header_is_rejected() {
        let mut store = sample_store();
        let err = from_string(&mut store, "not a checkpoint\n").unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)));
    }

    #[test]
    fn shape_mismatch_is_rejected_without_partial_write() {
        let store = sample_store();
        let text = to_string(&store);
        // receiving store with different shape
        let mut other = ParamStore::new();
        other.register("layer.weight", Matrix::zeros(9, 9));
        other.register("layer.bias", Matrix::zeros(1, 3));
        let before = other.export_flat();
        assert!(from_string(&mut other, &text).is_err());
        assert_eq!(other.export_flat(), before, "partial write on failure");
    }

    #[test]
    fn name_mismatch_is_rejected() {
        let store = sample_store();
        let text = to_string(&store);
        let mut other = ParamStore::new();
        other.register("different.name", Matrix::zeros(2, 3));
        other.register("layer.bias", Matrix::zeros(1, 3));
        assert!(from_string(&mut other, &text).is_err());
    }
}
