//! # xr-tensor
//!
//! Minimal dense linear algebra plus tape-based reverse-mode automatic
//! differentiation, built from scratch for the AFTER/POSHGNN reproduction.
//!
//! The crate provides exactly what a small graph-neural-network stack needs:
//!
//! * [`Matrix`] — dense row-major `f64` matrices with the usual kernels
//!   (matmul is cache-blocked; the reference loop stays as
//!   [`Matrix::matmul_naive`]).
//! * [`CsrAdj`] — CSR sparse matrices with an SpMM kernel
//!   ([`CsrAdj::matmul_dense`]), sharing the [`LinOp`] trait with [`Matrix`]
//!   so graph aggregation can run dense or sparse interchangeably.
//! * [`Tape`] / [`Var`] — a define-by-run autodiff engine. Operations on
//!   [`Var`] handles are recorded on the tape; [`Var::backward`] accumulates
//!   gradients into a [`ParamStore`].
//! * [`ParamStore`] — persistent trainable parameters with gradient and Adam
//!   state, plus flat export/import for checkpointing.
//! * [`optim`] — [`Sgd`] and [`Adam`] optimizers and gradient clipping.
//! * [`init`] — Xavier/He initializers and Box–Muller Gaussian sampling.
//! * [`checkpoint`] — save/restore parameters in a validated text format.
//!
//! ## Example
//!
//! ```
//! use xr_tensor::{Matrix, ParamStore, Tape, Adam, Optimizer};
//!
//! // Fit w ≈ 2 by minimizing (w·x − y)² at x = 1, y = 2.
//! let mut store = ParamStore::new();
//! let w = store.register("w", Matrix::zeros(1, 1));
//! let mut adam = Adam::with_lr(0.1);
//! for _ in 0..200 {
//!     let tape = Tape::new();
//!     let wv = tape.param(&store, w);
//!     let x = tape.constant(Matrix::full(1, 1, 1.0));
//!     let y = tape.constant(Matrix::full(1, 1, 2.0));
//!     let err = wv.matmul(x) - y;
//!     let loss = (err * err).sum();
//!     loss.backward(&mut store);
//!     adam.step(&mut store);
//! }
//! assert!((store.value(w)[(0, 0)] - 2.0).abs() < 1e-3);
//! ```

pub mod checkpoint;
pub mod init;
pub mod matrix;
pub mod optim;
pub mod serve32;
pub mod sparse;
pub mod tape;

pub use matrix::{Matrix, ShapeError};
pub use optim::{Adam, Optimizer, Sgd};
pub use serve32::{simd_enabled, CsrF32, MatrixF32};
pub use sparse::{CsrAdj, LinOp};
pub use tape::{Nonlinearity, ParamId, ParamStore, SparseVar, Tape, TapeLinOp, Var};
