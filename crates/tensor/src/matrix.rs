//! Dense row-major `f64` matrices.
//!
//! This is the storage type underneath the autodiff engine in [`crate::tape`].
//! Model sizes in this project are tiny (hidden dimension 8, at most a few
//! hundred nodes), so the implementation favours clarity and exact `f64`
//! arithmetic over SIMD throughput. Shape errors are reported through
//! [`ShapeError`] from fallible constructors and checked (via `assert!`) in
//! the arithmetic kernels, where a mismatch is always a programmer error.

use std::fmt;

/// Error returned by fallible [`Matrix`] constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    pub message: String,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error: {}", self.message)
    }
}

impl std::error::Error for ShapeError {}

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// An `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// An `rows × cols` matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![1.0; rows * cols] }
    }

    /// An `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError {
                message: format!("data length {} does not match {rows}x{cols} = {}", data.len(), rows * cols),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// A column vector (`n × 1`) built from a slice.
    pub fn col_vec(values: &[f64]) -> Self {
        Matrix { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// A row vector (`1 × n`) built from a slice.
    pub fn row_vec(values: &[f64]) -> Self {
        Matrix { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major view of the underlying data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major view of the underlying data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major data vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// A single row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable access to a single row.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs` via the cache-blocked kernel.
    ///
    /// Same contiguous saxpy inner loop as [`Self::matmul_naive`] (that loop
    /// auto-vectorizes well), but iterated over `k × j` tiles of
    /// [`Self::MATMUL_TILE`]² entries, so one 32 KiB tile of `rhs` stays
    /// L1-resident while every row of A streams past it — instead of
    /// re-streaming all of `rhs` from L2/L3 once per output row. Products
    /// small enough that `rhs` trivially fits in cache fall through to
    /// [`Self::matmul_naive`]. Per output entry both kernels accumulate over
    /// `k` in ascending order with identical arithmetic, so results match
    /// bit-for-bit — the equivalence property test pins this.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, kd, n) = (self.rows, self.cols, rhs.cols);
        if m * kd * n < 32 * 32 * 32 {
            return self.matmul_naive(rhs);
        }
        const TILE: usize = Matrix::MATMUL_TILE;
        let mut out = Matrix::zeros(m, n);
        let mut kk = 0;
        while kk < kd {
            let kend = (kk + TILE).min(kd);
            let mut jj = 0;
            while jj < n {
                let jend = (jj + TILE).min(n);
                for i in 0..m {
                    let arow = &self.data[i * kd + kk..i * kd + kend];
                    let orow = &mut out.data[i * n + jj..i * n + jend];
                    for (dk, &a) in arow.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let k = kk + dk;
                        let brow = &rhs.data[k * n + jj..k * n + jend];
                        for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                            *o += a * b;
                        }
                    }
                }
                jj = jend;
            }
            kk = kend;
        }
        out
    }

    /// Tile edge (in elements) of the blocked [`Self::matmul`] kernel: a
    /// 64×64 `f64` B tile is 32 KiB, sized to stay resident in a typical
    /// L1 data cache while A rows stream through it.
    pub const MATMUL_TILE: usize = 64;

    /// Matrix product `self · rhs` via the straightforward i-k-j loop.
    ///
    /// Kept as the reference implementation for the blocked [`Self::matmul`]
    /// kernel's equivalence property test, and as the faster path for the
    /// tiny products the blocked kernel delegates here.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop contiguous over both `rhs`
        // and `out` rows, which matters even at these small sizes.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(rrow.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Entry-wise binary combination; shapes must match.
    pub fn zip_with(&self, rhs: &Matrix, mut f: impl FnMut(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip_with shape mismatch");
        let data = self.data.iter().zip(rhs.data.iter()).map(|(&a, &b)| f(a, b)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Entry-wise sum.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Entry-wise difference.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Hadamard (entry-wise) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// In-place `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// In-place `self += scale * rhs`.
    pub fn add_scaled(&mut self, rhs: &Matrix, scale: f64) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += scale * b;
        }
    }

    /// Entry-wise map.
    pub fn map(&self, f: impl FnMut(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().copied().map(f).collect() }
    }

    /// Scalar multiple.
    pub fn scale(&self, k: f64) -> Matrix {
        self.map(|x| x * k)
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all entries (0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Fills the matrix with a constant.
    pub fn fill(&mut self, value: f64) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Horizontal concatenation `[self | rhs]`.
    pub fn concat_cols(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "concat_cols row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Horizontal concatenation of many matrices with equal row counts.
    pub fn concat_cols_all(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_cols_all needs at least one part");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "concat_cols_all row mismatch");
                out.row_mut(r)[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Extracts columns `[start, start+len)` into a new matrix.
    pub fn slice_cols(&self, start: usize, len: usize) -> Matrix {
        assert!(start + len <= self.cols, "slice_cols out of range");
        Matrix::from_fn(self.rows, len, |r, c| self[(r, start + c)])
    }

    /// `true` when every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Entry-wise approximate equality within `tol`.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f64) -> bool {
        self.shape() == rhs.shape()
            && self.data.iter().zip(rhs.data.iter()).all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_have_expected_shapes() {
        assert_eq!(Matrix::zeros(2, 3).shape(), (2, 3));
        assert_eq!(Matrix::ones(1, 4).sum(), 4.0);
        assert_eq!(Matrix::identity(3).sum(), 3.0);
        assert_eq!(Matrix::full(2, 2, 2.5).sum(), 10.0);
        assert_eq!(Matrix::col_vec(&[1.0, 2.0]).shape(), (2, 1));
        assert_eq!(Matrix::row_vec(&[1.0, 2.0]).shape(), (1, 2));
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b);
        let expected = Matrix::from_vec(2, 2, vec![58.0, 64.0, 139.0, 154.0]).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        assert!(a.matmul(&Matrix::identity(4)).approx_eq(&a, 0.0));
        assert!(Matrix::identity(4).matmul(&a).approx_eq(&a, 0.0));
    }

    #[test]
    fn blocked_matmul_matches_naive_above_delegation_threshold() {
        // Shapes chosen to exercise partial edge tiles in every dimension
        // and to exceed the small-product fallback to matmul_naive.
        for &(m, k, n) in &[(65, 70, 33), (128, 64, 64), (40, 200, 37)] {
            let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 13) as f64 - 6.0);
            let b = Matrix::from_fn(k, n, |r, c| ((r * 17 + c * 3) % 11) as f64 - 5.0);
            let blocked = a.matmul(&b);
            let naive = a.matmul_naive(&b);
            let tol = 1e-9 * naive.max_abs().max(1.0);
            assert!(blocked.approx_eq(&naive, tol), "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r as f64) - 2.0 * c as f64);
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
        assert_eq!(a.transpose().shape(), (5, 3));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]).unwrap();
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.frobenius_norm() - (30.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn concat_and_slice_round_trip() {
        let a = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        let b = Matrix::from_fn(3, 3, |r, c| 100.0 + (r * 3 + c) as f64);
        let cat = a.concat_cols(&b);
        assert_eq!(cat.shape(), (3, 5));
        assert!(cat.slice_cols(0, 2).approx_eq(&a, 0.0));
        assert!(cat.slice_cols(2, 3).approx_eq(&b, 0.0));

        let cat2 = Matrix::concat_cols_all(&[&a, &b]);
        assert!(cat2.approx_eq(&cat, 0.0));
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let g = Matrix::ones(2, 2);
        a.add_scaled(&g, 0.5);
        a.add_scaled(&g, 0.25);
        assert!(a.approx_eq(&Matrix::full(2, 2, 0.75), 1e-15));
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        let mut a = Matrix::ones(2, 2);
        assert!(a.all_finite());
        a[(0, 1)] = f64::NAN;
        assert!(!a.all_finite());
        a[(0, 1)] = f64::INFINITY;
        assert!(!a.all_finite());
    }

    #[test]
    fn rows_are_contiguous() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(a.row(1), &[3.0, 4.0, 5.0]);
    }
}
