//! Dense row-major `f64` matrices.
//!
//! This is the storage type underneath the autodiff engine in [`crate::tape`].
//! Model sizes in this project are tiny (hidden dimension 8, at most a few
//! hundred nodes), so the implementation favours clarity and exact `f64`
//! arithmetic over SIMD throughput. Shape errors are reported through
//! [`ShapeError`] from fallible constructors and checked (via `assert!`) in
//! the arithmetic kernels, where a mismatch is always a programmer error.

use std::fmt;

/// Error returned by fallible [`Matrix`] constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    pub message: String,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error: {}", self.message)
    }
}

impl std::error::Error for ShapeError {}

/// Row-block height of the tiled matmul kernels' register tile.
///
/// 2 (not the textbook 4): the baseline x86-64 target has 16 XMM registers,
/// and a 2×8 tile is 16 doubles = 8 XMM accumulators, leaving room for the
/// `a` broadcasts and the B-row loads. A 4×8 tile (32 doubles) spills the
/// accumulators to the stack every `k` iteration and measured *slower* than
/// the naive loop at every size (BENCH_pr4 calibration).
const MATMUL_MR: usize = 2;
/// Column width of the tiled matmul kernels' register tile: `MR × NR`
/// accumulators stay in registers across the whole `k` loop.
const MATMUL_NR: usize = 8;

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// An `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// An `rows × cols` matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![1.0; rows * cols] }
    }

    /// An `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError {
                message: format!("data length {} does not match {rows}x{cols} = {}", data.len(), rows * cols),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// A column vector (`n × 1`) built from a slice.
    pub fn col_vec(values: &[f64]) -> Self {
        Matrix { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// A row vector (`1 × n`) built from a slice.
    pub fn row_vec(values: &[f64]) -> Self {
        Matrix { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major view of the underlying data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major view of the underlying data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major data vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// A single row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable access to a single row.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs` via the size-adaptive dispatcher.
    ///
    /// Products below [`Self::MATMUL_DISPATCH_THRESHOLD`] flops run the
    /// unpacked register-tiled kernel of [`Self::matmul_chunked_into`] — at
    /// those sizes B is cache-resident, so repacking it into panels is pure
    /// overhead. Larger products run the packed-B register-tiled kernel of
    /// [`Self::matmul_packed_into`]. Per output entry every kernel
    /// accumulates over `k` in ascending order with identical arithmetic
    /// (including the `a == 0.0` skip), so results match bit-for-bit with
    /// the reference [`Self::matmul_naive`] — the kernel-equivalence
    /// property test and the differential oracle pin this.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Dispatch boundary of [`Self::matmul`], in multiply-adds (`m·k·n`).
    ///
    /// Calibrated on the bench_summary crossover table (see BENCH_pr4.json):
    /// the packed kernel's B-panel repack pays for itself once B no longer
    /// fits the L1/L2 working set — measured between 64³ (≈0.26 Mflop,
    /// unpacked still ahead) and 128³ (≈2.1 Mflop, packed ahead) on the
    /// reference container, so the boundary sits at 0.5 Mflop. Below it the
    /// unpacked register-tiled kernel wins or ties at every measured shape.
    pub const MATMUL_DISPATCH_THRESHOLD: usize = 512 * 1024;

    /// Minimum contraction depth for the packed kernel. The `O(k·n)` panel
    /// repack amortizes over the `k` loop, so shallow-`k` products (e.g.
    /// `200×16 · 16×200`, which clears the flop threshold on width alone)
    /// would pay the repack without reusing the panels enough to win —
    /// measured ~0.9x vs naive. Those stay on the unpacked kernel.
    pub const MATMUL_PACK_MIN_K: usize = 32;

    /// Like [`Self::matmul`], but writes the product into `out`
    /// (overwriting every entry) instead of allocating. `out` must already
    /// have shape `rows × rhs.cols`; its prior contents are ignored.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(out.shape(), (self.rows, rhs.cols), "matmul_into output shape mismatch");
        let (m, kd, n) = (self.rows, self.cols, rhs.cols);
        if m * kd * n < Self::MATMUL_DISPATCH_THRESHOLD || kd < Self::MATMUL_PACK_MIN_K {
            self.matmul_chunked_into(rhs, out);
        } else {
            self.matmul_packed_into(rhs, out);
        }
    }

    /// Matrix product `self · rhs` via the straightforward i-k-j loop.
    ///
    /// Kept as the reference implementation for the dispatching
    /// [`Self::matmul`] kernel's equivalence property test, and as the
    /// faster path for products below the dispatch threshold.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_naive_into(rhs, &mut out);
        out
    }

    fn matmul_naive_into(&self, rhs: &Matrix, out: &mut Matrix) {
        out.fill(0.0);
        // i-k-j loop order keeps the inner loop contiguous over both `rhs`
        // and `out` rows, which matters even at these small sizes.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(rrow.iter()) {
                    *o += a * b;
                }
            }
        }
    }

    /// The below-threshold kernel: the same [`MATMUL_MR`]`×`[`MATMUL_NR`]
    /// register tile as the packed kernel, but reading B rows in place —
    /// at these sizes B is already cache-resident, so packing would only
    /// add traffic. The win over the plain i-k-j loop is that each output
    /// tile accumulates in registers across the whole `k` range instead of
    /// re-loading and re-storing the output row every `k` step (~2× on the
    /// model's own `n≤16`-wide products; see BENCH_pr4.json). For each
    /// output entry the `k` loop runs the full range in ascending order
    /// with the same `a == 0.0` skip as the naive loop, so results are
    /// bit-for-bit identical.
    fn matmul_chunked_into(&self, rhs: &Matrix, out: &mut Matrix) {
        const MR: usize = MATMUL_MR;
        const NR: usize = MATMUL_NR;
        let (m, kd, n) = (self.rows, self.cols, rhs.cols);
        if n == 1 {
            // Column output: one dot product per row. The general tile path
            // pays per-`k` slice overhead for a single lane; this runs the
            // same ascending-`k` loop (with the same skip) directly.
            for i in 0..m {
                let arow = &self.data[i * kd..(i + 1) * kd];
                let mut acc = 0.0;
                for (&a, &b) in arow.iter().zip(rhs.data.iter()) {
                    if a == 0.0 {
                        continue;
                    }
                    acc += a * b;
                }
                out.data[i] = acc;
            }
            return;
        }
        let mut j0 = 0;
        while j0 < n {
            let w = NR.min(n - j0);
            let mut i = 0;
            if w == NR {
                while i + MR <= m {
                    let mut acc = [[0.0f64; NR]; MR];
                    for k in 0..kd {
                        let brow = &rhs.data[k * n + j0..k * n + j0 + NR];
                        for (r, accr) in acc.iter_mut().enumerate() {
                            let a = self.data[(i + r) * kd + k];
                            if a == 0.0 {
                                continue;
                            }
                            for (o, &b) in accr.iter_mut().zip(brow.iter()) {
                                *o += a * b;
                            }
                        }
                    }
                    for (r, accr) in acc.iter().enumerate() {
                        out.data[(i + r) * n + j0..(i + r) * n + j0 + NR].copy_from_slice(accr);
                    }
                    i += MR;
                }
            }
            // leftover rows, and the ragged right edge (w < NR)
            while i < m {
                let mut acc = [0.0f64; NR];
                for k in 0..kd {
                    let a = self.data[i * kd + k];
                    if a == 0.0 {
                        continue;
                    }
                    let brow = &rhs.data[k * n + j0..k * n + j0 + w];
                    for (o, &b) in acc.iter_mut().zip(brow.iter()) {
                        *o += a * b;
                    }
                }
                out.data[i * n + j0..i * n + j0 + w].copy_from_slice(&acc[..w]);
                i += 1;
            }
            j0 += NR;
        }
    }

    /// The above-threshold kernel: `rhs` is repacked into zero-padded
    /// panels of [`MATMUL_NR`] contiguous columns, then each `MATMUL_MR`-row
    /// block of A is multiplied against a panel with the accumulator tile
    /// held in registers. One panel (`k × NR` doubles) stays L1-resident
    /// while A rows stream past it, and each loaded B cache line feeds
    /// `MR` rows of output instead of one — the classic BLIS shape, minus
    /// k-blocking, which would reorder the per-entry accumulation and break
    /// bit-identity with the naive kernel. For each output entry the `k`
    /// loop runs the full range in ascending order with the same
    /// `a == 0.0` skip as the naive loop, so the arithmetic sequence is
    /// identical. Padded panel columns are computed and discarded.
    fn matmul_packed_into(&self, rhs: &Matrix, out: &mut Matrix) {
        const MR: usize = MATMUL_MR;
        const NR: usize = MATMUL_NR;
        let (m, kd, n) = (self.rows, self.cols, rhs.cols);
        let panels = n.div_ceil(NR);
        let mut packed = vec![0.0f64; panels * kd * NR];
        for p in 0..panels {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            let panel = &mut packed[p * kd * NR..(p + 1) * kd * NR];
            for k in 0..kd {
                panel[k * NR..k * NR + w].copy_from_slice(&rhs.data[k * n + j0..k * n + j0 + w]);
            }
        }
        for p in 0..panels {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            let panel = &packed[p * kd * NR..(p + 1) * kd * NR];
            let mut i = 0;
            while i + MR <= m {
                let mut acc = [[0.0f64; NR]; MR];
                for k in 0..kd {
                    let brow = &panel[k * NR..k * NR + NR];
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let a = self.data[(i + r) * kd + k];
                        if a == 0.0 {
                            continue;
                        }
                        for (o, &b) in accr.iter_mut().zip(brow.iter()) {
                            *o += a * b;
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    out.data[(i + r) * n + j0..(i + r) * n + j0 + w].copy_from_slice(&accr[..w]);
                }
                i += MR;
            }
            // leftover rows: same panel, one accumulator row at a time
            while i < m {
                let mut acc = [0.0f64; NR];
                for k in 0..kd {
                    let a = self.data[i * kd + k];
                    if a == 0.0 {
                        continue;
                    }
                    let brow = &panel[k * NR..k * NR + NR];
                    for (o, &b) in acc.iter_mut().zip(brow.iter()) {
                        *o += a * b;
                    }
                }
                out.data[i * n + j0..i * n + j0 + w].copy_from_slice(&acc[..w]);
                i += 1;
            }
        }
    }

    /// `selfᵀ · rhs` without materializing the transpose, written into
    /// `out` (shape `self.cols × rhs.cols`), overwriting every entry.
    ///
    /// Bit-for-bit identical to `self.transpose().matmul(rhs)`: per output
    /// entry the contraction index (rows of both operands) runs in
    /// ascending order with the same `a == 0.0` skip, in the same
    /// register-tiled chunks as [`Self::matmul_chunked_into`]. This is the
    /// backward-pass kernel for `∂(A·B)/∂B = Aᵀ·G` — the transpose of a
    /// tall activation matrix is pure strided traffic, so fusing it away
    /// removes an allocation and a copy per matmul per backward step.
    pub fn matmul_at_b_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_at_b shape mismatch: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(out.shape(), (self.cols, rhs.cols), "matmul_at_b output shape mismatch");
        const MR: usize = MATMUL_MR;
        const NR: usize = MATMUL_NR;
        let (m, kd, n) = (self.cols, self.rows, rhs.cols);
        if n == 1 {
            // Gradient-of-bias/column shape (`Aᵀ·g` with `g` a column):
            // iterate `k` outermost so `self` streams row-sequentially; the
            // `m` partial sums (one per output entry) stay cache-hot. Per
            // output entry `k` still ascends with the same skip.
            out.data.fill(0.0);
            for k in 0..kd {
                let b = rhs.data[k];
                let arow = &self.data[k * m..(k + 1) * m];
                for (o, &a) in out.data.iter_mut().zip(arow.iter()) {
                    if a == 0.0 {
                        continue;
                    }
                    *o += a * b;
                }
            }
            return;
        }
        let mut j0 = 0;
        while j0 < n {
            let w = NR.min(n - j0);
            let mut i = 0;
            if w == NR {
                while i + MR <= m {
                    let mut acc = [[0.0f64; NR]; MR];
                    for k in 0..kd {
                        let brow = &rhs.data[k * n + j0..k * n + j0 + NR];
                        let arow = &self.data[k * m..(k + 1) * m];
                        for (r, accr) in acc.iter_mut().enumerate() {
                            let a = arow[i + r];
                            if a == 0.0 {
                                continue;
                            }
                            for (o, &b) in accr.iter_mut().zip(brow.iter()) {
                                *o += a * b;
                            }
                        }
                    }
                    for (r, accr) in acc.iter().enumerate() {
                        out.data[(i + r) * n + j0..(i + r) * n + j0 + NR].copy_from_slice(accr);
                    }
                    i += MR;
                }
            }
            while i < m {
                let mut acc = [0.0f64; NR];
                for k in 0..kd {
                    let a = self.data[k * m + i];
                    if a == 0.0 {
                        continue;
                    }
                    let brow = &rhs.data[k * n + j0..k * n + j0 + w];
                    for (o, &b) in acc.iter_mut().zip(brow.iter()) {
                        *o += a * b;
                    }
                }
                out.data[i * n + j0..i * n + j0 + w].copy_from_slice(&acc[..w]);
                i += 1;
            }
            j0 += NR;
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Transpose into `out` (shape `cols × rows`), overwriting every entry.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(out.shape(), (self.cols, self.rows), "transpose_into output shape mismatch");
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
    }

    /// Overwrites `self` with the contents of `src` (shapes must match).
    pub fn copy_from(&mut self, src: &Matrix) {
        assert_eq!(self.shape(), src.shape(), "copy_from shape mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// Entry-wise binary combination; shapes must match.
    pub fn zip_with(&self, rhs: &Matrix, mut f: impl FnMut(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip_with shape mismatch");
        let data = self.data.iter().zip(rhs.data.iter()).map(|(&a, &b)| f(a, b)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Entry-wise binary combination into `out`, overwriting every entry.
    pub fn zip_with_into(&self, rhs: &Matrix, out: &mut Matrix, mut f: impl FnMut(f64, f64) -> f64) {
        assert_eq!(self.shape(), rhs.shape(), "zip_with_into shape mismatch");
        assert_eq!(self.shape(), out.shape(), "zip_with_into output shape mismatch");
        for ((o, &a), &b) in out.data.iter_mut().zip(self.data.iter()).zip(rhs.data.iter()) {
            *o = f(a, b);
        }
    }

    /// Entry-wise map into `out`, overwriting every entry.
    pub fn map_into(&self, out: &mut Matrix, mut f: impl FnMut(f64) -> f64) {
        assert_eq!(self.shape(), out.shape(), "map_into output shape mismatch");
        for (o, &a) in out.data.iter_mut().zip(self.data.iter()) {
            *o = f(a);
        }
    }

    /// Entry-wise sum.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Entry-wise difference.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Hadamard (entry-wise) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// In-place `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// In-place `self += scale * rhs`.
    pub fn add_scaled(&mut self, rhs: &Matrix, scale: f64) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += scale * b;
        }
    }

    /// Entry-wise map.
    pub fn map(&self, f: impl FnMut(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().copied().map(f).collect() }
    }

    /// Scalar multiple.
    pub fn scale(&self, k: f64) -> Matrix {
        self.map(|x| x * k)
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all entries (0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Fills the matrix with a constant.
    pub fn fill(&mut self, value: f64) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Horizontal concatenation `[self | rhs]`.
    pub fn concat_cols(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "concat_cols row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Horizontal concatenation of many matrices with equal row counts.
    pub fn concat_cols_all(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_cols_all needs at least one part");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "concat_cols_all row mismatch");
                out.row_mut(r)[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Extracts columns `[start, start+len)` into a new matrix.
    pub fn slice_cols(&self, start: usize, len: usize) -> Matrix {
        assert!(start + len <= self.cols, "slice_cols out of range");
        Matrix::from_fn(self.rows, len, |r, c| self[(r, start + c)])
    }

    /// `true` when every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Entry-wise approximate equality within `tol`.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f64) -> bool {
        self.shape() == rhs.shape()
            && self.data.iter().zip(rhs.data.iter()).all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_have_expected_shapes() {
        assert_eq!(Matrix::zeros(2, 3).shape(), (2, 3));
        assert_eq!(Matrix::ones(1, 4).sum(), 4.0);
        assert_eq!(Matrix::identity(3).sum(), 3.0);
        assert_eq!(Matrix::full(2, 2, 2.5).sum(), 10.0);
        assert_eq!(Matrix::col_vec(&[1.0, 2.0]).shape(), (2, 1));
        assert_eq!(Matrix::row_vec(&[1.0, 2.0]).shape(), (1, 2));
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b);
        let expected = Matrix::from_vec(2, 2, vec![58.0, 64.0, 139.0, 154.0]).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        assert!(a.matmul(&Matrix::identity(4)).approx_eq(&a, 0.0));
        assert!(Matrix::identity(4).matmul(&a).approx_eq(&a, 0.0));
    }

    #[test]
    fn packed_matmul_matches_naive_above_dispatch_threshold() {
        // Shapes above MATMUL_DISPATCH_THRESHOLD, chosen to exercise partial
        // register tiles in both the row (m % MR) and panel (n % NR) edges.
        for &(m, k, n) in &[(65, 70, 130), (128, 64, 64), (40, 200, 37)] {
            let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 13) as f64 - 6.0);
            let b = Matrix::from_fn(k, n, |r, c| ((r * 17 + c * 3) % 11) as f64 - 5.0);
            let blocked = a.matmul(&b);
            let naive = a.matmul_naive(&b);
            let tol = 1e-9 * naive.max_abs().max(1.0);
            assert!(blocked.approx_eq(&naive, tol), "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r as f64) - 2.0 * c as f64);
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
        assert_eq!(a.transpose().shape(), (5, 3));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]).unwrap();
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.frobenius_norm() - (30.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn concat_and_slice_round_trip() {
        let a = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        let b = Matrix::from_fn(3, 3, |r, c| 100.0 + (r * 3 + c) as f64);
        let cat = a.concat_cols(&b);
        assert_eq!(cat.shape(), (3, 5));
        assert!(cat.slice_cols(0, 2).approx_eq(&a, 0.0));
        assert!(cat.slice_cols(2, 3).approx_eq(&b, 0.0));

        let cat2 = Matrix::concat_cols_all(&[&a, &b]);
        assert!(cat2.approx_eq(&cat, 0.0));
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let g = Matrix::ones(2, 2);
        a.add_scaled(&g, 0.5);
        a.add_scaled(&g, 0.25);
        assert!(a.approx_eq(&Matrix::full(2, 2, 0.75), 1e-15));
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        let mut a = Matrix::ones(2, 2);
        assert!(a.all_finite());
        a[(0, 1)] = f64::NAN;
        assert!(!a.all_finite());
        a[(0, 1)] = f64::INFINITY;
        assert!(!a.all_finite());
    }

    #[test]
    fn rows_are_contiguous() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(a.row(1), &[3.0, 4.0, 5.0]);
    }
}
