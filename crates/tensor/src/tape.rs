//! Tape-based reverse-mode automatic differentiation.
//!
//! The engine is define-by-run: a [`Tape`] records every operation performed
//! on [`Var`] handles during a forward pass, and [`Var::backward`] replays the
//! tape in reverse, accumulating gradients into a [`ParamStore`]. Trainable
//! parameters live in the store (not on the tape) so they persist across
//! forward passes; a fresh tape is built per training step (or per BPTT
//! window — a single tape may span many time steps, which is how the POSHGNN
//! trainer backpropagates through its recurrent preservation gate).
//!
//! Node ids are assigned in creation order, so the id order is already a
//! topological order of the computation graph and the backward pass is a
//! simple reverse iteration.

use std::cell::RefCell;
use std::rc::Rc;

use crate::matrix::Matrix;
use crate::sparse::CsrAdj;

/// Identifier of a trainable parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

struct Slot {
    name: String,
    value: Matrix,
    grad: Matrix,
    /// Adam first-moment accumulator.
    m: Matrix,
    /// Adam second-moment accumulator.
    v: Matrix,
}

/// Storage for trainable parameters and their gradient/optimizer state.
#[derive(Default)]
pub struct ParamStore {
    slots: Vec<Slot>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new parameter initialized to `value`.
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let (r, c) = value.shape();
        self.slots.push(Slot {
            name: name.into(),
            grad: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
            value,
        });
        ParamId(self.slots.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn scalar_count(&self) -> usize {
        self.slots.iter().map(|s| s.value.len()).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.slots[id.0].value
    }

    /// Mutable access to a parameter value (e.g. for manual initialization).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.slots[id.0].value
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.slots[id.0].grad
    }

    /// Registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.slots[id.0].name
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for s in &mut self.slots {
            s.grad.fill(0.0);
        }
    }

    /// Global L2 norm over all gradients.
    pub fn grad_norm(&self) -> f64 {
        self.slots
            .iter()
            .map(|s| {
                let n = s.grad.frobenius_norm();
                n * n
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Rescales all gradients so the global norm does not exceed `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f64) -> f64 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let k = max_norm / norm;
            for s in &mut self.slots {
                let scaled = s.grad.scale(k);
                s.grad = scaled;
            }
        }
        norm
    }

    pub(crate) fn accumulate_grad(&mut self, id: ParamId, g: &Matrix) {
        self.slots[id.0].grad.add_assign(g);
    }

    pub(crate) fn adam_state(&mut self, id: ParamId) -> (&mut Matrix, &mut Matrix, &mut Matrix, &Matrix) {
        let s = &mut self.slots[id.0];
        (&mut s.value, &mut s.m, &mut s.v, &s.grad)
    }

    pub(crate) fn sgd_step_slot(&mut self, id: ParamId, lr: f64) {
        let s = &mut self.slots[id.0];
        let g = s.grad.clone();
        s.value.add_scaled(&g, -lr);
    }

    /// Iterator over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.slots.len()).map(ParamId)
    }

    /// Serializes all parameter values into a flat vector (for checkpointing).
    pub fn export_flat(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.scalar_count());
        for s in &self.slots {
            out.extend_from_slice(s.value.as_slice());
        }
        out
    }

    /// Restores parameter values from a flat vector produced by
    /// [`ParamStore::export_flat`]. Returns `false` when the length mismatches.
    pub fn import_flat(&mut self, flat: &[f64]) -> bool {
        if flat.len() != self.scalar_count() {
            return false;
        }
        let mut offset = 0;
        for s in &mut self.slots {
            let n = s.value.len();
            s.value.as_mut_slice().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        }
        true
    }
}

enum Op {
    /// Leaf with no gradient flow.
    Const,
    /// Leaf that routes gradients into a [`ParamStore`] slot.
    Param(ParamId),
    Add(usize, usize),
    Sub(usize, usize),
    Hadamard(usize, usize),
    MatMul(usize, usize),
    Scale(usize, f64),
    AddScalar(usize),
    Relu(usize),
    Sigmoid(usize),
    Tanh(usize),
    Ln(usize),
    Exp(usize),
    Sum(usize),
    Mean(usize),
    Transpose(usize),
    /// Horizontal concatenation; stores the source ids and their widths.
    ConcatCols(Vec<(usize, usize)>),
    /// `a (R×C) + broadcast(b (1×C))`.
    RowBroadcastAdd(usize, usize),
    /// Complement `1 - a`.
    OneMinus(usize),
    /// SpMM `A · x` where `A` is the sparse operand at the given registry
    /// index and `x` the dense node.
    Spmm(usize, usize),
}

struct Node {
    value: Matrix,
    op: Op,
}

/// A sparse operand registered on the tape, with its transpose computed
/// lazily (at most once per tape) for the backward pass.
struct SparseSlot {
    mat: Rc<CsrAdj>,
    transpose: RefCell<Option<Rc<CsrAdj>>>,
}

impl SparseSlot {
    fn transposed(&self) -> Rc<CsrAdj> {
        self.transpose.borrow_mut().get_or_insert_with(|| Rc::new(self.mat.transpose())).clone()
    }
}

/// Records a computation graph for reverse-mode differentiation.
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
    sparse: RefCell<Vec<SparseSlot>>,
}

impl Tape {
    /// A fresh, empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// `true` when no nodes are recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    fn push(&self, value: Matrix, op: Op) -> Var<'_> {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { value, op });
        Var { tape: self, id: nodes.len() - 1 }
    }

    /// Records a constant leaf (no gradient flows into it).
    pub fn constant(&self, value: Matrix) -> Var<'_> {
        self.push(value, Op::Const)
    }

    /// Records a parameter leaf; gradients accumulate into `store` on
    /// [`Var::backward`].
    pub fn param<'t>(&'t self, store: &ParamStore, id: ParamId) -> Var<'t> {
        self.push(store.value(id).clone(), Op::Param(id))
    }

    /// Registers a sparse operand for use in [`SparseVar::matmul`].
    ///
    /// The matrix itself is differentiation-constant (like
    /// [`Tape::constant`]): gradients flow through the dense operand of an
    /// SpMM, never into the sparse values. Registering is cheap (an `Rc`
    /// clone); the same handle can left-multiply many nodes, and the
    /// transpose needed by the backward pass is computed at most once.
    pub fn sparse(&self, mat: Rc<CsrAdj>) -> SparseVar<'_> {
        let mut sparse = self.sparse.borrow_mut();
        sparse.push(SparseSlot { mat, transpose: RefCell::new(None) });
        SparseVar { tape: self, idx: sparse.len() - 1 }
    }

    /// Horizontal concatenation of several vars with equal row counts.
    pub fn concat_cols<'t>(&'t self, parts: &[Var<'t>]) -> Var<'t> {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        let (value, meta) = {
            let nodes = self.nodes.borrow();
            let mats: Vec<&Matrix> = parts.iter().map(|v| &nodes[v.id].value).collect();
            let meta: Vec<(usize, usize)> = parts.iter().map(|v| (v.id, nodes[v.id].value.cols())).collect();
            (Matrix::concat_cols_all(&mats), meta)
        };
        self.push(value, Op::ConcatCols(meta))
    }

    fn unary(&self, a: Var<'_>, f: impl FnOnce(&Matrix) -> Matrix, op: impl FnOnce(usize) -> Op) -> Var<'_> {
        let value = f(&self.nodes.borrow()[a.id].value);
        self.push(value, op(a.id))
    }

    fn binary(
        &self,
        a: Var<'_>,
        b: Var<'_>,
        f: impl FnOnce(&Matrix, &Matrix) -> Matrix,
        op: impl FnOnce(usize, usize) -> Op,
    ) -> Var<'_> {
        let value = {
            let nodes = self.nodes.borrow();
            f(&nodes[a.id].value, &nodes[b.id].value)
        };
        self.push(value, op(a.id, b.id))
    }
}

/// Handle to a sparse operand registered on a [`Tape`] via [`Tape::sparse`].
///
/// Unlike [`Var`], this is not a node: it holds no dense value and receives
/// no gradient. Its only operation is left-multiplying a dense node
/// ([`SparseVar::matmul`]), which records an SpMM node whose backward pass
/// routes `Aᵀ·G` into the dense operand.
#[derive(Clone, Copy)]
pub struct SparseVar<'t> {
    tape: &'t Tape,
    idx: usize,
}

impl<'t> SparseVar<'t> {
    /// Shape of the sparse operand.
    pub fn shape(&self) -> (usize, usize) {
        self.tape.sparse.borrow()[self.idx].mat.shape()
    }

    /// Number of stored entries of the sparse operand.
    pub fn nnz(&self) -> usize {
        self.tape.sparse.borrow()[self.idx].mat.nnz()
    }

    /// SpMM node `A · x`: sparse-times-dense at O(nnz · cols) instead of
    /// the dense product's O(rows² · cols).
    pub fn matmul(self, x: Var<'t>) -> Var<'t> {
        let value = {
            let sparse = self.tape.sparse.borrow();
            let nodes = self.tape.nodes.borrow();
            sparse[self.idx].mat.matmul_dense(&nodes[x.id].value)
        };
        self.tape.push(value, Op::Spmm(self.idx, x.id))
    }
}

/// A linear operator usable on a tape by left-multiplication — the tape-level
/// counterpart of [`crate::sparse::LinOp`].
///
/// Implemented by dense [`Var`] nodes (recording a `MatMul`) and by
/// [`SparseVar`] operands (recording an `Spmm`), so graph aggregation and the
/// occlusion penalty can be written once and run on either representation.
pub trait TapeLinOp<'t> {
    /// `self · x`, recorded on the tape.
    fn left_matmul(&self, x: Var<'t>) -> Var<'t>;
}

impl<'t> TapeLinOp<'t> for Var<'t> {
    fn left_matmul(&self, x: Var<'t>) -> Var<'t> {
        self.matmul(x)
    }
}

impl<'t> TapeLinOp<'t> for SparseVar<'t> {
    fn left_matmul(&self, x: Var<'t>) -> Var<'t> {
        self.matmul(x)
    }
}

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy)]
pub struct Var<'t> {
    tape: &'t Tape,
    id: usize,
}

impl<'t> Var<'t> {
    /// A snapshot of this node's value.
    pub fn value(&self) -> Matrix {
        self.tape.nodes.borrow()[self.id].value.clone()
    }

    /// Shape of this node's value.
    pub fn shape(&self) -> (usize, usize) {
        self.tape.nodes.borrow()[self.id].value.shape()
    }

    /// Scalar value of a `1×1` node.
    pub fn scalar(&self) -> f64 {
        let nodes = self.tape.nodes.borrow();
        let v = &nodes[self.id].value;
        assert_eq!(v.shape(), (1, 1), "scalar() on non-scalar node");
        v[(0, 0)]
    }

    /// Matrix product.
    pub fn matmul(self, rhs: Var<'t>) -> Var<'t> {
        self.tape.binary(self, rhs, |a, b| a.matmul(b), Op::MatMul)
    }

    /// ReLU activation.
    pub fn relu(self) -> Var<'t> {
        self.tape.unary(self, |a| a.map(|x| if x > 0.0 { x } else { 0.0 }), Op::Relu)
    }

    /// Logistic sigmoid activation.
    pub fn sigmoid(self) -> Var<'t> {
        self.tape.unary(self, |a| a.map(|x| 1.0 / (1.0 + (-x).exp())), Op::Sigmoid)
    }

    /// Hyperbolic tangent activation.
    pub fn tanh(self) -> Var<'t> {
        self.tape.unary(self, |a| a.map(f64::tanh), Op::Tanh)
    }

    /// Natural logarithm, entry-wise. Inputs must be positive.
    pub fn ln(self) -> Var<'t> {
        self.tape.unary(self, |a| a.map(f64::ln), Op::Ln)
    }

    /// Exponential, entry-wise.
    pub fn exp(self) -> Var<'t> {
        self.tape.unary(self, |a| a.map(f64::exp), Op::Exp)
    }

    /// Sum of all entries as a `1×1` node.
    pub fn sum(self) -> Var<'t> {
        self.tape.unary(self, |a| Matrix::from_vec(1, 1, vec![a.sum()]).unwrap(), Op::Sum)
    }

    /// Mean of all entries as a `1×1` node.
    pub fn mean(self) -> Var<'t> {
        self.tape.unary(self, |a| Matrix::from_vec(1, 1, vec![a.mean()]).unwrap(), Op::Mean)
    }

    /// Scalar multiple.
    pub fn scale(self, k: f64) -> Var<'t> {
        self.tape.unary(self, |a| a.scale(k), |id| Op::Scale(id, k))
    }

    /// Adds a scalar constant to every entry (no gradient w.r.t. the scalar).
    pub fn add_scalar(self, k: f64) -> Var<'t> {
        self.tape.unary(self, |a| a.map(|x| x + k), Op::AddScalar)
    }

    /// `1 - self`, entry-wise.
    pub fn one_minus(self) -> Var<'t> {
        self.tape.unary(self, |a| a.map(|x| 1.0 - x), Op::OneMinus)
    }

    /// Transpose.
    pub fn t(self) -> Var<'t> {
        self.tape.unary(self, Matrix::transpose, Op::Transpose)
    }

    /// Adds a `1×C` bias row to every row of an `R×C` matrix.
    pub fn add_row_broadcast(self, bias: Var<'t>) -> Var<'t> {
        self.tape.binary(
            self,
            bias,
            |a, b| {
                assert_eq!(b.rows(), 1, "bias must be a row vector");
                assert_eq!(a.cols(), b.cols(), "bias width mismatch");
                let mut out = a.clone();
                for r in 0..out.rows() {
                    for c in 0..out.cols() {
                        out[(r, c)] += b[(0, c)];
                    }
                }
                out
            },
            Op::RowBroadcastAdd,
        )
    }

    /// Runs the backward pass from this scalar node, accumulating parameter
    /// gradients into `store`.
    ///
    /// # Panics
    ///
    /// Panics when called on a non-`1×1` node.
    pub fn backward(self, store: &mut ParamStore) {
        let nodes = self.tape.nodes.borrow();
        assert_eq!(nodes[self.id].value.shape(), (1, 1), "backward() must start from a scalar loss node");
        let mut grads: Vec<Option<Matrix>> = vec![None; nodes.len()];
        grads[self.id] = Some(Matrix::ones(1, 1));

        for id in (0..=self.id).rev() {
            let g = match grads[id].take() {
                Some(g) => g,
                None => continue,
            };
            let node = &nodes[id];
            match &node.op {
                Op::Const => {}
                Op::Param(pid) => store.accumulate_grad(*pid, &g),
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, &g, &nodes);
                    accumulate(&mut grads, *b, &g, &nodes);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, &g, &nodes);
                    let neg = g.scale(-1.0);
                    accumulate(&mut grads, *b, &neg, &nodes);
                }
                Op::Hadamard(a, b) => {
                    let ga = g.hadamard(&nodes[*b].value);
                    let gb = g.hadamard(&nodes[*a].value);
                    accumulate(&mut grads, *a, &ga, &nodes);
                    accumulate(&mut grads, *b, &gb, &nodes);
                }
                Op::MatMul(a, b) => {
                    // Skip the (potentially N×N) gradient products entirely
                    // when the parent is a constant.
                    if !matches!(nodes[*a].op, Op::Const) {
                        let ga = g.matmul(&nodes[*b].value.transpose());
                        accumulate(&mut grads, *a, &ga, &nodes);
                    }
                    if !matches!(nodes[*b].op, Op::Const) {
                        let gb = nodes[*a].value.transpose().matmul(&g);
                        accumulate(&mut grads, *b, &gb, &nodes);
                    }
                }
                Op::Scale(a, k) => {
                    let ga = g.scale(*k);
                    accumulate(&mut grads, *a, &ga, &nodes);
                }
                Op::AddScalar(a) => accumulate(&mut grads, *a, &g, &nodes),
                Op::OneMinus(a) => {
                    let ga = g.scale(-1.0);
                    accumulate(&mut grads, *a, &ga, &nodes);
                }
                Op::Relu(a) => {
                    let ga = g.zip_with(&nodes[*a].value, |gi, x| if x > 0.0 { gi } else { 0.0 });
                    accumulate(&mut grads, *a, &ga, &nodes);
                }
                Op::Sigmoid(a) => {
                    let y = &node.value;
                    let ga = g.zip_with(y, |gi, yi| gi * yi * (1.0 - yi));
                    accumulate(&mut grads, *a, &ga, &nodes);
                }
                Op::Tanh(a) => {
                    let y = &node.value;
                    let ga = g.zip_with(y, |gi, yi| gi * (1.0 - yi * yi));
                    accumulate(&mut grads, *a, &ga, &nodes);
                }
                Op::Ln(a) => {
                    let ga = g.zip_with(&nodes[*a].value, |gi, x| gi / x);
                    accumulate(&mut grads, *a, &ga, &nodes);
                }
                Op::Exp(a) => {
                    let y = &node.value;
                    let ga = g.zip_with(y, |gi, yi| gi * yi);
                    accumulate(&mut grads, *a, &ga, &nodes);
                }
                Op::Sum(a) => {
                    let (r, c) = nodes[*a].value.shape();
                    let ga = Matrix::full(r, c, g[(0, 0)]);
                    accumulate(&mut grads, *a, &ga, &nodes);
                }
                Op::Mean(a) => {
                    let (r, c) = nodes[*a].value.shape();
                    let n = (r * c).max(1) as f64;
                    let ga = Matrix::full(r, c, g[(0, 0)] / n);
                    accumulate(&mut grads, *a, &ga, &nodes);
                }
                Op::Transpose(a) => {
                    let ga = g.transpose();
                    accumulate(&mut grads, *a, &ga, &nodes);
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0;
                    for (src, width) in parts {
                        let slice = g.slice_cols(offset, *width);
                        accumulate(&mut grads, *src, &slice, &nodes);
                        offset += width;
                    }
                }
                Op::Spmm(s, x) => {
                    // d(A·X)/dX contracted with G is AᵀG; the sparse operand
                    // itself is a constant, so nothing else flows.
                    if !matches!(nodes[*x].op, Op::Const) {
                        let at = self.tape.sparse.borrow()[*s].transposed();
                        let gx = at.matmul_dense(&g);
                        accumulate(&mut grads, *x, &gx, &nodes);
                    }
                }
                Op::RowBroadcastAdd(a, b) => {
                    accumulate(&mut grads, *a, &g, &nodes);
                    // bias gradient: column-wise sum collapsed to one row.
                    let mut gb = Matrix::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            gb[(0, c)] += g[(r, c)];
                        }
                    }
                    accumulate(&mut grads, *b, &gb, &nodes);
                }
            }
        }
    }
}

fn accumulate(grads: &mut [Option<Matrix>], id: usize, g: &Matrix, nodes: &[Node]) {
    // Constants never need gradients; skipping them avoids materializing
    // N×N gradient matrices for adjacency constants during BPTT.
    if matches!(nodes[id].op, Op::Const) {
        return;
    }
    debug_assert_eq!(nodes[id].value.shape(), g.shape(), "gradient shape mismatch at node {id}");
    match &mut grads[id] {
        Some(existing) => existing.add_assign(g),
        slot @ None => *slot = Some(g.clone()),
    }
}

impl<'t> std::ops::Add for Var<'t> {
    type Output = Var<'t>;

    fn add(self, rhs: Var<'t>) -> Var<'t> {
        self.tape.binary(self, rhs, |a, b| a.add(b), Op::Add)
    }
}

impl<'t> std::ops::Sub for Var<'t> {
    type Output = Var<'t>;

    fn sub(self, rhs: Var<'t>) -> Var<'t> {
        self.tape.binary(self, rhs, |a, b| a.sub(b), Op::Sub)
    }
}

impl<'t> std::ops::Mul for Var<'t> {
    type Output = Var<'t>;

    /// Hadamard (entry-wise) product.
    fn mul(self, rhs: Var<'t>) -> Var<'t> {
        self.tape.binary(self, rhs, |a, b| a.hadamard(b), Op::Hadamard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(tape: &Tape, x: f64) -> Var<'_> {
        tape.constant(Matrix::from_vec(1, 1, vec![x]).unwrap())
    }

    #[test]
    fn add_mul_gradients() {
        // f(w) = sum(w * c + w), df/dw = c + 1
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_vec(1, 2, vec![2.0, -3.0]).unwrap());
        let tape = Tape::new();
        let wv = tape.param(&store, w);
        let c = tape.constant(Matrix::from_vec(1, 2, vec![5.0, 7.0]).unwrap());
        let loss = (wv * c + wv).sum();
        assert_eq!(loss.scalar(), 2.0 * 5.0 + 2.0 + (-3.0 * 7.0) + (-3.0));
        loss.backward(&mut store);
        assert!(store.grad(w).approx_eq(&Matrix::from_vec(1, 2, vec![6.0, 8.0]).unwrap(), 1e-12));
    }

    #[test]
    fn matmul_gradients_match_manual() {
        // f = sum(A·W), dW = Aᵀ·1
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap());
        let tape = Tape::new();
        let a = tape.constant(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap());
        let wv = tape.param(&store, w);
        let loss = a.matmul(wv).sum();
        loss.backward(&mut store);
        // Aᵀ·ones(2,2) = [[4,4],[6,6]]
        assert!(store.grad(w).approx_eq(&Matrix::from_vec(2, 2, vec![4.0, 4.0, 6.0, 6.0]).unwrap(), 1e-12));
    }

    #[test]
    fn sigmoid_gradient_at_zero_is_quarter() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 1));
        let tape = Tape::new();
        let loss = tape.param(&store, w).sigmoid().sum();
        assert!((loss.scalar() - 0.5).abs() < 1e-12);
        loss.backward(&mut store);
        assert!((store.grad(w)[(0, 0)] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn relu_blocks_negative_gradient() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_vec(1, 2, vec![3.0, -3.0]).unwrap());
        let tape = Tape::new();
        let loss = tape.param(&store, w).relu().sum();
        loss.backward(&mut store);
        assert!(store.grad(w).approx_eq(&Matrix::from_vec(1, 2, vec![1.0, 0.0]).unwrap(), 0.0));
    }

    #[test]
    fn tanh_gradient() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_vec(1, 1, vec![0.5]).unwrap());
        let tape = Tape::new();
        let loss = tape.param(&store, w).tanh().sum();
        loss.backward(&mut store);
        let expected = 1.0 - 0.5_f64.tanh().powi(2);
        assert!((store.grad(w)[(0, 0)] - expected).abs() < 1e-12);
    }

    #[test]
    fn reused_node_accumulates_gradient() {
        // f = sum(w + w), df/dw = 2
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::ones(2, 2));
        let tape = Tape::new();
        let wv = tape.param(&store, w);
        let loss = (wv + wv).sum();
        loss.backward(&mut store);
        assert!(store.grad(w).approx_eq(&Matrix::full(2, 2, 2.0), 0.0));
    }

    #[test]
    fn concat_routes_gradients_to_sources() {
        let mut store = ParamStore::new();
        let a = store.register("a", Matrix::ones(2, 2));
        let b = store.register("b", Matrix::ones(2, 3));
        let tape = Tape::new();
        let av = tape.param(&store, a);
        let bv = tape.param(&store, b);
        let cat = tape.concat_cols(&[av, bv]);
        assert_eq!(cat.shape(), (2, 5));
        // weight the two halves differently so routing errors are visible
        let mask = tape.constant(Matrix::from_fn(2, 5, |_, c| if c < 2 { 2.0 } else { 3.0 }));
        let loss = (cat * mask).sum();
        loss.backward(&mut store);
        assert!(store.grad(a).approx_eq(&Matrix::full(2, 2, 2.0), 0.0));
        assert!(store.grad(b).approx_eq(&Matrix::full(2, 3, 3.0), 0.0));
    }

    #[test]
    fn quadratic_form_gradient() {
        // f = rᵀ A r, df/dr = (A + Aᵀ) r
        let mut store = ParamStore::new();
        let r = store.register("r", Matrix::from_vec(2, 1, vec![1.0, 2.0]).unwrap());
        let a_mat = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let tape = Tape::new();
        let rv = tape.param(&store, r);
        let a = tape.constant(a_mat.clone());
        let loss = rv.t().matmul(a).matmul(rv).sum();
        assert_eq!(loss.scalar(), 4.0); // 2 * r0 * r1
        loss.backward(&mut store);
        let expected = a_mat.add(&a_mat.transpose()).matmul(store.value(r));
        assert!(store.grad(r).approx_eq(&expected, 1e-12));
    }

    #[test]
    fn row_broadcast_bias_gradient_sums_rows() {
        let mut store = ParamStore::new();
        let b = store.register("b", Matrix::zeros(1, 3));
        let tape = Tape::new();
        let x = tape.constant(Matrix::ones(4, 3));
        let bias = tape.param(&store, b);
        let loss = x.add_row_broadcast(bias).sum();
        loss.backward(&mut store);
        assert!(store.grad(b).approx_eq(&Matrix::full(1, 3, 4.0), 0.0));
    }

    #[test]
    fn one_minus_and_scale() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::full(1, 1, 0.3));
        let tape = Tape::new();
        let loss = tape.param(&store, w).one_minus().scale(5.0).sum();
        assert!((loss.scalar() - 3.5).abs() < 1e-12);
        loss.backward(&mut store);
        assert!((store.grad(w)[(0, 0)] + 5.0).abs() < 1e-12);
    }

    #[test]
    fn backward_ignores_constants() {
        let mut store = ParamStore::new();
        let tape = Tape::new();
        let loss = (scalar(&tape, 2.0) * scalar(&tape, 3.0)).sum();
        loss.backward(&mut store); // must not panic with empty store
        assert_eq!(loss.scalar(), 6.0);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_from_non_scalar_panics() {
        let mut store = ParamStore::new();
        let tape = Tape::new();
        let v = tape.constant(Matrix::ones(2, 2));
        v.backward(&mut store);
    }

    #[test]
    fn ln_and_exp_gradients() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::full(1, 1, 2.0));
        let tape = Tape::new();
        let loss = tape.param(&store, w).ln().sum();
        assert!((loss.scalar() - 2.0_f64.ln()).abs() < 1e-12);
        loss.backward(&mut store);
        assert!((store.grad(w)[(0, 0)] - 0.5).abs() < 1e-12);

        let mut store2 = ParamStore::new();
        let v = store2.register("v", Matrix::full(1, 1, 1.5));
        let tape2 = Tape::new();
        let loss2 = tape2.param(&store2, v).exp().sum();
        loss2.backward(&mut store2);
        assert!((store2.grad(v)[(0, 0)] - 1.5_f64.exp()).abs() < 1e-10);
    }

    #[test]
    fn spmm_forward_matches_dense_and_backward_routes_transpose() {
        // f = sum(A·X) with sparse A: dX = Aᵀ·1, same as the dense MatMul op.
        let a_dense = Matrix::from_vec(3, 3, vec![0.0, 2.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 3.0]).unwrap();
        let a_csr = Rc::new(CsrAdj::from_dense(&a_dense, 0.0));

        let mut store_sparse = ParamStore::new();
        let x_init = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64 - 2.0);
        let xs = store_sparse.register("x", x_init.clone());
        let tape = Tape::new();
        let a = tape.sparse(a_csr.clone());
        assert_eq!(a.shape(), (3, 3));
        assert_eq!(a.nnz(), 3);
        let xv = tape.param(&store_sparse, xs);
        let y = a.matmul(xv);
        assert!(y.value().approx_eq(&a_dense.matmul(&x_init), 1e-12));
        let loss = y.sum();
        loss.backward(&mut store_sparse);

        let mut store_dense = ParamStore::new();
        let xd = store_dense.register("x", x_init.clone());
        let tape2 = Tape::new();
        let ad = tape2.constant(a_dense.clone());
        let loss2 = ad.matmul(tape2.param(&store_dense, xd)).sum();
        loss2.backward(&mut store_dense);

        assert_eq!(loss.scalar(), loss2.scalar());
        assert!(store_sparse.grad(xs).approx_eq(store_dense.grad(xd), 1e-12));
    }

    #[test]
    fn spmm_through_constant_skips_gradient_work() {
        // A·c with c constant must not panic and must not produce gradients.
        let mut store = ParamStore::new();
        let tape = Tape::new();
        let a = tape.sparse(Rc::new(CsrAdj::from_dense(&Matrix::identity(2), 0.0)));
        let c = tape.constant(Matrix::ones(2, 1));
        let loss = a.matmul(c).sum();
        loss.backward(&mut store);
        assert_eq!(loss.scalar(), 2.0);
    }

    #[test]
    fn spmm_occlusion_quadratic_form_gradient() {
        // f = rᵀ(A·r) with sparse A: df/dr = (A + Aᵀ)r, the Eq. 4 penalty.
        let mut store = ParamStore::new();
        let r = store.register("r", Matrix::from_vec(2, 1, vec![1.0, 2.0]).unwrap());
        let a_mat = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let tape = Tape::new();
        let rv = tape.param(&store, r);
        let a = tape.sparse(Rc::new(CsrAdj::from_dense(&a_mat, 0.0)));
        let loss = rv.t().matmul(a.matmul(rv)).sum();
        assert_eq!(loss.scalar(), 4.0);
        loss.backward(&mut store);
        let expected = a_mat.add(&a_mat.transpose()).matmul(store.value(r));
        assert!(store.grad(r).approx_eq(&expected, 1e-12));
    }

    #[test]
    fn export_import_flat_round_trips() {
        let mut store = ParamStore::new();
        let a = store.register("a", Matrix::from_vec(1, 2, vec![1.0, 2.0]).unwrap());
        let b = store.register("b", Matrix::from_vec(2, 1, vec![3.0, 4.0]).unwrap());
        let flat = store.export_flat();
        assert_eq!(flat, vec![1.0, 2.0, 3.0, 4.0]);
        store.value_mut(a).fill(0.0);
        store.value_mut(b).fill(0.0);
        assert!(store.import_flat(&flat));
        assert_eq!(store.value(a).as_slice(), &[1.0, 2.0]);
        assert_eq!(store.value(b).as_slice(), &[3.0, 4.0]);
        assert!(!store.import_flat(&[1.0]));
    }

    #[test]
    fn grad_clipping_bounds_global_norm() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 2));
        let tape = Tape::new();
        let loss = tape.param(&store, w).scale(100.0).sum();
        loss.backward(&mut store);
        let pre = store.clip_grad_norm(1.0);
        assert!(pre > 100.0);
        assert!((store.grad_norm() - 1.0).abs() < 1e-9);
    }
}
