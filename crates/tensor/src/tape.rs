//! Tape-based reverse-mode automatic differentiation.
//!
//! The engine is define-by-run: a [`Tape`] records every operation performed
//! on [`Var`] handles during a forward pass, and [`Var::backward`] replays the
//! tape in reverse, accumulating gradients into a [`ParamStore`]. Trainable
//! parameters live in the store (not on the tape) so they persist across
//! forward passes; a fresh tape is built per training step (or per BPTT
//! window — a single tape may span many time steps, which is how the POSHGNN
//! trainer backpropagates through its recurrent preservation gate).
//!
//! Node ids are assigned in creation order, so the id order is already a
//! topological order of the computation graph and the backward pass is a
//! simple reverse iteration.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::matrix::Matrix;
use crate::sparse::CsrAdj;

/// Identifier of a trainable parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

struct Slot {
    name: String,
    value: Matrix,
    grad: Matrix,
    /// Adam first-moment accumulator.
    m: Matrix,
    /// Adam second-moment accumulator.
    v: Matrix,
}

/// Storage for trainable parameters and their gradient/optimizer state.
#[derive(Default)]
pub struct ParamStore {
    slots: Vec<Slot>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new parameter initialized to `value`.
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let (r, c) = value.shape();
        self.slots.push(Slot {
            name: name.into(),
            grad: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
            value,
        });
        ParamId(self.slots.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn scalar_count(&self) -> usize {
        self.slots.iter().map(|s| s.value.len()).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.slots[id.0].value
    }

    /// Mutable access to a parameter value (e.g. for manual initialization).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.slots[id.0].value
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.slots[id.0].grad
    }

    /// Registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.slots[id.0].name
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for s in &mut self.slots {
            s.grad.fill(0.0);
        }
    }

    /// Global L2 norm over all gradients.
    pub fn grad_norm(&self) -> f64 {
        self.slots
            .iter()
            .map(|s| {
                let n = s.grad.frobenius_norm();
                n * n
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Rescales all gradients so the global norm does not exceed `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f64) -> f64 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let k = max_norm / norm;
            for s in &mut self.slots {
                for x in s.grad.as_mut_slice() {
                    *x *= k;
                }
            }
        }
        norm
    }

    pub(crate) fn accumulate_grad(&mut self, id: ParamId, g: &Matrix) {
        self.slots[id.0].grad.add_assign(g);
    }

    pub(crate) fn adam_state(&mut self, id: ParamId) -> (&mut Matrix, &mut Matrix, &mut Matrix, &Matrix) {
        let s = &mut self.slots[id.0];
        (&mut s.value, &mut s.m, &mut s.v, &s.grad)
    }

    pub(crate) fn sgd_step_slot(&mut self, id: ParamId, lr: f64) {
        let s = &mut self.slots[id.0];
        let Slot { value, grad, .. } = s;
        value.add_scaled(grad, -lr);
    }

    /// Iterator over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.slots.len()).map(ParamId)
    }

    /// Serializes all parameter values into a flat vector (for checkpointing).
    pub fn export_flat(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.scalar_count());
        for s in &self.slots {
            out.extend_from_slice(s.value.as_slice());
        }
        out
    }

    /// Restores parameter values from a flat vector produced by
    /// [`ParamStore::export_flat`]. Returns `false` when the length mismatches.
    pub fn import_flat(&mut self, flat: &[f64]) -> bool {
        if flat.len() != self.scalar_count() {
            return false;
        }
        let mut offset = 0;
        for s in &mut self.slots {
            let n = s.value.len();
            s.value.as_mut_slice().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        }
        true
    }
}

/// The activation applied by the fused [`Var::sum_bias_act`] epilogue.
///
/// Mirrors the standalone activation ops entry-for-entry: each variant's
/// forward closure and gradient expression are byte-identical to the
/// corresponding `Var::relu`/`Var::sigmoid`/`Var::tanh` node, so fusing is
/// invisible to the differential oracles and the golden replay. (The ReLU
/// gradient masks on the *output* here, which is equivalent: `y > 0 ⟺
/// x > 0` for `y = relu(x)`.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Nonlinearity {
    /// Identity.
    None,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Nonlinearity {
    #[inline]
    fn apply(self, v: f64) -> f64 {
        match self {
            Nonlinearity::None => v,
            Nonlinearity::Relu => {
                if v > 0.0 {
                    v
                } else {
                    0.0
                }
            }
            Nonlinearity::Sigmoid => 1.0 / (1.0 + (-v).exp()),
            Nonlinearity::Tanh => v.tanh(),
        }
    }
}

enum Op {
    /// Leaf with no gradient flow.
    Const,
    /// Leaf that routes gradients into a [`ParamStore`] slot.
    Param(ParamId),
    Add(usize, usize),
    Sub(usize, usize),
    Hadamard(usize, usize),
    MatMul(usize, usize),
    Scale(usize, f64),
    AddScalar(usize),
    Relu(usize),
    Sigmoid(usize),
    Tanh(usize),
    Ln(usize),
    Exp(usize),
    Sum(usize),
    Mean(usize),
    Transpose(usize),
    /// Horizontal concatenation; stores the source ids and their widths.
    ConcatCols(Vec<(usize, usize)>),
    /// `a (R×C) + broadcast(b (1×C))`.
    RowBroadcastAdd(usize, usize),
    /// Fused `act((a + b) + broadcast(bias))` — the GCN layer epilogue.
    /// One node instead of three (`Add`, `RowBroadcastAdd`, activation),
    /// with identical per-entry arithmetic and gradient expressions.
    SumBiasAct(usize, usize, usize, Nonlinearity),
    /// Complement `1 - a`.
    OneMinus(usize),
    /// SpMM `A · x` where `A` is the sparse operand at the given registry
    /// index and `x` the dense node.
    Spmm(usize, usize),
    /// Fused preservation gate `m ⊙ ((1 − s) ⊙ a + s ⊙ b)` — one node
    /// instead of five (`OneMinus`, two `Hadamard`s, `Add`, mask
    /// `Hadamard`). Operand order: `(m, s, a, b)`.
    GateBlend(usize, usize, usize, usize),
    /// Fused `(a ⊙ b).sum() · k` — one `1×1` node instead of three
    /// (`Hadamard`, `Sum`, `Scale`).
    DotScale(usize, usize, f64),
    /// Fused `(a ⊙ b ⊙ c).sum() · k` — one `1×1` node instead of four
    /// (two `Hadamard`s, `Sum`, `Scale`).
    Dot3Scale(usize, usize, usize, f64),
    /// Fused `a.matmul(b).sum() · k` for a `1×N` row `a` and `N×1` column
    /// `b` — one `1×1` node instead of three (`MatMul`, `Sum`, `Scale`),
    /// replicating the small-matmul kernel's ascending dot with its
    /// `a == 0.0` skip.
    MatDotScale(usize, usize, f64),
}

/// A node's stored value: owned by the tape (and recycled into the buffer
/// pool on [`Tape::reset`]) or shared with the caller via `Rc` — the
/// zero-copy path for cached per-episode MIA matrices and recurrent episode
/// state, which would otherwise be cloned onto every step's tape.
enum Value {
    Owned(Matrix),
    Shared(Rc<Matrix>),
}

impl Value {
    fn mat(&self) -> &Matrix {
        match self {
            Value::Owned(m) => m,
            Value::Shared(m) => m,
        }
    }
}

struct Node {
    value: Value,
    op: Op,
}

/// Recycled matrix buffers, keyed by element count (a buffer freed by a
/// `rows × cols` node is reusable by any node of the same size, e.g. its
/// transpose). Every consumer overwrites every entry of a pooled buffer
/// before reading it, so recycling cannot change any computed value — the
/// pooled-vs-fresh-tape differential subject in `xr_check` pins this
/// bit-for-bit.
#[derive(Default)]
struct MatrixPool {
    free: HashMap<usize, Vec<Vec<f64>>, std::hash::BuildHasherDefault<SizeHasher>>,
}

/// Multiply-shift hasher for the pool's element-count keys. The pool sits
/// on the per-op hot path (every tape allocation and release hashes one
/// `usize`), where SipHash's per-hash setup is measurable; a single
/// multiply by a odd constant mixes the handful of distinct buffer sizes
/// more than well enough.
#[derive(Default)]
struct SizeHasher(u64);

impl std::hash::Hasher for SizeHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(8) ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_usize(&mut self, n: usize) {
        self.0 = (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

impl MatrixPool {
    /// A pooled `rows × cols` buffer with stale contents, if one is free.
    fn take(&mut self, rows: usize, cols: usize) -> Option<Matrix> {
        let buf = self.free.get_mut(&(rows * cols))?.pop()?;
        Some(Matrix::from_vec(rows, cols, buf).expect("pooled buffer length matches"))
    }

    fn put(&mut self, m: Matrix) {
        let buf = m.into_vec();
        if !buf.is_empty() {
            self.free.entry(buf.len()).or_default().push(buf);
        }
    }
}

/// A sparse operand registered on the tape, with its transpose computed
/// lazily (at most once per tape) for the backward pass.
struct SparseSlot {
    mat: Rc<CsrAdj>,
    transpose: RefCell<Option<Rc<CsrAdj>>>,
}

impl SparseSlot {
    fn transposed(&self) -> Rc<CsrAdj> {
        self.transpose.borrow_mut().get_or_insert_with(|| Rc::new(self.mat.transpose())).clone()
    }
}

/// Records a computation graph for reverse-mode differentiation.
///
/// Tapes are reusable arenas: [`Tape::reset`] clears the recorded graph
/// while keeping the node/sparse `Vec` capacity and recycling every owned
/// node value into an internal buffer pool, so a training loop that resets
/// one tape per episode stops round-tripping matrices through the global
/// allocator after its first episode.
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
    sparse: RefCell<Vec<SparseSlot>>,
    pool: RefCell<MatrixPool>,
    /// Memo of parameter leaves already on this tape (see [`Tape::param`]):
    /// a linear list, since models hold tens of parameters, not thousands.
    params: RefCell<Vec<(ParamId, usize)>>,
}

impl Tape {
    /// A fresh, empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// `true` when no nodes are recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Clears the recorded graph for reuse, retaining `Vec` capacity and
    /// recycling owned node values into the buffer pool. Any [`Var`] handle
    /// from before the reset is invalidated (using one will panic or refer
    /// to a new node, never to stale data from the previous graph's values
    /// — those buffers are only handed out fully overwritten).
    pub fn reset(&self) {
        let mut pool = self.pool.borrow_mut();
        for node in self.nodes.borrow_mut().drain(..) {
            if let Value::Owned(m) = node.value {
                pool.put(m);
            }
        }
        self.sparse.borrow_mut().clear();
        self.params.borrow_mut().clear();
    }

    /// A pooled (or, on pool miss, freshly allocated) `rows × cols` buffer.
    /// Contents are stale; the caller must overwrite every entry.
    fn alloc(&self, rows: usize, cols: usize) -> Matrix {
        self.pool.borrow_mut().take(rows, cols).unwrap_or_else(|| Matrix::zeros(rows, cols))
    }

    /// Returns a scratch matrix to the pool.
    fn release(&self, m: Matrix) {
        self.pool.borrow_mut().put(m);
    }

    fn push(&self, value: Matrix, op: Op) -> Var<'_> {
        self.push_value(Value::Owned(value), op)
    }

    fn push_value(&self, value: Value, op: Op) -> Var<'_> {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { value, op });
        Var { tape: self, id: nodes.len() - 1 }
    }

    /// Records a constant leaf (no gradient flows into it).
    pub fn constant(&self, value: Matrix) -> Var<'_> {
        self.push(value, Op::Const)
    }

    /// Records a constant leaf that shares `value` instead of copying it —
    /// the zero-copy path for matrices that outlive the tape, such as cached
    /// MIA outputs and the recurrent episode state.
    pub fn constant_rc(&self, value: Rc<Matrix>) -> Var<'_> {
        self.push_value(Value::Shared(value), Op::Const)
    }

    /// Records a constant leaf by copying `value` into a pooled buffer: the
    /// borrow path for constants the caller keeps. Unlike
    /// `constant(value.clone())` this performs no allocation once the pool
    /// is warm.
    pub fn constant_from(&self, value: &Matrix) -> Var<'_> {
        let mut buf = self.alloc(value.rows(), value.cols());
        buf.copy_from(value);
        self.push(buf, Op::Const)
    }

    /// Records an all-zero constant leaf in a pooled buffer — the
    /// allocation-free path for recurrent-state seeds.
    pub fn constant_zeros(&self, rows: usize, cols: usize) -> Var<'_> {
        let mut buf = self.alloc(rows, cols);
        buf.fill(0.0);
        self.push(buf, Op::Const)
    }

    /// Records a parameter leaf; gradients accumulate into `store` on
    /// [`Var::backward`].
    ///
    /// Repeat calls for the same `id` on one tape (e.g. a recurrent model
    /// re-reading its weights every BPTT step) return the node recorded by
    /// the first call instead of copying the value again — parameters only
    /// change between episodes, never within a tape. The merged node's
    /// gradient slot sums the same per-step contributions in the same
    /// order the store previously received them, and folding per-step
    /// store adds into one cannot flip any result bit (an IEEE addition
    /// can propagate a zero's sign only into another zero), so training is
    /// bit-identical to the unmemoized tape. Callers that mutate the store
    /// between steps must `reset` the tape (which clears the memo) first.
    pub fn param<'t>(&'t self, store: &ParamStore, id: ParamId) -> Var<'t> {
        if let Some(&(_, node)) = self.params.borrow().iter().find(|&&(pid, _)| pid == id) {
            return Var { tape: self, id: node };
        }
        let v = store.value(id);
        let mut buf = self.alloc(v.rows(), v.cols());
        buf.copy_from(v);
        let var = self.push(buf, Op::Param(id));
        self.params.borrow_mut().push((id, var.id));
        var
    }

    /// Registers a sparse operand for use in [`SparseVar::matmul`].
    ///
    /// The matrix itself is differentiation-constant (like
    /// [`Tape::constant`]): gradients flow through the dense operand of an
    /// SpMM, never into the sparse values. Registering is cheap (an `Rc`
    /// clone); the same handle can left-multiply many nodes, and the
    /// transpose needed by the backward pass is computed at most once.
    pub fn sparse(&self, mat: Rc<CsrAdj>) -> SparseVar<'_> {
        let mut sparse = self.sparse.borrow_mut();
        sparse.push(SparseSlot { mat, transpose: RefCell::new(None) });
        SparseVar { tape: self, idx: sparse.len() - 1 }
    }

    /// [`Tape::sparse`] with the operand's transpose supplied up front, for
    /// callers that cache `Aᵀ` across tapes (e.g. per-episode MIA slabs);
    /// the backward pass then allocates nothing for this operand. The
    /// supplied transpose must equal `mat.transpose()` exactly (same entry
    /// order), or gradients will be wrong.
    pub fn sparse_with_transpose(&self, mat: Rc<CsrAdj>, transpose: Rc<CsrAdj>) -> SparseVar<'_> {
        debug_assert_eq!(mat.shape(), (transpose.cols(), transpose.rows()), "transpose shape mismatch");
        let mut sparse = self.sparse.borrow_mut();
        sparse.push(SparseSlot { mat, transpose: RefCell::new(Some(transpose)) });
        SparseVar { tape: self, idx: sparse.len() - 1 }
    }

    /// Horizontal concatenation of several vars with equal row counts.
    pub fn concat_cols<'t>(&'t self, parts: &[Var<'t>]) -> Var<'t> {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        let (value, meta) = {
            let nodes = self.nodes.borrow();
            let rows = nodes[parts[0].id].value.mat().rows();
            let meta: Vec<(usize, usize)> =
                parts.iter().map(|v| (v.id, nodes[v.id].value.mat().cols())).collect();
            let cols = meta.iter().map(|&(_, w)| w).sum();
            let mut out = self.alloc(rows, cols);
            let mut offset = 0;
            for &(id, w) in &meta {
                let part = nodes[id].value.mat();
                assert_eq!(part.rows(), rows, "concat_cols row mismatch");
                for r in 0..rows {
                    out.row_mut(r)[offset..offset + w].copy_from_slice(part.row(r));
                }
                offset += w;
            }
            (out, meta)
        };
        self.push(value, Op::ConcatCols(meta))
    }

    /// Entry-wise unary op evaluated into a pooled buffer.
    fn unary_map(&self, a: Var<'_>, f: impl FnMut(f64) -> f64, op: Op) -> Var<'_> {
        let value = {
            let nodes = self.nodes.borrow();
            let am = nodes[a.id].value.mat();
            let mut out = self.alloc(am.rows(), am.cols());
            am.map_into(&mut out, f);
            out
        };
        self.push(value, op)
    }

    /// Entry-wise binary op evaluated into a pooled buffer.
    fn binary_zip(&self, a: Var<'_>, b: Var<'_>, f: impl FnMut(f64, f64) -> f64, op: Op) -> Var<'_> {
        let value = {
            let nodes = self.nodes.borrow();
            let (am, bm) = (nodes[a.id].value.mat(), nodes[b.id].value.mat());
            let mut out = self.alloc(am.rows(), am.cols());
            am.zip_with_into(bm, &mut out, f);
            out
        };
        self.push(value, op)
    }

    /// A pooled `1×1` node holding `x`.
    fn push_scalar(&self, x: f64, op: Op) -> Var<'_> {
        let mut out = self.alloc(1, 1);
        out.fill(x);
        self.push(out, op)
    }
}

/// Handle to a sparse operand registered on a [`Tape`] via [`Tape::sparse`].
///
/// Unlike [`Var`], this is not a node: it holds no dense value and receives
/// no gradient. Its only operation is left-multiplying a dense node
/// ([`SparseVar::matmul`]), which records an SpMM node whose backward pass
/// routes `Aᵀ·G` into the dense operand.
#[derive(Clone, Copy)]
pub struct SparseVar<'t> {
    tape: &'t Tape,
    idx: usize,
}

impl<'t> SparseVar<'t> {
    /// Shape of the sparse operand.
    pub fn shape(&self) -> (usize, usize) {
        self.tape.sparse.borrow()[self.idx].mat.shape()
    }

    /// Number of stored entries of the sparse operand.
    pub fn nnz(&self) -> usize {
        self.tape.sparse.borrow()[self.idx].mat.nnz()
    }

    /// SpMM node `A · x`: sparse-times-dense at O(nnz · cols) instead of
    /// the dense product's O(rows² · cols).
    pub fn matmul(self, x: Var<'t>) -> Var<'t> {
        let value = {
            let sparse = self.tape.sparse.borrow();
            let nodes = self.tape.nodes.borrow();
            let xm = nodes[x.id].value.mat();
            let mut out = self.tape.alloc(sparse[self.idx].mat.rows(), xm.cols());
            sparse[self.idx].mat.matmul_dense_into(xm, &mut out);
            out
        };
        self.tape.push(value, Op::Spmm(self.idx, x.id))
    }
}

/// A linear operator usable on a tape by left-multiplication — the tape-level
/// counterpart of [`crate::sparse::LinOp`].
///
/// Implemented by dense [`Var`] nodes (recording a `MatMul`) and by
/// [`SparseVar`] operands (recording an `Spmm`), so graph aggregation and the
/// occlusion penalty can be written once and run on either representation.
pub trait TapeLinOp<'t> {
    /// `self · x`, recorded on the tape.
    fn left_matmul(&self, x: Var<'t>) -> Var<'t>;
}

impl<'t> TapeLinOp<'t> for Var<'t> {
    fn left_matmul(&self, x: Var<'t>) -> Var<'t> {
        self.matmul(x)
    }
}

impl<'t> TapeLinOp<'t> for SparseVar<'t> {
    fn left_matmul(&self, x: Var<'t>) -> Var<'t> {
        self.matmul(x)
    }
}

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy)]
pub struct Var<'t> {
    tape: &'t Tape,
    id: usize,
}

impl<'t> Var<'t> {
    /// A snapshot of this node's value.
    pub fn value(&self) -> Matrix {
        self.tape.nodes.borrow()[self.id].value.mat().clone()
    }

    /// Shape of this node's value.
    pub fn shape(&self) -> (usize, usize) {
        self.tape.nodes.borrow()[self.id].value.mat().shape()
    }

    /// Scalar value of a `1×1` node.
    pub fn scalar(&self) -> f64 {
        let nodes = self.tape.nodes.borrow();
        let v = nodes[self.id].value.mat();
        assert_eq!(v.shape(), (1, 1), "scalar() on non-scalar node");
        v[(0, 0)]
    }

    /// Matrix product.
    pub fn matmul(self, rhs: Var<'t>) -> Var<'t> {
        let value = {
            let nodes = self.tape.nodes.borrow();
            let (am, bm) = (nodes[self.id].value.mat(), nodes[rhs.id].value.mat());
            let mut out = self.tape.alloc(am.rows(), bm.cols());
            am.matmul_into(bm, &mut out);
            out
        };
        self.tape.push(value, Op::MatMul(self.id, rhs.id))
    }

    /// ReLU activation.
    pub fn relu(self) -> Var<'t> {
        self.tape.unary_map(self, |x| if x > 0.0 { x } else { 0.0 }, Op::Relu(self.id))
    }

    /// Logistic sigmoid activation.
    pub fn sigmoid(self) -> Var<'t> {
        self.tape.unary_map(self, |x| 1.0 / (1.0 + (-x).exp()), Op::Sigmoid(self.id))
    }

    /// Hyperbolic tangent activation.
    pub fn tanh(self) -> Var<'t> {
        self.tape.unary_map(self, f64::tanh, Op::Tanh(self.id))
    }

    /// Natural logarithm, entry-wise. Inputs must be positive.
    pub fn ln(self) -> Var<'t> {
        self.tape.unary_map(self, f64::ln, Op::Ln(self.id))
    }

    /// Exponential, entry-wise.
    pub fn exp(self) -> Var<'t> {
        self.tape.unary_map(self, f64::exp, Op::Exp(self.id))
    }

    /// Sum of all entries as a `1×1` node.
    pub fn sum(self) -> Var<'t> {
        let total = self.tape.nodes.borrow()[self.id].value.mat().sum();
        self.tape.push_scalar(total, Op::Sum(self.id))
    }

    /// Mean of all entries as a `1×1` node.
    pub fn mean(self) -> Var<'t> {
        let avg = self.tape.nodes.borrow()[self.id].value.mat().mean();
        self.tape.push_scalar(avg, Op::Mean(self.id))
    }

    /// Scalar multiple.
    pub fn scale(self, k: f64) -> Var<'t> {
        self.tape.unary_map(self, |x| x * k, Op::Scale(self.id, k))
    }

    /// Adds a scalar constant to every entry (no gradient w.r.t. the scalar).
    pub fn add_scalar(self, k: f64) -> Var<'t> {
        self.tape.unary_map(self, |x| x + k, Op::AddScalar(self.id))
    }

    /// `1 - self`, entry-wise.
    pub fn one_minus(self) -> Var<'t> {
        self.tape.unary_map(self, |x| 1.0 - x, Op::OneMinus(self.id))
    }

    /// Transpose.
    pub fn t(self) -> Var<'t> {
        let value = {
            let nodes = self.tape.nodes.borrow();
            let am = nodes[self.id].value.mat();
            let mut out = self.tape.alloc(am.cols(), am.rows());
            am.transpose_into(&mut out);
            out
        };
        self.tape.push(value, Op::Transpose(self.id))
    }

    /// Adds a `1×C` bias row to every row of an `R×C` matrix.
    pub fn add_row_broadcast(self, bias: Var<'t>) -> Var<'t> {
        let value = {
            let nodes = self.tape.nodes.borrow();
            let (a, b) = (nodes[self.id].value.mat(), nodes[bias.id].value.mat());
            assert_eq!(b.rows(), 1, "bias must be a row vector");
            assert_eq!(a.cols(), b.cols(), "bias width mismatch");
            let mut out = self.tape.alloc(a.rows(), a.cols());
            for r in 0..a.rows() {
                let (or, ar, br) = (out.row_mut(r), a.row(r), b.row(0));
                for c in 0..ar.len() {
                    or[c] = ar[c] + br[c];
                }
            }
            out
        };
        self.tape.push(value, Op::RowBroadcastAdd(self.id, bias.id))
    }

    /// Fused GCN-layer epilogue: `act((self + rhs) + broadcast(bias))` as a
    /// single node instead of three.
    ///
    /// Entry-for-entry the arithmetic matches the unfused chain — the adds
    /// keep the `(a + b) + bias` grouping and the activation closures are
    /// the standalone ops' closures — and the backward pass computes the
    /// same gradient expressions, so fused and unfused tapes produce
    /// bit-identical values and parameter gradients. Fusing removes two
    /// intermediate `R×C` nodes per layer per direction, which is a
    /// measurable slice of the training hot path (BENCH_pr4.json).
    pub fn sum_bias_act(self, rhs: Var<'t>, bias: Var<'t>, f: Nonlinearity) -> Var<'t> {
        let value = {
            let nodes = self.tape.nodes.borrow();
            let a = nodes[self.id].value.mat();
            let b = nodes[rhs.id].value.mat();
            let bias_m = nodes[bias.id].value.mat();
            assert_eq!(a.shape(), b.shape(), "sum_bias_act operand shape mismatch");
            assert_eq!(bias_m.rows(), 1, "bias must be a row vector");
            assert_eq!(a.cols(), bias_m.cols(), "bias width mismatch");
            let mut out = self.tape.alloc(a.rows(), a.cols());
            for r in 0..a.rows() {
                let (or, ar, br, biasr) = (out.row_mut(r), a.row(r), b.row(r), bias_m.row(0));
                for c in 0..ar.len() {
                    or[c] = f.apply((ar[c] + br[c]) + biasr[c]);
                }
            }
            out
        };
        self.tape.push(value, Op::SumBiasAct(self.id, rhs.id, bias.id, f))
    }

    /// Fused preservation gate `self ⊙ ((1 − s) ⊙ a + s ⊙ b)`, with `self`
    /// as the mask — one node instead of five (`OneMinus`, two `Hadamard`s,
    /// `Add`, and the mask `Hadamard`).
    ///
    /// The blend keeps the unfused chain's `((1 − s)·a) + (s·b)` grouping
    /// entry-for-entry, and the backward arm accumulates the unfused
    /// chain's exact gradient expressions in its accumulation order, so
    /// fused and unfused tapes produce bit-identical values and parameter
    /// gradients (pinned by the `xr_check` golden replay). Fusing drops
    /// four intermediate `N×1` nodes per step from the BPTT graph.
    pub fn gate_blend(self, s: Var<'t>, a: Var<'t>, b: Var<'t>) -> Var<'t> {
        let value = {
            let nodes = self.tape.nodes.borrow();
            let mv = nodes[self.id].value.mat();
            let sv = nodes[s.id].value.mat();
            let av = nodes[a.id].value.mat();
            let bv = nodes[b.id].value.mat();
            assert_eq!(mv.shape(), sv.shape(), "gate_blend shape mismatch");
            assert_eq!(mv.shape(), av.shape(), "gate_blend shape mismatch");
            assert_eq!(mv.shape(), bv.shape(), "gate_blend shape mismatch");
            let mut out = self.tape.alloc(mv.rows(), mv.cols());
            let o = out.as_mut_slice();
            let (ms, ss, as_, bs) = (mv.as_slice(), sv.as_slice(), av.as_slice(), bv.as_slice());
            for j in 0..o.len() {
                o[j] = ms[j] * ((1.0 - ss[j]) * as_[j] + ss[j] * bs[j]);
            }
            out
        };
        self.tape.push(value, Op::GateBlend(self.id, s.id, a.id, b.id))
    }

    /// Fused `(self ⊙ rhs).sum() · k` — the Def. 7 preference-gain shape —
    /// as one `1×1` node instead of three (`Hadamard`, `Sum`, `Scale`). The
    /// accumulation runs `0 + x₀·y₀ + x₁·y₁ + …` in entry order, exactly
    /// the unfused `Hadamard` value fed through `iter().sum()`, so values
    /// and gradients are bit-identical to the unfused chain.
    pub fn dot_scale(self, rhs: Var<'t>, k: f64) -> Var<'t> {
        let total = {
            let nodes = self.tape.nodes.borrow();
            let av = nodes[self.id].value.mat();
            let bv = nodes[rhs.id].value.mat();
            assert_eq!(av.shape(), bv.shape(), "dot_scale shape mismatch");
            let mut acc = 0.0;
            for (&x, &y) in av.as_slice().iter().zip(bv.as_slice()) {
                acc += x * y;
            }
            acc * k
        };
        self.tape.push_scalar(total, Op::DotScale(self.id, rhs.id, k))
    }

    /// Fused `(self ⊙ b ⊙ c).sum() · k` — the Def. 7 social-presence shape
    /// — as one `1×1` node instead of four (two `Hadamard`s, `Sum`,
    /// `Scale`). Products group as `(x·y)·z`, matching the left-to-right
    /// unfused `Hadamard` chain, so results are bit-identical to it.
    pub fn dot3_scale(self, b: Var<'t>, c: Var<'t>, k: f64) -> Var<'t> {
        let total = {
            let nodes = self.tape.nodes.borrow();
            let av = nodes[self.id].value.mat();
            let bv = nodes[b.id].value.mat();
            let cv = nodes[c.id].value.mat();
            assert_eq!(av.shape(), bv.shape(), "dot3_scale shape mismatch");
            assert_eq!(av.shape(), cv.shape(), "dot3_scale shape mismatch");
            let (as_, bs, cs) = (av.as_slice(), bv.as_slice(), cv.as_slice());
            let mut acc = 0.0;
            for j in 0..as_.len() {
                acc += (as_[j] * bs[j]) * cs[j];
            }
            acc * k
        };
        self.tape.push_scalar(total, Op::Dot3Scale(self.id, b.id, c.id, k))
    }

    /// Fused `self.matmul(rhs).sum().scale(k)` for a `1×N` row times an
    /// `N×1` column — the Def. 7 occlusion quadratic form's tail — as one
    /// `1×1` node instead of three. The dot replicates the small-matmul
    /// kernel's ascending loop with its `a == 0.0` skip, and the `0.0 +`
    /// replicates the one-element `Sum` (which matters only for the sign
    /// of a `-0.0` total), so results are bit-identical to the unfused
    /// chain.
    pub fn mat_dot_scale(self, rhs: Var<'t>, k: f64) -> Var<'t> {
        let total = {
            let nodes = self.tape.nodes.borrow();
            let av = nodes[self.id].value.mat();
            let bv = nodes[rhs.id].value.mat();
            assert_eq!(av.rows(), 1, "mat_dot_scale lhs must be a row vector");
            assert_eq!(bv.cols(), 1, "mat_dot_scale rhs must be a column vector");
            assert_eq!(av.cols(), bv.rows(), "mat_dot_scale length mismatch");
            let mut acc = 0.0;
            for (&x, &y) in av.as_slice().iter().zip(bv.as_slice()) {
                if x == 0.0 {
                    continue;
                }
                acc += x * y;
            }
            (0.0 + acc) * k
        };
        self.tape.push_scalar(total, Op::MatDotScale(self.id, rhs.id, k))
    }

    /// Runs the backward pass from this scalar node, accumulating parameter
    /// gradients into `store`.
    ///
    /// # Panics
    ///
    /// Panics when called on a non-`1×1` node.
    pub fn backward(self, store: &mut ParamStore) {
        let tape = self.tape;
        let nodes = tape.nodes.borrow();
        assert_eq!(
            nodes[self.id].value.mat().shape(),
            (1, 1),
            "backward() must start from a scalar loss node"
        );
        let mut grads: Vec<Option<Matrix>> = (0..nodes.len()).map(|_| None).collect();
        let mut seed = tape.alloc(1, 1);
        seed.fill(1.0);
        grads[self.id] = Some(seed);

        for id in (0..=self.id).rev() {
            let g = match grads[id].take() {
                Some(g) => g,
                None => continue,
            };
            let node = &nodes[id];
            match &node.op {
                Op::Const => {}
                Op::Param(pid) => store.accumulate_grad(*pid, &g),
                Op::Add(a, b) => {
                    accumulate(tape, &mut grads, *a, &g, &nodes);
                    accumulate(tape, &mut grads, *b, &g, &nodes);
                }
                Op::Sub(a, b) => {
                    accumulate(tape, &mut grads, *a, &g, &nodes);
                    let mut neg = tape.alloc(g.rows(), g.cols());
                    g.map_into(&mut neg, |x| -x);
                    accumulate_owned(tape, &mut grads, *b, neg, &nodes);
                }
                Op::Hadamard(a, b) => {
                    let mut ga = tape.alloc(g.rows(), g.cols());
                    g.zip_with_into(nodes[*b].value.mat(), &mut ga, |x, y| x * y);
                    let mut gb = tape.alloc(g.rows(), g.cols());
                    g.zip_with_into(nodes[*a].value.mat(), &mut gb, |x, y| x * y);
                    accumulate_owned(tape, &mut grads, *a, ga, &nodes);
                    accumulate_owned(tape, &mut grads, *b, gb, &nodes);
                }
                Op::MatMul(a, b) => {
                    // Skip the (potentially N×N) gradient products entirely
                    // when the parent is a constant.
                    if !matches!(nodes[*a].op, Op::Const) {
                        let bm = nodes[*b].value.mat();
                        let mut bt = tape.alloc(bm.cols(), bm.rows());
                        bm.transpose_into(&mut bt);
                        let mut ga = tape.alloc(g.rows(), bt.cols());
                        g.matmul_into(&bt, &mut ga);
                        tape.release(bt);
                        accumulate_owned(tape, &mut grads, *a, ga, &nodes);
                    }
                    if !matches!(nodes[*b].op, Op::Const) {
                        let am = nodes[*a].value.mat();
                        let mut gb = tape.alloc(am.cols(), g.cols());
                        am.matmul_at_b_into(&g, &mut gb);
                        accumulate_owned(tape, &mut grads, *b, gb, &nodes);
                    }
                }
                Op::Scale(a, k) => {
                    let k = *k;
                    let mut ga = tape.alloc(g.rows(), g.cols());
                    g.map_into(&mut ga, |x| x * k);
                    accumulate_owned(tape, &mut grads, *a, ga, &nodes);
                }
                Op::AddScalar(a) => accumulate(tape, &mut grads, *a, &g, &nodes),
                Op::OneMinus(a) => {
                    let mut ga = tape.alloc(g.rows(), g.cols());
                    g.map_into(&mut ga, |x| -x);
                    accumulate_owned(tape, &mut grads, *a, ga, &nodes);
                }
                Op::Relu(a) => {
                    let mut ga = tape.alloc(g.rows(), g.cols());
                    g.zip_with_into(nodes[*a].value.mat(), &mut ga, |gi, x| if x > 0.0 { gi } else { 0.0 });
                    accumulate_owned(tape, &mut grads, *a, ga, &nodes);
                }
                Op::Sigmoid(a) => {
                    let mut ga = tape.alloc(g.rows(), g.cols());
                    g.zip_with_into(node.value.mat(), &mut ga, |gi, yi| gi * yi * (1.0 - yi));
                    accumulate_owned(tape, &mut grads, *a, ga, &nodes);
                }
                Op::Tanh(a) => {
                    let mut ga = tape.alloc(g.rows(), g.cols());
                    g.zip_with_into(node.value.mat(), &mut ga, |gi, yi| gi * (1.0 - yi * yi));
                    accumulate_owned(tape, &mut grads, *a, ga, &nodes);
                }
                Op::Ln(a) => {
                    let mut ga = tape.alloc(g.rows(), g.cols());
                    g.zip_with_into(nodes[*a].value.mat(), &mut ga, |gi, x| gi / x);
                    accumulate_owned(tape, &mut grads, *a, ga, &nodes);
                }
                Op::Exp(a) => {
                    let mut ga = tape.alloc(g.rows(), g.cols());
                    g.zip_with_into(node.value.mat(), &mut ga, |gi, yi| gi * yi);
                    accumulate_owned(tape, &mut grads, *a, ga, &nodes);
                }
                Op::Sum(a) => {
                    let (r, c) = nodes[*a].value.mat().shape();
                    let mut ga = tape.alloc(r, c);
                    ga.fill(g[(0, 0)]);
                    accumulate_owned(tape, &mut grads, *a, ga, &nodes);
                }
                Op::Mean(a) => {
                    let (r, c) = nodes[*a].value.mat().shape();
                    let n = (r * c).max(1) as f64;
                    let mut ga = tape.alloc(r, c);
                    ga.fill(g[(0, 0)] / n);
                    accumulate_owned(tape, &mut grads, *a, ga, &nodes);
                }
                Op::Transpose(a) => {
                    let mut ga = tape.alloc(g.cols(), g.rows());
                    g.transpose_into(&mut ga);
                    accumulate_owned(tape, &mut grads, *a, ga, &nodes);
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0;
                    for (src, width) in parts {
                        let mut slice = tape.alloc(g.rows(), *width);
                        for r in 0..g.rows() {
                            slice.row_mut(r).copy_from_slice(&g.row(r)[offset..offset + *width]);
                        }
                        accumulate_owned(tape, &mut grads, *src, slice, &nodes);
                        offset += width;
                    }
                }
                Op::Spmm(s, x) => {
                    // d(A·X)/dX contracted with G is AᵀG; the sparse operand
                    // itself is a constant, so nothing else flows.
                    if !matches!(nodes[*x].op, Op::Const) {
                        let at = tape.sparse.borrow()[*s].transposed();
                        let mut gx = tape.alloc(at.rows(), g.cols());
                        at.matmul_dense_into(&g, &mut gx);
                        accumulate_owned(tape, &mut grads, *x, gx, &nodes);
                    }
                }
                Op::RowBroadcastAdd(a, b) => {
                    accumulate(tape, &mut grads, *a, &g, &nodes);
                    // bias gradient: column-wise sum collapsed to one row.
                    let mut gb = tape.alloc(1, g.cols());
                    gb.fill(0.0);
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            gb[(0, c)] += g[(r, c)];
                        }
                    }
                    accumulate_owned(tape, &mut grads, *b, gb, &nodes);
                }
                Op::SumBiasAct(a, b, bias, f) => {
                    // dL/d(pre-activation): the standalone ops' expressions,
                    // with ReLU masking on the (equivalent) output sign.
                    let mut gy = tape.alloc(g.rows(), g.cols());
                    match f {
                        Nonlinearity::None => gy.copy_from(&g),
                        Nonlinearity::Relu => {
                            g.zip_with_into(
                                node.value.mat(),
                                &mut gy,
                                |gi, yi| {
                                    if yi > 0.0 {
                                        gi
                                    } else {
                                        0.0
                                    }
                                },
                            )
                        }
                        Nonlinearity::Sigmoid => {
                            g.zip_with_into(node.value.mat(), &mut gy, |gi, yi| gi * yi * (1.0 - yi))
                        }
                        Nonlinearity::Tanh => {
                            g.zip_with_into(node.value.mat(), &mut gy, |gi, yi| gi * (1.0 - yi * yi))
                        }
                    }
                    if !matches!(nodes[*bias].op, Op::Const) {
                        // bias gradient: column-wise sum collapsed to one row.
                        let mut gb = tape.alloc(1, gy.cols());
                        gb.fill(0.0);
                        for r in 0..gy.rows() {
                            for c in 0..gy.cols() {
                                gb[(0, c)] += gy[(r, c)];
                            }
                        }
                        accumulate_owned(tape, &mut grads, *bias, gb, &nodes);
                    }
                    accumulate(tape, &mut grads, *a, &gy, &nodes);
                    accumulate_owned(tape, &mut grads, *b, gy, &nodes);
                }
                Op::GateBlend(m, s, a, b) => {
                    let mv = nodes[*m].value.mat();
                    let sv = nodes[*s].value.mat();
                    let av = nodes[*a].value.mat();
                    let bv = nodes[*b].value.mat();
                    // dL/d(blend): the mask Hadamard's inner-operand grad.
                    let mut gx = tape.alloc(g.rows(), g.cols());
                    g.zip_with_into(mv, &mut gx, |gi, mi| gi * mi);
                    if !matches!(nodes[*m].op, Op::Const) {
                        // g ⊙ blend, with the blend recomputed exactly as
                        // the forward pass grouped it.
                        let mut gm = tape.alloc(g.rows(), g.cols());
                        let o = gm.as_mut_slice();
                        let (gs, ss, as_, bs) = (g.as_slice(), sv.as_slice(), av.as_slice(), bv.as_slice());
                        for j in 0..o.len() {
                            o[j] = gs[j] * ((1.0 - ss[j]) * as_[j] + ss[j] * bs[j]);
                        }
                        accumulate_owned(tape, &mut grads, *m, gm, &nodes);
                    }
                    if !matches!(nodes[*s].op, Op::Const) {
                        // σ hears the s⊙b branch first, then the negated
                        // (1−s)⊙a branch — the unfused chain's
                        // accumulation order, preserved per entry.
                        let mut gsig = tape.alloc(g.rows(), g.cols());
                        let o = gsig.as_mut_slice();
                        let (gxs, as_, bs) = (gx.as_slice(), av.as_slice(), bv.as_slice());
                        for j in 0..o.len() {
                            o[j] = (gxs[j] * bs[j]) + (-(gxs[j] * as_[j]));
                        }
                        accumulate_owned(tape, &mut grads, *s, gsig, &nodes);
                    }
                    if !matches!(nodes[*a].op, Op::Const) {
                        let mut ga = tape.alloc(g.rows(), g.cols());
                        gx.zip_with_into(sv, &mut ga, |gi, si| gi * (1.0 - si));
                        accumulate_owned(tape, &mut grads, *a, ga, &nodes);
                    }
                    if !matches!(nodes[*b].op, Op::Const) {
                        let mut gb = tape.alloc(g.rows(), g.cols());
                        gx.zip_with_into(sv, &mut gb, |gi, si| gi * si);
                        accumulate_owned(tape, &mut grads, *b, gb, &nodes);
                    }
                    tape.release(gx);
                }
                Op::DotScale(a, b, k) => {
                    // The unfused chain routes g through Scale then the
                    // Sum broadcast, so every entry sees g·k.
                    let gk = g[(0, 0)] * k;
                    let av = nodes[*a].value.mat();
                    let bv = nodes[*b].value.mat();
                    if !matches!(nodes[*a].op, Op::Const) {
                        let mut ga = tape.alloc(av.rows(), av.cols());
                        bv.map_into(&mut ga, |y| gk * y);
                        accumulate_owned(tape, &mut grads, *a, ga, &nodes);
                    }
                    if !matches!(nodes[*b].op, Op::Const) {
                        let mut gb = tape.alloc(bv.rows(), bv.cols());
                        av.map_into(&mut gb, |x| gk * x);
                        accumulate_owned(tape, &mut grads, *b, gb, &nodes);
                    }
                }
                Op::Dot3Scale(a, b, c, k) => {
                    let gk = g[(0, 0)] * k;
                    let av = nodes[*a].value.mat();
                    let bv = nodes[*b].value.mat();
                    let cv = nodes[*c].value.mat();
                    if !matches!(nodes[*a].op, Op::Const) {
                        // (g·k ⊙ c) ⊙ b — the inner Hadamard's grad fed
                        // through the outer one, grouped as the unfused
                        // chain computes it.
                        let mut ga = tape.alloc(av.rows(), av.cols());
                        cv.zip_with_into(bv, &mut ga, |ci, bi| (gk * ci) * bi);
                        accumulate_owned(tape, &mut grads, *a, ga, &nodes);
                    }
                    if !matches!(nodes[*b].op, Op::Const) {
                        let mut gb = tape.alloc(bv.rows(), bv.cols());
                        cv.zip_with_into(av, &mut gb, |ci, ai| (gk * ci) * ai);
                        accumulate_owned(tape, &mut grads, *b, gb, &nodes);
                    }
                    if !matches!(nodes[*c].op, Op::Const) {
                        let mut gc = tape.alloc(cv.rows(), cv.cols());
                        av.zip_with_into(bv, &mut gc, |ai, bi| gk * (ai * bi));
                        accumulate_owned(tape, &mut grads, *c, gc, &nodes);
                    }
                }
                Op::MatDotScale(a, b, k) => {
                    let gk = g[(0, 0)] * k;
                    let av = nodes[*a].value.mat();
                    let bv = nodes[*b].value.mat();
                    if !matches!(nodes[*a].op, Op::Const) {
                        // The unfused `g · rhsᵀ` (1×1 · 1×N): the kernel's
                        // zero-skip leaves 0 when the upstream grad is 0,
                        // else each entry is `0 + g·k·b_j`.
                        let mut ga = tape.alloc(av.rows(), av.cols());
                        if gk == 0.0 {
                            ga.fill(0.0);
                        } else {
                            let o = ga.as_mut_slice();
                            for (oj, &y) in o.iter_mut().zip(bv.as_slice()) {
                                *oj = 0.0 + gk * y;
                            }
                        }
                        accumulate_owned(tape, &mut grads, *a, ga, &nodes);
                    }
                    if !matches!(nodes[*b].op, Op::Const) {
                        // The unfused `selfᵀ · g` via the AᵀB kernel:
                        // zero-filled, then `+= a·g·k` under the same
                        // `a == 0.0` skip over the stored row.
                        let mut gb = tape.alloc(bv.rows(), bv.cols());
                        gb.fill(0.0);
                        let o = gb.as_mut_slice();
                        for (oj, &x) in o.iter_mut().zip(av.as_slice()) {
                            if x == 0.0 {
                                continue;
                            }
                            *oj += x * gk;
                        }
                        accumulate_owned(tape, &mut grads, *b, gb, &nodes);
                    }
                }
            }
            tape.release(g);
        }
    }
}

/// Accumulates `g` into node `id`'s gradient slot, copying into a pooled
/// buffer on first touch (the caller keeps `g`).
fn accumulate(tape: &Tape, grads: &mut [Option<Matrix>], id: usize, g: &Matrix, nodes: &[Node]) {
    // Constants never need gradients; skipping them avoids materializing
    // N×N gradient matrices for adjacency constants during BPTT.
    if matches!(nodes[id].op, Op::Const) {
        return;
    }
    debug_assert_eq!(nodes[id].value.mat().shape(), g.shape(), "gradient shape mismatch at node {id}");
    match &mut grads[id] {
        Some(existing) => existing.add_assign(g),
        slot @ None => {
            let mut buf = tape.alloc(g.rows(), g.cols());
            buf.copy_from(g);
            *slot = Some(buf);
        }
    }
}

/// Accumulates an owned (pooled) `g` into node `id`'s gradient slot, moving
/// it in on first touch and recycling it otherwise.
fn accumulate_owned(tape: &Tape, grads: &mut [Option<Matrix>], id: usize, g: Matrix, nodes: &[Node]) {
    if matches!(nodes[id].op, Op::Const) {
        tape.release(g);
        return;
    }
    debug_assert_eq!(nodes[id].value.mat().shape(), g.shape(), "gradient shape mismatch at node {id}");
    match &mut grads[id] {
        Some(existing) => {
            existing.add_assign(&g);
            tape.release(g);
        }
        slot @ None => *slot = Some(g),
    }
}

impl<'t> std::ops::Add for Var<'t> {
    type Output = Var<'t>;

    fn add(self, rhs: Var<'t>) -> Var<'t> {
        self.tape.binary_zip(self, rhs, |a, b| a + b, Op::Add(self.id, rhs.id))
    }
}

impl<'t> std::ops::Sub for Var<'t> {
    type Output = Var<'t>;

    fn sub(self, rhs: Var<'t>) -> Var<'t> {
        self.tape.binary_zip(self, rhs, |a, b| a - b, Op::Sub(self.id, rhs.id))
    }
}

impl<'t> std::ops::Mul for Var<'t> {
    type Output = Var<'t>;

    /// Hadamard (entry-wise) product.
    fn mul(self, rhs: Var<'t>) -> Var<'t> {
        self.tape.binary_zip(self, rhs, |a, b| a * b, Op::Hadamard(self.id, rhs.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(tape: &Tape, x: f64) -> Var<'_> {
        tape.constant(Matrix::from_vec(1, 1, vec![x]).unwrap())
    }

    #[test]
    fn add_mul_gradients() {
        // f(w) = sum(w * c + w), df/dw = c + 1
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_vec(1, 2, vec![2.0, -3.0]).unwrap());
        let tape = Tape::new();
        let wv = tape.param(&store, w);
        let c = tape.constant(Matrix::from_vec(1, 2, vec![5.0, 7.0]).unwrap());
        let loss = (wv * c + wv).sum();
        assert_eq!(loss.scalar(), 2.0 * 5.0 + 2.0 + (-3.0 * 7.0) + (-3.0));
        loss.backward(&mut store);
        assert!(store.grad(w).approx_eq(&Matrix::from_vec(1, 2, vec![6.0, 8.0]).unwrap(), 1e-12));
    }

    #[test]
    fn matmul_gradients_match_manual() {
        // f = sum(A·W), dW = Aᵀ·1
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap());
        let tape = Tape::new();
        let a = tape.constant(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap());
        let wv = tape.param(&store, w);
        let loss = a.matmul(wv).sum();
        loss.backward(&mut store);
        // Aᵀ·ones(2,2) = [[4,4],[6,6]]
        assert!(store.grad(w).approx_eq(&Matrix::from_vec(2, 2, vec![4.0, 4.0, 6.0, 6.0]).unwrap(), 1e-12));
    }

    #[test]
    fn sigmoid_gradient_at_zero_is_quarter() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 1));
        let tape = Tape::new();
        let loss = tape.param(&store, w).sigmoid().sum();
        assert!((loss.scalar() - 0.5).abs() < 1e-12);
        loss.backward(&mut store);
        assert!((store.grad(w)[(0, 0)] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn relu_blocks_negative_gradient() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_vec(1, 2, vec![3.0, -3.0]).unwrap());
        let tape = Tape::new();
        let loss = tape.param(&store, w).relu().sum();
        loss.backward(&mut store);
        assert!(store.grad(w).approx_eq(&Matrix::from_vec(1, 2, vec![1.0, 0.0]).unwrap(), 0.0));
    }

    #[test]
    fn tanh_gradient() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_vec(1, 1, vec![0.5]).unwrap());
        let tape = Tape::new();
        let loss = tape.param(&store, w).tanh().sum();
        loss.backward(&mut store);
        let expected = 1.0 - 0.5_f64.tanh().powi(2);
        assert!((store.grad(w)[(0, 0)] - expected).abs() < 1e-12);
    }

    #[test]
    fn reused_node_accumulates_gradient() {
        // f = sum(w + w), df/dw = 2
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::ones(2, 2));
        let tape = Tape::new();
        let wv = tape.param(&store, w);
        let loss = (wv + wv).sum();
        loss.backward(&mut store);
        assert!(store.grad(w).approx_eq(&Matrix::full(2, 2, 2.0), 0.0));
    }

    #[test]
    fn concat_routes_gradients_to_sources() {
        let mut store = ParamStore::new();
        let a = store.register("a", Matrix::ones(2, 2));
        let b = store.register("b", Matrix::ones(2, 3));
        let tape = Tape::new();
        let av = tape.param(&store, a);
        let bv = tape.param(&store, b);
        let cat = tape.concat_cols(&[av, bv]);
        assert_eq!(cat.shape(), (2, 5));
        // weight the two halves differently so routing errors are visible
        let mask = tape.constant(Matrix::from_fn(2, 5, |_, c| if c < 2 { 2.0 } else { 3.0 }));
        let loss = (cat * mask).sum();
        loss.backward(&mut store);
        assert!(store.grad(a).approx_eq(&Matrix::full(2, 2, 2.0), 0.0));
        assert!(store.grad(b).approx_eq(&Matrix::full(2, 3, 3.0), 0.0));
    }

    #[test]
    fn quadratic_form_gradient() {
        // f = rᵀ A r, df/dr = (A + Aᵀ) r
        let mut store = ParamStore::new();
        let r = store.register("r", Matrix::from_vec(2, 1, vec![1.0, 2.0]).unwrap());
        let a_mat = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let tape = Tape::new();
        let rv = tape.param(&store, r);
        let a = tape.constant(a_mat.clone());
        let loss = rv.t().matmul(a).matmul(rv).sum();
        assert_eq!(loss.scalar(), 4.0); // 2 * r0 * r1
        loss.backward(&mut store);
        let expected = a_mat.add(&a_mat.transpose()).matmul(store.value(r));
        assert!(store.grad(r).approx_eq(&expected, 1e-12));
    }

    #[test]
    fn row_broadcast_bias_gradient_sums_rows() {
        let mut store = ParamStore::new();
        let b = store.register("b", Matrix::zeros(1, 3));
        let tape = Tape::new();
        let x = tape.constant(Matrix::ones(4, 3));
        let bias = tape.param(&store, b);
        let loss = x.add_row_broadcast(bias).sum();
        loss.backward(&mut store);
        assert!(store.grad(b).approx_eq(&Matrix::full(1, 3, 4.0), 0.0));
    }

    #[test]
    fn one_minus_and_scale() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::full(1, 1, 0.3));
        let tape = Tape::new();
        let loss = tape.param(&store, w).one_minus().scale(5.0).sum();
        assert!((loss.scalar() - 3.5).abs() < 1e-12);
        loss.backward(&mut store);
        assert!((store.grad(w)[(0, 0)] + 5.0).abs() < 1e-12);
    }

    #[test]
    fn backward_ignores_constants() {
        let mut store = ParamStore::new();
        let tape = Tape::new();
        let loss = (scalar(&tape, 2.0) * scalar(&tape, 3.0)).sum();
        loss.backward(&mut store); // must not panic with empty store
        assert_eq!(loss.scalar(), 6.0);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_from_non_scalar_panics() {
        let mut store = ParamStore::new();
        let tape = Tape::new();
        let v = tape.constant(Matrix::ones(2, 2));
        v.backward(&mut store);
    }

    #[test]
    fn ln_and_exp_gradients() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::full(1, 1, 2.0));
        let tape = Tape::new();
        let loss = tape.param(&store, w).ln().sum();
        assert!((loss.scalar() - 2.0_f64.ln()).abs() < 1e-12);
        loss.backward(&mut store);
        assert!((store.grad(w)[(0, 0)] - 0.5).abs() < 1e-12);

        let mut store2 = ParamStore::new();
        let v = store2.register("v", Matrix::full(1, 1, 1.5));
        let tape2 = Tape::new();
        let loss2 = tape2.param(&store2, v).exp().sum();
        loss2.backward(&mut store2);
        assert!((store2.grad(v)[(0, 0)] - 1.5_f64.exp()).abs() < 1e-10);
    }

    #[test]
    fn spmm_forward_matches_dense_and_backward_routes_transpose() {
        // f = sum(A·X) with sparse A: dX = Aᵀ·1, same as the dense MatMul op.
        let a_dense = Matrix::from_vec(3, 3, vec![0.0, 2.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 3.0]).unwrap();
        let a_csr = Rc::new(CsrAdj::from_dense(&a_dense, 0.0));

        let mut store_sparse = ParamStore::new();
        let x_init = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64 - 2.0);
        let xs = store_sparse.register("x", x_init.clone());
        let tape = Tape::new();
        let a = tape.sparse(a_csr.clone());
        assert_eq!(a.shape(), (3, 3));
        assert_eq!(a.nnz(), 3);
        let xv = tape.param(&store_sparse, xs);
        let y = a.matmul(xv);
        assert!(y.value().approx_eq(&a_dense.matmul(&x_init), 1e-12));
        let loss = y.sum();
        loss.backward(&mut store_sparse);

        let mut store_dense = ParamStore::new();
        let xd = store_dense.register("x", x_init.clone());
        let tape2 = Tape::new();
        let ad = tape2.constant(a_dense.clone());
        let loss2 = ad.matmul(tape2.param(&store_dense, xd)).sum();
        loss2.backward(&mut store_dense);

        assert_eq!(loss.scalar(), loss2.scalar());
        assert!(store_sparse.grad(xs).approx_eq(store_dense.grad(xd), 1e-12));
    }

    #[test]
    fn spmm_through_constant_skips_gradient_work() {
        // A·c with c constant must not panic and must not produce gradients.
        let mut store = ParamStore::new();
        let tape = Tape::new();
        let a = tape.sparse(Rc::new(CsrAdj::from_dense(&Matrix::identity(2), 0.0)));
        let c = tape.constant(Matrix::ones(2, 1));
        let loss = a.matmul(c).sum();
        loss.backward(&mut store);
        assert_eq!(loss.scalar(), 2.0);
    }

    #[test]
    fn spmm_occlusion_quadratic_form_gradient() {
        // f = rᵀ(A·r) with sparse A: df/dr = (A + Aᵀ)r, the Eq. 4 penalty.
        let mut store = ParamStore::new();
        let r = store.register("r", Matrix::from_vec(2, 1, vec![1.0, 2.0]).unwrap());
        let a_mat = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let tape = Tape::new();
        let rv = tape.param(&store, r);
        let a = tape.sparse(Rc::new(CsrAdj::from_dense(&a_mat, 0.0)));
        let loss = rv.t().matmul(a.matmul(rv)).sum();
        assert_eq!(loss.scalar(), 4.0);
        loss.backward(&mut store);
        let expected = a_mat.add(&a_mat.transpose()).matmul(store.value(r));
        assert!(store.grad(r).approx_eq(&expected, 1e-12));
    }

    #[test]
    fn export_import_flat_round_trips() {
        let mut store = ParamStore::new();
        let a = store.register("a", Matrix::from_vec(1, 2, vec![1.0, 2.0]).unwrap());
        let b = store.register("b", Matrix::from_vec(2, 1, vec![3.0, 4.0]).unwrap());
        let flat = store.export_flat();
        assert_eq!(flat, vec![1.0, 2.0, 3.0, 4.0]);
        store.value_mut(a).fill(0.0);
        store.value_mut(b).fill(0.0);
        assert!(store.import_flat(&flat));
        assert_eq!(store.value(a).as_slice(), &[1.0, 2.0]);
        assert_eq!(store.value(b).as_slice(), &[3.0, 4.0]);
        assert!(!store.import_flat(&[1.0]));
    }

    #[test]
    fn reset_reuses_buffers_and_preserves_results() {
        // Two identical forward/backward passes over the same arena tape must
        // produce bit-identical losses and gradients even though the second
        // pass runs entirely on recycled (stale-content) pooled buffers.
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_fn(3, 3, |r, c| (r + 2 * c) as f64 * 0.1 - 0.3));
        let run = |tape: &Tape, store: &mut ParamStore| {
            store.zero_grads();
            let wv = tape.param(store, w);
            let c = tape.constant(Matrix::from_fn(3, 3, |r, c| (r * c) as f64 * 0.05 + 0.01));
            let loss = (wv.matmul(c).sigmoid() * wv).t().sum();
            let l = loss.scalar();
            loss.backward(store);
            l
        };
        let tape = Tape::new();
        let l1 = run(&tape, &mut store);
        let g1 = store.grad(w).clone();
        tape.reset();
        assert!(tape.is_empty());
        let l2 = run(&tape, &mut store);
        assert_eq!(l1.to_bits(), l2.to_bits());
        for (a, b) in g1.as_slice().iter().zip(store.grad(w).as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn constant_rc_and_constant_from_match_constant() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64 * 0.25 - 0.5);
        let tape = Tape::new();
        let owned = tape.constant(m.clone());
        let shared = tape.constant_rc(Rc::new(m.clone()));
        let borrowed = tape.constant_from(&m);
        assert_eq!(owned.value().as_slice(), shared.value().as_slice());
        assert_eq!(owned.value().as_slice(), borrowed.value().as_slice());
        // Gradients still flow through ops on shared constants' consumers.
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::ones(2, 3));
        let loss = (tape.param(&store, w) * shared).sum();
        loss.backward(&mut store);
        assert!(store.grad(w).approx_eq(&m, 0.0));
    }

    fn assert_bits_eq(a: &Matrix, b: &Matrix) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} != {y}");
        }
    }

    #[test]
    fn fused_gate_blend_matches_unfused_bitwise() {
        // m ⊙ ((1−σ)⊙a + σ⊙b) as one GateBlend node must be bit-identical —
        // value and all three gradients — to the five-node Hadamard chain it
        // replaces, including the contribution *order* into σ's grad slot
        // (σ⊙b's term lands before one_minus's negated term in both paths).
        let n = 6;
        let run = |fused: bool| {
            let mut store = ParamStore::new();
            let ps = store.register("s", Matrix::from_fn(n, 1, |r, _| 0.4 * r as f64 - 1.1));
            let pa = store.register("a", Matrix::from_fn(n, 1, |r, _| 0.09 * r as f64 + 0.13));
            let pb = store.register("b", Matrix::from_fn(n, 1, |r, _| 0.77 - 0.06 * r as f64));
            let tape = Tape::new();
            let mask = tape.constant(Matrix::from_fn(n, 1, |r, _| if r % 3 == 0 { 0.0 } else { 1.0 }));
            let s = tape.param(&store, ps).sigmoid();
            let a = tape.param(&store, pa);
            let b = tape.param(&store, pb);
            let gated = if fused { mask.gate_blend(s, a, b) } else { mask * (s.one_minus() * a + s * b) };
            let w = tape.constant(Matrix::from_fn(n, 1, |r, _| 1.0 + 0.5 * r as f64));
            let loss = (gated * w).sum();
            let l = loss.scalar();
            loss.backward(&mut store);
            (l, store.grad(ps).clone(), store.grad(pa).clone(), store.grad(pb).clone())
        };
        let (lf, gs_f, ga_f, gb_f) = run(true);
        let (lu, gs_u, ga_u, gb_u) = run(false);
        assert_eq!(lf.to_bits(), lu.to_bits());
        assert_bits_eq(&gs_f, &gs_u);
        assert_bits_eq(&ga_f, &ga_u);
        assert_bits_eq(&gb_f, &gb_u);
    }

    #[test]
    fn fused_reductions_match_unfused_bitwise() {
        // DotScale / Dot3Scale / MatDotScale vs the Hadamard/MatMul+Sum+Scale
        // chains they replace. `r` carries exact zeros to exercise the
        // matmul zero-skip convention shared by both quadratic-form paths.
        let rv = Matrix::from_vec(4, 1, vec![0.6, 0.0, -0.3, 0.8]).unwrap();
        let rpv = Matrix::from_vec(4, 1, vec![0.1, 0.9, 0.0, 0.4]).unwrap();
        let pm = Matrix::from_vec(4, 1, vec![0.25, 0.5, 0.125, 0.75]).unwrap();
        let sm = Matrix::from_vec(4, 1, vec![0.3, 0.2, 0.7, 0.15]).unwrap();
        let am = Matrix::from_fn(4, 4, |r, c| if r == c { 0.0 } else { (r as f64 - c as f64) * 0.3 });

        let dot = |fused: bool| {
            let mut store = ParamStore::new();
            let pr = store.register("r", rv.clone());
            let tape = Tape::new();
            let r = tape.param(&store, pr);
            let p = tape.constant(pm.clone());
            let loss = if fused { r.dot_scale(p, -0.5) } else { (r * p).sum().scale(-0.5) };
            let l = loss.scalar();
            loss.backward(&mut store);
            (l, store.grad(pr).clone())
        };
        let (lf, gf) = dot(true);
        let (lu, gu) = dot(false);
        assert_eq!(lf.to_bits(), lu.to_bits());
        assert_bits_eq(&gf, &gu);

        let dot3 = |fused: bool| {
            let mut store = ParamStore::new();
            let pr = store.register("r", rv.clone());
            let prp = store.register("rp", rpv.clone());
            let tape = Tape::new();
            let r = tape.param(&store, pr);
            let rp = tape.param(&store, prp);
            let s = tape.constant(sm.clone());
            let loss = if fused { r.dot3_scale(rp, s, -0.5) } else { (r * rp * s).sum().scale(-0.5) };
            let l = loss.scalar();
            loss.backward(&mut store);
            (l, store.grad(pr).clone(), store.grad(prp).clone())
        };
        let (lf, gr_f, grp_f) = dot3(true);
        let (lu, gr_u, grp_u) = dot3(false);
        assert_eq!(lf.to_bits(), lu.to_bits());
        assert_bits_eq(&gr_f, &gr_u);
        assert_bits_eq(&grp_f, &grp_u);

        let quad = |fused: bool| {
            let mut store = ParamStore::new();
            let pr = store.register("r", rv.clone());
            let tape = Tape::new();
            let r = tape.param(&store, pr);
            let a = tape.constant(am.clone());
            let loss = if fused {
                r.t().mat_dot_scale(a.matmul(r), 0.4)
            } else {
                r.t().matmul(a.matmul(r)).sum().scale(0.4)
            };
            let l = loss.scalar();
            loss.backward(&mut store);
            (l, store.grad(pr).clone())
        };
        let (lf, gf) = quad(true);
        let (lu, gu) = quad(false);
        assert_eq!(lf.to_bits(), lu.to_bits());
        assert_bits_eq(&gf, &gu);
    }

    #[test]
    fn param_nodes_are_memoized_within_a_pass() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f64 + 1.0));
        let tape = Tape::new();
        let a = tape.param(&store, w);
        let b = tape.param(&store, w);
        assert_eq!(a.id, b.id, "one pass must share one node per param");
        // f = Σ w⊙w through the shared node: df/dw = 2w.
        let loss = (a * b).sum();
        loss.backward(&mut store);
        let expected = Matrix::from_fn(2, 2, |r, c| 2.0 * ((r * 2 + c) as f64 + 1.0));
        assert!(store.grad(w).approx_eq(&expected, 1e-12));
        // reset() must drop the memo so the next pass re-reads the store.
        tape.reset();
        store.value_mut(w).fill(5.0);
        let c = tape.param(&store, w);
        assert!(c.value().approx_eq(&Matrix::full(2, 2, 5.0), 0.0));
    }

    #[test]
    fn grad_clipping_bounds_global_norm() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 2));
        let tape = Tape::new();
        let loss = tape.param(&store, w).scale(100.0).sum();
        loss.backward(&mut store);
        let pre = store.clip_grad_norm(1.0);
        assert!(pre > 100.0);
        assert!((store.grad_norm() - 1.0).abs() < 1e-9);
    }
}
