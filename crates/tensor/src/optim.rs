//! First-order optimizers over a [`ParamStore`].

use crate::tape::ParamStore;

/// Interface shared by all optimizers.
pub trait Optimizer {
    /// Applies one update step using the gradients currently accumulated in
    /// `store`, then zeroes them.
    fn step(&mut self, store: &mut ParamStore);
    /// Current learning rate.
    fn learning_rate(&self) -> f64;
    /// Overrides the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
}

impl Sgd {
    /// SGD with the given learning rate.
    pub fn new(lr: f64) -> Self {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        for id in 0..store.len() {
            store.sgd_step_slot(crate::tape::ParamId(id), self.lr);
        }
        store.zero_grads();
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba 2015) with bias correction.
///
/// The paper trains PDR/LWP with Adam at `lr = 1e-2`; this is the default.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    /// Step counter for bias correction.
    t: u64,
}

impl Adam {
    /// Adam with custom hyperparameters.
    pub fn new(lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        Adam { lr, beta1, beta2, eps, t: 0 }
    }

    /// Adam with the paper's defaults (`lr = 1e-2`, β₁ = 0.9, β₂ = 0.999).
    pub fn with_lr(lr: f64) -> Self {
        Adam::new(lr, 0.9, 0.999, 1e-8)
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Default for Adam {
    fn default() -> Self {
        Adam::with_lr(1e-2)
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let b1 = self.beta1;
        let b2 = self.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        for id in 0..store.len() {
            let (value, m, v, grad) = store.adam_state(crate::tape::ParamId(id));
            let (rows, cols) = value.shape();
            for r in 0..rows {
                for c in 0..cols {
                    let g = grad[(r, c)];
                    m[(r, c)] = b1 * m[(r, c)] + (1.0 - b1) * g;
                    v[(r, c)] = b2 * v[(r, c)] + (1.0 - b2) * g * g;
                    let m_hat = m[(r, c)] / bc1;
                    let v_hat = v[(r, c)] / bc2;
                    value[(r, c)] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
                }
            }
        }
        store.zero_grads();
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Convenience: runs `f` (a forward + backward pass returning the loss) for
/// `steps` iterations with an optimizer step after each, returning the loss
/// trajectory. Useful in tests and examples.
pub fn minimize(
    store: &mut ParamStore,
    optimizer: &mut impl Optimizer,
    steps: usize,
    mut f: impl FnMut(&mut ParamStore) -> f64,
) -> Vec<f64> {
    let mut losses = Vec::with_capacity(steps);
    for _ in 0..steps {
        let loss = f(store);
        optimizer.step(store);
        losses.push(loss);
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::tape::Tape;

    /// Minimize (w - 3)^2 and check convergence.
    fn quadratic_loss(store: &mut ParamStore, w: crate::tape::ParamId) -> f64 {
        let tape = Tape::new();
        let wv = tape.param(store, w);
        let target = tape.constant(Matrix::full(1, 1, 3.0));
        let diff = wv - target;
        let loss = (diff * diff).sum();
        let out = loss.scalar();
        loss.backward(store);
        out
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 1));
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            quadratic_loss(&mut store, w);
            opt.step(&mut store);
        }
        assert!((store.value(w)[(0, 0)] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 1));
        let mut opt = Adam::with_lr(0.05);
        for _ in 0..500 {
            quadratic_loss(&mut store, w);
            opt.step(&mut store);
        }
        assert!((store.value(w)[(0, 0)] - 3.0).abs() < 1e-4);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction the first Adam step has magnitude ≈ lr.
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 1));
        let mut opt = Adam::with_lr(0.01);
        quadratic_loss(&mut store, w);
        opt.step(&mut store);
        assert!((store.value(w)[(0, 0)].abs() - 0.01).abs() < 1e-6);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 1));
        let mut opt = Sgd::new(0.1);
        quadratic_loss(&mut store, w);
        assert!(store.grad_norm() > 0.0);
        opt.step(&mut store);
        assert_eq!(store.grad_norm(), 0.0);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::default();
        assert_eq!(opt.learning_rate(), 1e-2);
        opt.set_learning_rate(1e-3);
        assert_eq!(opt.learning_rate(), 1e-3);
    }
}
