//! The f32 serving kernels: dense matmul (register-tiled and packed-B), CSR
//! SpMM, and their SIMD dispatch layer.
//!
//! Training stays on the f64 [`crate::Matrix`] stack — bit-exact, taped,
//! gradcheckable. Serving does not need gradients or f64 precision, so this
//! module provides a parallel f32 substrate for the inference hot path:
//! [`MatrixF32`] / [`CsrF32`] value types plus free-function kernels that
//! never touch the tape.
//!
//! ## SIMD dispatch contract
//!
//! Every vectorized kernel ships with a scalar reference that performs the
//! *same floating-point operations in the same order* (per output element:
//! ascending-`k` accumulation, multiply then add — never FMA, whose fused
//! rounding would diverge), so the AVX2 and scalar paths are **bit-identical**
//! and lane-equality unit tests pin them against each other, including
//! remainder lanes. Dispatch happens at runtime:
//!
//! * on x86-64 with AVX2 detected, the wide-lane kernels run;
//! * `AFTER_NO_SIMD=1` forces the scalar fallback (CI exercises both);
//! * any other target silently uses the scalar path.
//!
//! Size dispatch extends the calibrated PR4 framework: products at or above
//! [`crate::Matrix::MATMUL_DISPATCH_THRESHOLD`] flops with
//! `k ≥ MATMUL_PACK_MIN_K` take the packed-B micro-kernel; everything else
//! runs the register-tiled chunked kernel, same thresholds as the f64 path.

use std::sync::OnceLock;

/// Lane width of the wide kernels (8 × f32 = one AVX2 `ymm`).
pub const LANES: usize = 8;

/// Whether the wide-lane SIMD kernels are active: x86-64 with AVX2 detected
/// and `AFTER_NO_SIMD` not set to `1`. Cached after the first call (the env
/// override is a process-level CI switch, not a per-call toggle).
pub fn simd_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        let enabled = 'detect: {
            if std::env::var("AFTER_NO_SIMD").map(|v| v == "1").unwrap_or(false) {
                break 'detect false;
            }
            #[cfg(target_arch = "x86_64")]
            {
                is_x86_feature_detected!("avx2")
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                false
            }
        };
        // self-describing metadata: perf artifacts state which leg they ran
        xr_obs::meta::record_fact("simd_enabled", enabled);
        enabled
    })
}

/// A dense row-major f32 matrix for the serving path. Deliberately minimal:
/// no autodiff, no operator overloading — just the storage the f32 forward
/// pass needs.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl MatrixF32 {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        MatrixF32 { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Wraps a row-major buffer; `data.len()` must be `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        MatrixF32 { rows, cols, data }
    }

    /// Down-converts an f64 [`crate::Matrix`] (nearest-even per element).
    pub fn from_f64(m: &crate::Matrix) -> Self {
        let (rows, cols) = m.shape();
        MatrixF32 { rows, cols, data: m.as_slice().iter().map(|&v| v as f32).collect() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Row-major element slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major element slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · rhs`, size-dispatched over the chunked / packed kernels.
    pub fn matmul(&self, rhs: &MatrixF32) -> MatrixF32 {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        let mut out = MatrixF32::zeros(self.rows, rhs.cols);
        matmul_f32(&mut out.data, &self.data, &rhs.data, self.rows, self.cols, rhs.cols);
        out
    }
}

impl std::ops::Index<(usize, usize)> for MatrixF32 {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for MatrixF32 {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

/// An f32 CSR matrix for the serving aggregation operator.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrF32 {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f32>,
}

impl CsrF32 {
    /// Builds from raw CSR parts (`row_ptr.len() == rows + 1`, column
    /// indices ascending within each row).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        vals: Vec<f32>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr length mismatch");
        assert_eq!(col_idx.len(), vals.len(), "col_idx/vals length mismatch");
        CsrF32 { rows, cols, row_ptr, col_idx, vals }
    }

    /// Down-converts an f64 [`crate::CsrAdj`].
    pub fn from_f64(csr: &crate::CsrAdj) -> Self {
        CsrF32 {
            rows: csr.rows(),
            cols: csr.cols(),
            row_ptr: csr.row_ptr().to_vec(),
            col_idx: csr.col_idx().to_vec(),
            vals: csr.vals().iter().map(|&v| v as f32).collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// `self · dense`, SIMD-dispatched across the dense columns.
    pub fn matmul_dense(&self, dense: &MatrixF32) -> MatrixF32 {
        assert_eq!(self.cols, dense.rows(), "spmm shape mismatch");
        let mut out = MatrixF32::zeros(self.rows, dense.cols());
        spmm_f32(&mut out.data, &self.row_ptr, &self.col_idx, &self.vals, dense.as_slice(), dense.cols());
        out
    }
}

// ---------------------------------------------------------------------------
// dense matmul: dispatch → chunked (register-tiled) or packed-B
// ---------------------------------------------------------------------------

/// `out = a · b` with `a` `m×k`, `b` `k×n`, all row-major f32. Size dispatch
/// mirrors the f64 path: small or shallow products run the register-tiled
/// chunked kernel, large deep ones the packed-B micro-kernel. Both SIMD and
/// scalar variants accumulate each output element over ascending `k`, so
/// path is bit-identical.
pub fn matmul_f32(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    if m * k * n < crate::Matrix::MATMUL_DISPATCH_THRESHOLD || k < crate::Matrix::MATMUL_PACK_MIN_K {
        // leg label mirrors the runtime condition inside matmul_chunked_f32
        let leg = if simd_enabled() && n >= LANES { "simd" } else { "scalar" };
        xr_obs::counter_add("xr_tensor.serve32.matmul", &[("kernel", "chunked"), ("leg", leg)], 1);
        matmul_chunked_f32(out, a, b, m, k, n);
    } else {
        let leg = if simd_enabled() { "simd" } else { "scalar" };
        xr_obs::counter_add("xr_tensor.serve32.matmul", &[("kernel", "packed"), ("leg", leg)], 1);
        matmul_packed_f32(out, a, b, m, k, n);
    }
}

/// Register-tiled chunked kernel (no packing): runtime SIMD dispatch.
pub fn matmul_chunked_f32(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() && n >= LANES {
        // SAFETY: simd_enabled() verified AVX2 at runtime.
        unsafe { matmul_chunked_f32_avx2(out, a, b, m, k, n) };
        return;
    }
    matmul_chunked_f32_scalar(out, a, b, m, k, n);
}

/// Scalar reference for the chunked kernel: per output element, ascending-`k`
/// multiply-add. The SIMD kernel reproduces exactly this order lane-wise.
pub fn matmul_chunked_f32_scalar(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (kk, &av) in arow.iter().enumerate() {
                acc += av * b[kk * n + j];
            }
            *o = acc;
        }
    }
}

/// AVX2 chunked kernel: 8-wide across output columns, MR=2 rows per tile,
/// ascending-`k` accumulation with separate mul + add (no FMA).
///
/// # Safety
///
/// Caller must ensure AVX2 is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_chunked_f32_avx2(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    use std::arch::x86_64::*;
    let n8 = n - n % LANES;
    let m2 = m - m % 2;
    // two-row register tile over full lanes
    let mut i = 0;
    while i < m2 {
        let arow0 = &a[i * k..(i + 1) * k];
        let arow1 = &a[(i + 1) * k..(i + 2) * k];
        let mut j = 0;
        while j < n8 {
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            for kk in 0..k {
                let bv = _mm256_loadu_ps(b.as_ptr().add(kk * n + j));
                let a0 = _mm256_set1_ps(*arow0.get_unchecked(kk));
                let a1 = _mm256_set1_ps(*arow1.get_unchecked(kk));
                acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(a0, bv));
                acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(a1, bv));
            }
            _mm256_storeu_ps(out.as_mut_ptr().add(i * n + j), acc0);
            _mm256_storeu_ps(out.as_mut_ptr().add((i + 1) * n + j), acc1);
            j += LANES;
        }
        // column tail: scalar, same ascending-k order
        for jj in n8..n {
            let mut acc0 = 0.0f32;
            let mut acc1 = 0.0f32;
            for kk in 0..k {
                let bv = b[kk * n + jj];
                acc0 += arow0[kk] * bv;
                acc1 += arow1[kk] * bv;
            }
            out[i * n + jj] = acc0;
            out[(i + 1) * n + jj] = acc1;
        }
        i += 2;
    }
    // row tail
    for ii in m2..m {
        let arow = &a[ii * k..(ii + 1) * k];
        let mut j = 0;
        while j < n8 {
            let mut acc = _mm256_setzero_ps();
            for kk in 0..k {
                let bv = _mm256_loadu_ps(b.as_ptr().add(kk * n + j));
                let av = _mm256_set1_ps(*arow.get_unchecked(kk));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(av, bv));
            }
            _mm256_storeu_ps(out.as_mut_ptr().add(ii * n + j), acc);
            j += LANES;
        }
        for jj in n8..n {
            let mut acc = 0.0f32;
            for (kk, &av) in arow.iter().enumerate() {
                acc += av * b[kk * n + jj];
            }
            out[ii * n + jj] = acc;
        }
    }
}

/// Packed-B kernel: `b` is repacked into zero-padded 8-column panels so the
/// inner loop streams contiguously; runtime SIMD dispatch. Padding lanes are
/// computed and discarded — per stored element the arithmetic is the plain
/// ascending-`k` chain, so this path is bit-identical to the scalar
/// reference too.
pub fn matmul_packed_f32(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    let panels = n.div_ceil(LANES);
    // pack: panel p holds columns [p*8, p*8+8) row-major k×8, zero padded
    let mut packed = vec![0.0f32; panels * k * LANES];
    for p in 0..panels {
        let j0 = p * LANES;
        let w = LANES.min(n - j0);
        let dst = &mut packed[p * k * LANES..(p + 1) * k * LANES];
        for kk in 0..k {
            let src = &b[kk * n + j0..kk * n + j0 + w];
            dst[kk * LANES..kk * LANES + w].copy_from_slice(src);
        }
    }
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        // SAFETY: simd_enabled() verified AVX2 at runtime.
        unsafe { matmul_packed_f32_avx2(out, a, &packed, m, k, n) };
        return;
    }
    matmul_packed_f32_scalar(out, a, &packed, m, k, n);
}

/// Scalar loop over the packed panels (reference for the packed kernel).
fn matmul_packed_f32_scalar(out: &mut [f32], a: &[f32], packed: &[f32], m: usize, k: usize, n: usize) {
    let panels = n.div_ceil(LANES);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for p in 0..panels {
            let panel = &packed[p * k * LANES..(p + 1) * k * LANES];
            let j0 = p * LANES;
            let w = LANES.min(n - j0);
            let mut acc = [0.0f32; LANES];
            for (kk, &av) in arow.iter().enumerate() {
                for l in 0..LANES {
                    acc[l] += av * panel[kk * LANES + l];
                }
            }
            out[i * n + j0..i * n + j0 + w].copy_from_slice(&acc[..w]);
        }
    }
}

/// AVX2 packed kernel: one `ymm` accumulator per panel, MR=2 row tile.
///
/// # Safety
///
/// Caller must ensure AVX2 is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_packed_f32_avx2(out: &mut [f32], a: &[f32], packed: &[f32], m: usize, k: usize, n: usize) {
    use std::arch::x86_64::*;
    let panels = n.div_ceil(LANES);
    let m2 = m - m % 2;
    let mut i = 0;
    while i < m2 {
        let arow0 = a.as_ptr().add(i * k);
        let arow1 = a.as_ptr().add((i + 1) * k);
        for p in 0..panels {
            let panel = packed.as_ptr().add(p * k * LANES);
            let j0 = p * LANES;
            let w = LANES.min(n - j0);
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            for kk in 0..k {
                let bv = _mm256_loadu_ps(panel.add(kk * LANES));
                acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_set1_ps(*arow0.add(kk)), bv));
                acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_set1_ps(*arow1.add(kk)), bv));
            }
            let mut tmp0 = [0.0f32; LANES];
            let mut tmp1 = [0.0f32; LANES];
            _mm256_storeu_ps(tmp0.as_mut_ptr(), acc0);
            _mm256_storeu_ps(tmp1.as_mut_ptr(), acc1);
            out[i * n + j0..i * n + j0 + w].copy_from_slice(&tmp0[..w]);
            out[(i + 1) * n + j0..(i + 1) * n + j0 + w].copy_from_slice(&tmp1[..w]);
        }
        i += 2;
    }
    for ii in m2..m {
        let arow = a.as_ptr().add(ii * k);
        for p in 0..panels {
            let panel = packed.as_ptr().add(p * k * LANES);
            let j0 = p * LANES;
            let w = LANES.min(n - j0);
            let mut acc = _mm256_setzero_ps();
            for kk in 0..k {
                let bv = _mm256_loadu_ps(panel.add(kk * LANES));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(*arow.add(kk)), bv));
            }
            let mut tmp = [0.0f32; LANES];
            _mm256_storeu_ps(tmp.as_mut_ptr(), acc);
            out[ii * n + j0..ii * n + j0 + w].copy_from_slice(&tmp[..w]);
        }
    }
}

// ---------------------------------------------------------------------------
// CSR SpMM
// ---------------------------------------------------------------------------

/// `out = csr · dense` with `dense` row-major `cols`-wide; runtime SIMD
/// dispatch across the dense columns. Per output element the accumulation
/// follows the CSR entry order (ascending column index), identical in the
/// scalar and SIMD variants.
pub fn spmm_f32(
    out: &mut [f32],
    row_ptr: &[usize],
    col_idx: &[usize],
    vals: &[f32],
    dense: &[f32],
    cols: usize,
) {
    let leg = if simd_enabled() && cols >= LANES { "simd" } else { "scalar" };
    xr_obs::counter_add("xr_tensor.serve32.spmm", &[("leg", leg)], 1);
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() && cols >= LANES {
        // SAFETY: simd_enabled() verified AVX2 at runtime.
        unsafe { spmm_f32_avx2(out, row_ptr, col_idx, vals, dense, cols) };
        return;
    }
    spmm_f32_scalar(out, row_ptr, col_idx, vals, dense, cols);
}

/// Scalar SpMM reference: row-of-`out` accumulation in CSR entry order.
pub fn spmm_f32_scalar(
    out: &mut [f32],
    row_ptr: &[usize],
    col_idx: &[usize],
    vals: &[f32],
    dense: &[f32],
    cols: usize,
) {
    let rows = row_ptr.len() - 1;
    for r in 0..rows {
        let orow = &mut out[r * cols..(r + 1) * cols];
        orow.fill(0.0);
        for e in row_ptr[r]..row_ptr[r + 1] {
            let v = vals[e];
            let drow = &dense[col_idx[e] * cols..(col_idx[e] + 1) * cols];
            for (o, &d) in orow.iter_mut().zip(drow) {
                *o += v * d;
            }
        }
    }
}

/// AVX2 SpMM: 8-wide across dense columns, CSR entry order preserved.
///
/// # Safety
///
/// Caller must ensure AVX2 is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::needless_range_loop)] // explicit CSR entry indices keep the kernel readable
unsafe fn spmm_f32_avx2(
    out: &mut [f32],
    row_ptr: &[usize],
    col_idx: &[usize],
    vals: &[f32],
    dense: &[f32],
    cols: usize,
) {
    use std::arch::x86_64::*;
    let rows = row_ptr.len() - 1;
    let c8 = cols - cols % LANES;
    for r in 0..rows {
        let obase = r * cols;
        out[obase..obase + cols].fill(0.0);
        let mut j = 0;
        while j < c8 {
            let mut acc = _mm256_setzero_ps();
            for e in row_ptr[r]..row_ptr[r + 1] {
                let dv = _mm256_loadu_ps(dense.as_ptr().add(col_idx[e] * cols + j));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(*vals.get_unchecked(e)), dv));
            }
            _mm256_storeu_ps(out.as_mut_ptr().add(obase + j), acc);
            j += LANES;
        }
        for jj in c8..cols {
            let mut acc = 0.0f32;
            for e in row_ptr[r]..row_ptr[r + 1] {
                acc += vals[e] * dense[col_idx[e] * cols + jj];
            }
            out[obase + jj] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vec(len: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0..1.0) as f32).collect()
    }

    fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: lane {i}: {x:?} vs {y:?}");
        }
    }

    /// Shapes covering full lanes, remainder columns, remainder rows, and
    /// the degenerate n < LANES case.
    const SHAPES: [(usize, usize, usize); 7] =
        [(4, 4, 8), (5, 7, 13), (2, 3, 1), (9, 16, 8), (3, 5, 19), (1, 1, 1), (8, 12, 24)];

    #[test]
    fn chunked_simd_matches_scalar_bitwise_including_tails() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(m, k, n) in &SHAPES {
            let a = random_vec(m * k, &mut rng);
            let b = random_vec(k * n, &mut rng);
            let mut scalar = vec![0.0f32; m * n];
            let mut wide = vec![0.0f32; m * n];
            matmul_chunked_f32_scalar(&mut scalar, &a, &b, m, k, n);
            #[cfg(target_arch = "x86_64")]
            if is_x86_feature_detected!("avx2") {
                unsafe { matmul_chunked_f32_avx2(&mut wide, &a, &b, m, k, n) };
                assert_bits_eq(&scalar, &wide, &format!("chunked {m}x{k}x{n}"));
            }
            // the public dispatcher agrees with the reference either way
            matmul_chunked_f32(&mut wide, &a, &b, m, k, n);
            assert_bits_eq(&scalar, &wide, &format!("chunked dispatch {m}x{k}x{n}"));
        }
    }

    #[test]
    fn packed_simd_matches_scalar_and_chunked_bitwise() {
        let mut rng = StdRng::seed_from_u64(12);
        for &(m, k, n) in &SHAPES {
            let a = random_vec(m * k, &mut rng);
            let b = random_vec(k * n, &mut rng);
            let mut chunked = vec![0.0f32; m * n];
            let mut packed = vec![0.0f32; m * n];
            matmul_chunked_f32_scalar(&mut chunked, &a, &b, m, k, n);
            matmul_packed_f32(&mut packed, &a, &b, m, k, n);
            assert_bits_eq(&chunked, &packed, &format!("packed {m}x{k}x{n}"));
        }
    }

    #[test]
    fn spmm_simd_matches_scalar_bitwise_including_tails() {
        let mut rng = StdRng::seed_from_u64(13);
        for &cols in &[1usize, 4, 8, 11, 16, 19] {
            let rows = 17;
            // ~4 entries per row, ascending columns
            let mut row_ptr = vec![0usize];
            let mut col_idx = Vec::new();
            let mut vals = Vec::new();
            for _ in 0..rows {
                let mut cs: Vec<usize> = (0..4).map(|_| rng.gen_range(0..rows)).collect();
                cs.sort_unstable();
                cs.dedup();
                for c in cs {
                    col_idx.push(c);
                    vals.push(rng.gen_range(-1.0..1.0) as f32);
                }
                row_ptr.push(col_idx.len());
            }
            let dense = random_vec(rows * cols, &mut rng);
            let mut scalar = vec![0.0f32; rows * cols];
            let mut wide = vec![0.0f32; rows * cols];
            spmm_f32_scalar(&mut scalar, &row_ptr, &col_idx, &vals, &dense, cols);
            #[cfg(target_arch = "x86_64")]
            if is_x86_feature_detected!("avx2") {
                unsafe { spmm_f32_avx2(&mut wide, &row_ptr, &col_idx, &vals, &dense, cols) };
                assert_bits_eq(&scalar, &wide, &format!("spmm cols={cols}"));
            }
            spmm_f32(&mut wide, &row_ptr, &col_idx, &vals, &dense, cols);
            assert_bits_eq(&scalar, &wide, &format!("spmm dispatch cols={cols}"));
        }
    }

    #[test]
    fn kernels_are_nan_free_on_finite_inputs() {
        let mut rng = StdRng::seed_from_u64(14);
        let (m, k, n) = (7, 9, 13);
        let a = random_vec(m * k, &mut rng);
        let b = random_vec(k * n, &mut rng);
        let mut out = vec![f32::NAN; m * n]; // stale garbage must be overwritten
        matmul_chunked_f32(&mut out, &a, &b, m, k, n);
        assert!(out.iter().all(|v| v.is_finite()), "chunked produced non-finite values");
        out.fill(f32::NAN);
        matmul_packed_f32(&mut out, &a, &b, m, k, n);
        assert!(out.iter().all(|v| v.is_finite()), "packed produced non-finite values");
    }

    #[test]
    fn matmul_matches_f64_reference_within_f32_tolerance() {
        let mut rng = StdRng::seed_from_u64(15);
        let (m, k, n) = (10, 12, 9);
        let a64 = crate::Matrix::from_fn(m, k, |_, _| rng.gen_range(-1.0..1.0));
        let b64 = crate::Matrix::from_fn(k, n, |_, _| rng.gen_range(-1.0..1.0));
        let c64 = a64.matmul(&b64);
        let c32 = MatrixF32::from_f64(&a64).matmul(&MatrixF32::from_f64(&b64));
        for i in 0..m {
            for j in 0..n {
                let d = (c64[(i, j)] - c32[(i, j)] as f64).abs();
                assert!(d < 1e-5, "({i},{j}): f64 {} vs f32 {}", c64[(i, j)], c32[(i, j)]);
            }
        }
    }

    #[test]
    fn csr_f32_down_conversion_preserves_structure() {
        let entries = [(0usize, 1usize, 0.5f64), (1, 0, 0.25), (1, 2, 0.75), (2, 2, 1.0)];
        let csr64 = crate::CsrAdj::from_entries(3, 3, &entries);
        let csr32 = CsrF32::from_f64(&csr64);
        assert_eq!(csr32.nnz(), csr64.nnz());
        let x = MatrixF32::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = csr32.matmul_dense(&x);
        assert_eq!(y.shape(), (3, 2));
        assert!((y[(0, 0)] - 1.5).abs() < 1e-6); // 0.5 * row1
        assert!((y[(1, 1)] - (0.25 * 2.0 + 0.75 * 6.0)).abs() < 1e-6);
    }

    #[test]
    fn matrix_f32_roundtrip_and_indexing() {
        let m64 = crate::Matrix::from_fn(3, 2, |r, c| r as f64 + 0.5 * c as f64);
        let m32 = MatrixF32::from_f64(&m64);
        assert_eq!(m32.shape(), (3, 2));
        assert_eq!(m32[(2, 1)], 2.5);
        assert_eq!(m32.row(1), &[1.0, 1.5]);
    }
}
