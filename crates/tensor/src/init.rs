//! Weight initialization and random-sampling helpers.
//!
//! `rand` does not ship a Gaussian distribution in its core crate; rather
//! than pulling in `rand_distr`, a Box–Muller transform is implemented here
//! (the sizes involved make performance irrelevant).

use rand::Rng;

use crate::matrix::Matrix;

/// Draws one standard-normal sample via the Box–Muller transform.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // u1 ∈ (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal sample with the given mean and standard deviation.
pub fn normal(rng: &mut impl Rng, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Matrix with i.i.d. `N(0, std_dev²)` entries.
pub fn randn(rows: usize, cols: usize, std_dev: f64, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| normal(rng, 0.0, std_dev))
}

/// Matrix with i.i.d. uniform entries in `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

/// Xavier/Glorot uniform initialization for a `fan_in × fan_out` weight.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let bound = (6.0 / (fan_in + fan_out) as f64).sqrt();
    uniform(fan_in, fan_out, -bound, bound, rng)
}

/// He (Kaiming) normal initialization, appropriate before ReLU activations.
pub fn he_normal(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let std_dev = (2.0 / fan_in as f64).sqrt();
    randn(fan_in, fan_out, std_dev, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.06, "mean = {mean}");
    }

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier_uniform(8, 8, &mut rng);
        let bound = (6.0 / 16.0_f64).sqrt();
        assert!(w.as_slice().iter().all(|x| x.abs() <= bound));
        assert_eq!(w.shape(), (8, 8));
    }

    #[test]
    fn randn_is_deterministic_under_seed() {
        let a = randn(3, 3, 1.0, &mut StdRng::seed_from_u64(42));
        let b = randn(3, 3, 1.0, &mut StdRng::seed_from_u64(42));
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn samples_are_finite() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }
}
