//! Sparse CSR matrices for graph-structured operands.
//!
//! Occlusion graphs are sparse (each user occludes a handful of neighbours,
//! not all N), so multiplying GNN activations by a dense N×N adjacency wastes
//! O(N²) work. [`CsrAdj`] stores only the non-zeros in compressed sparse row
//! form — `row_ptr`/`col_idx`/`vals` — and its SpMM kernel
//! [`CsrAdj::matmul_dense`] costs O(nnz · cols) instead of O(N² · cols).
//!
//! The dense path stays available behind the [`LinOp`] trait, which both
//! [`Matrix`] and [`CsrAdj`] implement, so callers (GCN aggregation, the
//! occlusion loss penalty) can be written once and cross-checked dense vs
//! sparse in tests and ablations.

use crate::matrix::Matrix;

/// A sparse matrix in compressed sparse row (CSR) form.
///
/// Named for its dominant role here — the per-step occlusion-graph adjacency
/// (and its row-normalized and blocking variants) — but it is a general CSR
/// container. Within each row, column indices are strictly increasing.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrAdj {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` spans row `i`'s entries; length `rows + 1`.
    row_ptr: Vec<usize>,
    /// Column index of each stored entry, row by row.
    col_idx: Vec<usize>,
    /// Value of each stored entry, parallel to `col_idx`.
    vals: Vec<f64>,
}

impl CsrAdj {
    /// The `rows × cols` matrix with no stored entries.
    pub fn empty(rows: usize, cols: usize) -> Self {
        CsrAdj { rows, cols, row_ptr: vec![0; rows + 1], col_idx: Vec::new(), vals: Vec::new() }
    }

    /// Builds from `(row, col, value)` triplets in any order.
    ///
    /// Duplicate `(row, col)` entries are summed; explicit zeros are kept
    /// (callers that want them dropped should filter first).
    ///
    /// # Panics
    ///
    /// Panics when an index is out of `rows × cols` bounds.
    pub fn from_entries(rows: usize, cols: usize, entries: &[(usize, usize, f64)]) -> Self {
        let timer = xr_obs::start_timer();
        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, c, _) in entries {
            assert!(r < rows && c < cols, "entry ({r},{c}) out of {rows}x{cols} bounds");
            row_ptr[r + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        // Counting-sort entries into row order, then sort-and-merge columns
        // within each row.
        let mut col_idx = vec![0usize; entries.len()];
        let mut vals = vec![0.0f64; entries.len()];
        let mut cursor = row_ptr.clone();
        for &(r, c, v) in entries {
            let at = cursor[r];
            col_idx[at] = c;
            vals[at] = v;
            cursor[r] += 1;
        }
        let mut merged =
            CsrAdj { rows, cols, row_ptr: vec![0; rows + 1], col_idx: Vec::new(), vals: Vec::new() };
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for i in 0..rows {
            scratch.clear();
            scratch.extend(
                col_idx[row_ptr[i]..row_ptr[i + 1]]
                    .iter()
                    .copied()
                    .zip(vals[row_ptr[i]..row_ptr[i + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in scratch.iter() {
                match merged.col_idx.last() {
                    Some(&last) if merged.col_idx.len() > merged.row_ptr[i] && last == c => {
                        *merged.vals.last_mut().unwrap() += v;
                    }
                    _ => {
                        merged.col_idx.push(c);
                        merged.vals.push(v);
                    }
                }
            }
            merged.row_ptr[i + 1] = merged.col_idx.len();
        }
        xr_obs::observe_since("xr_tensor.csr.build.ms", &[], timer);
        merged
    }

    /// Builds from a dense matrix, keeping entries with `|x| > tol`.
    pub fn from_dense(dense: &Matrix, tol: f64) -> Self {
        let (rows, cols) = dense.shape();
        let mut out = CsrAdj::empty(rows, cols);
        for r in 0..rows {
            for (c, &x) in dense.row(r).iter().enumerate() {
                if x.abs() > tol {
                    out.col_idx.push(c);
                    out.vals.push(x);
                }
            }
            out.row_ptr[r + 1] = out.col_idx.len();
        }
        out
    }

    /// Materializes the dense equivalent.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let row = out.row_mut(r);
            for idx in self.row_ptr[r]..self.row_ptr[r + 1] {
                row[self.col_idx[idx]] += self.vals[idx];
            }
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Row-pointer array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index of each stored entry.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Value of each stored entry.
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Iterator over row `r`'s `(col, value)` entries.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
            .iter()
            .copied()
            .zip(self.vals[self.row_ptr[r]..self.row_ptr[r + 1]].iter().copied())
    }

    /// SpMM: `self · rhs` with a dense right-hand side.
    ///
    /// Each stored `a_ij` scatters `a_ij · rhs.row(j)` into `out.row(i)`;
    /// the inner loop is contiguous over both rows. Cost O(nnz · rhs.cols).
    /// Per output entry, contributions accumulate in ascending column order
    /// (CSR row order), matching dense `matmul_naive`'s ascending-k order, so
    /// the two agree to rounding — the equivalence property test pins this.
    pub fn matmul_dense(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            rhs.rows(),
            "spmm shape mismatch: {}x{} · {}x{}",
            self.rows,
            self.cols,
            rhs.rows(),
            rhs.cols()
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols());
        self.matmul_dense_into(rhs, &mut out);
        out
    }

    /// Like [`CsrAdj::matmul_dense`], but writes the product into `out`
    /// (overwriting every entry) instead of allocating. `out` must already
    /// have shape `rows × rhs.cols`; its prior contents are ignored.
    pub fn matmul_dense_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs.rows(),
            "spmm shape mismatch: {}x{} · {}x{}",
            self.rows,
            self.cols,
            rhs.rows(),
            rhs.cols()
        );
        assert_eq!(out.shape(), (self.rows, rhs.cols()), "spmm output shape mismatch");
        let timer = xr_obs::start_timer();
        // Register-accumulated in 8-wide column chunks: the chunk's partial
        // sums live in registers across the whole CSR row instead of
        // re-loading/re-storing the output row once per nonzero. Per output
        // entry the accumulation order over the row's entries is unchanged,
        // so results are bit-identical to the plain scatter loop. Plain
        // `a*b + o` on purpose: `mul_add` is a libm call on targets without
        // baseline FMA, and this loop is the hot one.
        // Narrow right-hand sides (all the model's aggregations: 1–16
        // columns) get single-pass paths that read each row's CSR entries
        // exactly once, with every partial sum in registers; wider ones fall
        // back to 8-wide chunked passes.
        const NR: usize = 8;
        let cols = rhs.cols();
        if cols == 1 {
            // Pure SpMV: no row-slice machinery per nonzero.
            let b = rhs.as_slice();
            let o = out.as_mut_slice();
            for (i, oi) in o.iter_mut().enumerate() {
                let mut acc = 0.0;
                for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                    acc += self.vals[idx] * b[self.col_idx[idx]];
                }
                *oi = acc;
            }
        } else if cols <= 2 * NR {
            for i in 0..self.rows {
                let (start, end) = (self.row_ptr[i], self.row_ptr[i + 1]);
                let mut acc = [0.0f64; 2 * NR];
                if cols == NR / 2 {
                    for idx in start..end {
                        let a = self.vals[idx];
                        let brow = rhs.row(self.col_idx[idx]);
                        for (o, &b) in acc[..NR / 2].iter_mut().zip(brow.iter()) {
                            *o += a * b;
                        }
                    }
                } else if cols == NR {
                    for idx in start..end {
                        let a = self.vals[idx];
                        let brow = rhs.row(self.col_idx[idx]);
                        for (o, &b) in acc[..NR].iter_mut().zip(brow.iter()) {
                            *o += a * b;
                        }
                    }
                } else if cols == 2 * NR {
                    for idx in start..end {
                        let a = self.vals[idx];
                        let brow = rhs.row(self.col_idx[idx]);
                        for (o, &b) in acc.iter_mut().zip(brow.iter()) {
                            *o += a * b;
                        }
                    }
                } else {
                    for idx in start..end {
                        let a = self.vals[idx];
                        let brow = rhs.row(self.col_idx[idx]);
                        for (o, &b) in acc[..cols].iter_mut().zip(brow.iter()) {
                            *o += a * b;
                        }
                    }
                }
                out.row_mut(i).copy_from_slice(&acc[..cols]);
            }
        } else {
            for i in 0..self.rows {
                let (start, end) = (self.row_ptr[i], self.row_ptr[i + 1]);
                let mut j0 = 0;
                while j0 < cols {
                    let w = NR.min(cols - j0);
                    let mut acc = [0.0f64; NR];
                    if w == NR {
                        for idx in start..end {
                            let a = self.vals[idx];
                            let brow = &rhs.row(self.col_idx[idx])[j0..j0 + NR];
                            for (o, &b) in acc.iter_mut().zip(brow.iter()) {
                                *o += a * b;
                            }
                        }
                    } else {
                        for idx in start..end {
                            let a = self.vals[idx];
                            let brow = &rhs.row(self.col_idx[idx])[j0..j0 + w];
                            for (o, &b) in acc.iter_mut().zip(brow.iter()) {
                                *o += a * b;
                            }
                        }
                    }
                    out.row_mut(i)[j0..j0 + w].copy_from_slice(&acc[..w]);
                    j0 += NR;
                }
            }
        }
        xr_obs::observe_since("xr_tensor.csr.spmm.ms", &[], timer);
    }

    /// Sparse matrix–vector product `self · x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "matvec length mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.vals[idx] * x[self.col_idx[idx]];
            }
            *o = acc;
        }
        out
    }

    /// Quadratic form `xᵀ · self · y`.
    pub fn quadratic_form(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(self.rows, x.len(), "quadratic_form left length mismatch");
        let ay = self.matvec(y);
        x.iter().zip(ay.iter()).map(|(&a, &b)| a * b).sum()
    }

    /// Transpose, in CSR form (i.e. the CSC view of `self`).
    pub fn transpose(&self) -> CsrAdj {
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for i in 0..self.cols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut vals = vec![0.0f64; self.nnz()];
        let mut cursor = row_ptr.clone();
        for r in 0..self.rows {
            for idx in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[idx];
                let at = cursor[c];
                col_idx[at] = r;
                vals[at] = self.vals[idx];
                cursor[c] += 1;
            }
        }
        CsrAdj { rows: self.cols, cols: self.rows, row_ptr, col_idx, vals }
    }

    /// A copy with the given rows' entries replaced — the CSR row-surgery
    /// primitive behind delta-maintained adjacency operators. Unlisted rows
    /// are copied verbatim (bit for bit); for each row in `rows`, `build` is
    /// called once to push the replacement `(col, value)` entries.
    ///
    /// `rows` must be strictly ascending and in range; `build` must push
    /// entries in strictly ascending column order (debug-asserted), so the
    /// result satisfies the same invariants [`CsrAdj::from_entries`]
    /// establishes.
    ///
    /// # Panics
    ///
    /// Panics when `rows` is not strictly ascending in-range, or when `build`
    /// pushes an out-of-range column.
    pub fn with_rows_replaced(
        &self,
        rows: &[usize],
        mut build: impl FnMut(usize, &mut Vec<(usize, f64)>),
    ) -> CsrAdj {
        assert!(rows.iter().all(|&r| r < self.rows), "replaced row out of bounds");
        assert!(rows.windows(2).all(|w| w[0] < w[1]), "replaced rows must be strictly ascending");
        let timer = xr_obs::start_timer();
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut vals = Vec::with_capacity(self.nnz());
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        let mut next = rows.iter().copied().peekable();
        for r in 0..self.rows {
            if next.peek() == Some(&r) {
                next.next();
                scratch.clear();
                build(r, &mut scratch);
                debug_assert!(
                    scratch.windows(2).all(|w| w[0].0 < w[1].0),
                    "replacement entries must have strictly ascending columns"
                );
                for &(c, v) in &scratch {
                    assert!(c < self.cols, "replacement entry ({r},{c}) out of bounds");
                    col_idx.push(c);
                    vals.push(v);
                }
            } else {
                let span = self.row_ptr[r]..self.row_ptr[r + 1];
                col_idx.extend_from_slice(&self.col_idx[span.clone()]);
                vals.extend_from_slice(&self.vals[span]);
            }
            row_ptr.push(col_idx.len());
        }
        xr_obs::observe_since("xr_tensor.csr.row_surgery.ms", &[], timer);
        CsrAdj { rows: self.rows, cols: self.cols, row_ptr, col_idx, vals }
    }

    /// Row-normalized copy: each non-empty row scaled to sum to 1
    /// (mean aggregation, `D⁻¹A`).
    pub fn row_normalized(&self) -> CsrAdj {
        let mut out = self.clone();
        for r in 0..out.rows {
            let span = out.row_ptr[r]..out.row_ptr[r + 1];
            let s: f64 = out.vals[span.clone()].iter().sum();
            if s != 0.0 {
                for v in &mut out.vals[span] {
                    *v /= s;
                }
            }
        }
        out
    }
}

/// A linear operator applied by left-multiplication: `apply(X) = A · X`.
///
/// Implemented by dense [`Matrix`] and sparse [`CsrAdj`] so aggregation and
/// penalty code can be written once and run on either representation.
pub trait LinOp {
    /// `(rows, cols)` of the operator.
    fn shape(&self) -> (usize, usize);

    /// `self · x`.
    fn apply(&self, x: &Matrix) -> Matrix;
}

impl LinOp for Matrix {
    fn shape(&self) -> (usize, usize) {
        Matrix::shape(self)
    }

    fn apply(&self, x: &Matrix) -> Matrix {
        self.matmul(x)
    }
}

impl LinOp for CsrAdj {
    fn shape(&self) -> (usize, usize) {
        CsrAdj::shape(self)
    }

    fn apply(&self, x: &Matrix) -> Matrix {
        self.matmul_dense(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dense(rows: usize, cols: usize, density_mod: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            if (r * 31 + c * 7) % density_mod == 0 {
                ((r * 13 + c * 5) % 9) as f64 - 4.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn from_dense_round_trips() {
        let d = sample_dense(17, 23, 4);
        let csr = CsrAdj::from_dense(&d, 0.0);
        assert!(csr.to_dense().approx_eq(&d, 0.0));
        assert_eq!(csr.nnz(), d.as_slice().iter().filter(|&&x| x != 0.0).count());
        assert_eq!(csr.row_ptr().len(), 18);
    }

    #[test]
    fn from_entries_sorts_and_merges_duplicates() {
        let csr =
            CsrAdj::from_entries(3, 3, &[(2, 1, 4.0), (0, 2, 1.0), (0, 0, 2.0), (2, 1, -1.0), (1, 1, 5.0)]);
        let expected = Matrix::from_vec(3, 3, vec![2.0, 0.0, 1.0, 0.0, 5.0, 0.0, 0.0, 3.0, 0.0]).unwrap();
        assert!(csr.to_dense().approx_eq(&expected, 0.0));
        // columns strictly increasing within each row
        for r in 0..3 {
            let cols: Vec<usize> = csr.row_entries(r).map(|(c, _)| c).collect();
            assert!(cols.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let a_dense = sample_dense(20, 30, 5);
        let x = Matrix::from_fn(30, 7, |r, c| (r as f64 + 1.0) * 0.5 - c as f64 * 0.25);
        let csr = CsrAdj::from_dense(&a_dense, 0.0);
        let sparse = csr.matmul_dense(&x);
        let dense = a_dense.matmul_naive(&x);
        assert!(sparse.approx_eq(&dense, 1e-12), "spmm != dense matmul");
    }

    #[test]
    fn matvec_and_quadratic_form_match_dense() {
        let a_dense = sample_dense(12, 12, 3);
        let csr = CsrAdj::from_dense(&a_dense, 0.0);
        let x: Vec<f64> = (0..12).map(|i| i as f64 * 0.3 - 1.0).collect();
        let y: Vec<f64> = (0..12).map(|i| 2.0 - i as f64 * 0.1).collect();
        let ay = csr.matvec(&y);
        let ay_dense = a_dense.matmul_naive(&Matrix::col_vec(&y));
        for (i, &v) in ay.iter().enumerate() {
            assert!((v - ay_dense[(i, 0)]).abs() < 1e-12);
        }
        let qf = csr.quadratic_form(&x, &y);
        let qf_dense = Matrix::row_vec(&x).matmul_naive(&ay_dense)[(0, 0)];
        assert!((qf - qf_dense).abs() < 1e-10);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let a_dense = sample_dense(9, 14, 4);
        let csr = CsrAdj::from_dense(&a_dense, 0.0);
        assert!(csr.transpose().to_dense().approx_eq(&a_dense.transpose(), 0.0));
        assert_eq!(csr.transpose().transpose().to_dense(), csr.to_dense());
    }

    #[test]
    fn row_normalized_rows_sum_to_one() {
        let csr = CsrAdj::from_entries(3, 3, &[(0, 1, 2.0), (0, 2, 2.0), (2, 0, 5.0)]);
        let norm = csr.row_normalized();
        let d = norm.to_dense();
        assert!((d.row(0).iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(d.row(1).iter().sum::<f64>(), 0.0); // empty row untouched
        assert!((d[(2, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linop_dense_and_sparse_agree() {
        let a_dense = sample_dense(15, 15, 4);
        let csr = CsrAdj::from_dense(&a_dense, 0.0);
        let x = Matrix::from_fn(15, 3, |r, c| (r + c) as f64 * 0.1);
        let via_dense = LinOp::apply(&a_dense, &x);
        let via_sparse = LinOp::apply(&csr, &x);
        assert!(via_dense.approx_eq(&via_sparse, 1e-12));
        assert_eq!(LinOp::shape(&a_dense), LinOp::shape(&csr));
    }

    #[test]
    fn with_rows_replaced_matches_a_fresh_build() {
        let before = CsrAdj::from_entries(4, 4, &[(0, 1, 1.0), (0, 3, 2.0), (1, 0, 1.0), (3, 2, 5.0)]);
        // replace rows 0 and 3; rows 1 and 2 must be copied bit for bit
        let after = before.with_rows_replaced(&[0, 3], |r, out| {
            if r == 0 {
                out.push((2, 7.0));
            } else {
                out.push((0, 1.0));
                out.push((1, 1.0));
            }
        });
        let fresh = CsrAdj::from_entries(4, 4, &[(0, 2, 7.0), (1, 0, 1.0), (3, 0, 1.0), (3, 1, 1.0)]);
        assert_eq!(after, fresh, "row surgery must reproduce the from-scratch CSR exactly");
        // replacing with an empty set clears the row
        let cleared = before.with_rows_replaced(&[1], |_, _| {});
        assert_eq!(cleared.row_entries(1).count(), 0);
        assert_eq!(cleared.nnz(), before.nnz() - 1);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn with_rows_replaced_rejects_unsorted_rows() {
        CsrAdj::empty(3, 3).with_rows_replaced(&[2, 1], |_, _| {});
    }

    #[test]
    fn empty_matrix_spmm_is_zero() {
        let csr = CsrAdj::empty(4, 6);
        let x = Matrix::ones(6, 2);
        assert!(csr.matmul_dense(&x).approx_eq(&Matrix::zeros(4, 2), 0.0));
        assert_eq!(csr.nnz(), 0);
    }
}
