//! Always-on flight recorder: a bounded, lock-sharded ring of the most
//! recent spans and events, kept in constant memory so it can run on every
//! instrumented process and be dumped *after the fact* — on panic, on a
//! sustained SLO breach, or on demand via `AFTER_FLIGHT_DUMP`.
//!
//! Unlike [`crate::trace::TraceSink`] (opt-in, unbounded-ish, keeps span
//! arguments), the recorder trades detail for cost: events carry only a
//! static name, phase, timestamps, and thread id — no argument formatting,
//! no allocation past the ring's one-time fill — and land in one of a few
//! mutex shards picked by thread id, so concurrent workers rarely contend.
//! When the ring is full the oldest event in the shard is overwritten;
//! [`FlightRecorder::total_recorded`] keeps the true count so dumps state
//! how much history was discarded.
//!
//! Every [`crate::ObsCtx`] owns a recorder and every span/instant records
//! into it, which is what makes post-mortem dumps possible without having
//! asked for tracing up front. Dumps use the same Chrome/Perfetto JSON shape
//! as the trace exporter.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;
use crate::trace::current_tid;

/// Env var enabling flight dumps: `1` for the default `flight.json`, any
/// other non-empty value as an explicit path.
pub const FLIGHT_DUMP_ENV: &str = "AFTER_FLIGHT_DUMP";

/// Default dump path when [`FLIGHT_DUMP_ENV`] is `1`.
pub const DEFAULT_DUMP_PATH: &str = "flight.json";

/// Mutex shards; thread id picks the shard, so single-threaded recording
/// never contends and scoped workers spread across shards.
const SHARDS: usize = 8;

/// Default total event capacity across all shards. At 48 bytes per event
/// this bounds the recorder below 1 MiB.
pub const DEFAULT_CAPACITY: usize = 16384;

/// One recorded event — the argument-free subset of
/// [`crate::trace::TraceEvent`].
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Span or event name.
    pub name: &'static str,
    /// `'X'` = complete span, `'i'` = instant.
    pub phase: char,
    /// Microseconds since the recorder's epoch.
    pub ts_us: f64,
    /// Duration in microseconds (0 for instants).
    pub dur_us: f64,
    /// Per-thread track id.
    pub tid: u64,
}

struct Ring {
    /// Grows once up to the per-shard cap, then wraps.
    buf: Vec<FlightEvent>,
    /// Index of the oldest event once the ring is full.
    head: usize,
    /// Events ever pushed into this shard.
    total: u64,
}

impl Ring {
    fn push(&mut self, cap: usize, event: FlightEvent) {
        if self.buf.len() < cap {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % cap;
        }
        self.total += 1;
    }

    /// Events oldest-first.
    fn ordered(&self) -> impl Iterator<Item = &FlightEvent> {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }
}

/// The bounded ring of recent spans/events. See the module docs.
pub struct FlightRecorder {
    epoch: Instant,
    shards: Vec<Mutex<Ring>>,
    per_shard_cap: usize,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining roughly `total_capacity` events (rounded up to a
    /// multiple of the shard count).
    pub fn with_capacity(total_capacity: usize) -> FlightRecorder {
        let per_shard_cap = total_capacity.div_ceil(SHARDS).max(1);
        FlightRecorder {
            epoch: Instant::now(),
            shards: (0..SHARDS).map(|_| Mutex::new(Ring { buf: Vec::new(), head: 0, total: 0 })).collect(),
            per_shard_cap,
        }
    }

    /// Microseconds since the recorder's epoch.
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    fn push(&self, event: FlightEvent) {
        let shard = (event.tid as usize) % SHARDS;
        let mut ring = self.shards[shard].lock().expect("flight shard poisoned");
        ring.push(self.per_shard_cap, event);
    }

    /// Records a completed span of `dur_us` microseconds ending now.
    pub fn record_complete(&self, name: &'static str, dur_us: f64) {
        let now = self.now_us();
        self.push(FlightEvent {
            name,
            phase: 'X',
            ts_us: (now - dur_us).max(0.0),
            dur_us,
            tid: current_tid(),
        });
    }

    /// Records an instant event.
    pub fn record_instant(&self, name: &'static str) {
        self.push(FlightEvent { name, phase: 'i', ts_us: self.now_us(), dur_us: 0.0, tid: current_tid() });
    }

    /// Events currently retained (≤ [`Self::capacity`]).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("flight shard poisoned").buf.len()).sum()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum retained events across all shards.
    pub fn capacity(&self) -> usize {
        self.per_shard_cap * SHARDS
    }

    /// Events ever recorded, including those since overwritten.
    pub fn total_recorded(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().expect("flight shard poisoned").total).sum()
    }

    /// The retained events sorted by `(tid, ts)` — deterministic given
    /// identical recorded timings, like the trace exporter.
    pub fn events_sorted(&self) -> Vec<FlightEvent> {
        let mut events: Vec<FlightEvent> = self
            .shards
            .iter()
            .flat_map(|s| {
                let ring = s.lock().expect("flight shard poisoned");
                ring.ordered().cloned().collect::<Vec<_>>()
            })
            .collect();
        events.sort_by(|a, b| {
            a.tid.cmp(&b.tid).then(a.ts_us.partial_cmp(&b.ts_us).unwrap_or(std::cmp::Ordering::Equal))
        });
        events
    }

    /// Exports the retained window in Chrome trace-event format (loadable
    /// by `chrome://tracing` and Perfetto), with `flightTotalRecorded` /
    /// `flightCapacity` stating how much history the ring covered.
    pub fn to_chrome_json(&self) -> Json {
        let rows: Vec<Json> = self
            .events_sorted()
            .iter()
            .map(|e| {
                let row = Json::obj()
                    .set("name", e.name)
                    .set("ph", e.phase.to_string())
                    .set("ts", e.ts_us)
                    .set("pid", 1u64)
                    .set("tid", e.tid);
                if e.phase == 'X' {
                    row.set("dur", e.dur_us)
                } else {
                    row.set("s", "t")
                }
            })
            .collect();
        Json::obj()
            .set("traceEvents", Json::Arr(rows))
            .set("displayTimeUnit", "ms")
            .set("flightTotalRecorded", self.total_recorded())
            .set("flightCapacity", self.capacity() as u64)
    }
}

/// The dump path configured by [`FLIGHT_DUMP_ENV`], if any.
pub fn env_dump_path() -> Option<PathBuf> {
    match std::env::var(FLIGHT_DUMP_ENV) {
        Ok(v) if v.is_empty() || v == "0" => None,
        Ok(v) if v == "1" => Some(PathBuf::from(DEFAULT_DUMP_PATH)),
        Ok(v) => Some(PathBuf::from(v)),
        Err(_) => None,
    }
}

/// Dumps the installed context's flight recorder to `path`, tagging the
/// file with `reason`. `false` when no context is installed or the write
/// failed (reported to stderr — dumps happen on already-failing paths, so
/// they must not panic).
pub fn dump_to(path: &std::path::Path, reason: &str) -> bool {
    let Some(ctx) = crate::current_ctx() else { return false };
    let doc = ctx.recorder.to_chrome_json().set("flightDumpReason", reason);
    match crate::meta::write_atomic(path, &doc.compact()) {
        Ok(()) => {
            eprintln!(
                "[flight] dumped {} events to {} (reason: {reason})",
                ctx.recorder.len(),
                path.display()
            );
            true
        }
        Err(err) => {
            eprintln!("[flight] dump to {} failed: {err}", path.display());
            false
        }
    }
}

/// Dumps to the [`FLIGHT_DUMP_ENV`]-configured path; a no-op when the env
/// var requests no dump.
pub fn dump_to_env_path(reason: &str) -> bool {
    match env_dump_path() {
        Some(path) => dump_to(&path, reason),
        None => false,
    }
}

static PANIC_HOOK: OnceLock<()> = OnceLock::new();
static PANIC_DUMPED: AtomicBool = AtomicBool::new(false);

/// Installs (once per process) a panic hook that dumps the panicking
/// thread's flight recorder to the [`FLIGHT_DUMP_ENV`] path before the
/// previous hook runs. Idempotent.
pub fn install_panic_hook() {
    PANIC_HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !PANIC_DUMPED.swap(true, Ordering::SeqCst) {
                dump_to_env_path("panic");
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_is_exact() {
        // single-threaded: every event lands in one shard, whose cap is
        // ceil(32/8) = 4
        let rec = FlightRecorder::with_capacity(32);
        assert_eq!(rec.capacity(), 32);
        let names = ["e0", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"];
        for name in names {
            rec.record_instant(name);
        }
        assert_eq!(rec.len(), 4, "one shard retains exactly its cap");
        assert_eq!(rec.total_recorded(), 10);
        let kept: Vec<&str> = rec.events_sorted().iter().map(|e| e.name).collect();
        assert_eq!(kept, vec!["e6", "e7", "e8", "e9"], "exactly the newest events survive, in order");
    }

    #[test]
    fn complete_spans_back_date_their_start() {
        let rec = FlightRecorder::default();
        rec.record_complete("span.a", 1500.0);
        let events = rec.events_sorted();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].phase, 'X');
        assert_eq!(events[0].dur_us, 1500.0);
        // a duration longer than the recorder's lifetime clamps to the epoch
        assert_eq!(events[0].ts_us, 0.0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        rec.record_complete("span.b", 100.0);
        let events = rec.events_sorted();
        let b = events.iter().find(|e| e.name == "span.b").unwrap();
        assert!(b.ts_us > 0.0 && b.ts_us + b.dur_us <= rec.now_us());
    }

    #[test]
    fn chrome_export_parses_and_reports_totals() {
        let rec = FlightRecorder::with_capacity(8);
        for _ in 0..20 {
            rec.record_instant("e");
        }
        rec.record_complete("s", 10.0);
        let doc = rec.to_chrome_json();
        assert!(Json::parse(&doc.compact()).is_ok());
        assert_eq!(doc.get("flightTotalRecorded").and_then(Json::as_f64), Some(21.0));
        assert_eq!(doc.get("flightCapacity").and_then(Json::as_f64), Some(8.0));
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(events.len() <= 8);
    }

    #[test]
    fn dump_roundtrip_through_installed_ctx() {
        let ctx = crate::ObsCtx::new(false, false);
        let _g = ctx.install();
        ctx.recorder.record_instant("dump.me");
        let dir = std::env::temp_dir().join(format!("xr_obs_flight_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight.json");
        assert!(dump_to(&path, "test"));
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("flightDumpReason").and_then(Json::as_str), Some("test"));
        assert!(!doc.get("traceEvents").and_then(Json::as_arr).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dump_without_context_reports_false() {
        assert!(!dump_to(std::path::Path::new("/nonexistent/flight.json"), "test"));
    }
}
