//! Session activation: env vars, CLI flags, and end-of-run file export.
//!
//! Binaries opt in with one line — `let _obs = xr_obs::init_cli_env();` —
//! which reads `AFTER_TRACE=path.json` / `AFTER_METRICS=path.json` and the
//! `--trace[=path]` / `--metrics[=path]` CLI flags, installs a matching
//! [`ObsCtx`] on the main thread, and writes the requested files when the
//! session drops (or [`ObsSession::finish`] is called explicitly).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::{InstallGuard, ObsCtx};

/// Resolved activation options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsOptions {
    /// Chrome-trace output path, when tracing was requested.
    pub trace_path: Option<PathBuf>,
    /// Metrics JSON output path, when metrics were requested.
    pub metrics_path: Option<PathBuf>,
}

impl ObsOptions {
    /// Options from `AFTER_TRACE` / `AFTER_METRICS` alone.
    pub fn from_env() -> ObsOptions {
        let path_var = |name: &str| -> Option<PathBuf> {
            match std::env::var(name) {
                Ok(v) if !v.trim().is_empty() => Some(PathBuf::from(v.trim())),
                _ => None,
            }
        };
        ObsOptions { trace_path: path_var("AFTER_TRACE"), metrics_path: path_var("AFTER_METRICS") }
    }

    /// Options from env vars plus CLI flags (flags win). Recognized flags:
    /// `--trace`, `--trace=PATH`, `--metrics`, `--metrics=PATH`; the bare
    /// forms default to `trace.json` / `metrics.json` in the working
    /// directory. Unrelated arguments are ignored.
    pub fn from_args_and_env<I, S>(args: I) -> ObsOptions
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut opts = ObsOptions::from_env();
        for arg in args {
            let arg = arg.as_ref();
            if arg == "--trace" {
                opts.trace_path = Some(PathBuf::from("trace.json"));
            } else if let Some(path) = arg.strip_prefix("--trace=") {
                opts.trace_path = Some(PathBuf::from(path));
            } else if arg == "--metrics" {
                opts.metrics_path = Some(PathBuf::from("metrics.json"));
            } else if let Some(path) = arg.strip_prefix("--metrics=") {
                opts.metrics_path = Some(PathBuf::from(path));
            }
        }
        opts
    }

    /// `true` when neither sink was requested.
    pub fn is_empty(&self) -> bool {
        self.trace_path.is_none() && self.metrics_path.is_none()
    }
}

/// An activated observability session. Keep it alive for the duration of
/// `main`; output files are written exactly once, by [`ObsSession::finish`]
/// or on drop.
pub struct ObsSession {
    ctx: Option<Arc<ObsCtx>>,
    options: ObsOptions,
    finished: bool,
    // Restores the previous thread context when the session ends. Declared
    // after `ctx` only for readability — drop order is irrelevant because
    // the guard holds its own Arc.
    _guard: Option<InstallGuard>,
}

impl ObsSession {
    /// An inert session: nothing installed, nothing written.
    pub fn disabled() -> ObsSession {
        ObsSession { ctx: None, options: ObsOptions::default(), finished: false, _guard: None }
    }

    /// Builds and installs a context per `options` on the current thread.
    /// With empty options this is [`ObsSession::disabled`].
    pub fn start(options: ObsOptions) -> ObsSession {
        if options.is_empty() {
            return ObsSession::disabled();
        }
        let ctx = ObsCtx::new(options.metrics_path.is_some(), options.trace_path.is_some());
        let guard = ctx.install();
        ObsSession { ctx: Some(ctx), options, finished: false, _guard: Some(guard) }
    }

    /// `true` when a context is installed.
    pub fn active(&self) -> bool {
        self.ctx.is_some()
    }

    /// The session's context (e.g. to install in extra threads).
    pub fn ctx(&self) -> Option<&Arc<ObsCtx>> {
        self.ctx.as_ref()
    }

    /// The resolved activation options.
    pub fn options(&self) -> &ObsOptions {
        &self.options
    }

    /// Writes the requested export files (idempotent; also runs on drop).
    /// Reports each written path — or a write failure — on stderr.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let Some(ctx) = &self.ctx else { return };
        if let (Some(path), Some(trace)) = (&self.options.trace_path, &ctx.trace) {
            write_report(path, &trace.to_chrome_json().compact(), "trace");
        }
        if let Some(path) = &self.options.metrics_path {
            if ctx.metrics_on {
                write_report(path, &ctx.registry.snapshot().to_json().pretty(), "metrics");
            }
        }
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        self.finish();
    }
}

fn write_report(path: &Path, contents: &str, what: &str) {
    match std::fs::write(path, contents) {
        Ok(()) => eprintln!("[{what} written to {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {what} to {}: {e}", path.display()),
    }
}

/// Activates observability from `AFTER_TRACE` / `AFTER_METRICS` alone (no
/// CLI parsing) — for tests and library embedders.
pub fn init_from_env() -> ObsSession {
    ObsSession::start(ObsOptions::from_env())
}

/// Activates observability from the process CLI arguments and environment:
/// the one-liner for the table/figure binaries.
pub fn init_cli_env() -> ObsSession {
    ObsSession::start(ObsOptions::from_args_and_env(std::env::args().skip(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_override_and_default() {
        // env interactions are covered by obs_smoke in CI; here only flags
        let opts = ObsOptions::from_args_and_env(["--trace", "--metrics=m.json", "ignored"]);
        assert_eq!(opts.trace_path.as_deref(), Some(Path::new("trace.json")));
        assert_eq!(opts.metrics_path.as_deref(), Some(Path::new("m.json")));
        let opts = ObsOptions::from_args_and_env(["--trace=t.json"]);
        assert_eq!(opts.trace_path.as_deref(), Some(Path::new("t.json")));
    }

    #[test]
    fn empty_options_mean_disabled_session() {
        let session = ObsSession::start(ObsOptions::default());
        assert!(!session.active());
    }

    #[test]
    fn session_writes_files_once_on_finish() {
        let dir = std::env::temp_dir().join(format!("xr_obs_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.json");
        let metrics_path = dir.join("m.json");
        {
            let mut session = ObsSession::start(ObsOptions {
                trace_path: Some(trace_path.clone()),
                metrics_path: Some(metrics_path.clone()),
            });
            assert!(session.active());
            crate::counter_add("s.calls", &[], 3);
            {
                let _span = crate::span!("s.phase");
            }
            session.finish();
        }
        let metrics = crate::Json::parse(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        assert_eq!(
            metrics.get("counters").and_then(|c| c.get("s.calls")).and_then(crate::Json::as_f64),
            Some(3.0)
        );
        let trace = crate::Json::parse(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
        let events = trace.get("traceEvents").and_then(crate::Json::as_arr).unwrap();
        assert!(events.iter().any(|e| e.get("name").and_then(crate::Json::as_str) == Some("s.phase")));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
