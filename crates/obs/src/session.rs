//! Session activation: env vars, CLI flags, and end-of-run file export.
//!
//! Binaries opt in with one line — `let _obs = xr_obs::init_cli_env();` —
//! which reads the `AFTER_TRACE` / `AFTER_METRICS` / `AFTER_PROM` /
//! `AFTER_SLO_BUDGET_MS` / `AFTER_FLIGHT_DUMP` env vars and the matching
//! `--trace[=path]` / `--metrics[=path]` / `--prom[=path]` /
//! `--slo-budget-ms=X` / `--flight-dump[=path]` CLI flags, installs a
//! matching [`ObsCtx`] on the main thread, and writes the requested files
//! when the session drops (or [`ObsSession::finish`] is called explicitly).
//!
//! Flag values are written through to their env vars at [`ObsSession::start`]
//! so downstream components that self-configure from the environment (the
//! `SceneEngine`'s SLO tracker, the panic-hook flight dump) see the same
//! settings regardless of which spelling the user chose.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::meta::write_atomic;
use crate::{recorder, slo, InstallGuard, ObsCtx};

/// Resolved activation options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsOptions {
    /// Chrome-trace output path, when tracing was requested.
    pub trace_path: Option<PathBuf>,
    /// Metrics JSON output path, when metrics were requested.
    pub metrics_path: Option<PathBuf>,
    /// Prometheus text-format output path, when requested.
    pub prom_path: Option<PathBuf>,
    /// Per-tick latency budget in milliseconds, when SLO tracking was
    /// requested.
    pub slo_budget_ms: Option<f64>,
    /// Flight-recorder dump path (written on finish, panic, or sustained
    /// SLO breach), when requested.
    pub flight_dump_path: Option<PathBuf>,
}

impl ObsOptions {
    /// Options from the `AFTER_*` env vars alone.
    pub fn from_env() -> ObsOptions {
        let path_var = |name: &str| -> Option<PathBuf> {
            match std::env::var(name) {
                Ok(v) if !v.trim().is_empty() => Some(PathBuf::from(v.trim())),
                _ => None,
            }
        };
        ObsOptions {
            trace_path: path_var("AFTER_TRACE"),
            metrics_path: path_var("AFTER_METRICS"),
            prom_path: path_var("AFTER_PROM"),
            slo_budget_ms: slo::SloConfig::from_env().map(|c| c.budget_ms),
            flight_dump_path: recorder::env_dump_path(),
        }
    }

    /// Options from env vars plus CLI flags (flags win). Recognized flags:
    /// `--trace`, `--trace=PATH`, `--metrics`, `--metrics=PATH`, `--prom`,
    /// `--prom=PATH`, `--slo-budget-ms=MS`, `--flight-dump`,
    /// `--flight-dump=PATH`; the bare forms default to `trace.json` /
    /// `metrics.json` / `metrics.prom` / `flight.json` in the working
    /// directory. Unrelated arguments are ignored.
    pub fn from_args_and_env<I, S>(args: I) -> ObsOptions
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut opts = ObsOptions::from_env();
        for arg in args {
            let arg = arg.as_ref();
            if arg == "--trace" {
                opts.trace_path = Some(PathBuf::from("trace.json"));
            } else if let Some(path) = arg.strip_prefix("--trace=") {
                opts.trace_path = Some(PathBuf::from(path));
            } else if arg == "--metrics" {
                opts.metrics_path = Some(PathBuf::from("metrics.json"));
            } else if let Some(path) = arg.strip_prefix("--metrics=") {
                opts.metrics_path = Some(PathBuf::from(path));
            } else if arg == "--prom" {
                opts.prom_path = Some(PathBuf::from("metrics.prom"));
            } else if let Some(path) = arg.strip_prefix("--prom=") {
                opts.prom_path = Some(PathBuf::from(path));
            } else if let Some(ms) = arg.strip_prefix("--slo-budget-ms=") {
                opts.slo_budget_ms = ms.parse::<f64>().ok().filter(|b| *b > 0.0 && b.is_finite());
            } else if arg == "--flight-dump" {
                opts.flight_dump_path = Some(PathBuf::from(recorder::DEFAULT_DUMP_PATH));
            } else if let Some(path) = arg.strip_prefix("--flight-dump=") {
                opts.flight_dump_path = Some(PathBuf::from(path));
            }
        }
        opts
    }

    /// `true` when no sink or tracking feature was requested.
    pub fn is_empty(&self) -> bool {
        self.trace_path.is_none()
            && self.metrics_path.is_none()
            && self.prom_path.is_none()
            && self.slo_budget_ms.is_none()
            && self.flight_dump_path.is_none()
    }
}

/// An activated observability session. Keep it alive for the duration of
/// `main`; output files are written exactly once, by [`ObsSession::finish`]
/// or on drop.
pub struct ObsSession {
    ctx: Option<Arc<ObsCtx>>,
    options: ObsOptions,
    finished: bool,
    // Restores the previous thread context when the session ends. Declared
    // after `ctx` only for readability — drop order is irrelevant because
    // the guard holds its own Arc.
    _guard: Option<InstallGuard>,
}

impl ObsSession {
    /// An inert session: nothing installed, nothing written.
    pub fn disabled() -> ObsSession {
        ObsSession { ctx: None, options: ObsOptions::default(), finished: false, _guard: None }
    }

    /// Builds and installs a context per `options` on the current thread.
    /// With empty options this is [`ObsSession::disabled`].
    pub fn start(options: ObsOptions) -> ObsSession {
        crate::meta::process_start();
        if options.is_empty() {
            return ObsSession::disabled();
        }
        // write flag-sourced settings through to the env so components that
        // self-configure from it (SceneEngine SLO tracker, panic hook, eval
        // runner) see them; env-sourced values round-trip unchanged
        if let Some(budget) = options.slo_budget_ms {
            std::env::set_var(slo::SLO_BUDGET_ENV, format!("{budget}"));
        }
        if let Some(path) = &options.flight_dump_path {
            std::env::set_var(recorder::FLIGHT_DUMP_ENV, path.as_os_str());
            recorder::install_panic_hook();
        }
        let metrics = options.metrics_path.is_some() || options.prom_path.is_some();
        let ctx = ObsCtx::new(metrics, options.trace_path.is_some());
        let guard = ctx.install();
        ObsSession { ctx: Some(ctx), options, finished: false, _guard: Some(guard) }
    }

    /// `true` when a context is installed.
    pub fn active(&self) -> bool {
        self.ctx.is_some()
    }

    /// The session's context (e.g. to install in extra threads).
    pub fn ctx(&self) -> Option<&Arc<ObsCtx>> {
        self.ctx.as_ref()
    }

    /// The resolved activation options.
    pub fn options(&self) -> &ObsOptions {
        &self.options
    }

    /// Writes the requested export files (idempotent; also runs on drop).
    /// Reports each written path — or a write failure — on stderr. All
    /// writes are atomic (temp file + rename), so a crash mid-export never
    /// leaves a truncated file.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let Some(ctx) = &self.ctx else { return };
        if let (Some(path), Some(trace)) = (&self.options.trace_path, &ctx.trace) {
            write_report(path, &trace.to_chrome_json().compact(), "trace");
        }
        if ctx.metrics_on {
            if let Some(path) = &self.options.metrics_path {
                let doc = ctx
                    .registry
                    .snapshot()
                    .to_json()
                    .set("timeseries", ctx.series.snapshot().to_json())
                    .set("meta", crate::meta::run_metadata());
                write_report(path, &doc.pretty(), "metrics");
            }
            if let Some(path) = &self.options.prom_path {
                write_report(path, &crate::prometheus::render(&ctx.registry.snapshot()), "prometheus");
            }
        }
        if let Some(path) = &self.options.flight_dump_path {
            let doc = ctx.recorder.to_chrome_json().set("flightDumpReason", "finish");
            write_report(path, &doc.compact(), "flight");
        }
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        self.finish();
    }
}

fn write_report(path: &Path, contents: &str, what: &str) {
    match write_atomic(path, contents) {
        Ok(()) => eprintln!("[{what} written to {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {what} to {}: {e}", path.display()),
    }
}

/// Activates observability from the `AFTER_*` env vars alone (no CLI
/// parsing) — for tests and library embedders.
pub fn init_from_env() -> ObsSession {
    ObsSession::start(ObsOptions::from_env())
}

/// Activates observability from the process CLI arguments and environment:
/// the one-liner for the table/figure binaries.
pub fn init_cli_env() -> ObsSession {
    ObsSession::start(ObsOptions::from_args_and_env(std::env::args().skip(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_override_and_default() {
        // env interactions are covered by obs_smoke in CI; here only flags
        let opts = ObsOptions::from_args_and_env(["--trace", "--metrics=m.json", "ignored"]);
        assert_eq!(opts.trace_path.as_deref(), Some(Path::new("trace.json")));
        assert_eq!(opts.metrics_path.as_deref(), Some(Path::new("m.json")));
        let opts = ObsOptions::from_args_and_env(["--trace=t.json"]);
        assert_eq!(opts.trace_path.as_deref(), Some(Path::new("t.json")));
    }

    #[test]
    fn slo_prom_and_flight_flags_parse() {
        let opts =
            ObsOptions::from_args_and_env(["--slo-budget-ms=12.5", "--prom=p.prom", "--flight-dump=f.json"]);
        assert_eq!(opts.slo_budget_ms, Some(12.5));
        assert_eq!(opts.prom_path.as_deref(), Some(Path::new("p.prom")));
        assert_eq!(opts.flight_dump_path.as_deref(), Some(Path::new("f.json")));
        assert!(!opts.is_empty());
        let opts = ObsOptions::from_args_and_env(["--prom", "--flight-dump"]);
        assert_eq!(opts.prom_path.as_deref(), Some(Path::new("metrics.prom")));
        assert_eq!(opts.flight_dump_path.as_deref(), Some(Path::new("flight.json")));
        // non-positive budgets are rejected, not propagated
        let opts = ObsOptions::from_args_and_env(["--slo-budget-ms=0"]);
        assert_eq!(opts.slo_budget_ms, None);
    }

    #[test]
    fn empty_options_mean_disabled_session() {
        let session = ObsSession::start(ObsOptions::default());
        assert!(!session.active());
    }

    #[test]
    fn session_writes_files_once_on_finish() {
        let dir = std::env::temp_dir().join(format!("xr_obs_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.json");
        let metrics_path = dir.join("m.json");
        let prom_path = dir.join("m.prom");
        {
            let mut session = ObsSession::start(ObsOptions {
                trace_path: Some(trace_path.clone()),
                metrics_path: Some(metrics_path.clone()),
                prom_path: Some(prom_path.clone()),
                ..ObsOptions::default()
            });
            assert!(session.active());
            crate::counter_add("s.calls", &[], 3);
            crate::series_observe("s.tick.ms", &[], 0, 1.0);
            {
                let _span = crate::span!("s.phase");
            }
            session.finish();
        }
        let metrics = crate::Json::parse(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        assert_eq!(
            metrics.get("counters").and_then(|c| c.get("s.calls")).and_then(crate::Json::as_f64),
            Some(3.0)
        );
        // the new self-describing sections ride along
        assert!(metrics.get("meta").and_then(|m| m.get("wall_clock_utc")).is_some());
        assert!(metrics
            .get("timeseries")
            .and_then(|t| t.get("series"))
            .and_then(|s| s.get("s.tick.ms"))
            .is_some());
        let trace = crate::Json::parse(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
        let events = trace.get("traceEvents").and_then(crate::Json::as_arr).unwrap();
        assert!(events.iter().any(|e| e.get("name").and_then(crate::Json::as_str) == Some("s.phase")));
        let prom = std::fs::read_to_string(&prom_path).unwrap();
        assert!(prom.contains("s_calls 3"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
