//! # xr-obs
//!
//! Zero-dependency observability substrate for the AFTER/POSHGNN workspace:
//!
//! * [`span!`] / [`event!`] / [`warn_event!`] — structured tracing backed by
//!   a thread-local span stack and monotonic timestamps. With no context
//!   installed every probe is a no-op (one thread-local read; `Instant::now`
//!   is only reached once a sink exists), so instrumentation stays
//!   compiled-in on the hot paths.
//! * [`metrics::Registry`] — counters, gauges, and fixed-bucket histograms
//!   (p50/p95/p99) addressed by static name + label pairs, with sharded
//!   accumulation that merges exactly across `std::thread::scope` workers.
//! * Exporters — a human-readable summary table
//!   ([`metrics::MetricsSnapshot::render_table`]), machine-readable JSON
//!   ([`metrics::MetricsSnapshot::to_json`]), and Chrome
//!   `chrome://tracing` / Perfetto trace files
//!   ([`trace::TraceSink::to_chrome_json`]).
//! * [`ObsSession`] / [`init_cli_env`] — activation via the `AFTER_TRACE` /
//!   `AFTER_METRICS` environment variables or `--trace[=path]` /
//!   `--metrics[=path]` CLI flags; files are written when the session is
//!   finished (or dropped).
//!
//! ## Context model
//!
//! Observability state lives in an [`ObsCtx`] installed **per thread**
//! (thread-local), not in process globals: tests get perfect isolation
//! (each test thread installs its own context and snapshots only what it
//! recorded), and the parallel experiment runner propagates the caller's
//! context into its scoped workers so telemetry from all cells merges into
//! one registry. Install with [`ObsCtx::install`]; the returned guard
//! restores the previous context on drop.

pub mod json;
pub mod meta;
pub mod metrics;
pub mod prometheus;
pub mod recorder;
mod session;
pub mod slo;
pub mod timeseries;
pub mod trace;

use std::cell::RefCell;
use std::sync::Arc;

pub use json::Json;
pub use metrics::{HistSnapshot, MetricKey, MetricsSnapshot, Registry};
pub use recorder::FlightRecorder;
pub use session::{init_cli_env, init_from_env, ObsOptions, ObsSession};
pub use slo::{SloConfig, SloTracker, TickVerdict};
pub use timeseries::{TimeSeries, TimeSeriesSnapshot};
pub use trace::{current_span_path, Span, TraceSink};

/// An observability context: one metrics registry, one windowed time-series
/// store, one always-on flight recorder, plus an optional trace sink. Cheap
/// to share (`Arc`) and safe to record into from many threads.
pub struct ObsCtx {
    /// The metrics registry telemetry accumulates into.
    pub registry: Registry,
    /// Windowed per-tick series (see [`timeseries`]); gated like the
    /// registry by [`Self::metrics_on`].
    pub series: TimeSeries,
    /// Bounded ring of recent spans/events for post-mortem dumps. Always
    /// recording while this context is installed.
    pub recorder: FlightRecorder,
    /// Whether probes record metrics (counters/gauges/histograms/series).
    pub metrics_on: bool,
    /// Trace sink; `None` disables span/event collection.
    pub trace: Option<TraceSink>,
}

impl ObsCtx {
    /// A context with the requested sinks. `metrics` enables the registry;
    /// `trace` allocates a trace buffer with epoch "now".
    pub fn new(metrics: bool, trace: bool) -> Arc<ObsCtx> {
        Arc::new(ObsCtx {
            registry: Registry::new(),
            series: TimeSeries::default(),
            recorder: FlightRecorder::default(),
            metrics_on: metrics,
            trace: if trace { Some(TraceSink::new()) } else { None },
        })
    }

    /// Installs `self` as the current thread's context, returning a guard
    /// that restores the previous context when dropped.
    pub fn install(self: &Arc<ObsCtx>) -> InstallGuard {
        let previous = CURRENT.with(|c| c.replace(Some(self.clone())));
        InstallGuard { previous }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<ObsCtx>>> = const { RefCell::new(None) };
}

/// Restores the previously installed context on drop. Not `Send`: contexts
/// are installed and uninstalled on the same thread.
pub struct InstallGuard {
    previous: Option<Arc<ObsCtx>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        CURRENT.with(|c| *c.borrow_mut() = previous);
    }
}

/// The context installed on the current thread, if any. Worker pools should
/// capture this in the spawning thread and [`ObsCtx::install`] it in each
/// worker so telemetry from all workers lands in one registry.
pub fn current_ctx() -> Option<Arc<ObsCtx>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// `true` when any observability context is installed on this thread.
pub fn is_active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Adds `delta` to counter `name` on the installed context (no-op without
/// one).
pub fn counter_add(name: &str, labels: &[(&str, &str)], delta: u64) {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            if ctx.metrics_on {
                ctx.registry.counter_add(name, labels, delta);
            }
        }
    });
}

/// Sets gauge `name` on the installed context (no-op without one).
pub fn gauge_set(name: &str, labels: &[(&str, &str)], v: f64) {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            if ctx.metrics_on {
                ctx.registry.gauge_set(name, labels, v);
            }
        }
    });
}

/// Records `v` into histogram `name` on the installed context (no-op
/// without one).
pub fn observe(name: &str, labels: &[(&str, &str)], v: f64) {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            if ctx.metrics_on {
                ctx.registry.observe(name, labels, v);
            }
        }
    });
}

/// A started wall-clock measurement, or `None` when metrics are off — so
/// the disabled path never calls `Instant::now`. Finish with
/// [`observe_since`].
pub fn start_timer() -> Option<std::time::Instant> {
    let on = CURRENT.with(|c| c.borrow().as_ref().map(|ctx| ctx.metrics_on).unwrap_or(false));
    if on {
        Some(std::time::Instant::now())
    } else {
        None
    }
}

/// Records the milliseconds elapsed since [`start_timer`] into histogram
/// `name` (no-op when the timer was never started).
pub fn observe_since(name: &str, labels: &[(&str, &str)], timer: Option<std::time::Instant>) {
    if let Some(start) = timer {
        observe(name, labels, start.elapsed().as_secs_f64() * 1e3);
    }
}

/// Records `v` into the histogram cell of logical `window` in series `name`
/// on the installed context (no-op without one).
pub fn series_observe(name: &str, labels: &[(&str, &str)], window: u64, v: f64) {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            if ctx.metrics_on {
                ctx.series.observe(name, labels, window, v);
            }
        }
    });
}

/// Adds `delta` to the counter cell of logical `window` in series `name` on
/// the installed context (no-op without one).
pub fn series_counter_add(name: &str, labels: &[(&str, &str)], window: u64, delta: u64) {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            if ctx.metrics_on {
                ctx.series.counter_add(name, labels, window, delta);
            }
        }
    });
}

/// Sets the gauge cell of logical `window` in series `name` on the
/// installed context (no-op without one).
pub fn series_gauge_set(name: &str, labels: &[(&str, &str)], window: u64, v: f64) {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            if ctx.metrics_on {
                ctx.series.gauge_set(name, labels, window, v);
            }
        }
    });
}

/// Rolling merged quantiles of the `last_k` most recent windows of one
/// series on the installed context (`None` without one, or when the series
/// holds no histogram windows).
pub fn series_rolling(name: &str, labels: &[(&str, &str)], last_k: usize) -> Option<HistSnapshot> {
    current_ctx().and_then(|ctx| ctx.series.rolling_quantiles(name, labels, last_k))
}

/// A deterministic snapshot of the installed context's metrics, for tests
/// and exporters. `None` when no context is installed.
pub fn metrics_snapshot() -> Option<MetricsSnapshot> {
    current_ctx().map(|ctx| ctx.registry.snapshot())
}

/// A deterministic snapshot of the installed context's windowed series.
pub fn series_snapshot() -> Option<TimeSeriesSnapshot> {
    current_ctx().map(|ctx| ctx.series.snapshot())
}

/// Event severity for [`emit_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventLevel {
    /// Recorded only when a sink is installed.
    Info,
    /// Additionally written to stderr as one atomic line (always, matching
    /// the visibility of the `eprintln!` warnings it replaces).
    Warn,
}

/// Emits an instant event: a trace instant (when tracing), a counter bump
/// under `events.<name>` (when metering), and — for [`EventLevel::Warn`] —
/// a single structured stderr line that cannot interleave with other lines.
/// `args` is only invoked when the event is actually rendered somewhere.
pub fn emit_event<F>(level: EventLevel, name: &'static str, args: F)
where
    F: FnOnce() -> Vec<(&'static str, String)>,
{
    let ctx = current_ctx();
    if ctx.is_none() && level == EventLevel::Info {
        return;
    }
    let args = args();
    if let Some(ctx) = &ctx {
        ctx.recorder.record_instant(name);
        if let Some(trace) = &ctx.trace {
            trace.instant(name, args.clone());
        }
        if ctx.metrics_on {
            ctx.registry.counter_add(&format!("events.{name}"), &[], 1);
        }
    }
    if level == EventLevel::Warn {
        let mut line = format!("[warn] {name}");
        for (k, v) in &args {
            line.push_str(&format!(" {k}={v}"));
        }
        // one eprintln call = one locked stderr write: interleaving-safe
        eprintln!("{line}");
    }
}

/// Opens a tracing span for the enclosing scope. Bind the result:
/// `let _span = span!("poshgnn.train.epoch", epoch = i);` — the span closes
/// (and records) when the guard drops. Arguments are formatted with
/// `Display` and only evaluated when a context is installed.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::Span::enter_with($name, || vec![$((stringify!($k), format!("{}", $v))),+])
    };
}

/// Records an instant event (trace instant + `events.<name>` counter) on
/// the installed context; a no-op without one.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::emit_event($crate::EventLevel::Info, $name, Vec::new)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::emit_event($crate::EventLevel::Info, $name, || vec![$((stringify!($k), format!("{}", $v))),+])
    };
}

/// Like [`event!`] but also writes one atomic structured line to stderr,
/// whether or not a context is installed — the structured replacement for
/// ad-hoc `eprintln!` warnings.
#[macro_export]
macro_rules! warn_event {
    ($name:expr) => {
        $crate::emit_event($crate::EventLevel::Warn, $name, Vec::new)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::emit_event($crate::EventLevel::Warn, $name, || vec![$((stringify!($k), format!("{}", $v))),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_context_means_no_ops() {
        assert!(!is_active());
        counter_add("x", &[], 1);
        observe("y", &[], 1.0);
        gauge_set("z", &[], 1.0);
        assert!(start_timer().is_none());
        assert!(metrics_snapshot().is_none());
        let span = span!("a.b.c", k = 1);
        assert!(!span.is_recording());
    }

    #[test]
    fn install_scopes_context_to_the_thread() {
        let ctx = ObsCtx::new(true, true);
        {
            let _guard = ctx.install();
            assert!(is_active());
            counter_add("t.calls", &[], 2);
            {
                let _span = span!("t.outer", phase = "x");
                assert_eq!(current_span_path(), "t.outer");
                let _inner = span!("t.inner");
                assert_eq!(current_span_path(), "t.outer.t.inner");
            }
            event!("t.event", detail = 7);
        }
        assert!(!is_active());
        // recorded data survives on the ctx after uninstall
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counter("t.calls"), Some(2));
        assert_eq!(snap.counter("events.t.event"), Some(1));
        assert!(snap.histogram("t.outer").map(|h| h.count) == Some(1));
        let trace = ctx.trace.as_ref().unwrap();
        assert_eq!(trace.len(), 3, "two spans + one instant");
    }

    #[test]
    fn nested_installs_restore_previous() {
        let outer = ObsCtx::new(true, false);
        let inner = ObsCtx::new(true, false);
        let _g1 = outer.install();
        counter_add("which", &[], 1);
        {
            let _g2 = inner.install();
            counter_add("which", &[], 10);
        }
        counter_add("which", &[], 100);
        assert_eq!(outer.registry.snapshot().counter("which"), Some(101));
        assert_eq!(inner.registry.snapshot().counter("which"), Some(10));
    }

    #[test]
    fn timers_record_only_with_metrics_on() {
        let ctx = ObsCtx::new(false, true);
        let _g = ctx.install();
        assert!(start_timer().is_none(), "trace-only context must not start timers");
        drop(_g);
        let ctx = ObsCtx::new(true, false);
        let _g = ctx.install();
        let t = start_timer();
        assert!(t.is_some());
        observe_since("timed.ms", &[], t);
        assert_eq!(metrics_snapshot().unwrap().histogram("timed.ms").unwrap().count, 1);
    }
}
