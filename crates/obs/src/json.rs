//! A minimal JSON document model with a writer and a strict parser.
//!
//! The workspace vendors everything (no registry access), so instead of
//! serde this module provides the small surface the exporters need: an
//! ordered value tree ([`Json`]), deterministic pretty-printing, and a
//! parser used by the round-trip tests and the `obs_smoke` CI guard to
//! validate emitted documents.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so emitted documents are
/// deterministic and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object, builder style.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => {
                let value = value.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
            }
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Field lookup on an object (`None` on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes compactly (no whitespace). Used for trace files, where a
    /// pretty-printed span dump would double the file size.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            _ => self.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document, requiring it to span the whole input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<bool> for Json {
    fn from(x: bool) -> Json {
        Json::Bool(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// Rounds to 3 decimal places — the convention for millisecond readings, so
/// benchmark JSON stays human-scannable without losing timing resolution.
pub fn num3(x: f64) -> Json {
    Json::Num((x * 1e3).round() / 1e3)
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len() && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed for our own output;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // advance over one UTF-8 scalar
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let doc = Json::obj().set("a", 1.5).set("b", "x").set("a", 2.0);
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn pretty_round_trips_through_parse() {
        let doc = Json::obj()
            .set("name", "bench")
            .set("ok", true)
            .set("none", Json::Null)
            .set("xs", Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::Str("a\"b\n".into())]))
            .set("nested", Json::obj().set("k", 42u64));
        let text = doc.pretty();
        let back = Json::parse(&text).expect("parse pretty output");
        assert_eq!(back, doc);
        let compact = doc.compact();
        assert_eq!(Json::parse(&compact).expect("parse compact output"), doc);
    }

    #[test]
    fn integers_print_without_exponent_or_fraction() {
        let mut s = String::new();
        write_number(&mut s, 1234567.0);
        assert_eq!(s, "1234567");
        assert_eq!(Json::Num(0.125).compact(), "0.125");
        assert_eq!(Json::Num(f64::NAN).compact(), "null");
    }

    #[test]
    fn num3_rounds_to_milli_precision() {
        assert_eq!(num3(0.123456), Json::Num(0.123));
        assert_eq!(num3(12.0), Json::Num(12.0));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""aA\n\t\"""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\n\t\""));
    }
}
