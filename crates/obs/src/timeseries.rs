//! Windowed time-series metrics: fixed-capacity ring buffers of per-window
//! counter / gauge / histogram cells, addressed — like the cumulative
//! registry — by metric name plus label pairs.
//!
//! The cumulative [`crate::metrics::Registry`] answers "what happened over
//! the whole run"; this layer answers "what happened *lately*". Callers tag
//! each recording with a logical **window index** (typically `tick` or
//! `tick / N` — a deterministic quantity, never wall time), and the series
//! keeps the most recent [`TimeSeries::capacity`] windows per key in a ring,
//! evicting the oldest window when a newer one claims its slot.
//!
//! ## Determinism and exact cross-worker merge
//!
//! Because windows are keyed by logical index and every cell update is a
//! commutative, associative merge (counter adds, histogram bucket adds;
//! gauges are last-writer-wins *within* a window, which callers use only for
//! per-window values that are equal on all workers), recordings from any
//! number of `std::thread::scope` workers produce the same retained state as
//! a single-threaded run — as long as the recorded window span stays within
//! the ring capacity. A recording older than the window currently holding
//! its slot is **stale**: it is dropped (and counted in
//! [`TimeSeries::stale_dropped`]) instead of resurrecting an evicted window,
//! which is what keeps eviction exact. Snapshots sort by `(key, window)`, so
//! equal recorded state exports byte-identically regardless of thread
//! interleaving — the same guarantee the cumulative registry gives.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::{num3, Json};
use crate::metrics::{Hist, HistSnapshot, MetricKey};

/// Number of independent shards (same rationale as the registry's).
const SHARDS: usize = 16;

/// Default number of retained windows per series.
pub const DEFAULT_WINDOW_CAPACITY: usize = 256;

enum WindowValue {
    Counter(u64),
    Gauge(f64),
    Hist(Hist),
}

struct WindowCell {
    window: u64,
    value: WindowValue,
}

struct SeriesRing {
    /// `slots[w % capacity]` holds window `w` (or an older/newer window that
    /// mapped to the same slot).
    slots: Vec<Option<WindowCell>>,
}

enum Record {
    Counter(u64),
    Gauge(f64),
    Observe(f64),
}

impl Record {
    fn fresh(self) -> WindowValue {
        match self {
            Record::Counter(delta) => WindowValue::Counter(delta),
            Record::Gauge(v) => WindowValue::Gauge(v),
            Record::Observe(v) => {
                let mut h = Hist::new();
                h.observe(v);
                WindowValue::Hist(h)
            }
        }
    }

    fn apply(self, value: &mut WindowValue) {
        match (self, value) {
            (Record::Counter(delta), WindowValue::Counter(c)) => *c += delta,
            (Record::Gauge(v), WindowValue::Gauge(g)) => *g = v,
            (Record::Observe(v), WindowValue::Hist(h)) => h.observe(v),
            _ => debug_assert!(false, "window series recorded with mixed metric kinds"),
        }
    }
}

/// The sharded windowed-metrics store. One lives on every
/// [`crate::ObsCtx`]; record through the `series_*` free functions in the
/// crate root.
pub struct TimeSeries {
    shards: Vec<Mutex<HashMap<MetricKey, SeriesRing>>>,
    capacity: usize,
    stale_dropped: AtomicU64,
}

impl Default for TimeSeries {
    fn default() -> Self {
        TimeSeries::new(DEFAULT_WINDOW_CAPACITY)
    }
}

impl TimeSeries {
    /// An empty store retaining `capacity` windows per series.
    pub fn new(capacity: usize) -> TimeSeries {
        assert!(capacity > 0, "window capacity must be positive");
        TimeSeries {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            capacity,
            stale_dropped: AtomicU64::new(0),
        }
    }

    /// Retained windows per series.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Recordings dropped because their window had already been evicted.
    pub fn stale_dropped(&self) -> u64 {
        self.stale_dropped.load(Ordering::Relaxed)
    }

    fn shard(&self, key: &MetricKey) -> &Mutex<HashMap<MetricKey, SeriesRing>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    fn record(&self, name: &str, labels: &[(&str, &str)], window: u64, rec: Record) {
        let key = MetricKey::new(name, labels);
        let mut shard = self.shard(&key).lock().expect("series shard poisoned");
        let capacity = self.capacity;
        let ring =
            shard.entry(key).or_insert_with(|| SeriesRing { slots: (0..capacity).map(|_| None).collect() });
        let idx = (window % capacity as u64) as usize;
        match &mut ring.slots[idx] {
            Some(cell) if cell.window == window => rec.apply(&mut cell.value),
            Some(cell) if cell.window > window => {
                // older than the retained horizon: dropping (instead of
                // resurrecting the evicted window) keeps eviction exact
                drop(shard);
                self.stale_dropped.fetch_add(1, Ordering::Relaxed);
            }
            slot => *slot = Some(WindowCell { window, value: rec.fresh() }),
        }
    }

    /// Adds `delta` to the counter cell of `window`.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], window: u64, delta: u64) {
        self.record(name, labels, window, Record::Counter(delta));
    }

    /// Sets the gauge cell of `window` (last write wins within the window).
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], window: u64, v: f64) {
        self.record(name, labels, window, Record::Gauge(v));
    }

    /// Records `v` into the histogram cell of `window`.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], window: u64, v: f64) {
        self.record(name, labels, window, Record::Observe(v));
    }

    /// Merged statistics of the `last_k` most recent retained histogram
    /// windows of one series — the rolling p50/p95/p99 query. `None` when
    /// the series does not exist or holds no histogram windows.
    pub fn rolling_quantiles(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        last_k: usize,
    ) -> Option<HistSnapshot> {
        let key = MetricKey::new(name, labels);
        let shard = self.shard(&key).lock().expect("series shard poisoned");
        let ring = shard.get(&key)?;
        let mut cells: Vec<(u64, &Hist)> = ring
            .slots
            .iter()
            .filter_map(|slot| match slot {
                Some(WindowCell { window, value: WindowValue::Hist(h) }) => Some((*window, h)),
                _ => None,
            })
            .collect();
        if cells.is_empty() || last_k == 0 {
            return None;
        }
        cells.sort_by_key(|&(window, _)| std::cmp::Reverse(window));
        cells.truncate(last_k);
        let mut merged = Hist::new();
        for (_, h) in &cells {
            merged.merge(h);
        }
        Some(merged.snapshot())
    }

    /// A deterministic (sorted) point-in-time copy of every series.
    pub fn snapshot(&self) -> TimeSeriesSnapshot {
        let mut series = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("series shard poisoned");
            for (key, ring) in shard.iter() {
                let mut windows: Vec<(u64, WindowSnapshot)> = ring
                    .slots
                    .iter()
                    .flatten()
                    .map(|cell| {
                        let snap = match &cell.value {
                            WindowValue::Counter(c) => WindowSnapshot::Counter(*c),
                            WindowValue::Gauge(g) => WindowSnapshot::Gauge(*g),
                            WindowValue::Hist(h) => WindowSnapshot::Hist(h.snapshot()),
                        };
                        (cell.window, snap)
                    })
                    .collect();
                windows.sort_by_key(|&(w, _)| w);
                series.push(SeriesSnapshot { key: key.clone(), windows });
            }
        }
        series.sort_by(|a, b| a.key.cmp(&b.key));
        TimeSeriesSnapshot { series, window_capacity: self.capacity, stale_dropped: self.stale_dropped() }
    }
}

/// One exported window cell.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowSnapshot {
    /// Per-window counter total.
    Counter(u64),
    /// Per-window gauge (last value written in the window).
    Gauge(f64),
    /// Per-window histogram statistics.
    Hist(HistSnapshot),
}

/// One series: its key plus the retained windows in ascending order.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Metric identity (name + sorted labels).
    pub key: MetricKey,
    /// `(window, cell)` rows, ascending by window index.
    pub windows: Vec<(u64, WindowSnapshot)>,
}

/// A sorted point-in-time view of the windowed store, ready for export.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesSnapshot {
    /// All series, sorted by key.
    pub series: Vec<SeriesSnapshot>,
    /// Ring capacity the store was built with.
    pub window_capacity: usize,
    /// Stale recordings dropped over the store's lifetime.
    pub stale_dropped: u64,
}

impl TimeSeriesSnapshot {
    /// One series by display name (`name` or `name{k=v}`), if present.
    pub fn series(&self, display: &str) -> Option<&SeriesSnapshot> {
        self.series.iter().find(|s| s.key.display() == display)
    }

    /// Machine-readable export, nested under the metrics JSON as
    /// `{"window_capacity": .., "stale_dropped": .., "series": {name: [..]}}`.
    pub fn to_json(&self) -> Json {
        let mut series = Json::obj();
        for s in &self.series {
            let rows: Vec<Json> = s
                .windows
                .iter()
                .map(|(w, cell)| {
                    let row = Json::obj().set("window", *w);
                    match cell {
                        WindowSnapshot::Counter(c) => row.set("count", *c),
                        WindowSnapshot::Gauge(g) => row.set("value", num3(*g)),
                        WindowSnapshot::Hist(h) => row
                            .set("count", h.count)
                            .set("sum", num3(h.sum))
                            .set("max", num3(h.max))
                            .set("p50", num3(h.p50))
                            .set("p95", num3(h.p95))
                            .set("p99", num3(h.p99)),
                    }
                })
                .collect();
            series = series.set(&s.key.display(), Json::Arr(rows));
        }
        Json::obj()
            .set("window_capacity", self.window_capacity as u64)
            .set("stale_dropped", self.stale_dropped)
            .set("series", series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_accumulate_and_export_sorted() {
        let ts = TimeSeries::new(8);
        ts.observe("s.ms", &[], 1, 2.0);
        ts.observe("s.ms", &[], 0, 1.0);
        ts.observe("s.ms", &[], 1, 4.0);
        ts.counter_add("s.calls", &[("m", "a")], 0, 3);
        ts.gauge_set("s.level", &[], 2, 0.5);
        let snap = ts.snapshot();
        let hist = snap.series("s.ms").unwrap();
        assert_eq!(hist.windows.len(), 2);
        assert_eq!(hist.windows[0].0, 0);
        match &hist.windows[1].1 {
            WindowSnapshot::Hist(h) => {
                assert_eq!(h.count, 2);
                assert_eq!(h.sum, 6.0);
            }
            other => panic!("expected hist cell, got {other:?}"),
        }
        assert_eq!(snap.series("s.calls{m=a}").unwrap().windows[0].1, WindowSnapshot::Counter(3));
        assert_eq!(snap.series("s.level").unwrap().windows[0].1, WindowSnapshot::Gauge(0.5));
        // export parses back
        assert!(Json::parse(&snap.to_json().pretty()).is_ok());
    }

    #[test]
    fn ring_evicts_oldest_and_drops_stale_exactly() {
        let ts = TimeSeries::new(4);
        for w in 0..10u64 {
            ts.observe("s.ms", &[], w, w as f64);
        }
        let snap = ts.snapshot();
        let windows: Vec<u64> = snap.series("s.ms").unwrap().windows.iter().map(|&(w, _)| w).collect();
        assert_eq!(windows, vec![6, 7, 8, 9], "only the newest capacity windows survive");
        assert_eq!(ts.stale_dropped(), 0);
        // a late recording for an evicted window is dropped, not resurrected
        ts.observe("s.ms", &[], 2, 99.0);
        assert_eq!(ts.stale_dropped(), 1);
        let snap = ts.snapshot();
        let windows: Vec<u64> = snap.series("s.ms").unwrap().windows.iter().map(|&(w, _)| w).collect();
        assert_eq!(windows, vec![6, 7, 8, 9]);
    }

    #[test]
    fn rolling_quantiles_merge_the_newest_windows() {
        let ts = TimeSeries::new(16);
        for w in 0..8u64 {
            // windows 0..5 hold small values, 6 and 7 hold large ones
            let v = if w < 6 { 1.0 } else { 100.0 };
            for _ in 0..4 {
                ts.observe("s.ms", &[], w, v);
            }
        }
        let last2 = ts.rolling_quantiles("s.ms", &[], 2).unwrap();
        assert_eq!(last2.count, 8);
        assert_eq!(last2.min, 100.0, "rolling window must exclude the old cheap ticks");
        let all = ts.rolling_quantiles("s.ms", &[], 100).unwrap();
        assert_eq!(all.count, 32);
        assert_eq!(all.min, 1.0);
        assert!(ts.rolling_quantiles("absent", &[], 2).is_none());
        assert!(ts.rolling_quantiles("s.ms", &[], 0).is_none());
    }

    #[test]
    fn interleaving_order_does_not_change_the_snapshot() {
        // the merge-exactness property the AFTER_THREADS=1-vs-8 test in
        // xr_eval exercises with real scoped workers
        let build = |order: &[usize]| {
            let ts = TimeSeries::new(32);
            for &i in order {
                let w = (i % 8) as u64;
                ts.observe("s.ms", &[("m", "x")], w, i as f64);
                ts.counter_add("s.calls", &[], w, 1);
            }
            ts.snapshot()
        };
        let fwd: Vec<usize> = (0..64).collect();
        let rev: Vec<usize> = (0..64).rev().collect();
        assert_eq!(build(&fwd), build(&rev));
    }
}
