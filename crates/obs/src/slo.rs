//! Tick-deadline / SLO tracking: a per-tick latency budget with
//! deadline-miss counters, budget-burn gauges, windowed latency series, and
//! sustained-slip warnings.
//!
//! A [`SloTracker`] is owned by whatever drives a tick loop (the
//! `SceneEngine`, the eval runner's recommend-step loop) and fed one
//! `(tick, elapsed_ms)` pair per tick via [`SloTracker::record`]. The
//! tracker takes measured durations rather than measuring itself, so tests
//! inject an artificially slow tick without sleeping. All emission goes
//! through the normal context-gated free functions: with no [`crate::ObsCtx`]
//! installed a tracker still *detects* misses (the returned
//! [`TickVerdict`]) but records nothing.
//!
//! Budgets come from `AFTER_SLO_BUDGET_MS` (or the `--slo-budget-ms` flag,
//! which [`crate::ObsSession`] writes through to the env). No budget ⇒
//! [`SloTracker::from_env`] returns `None` and the caller skips tracking
//! entirely — the unconfigured path stays cost-free.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::{counter_add, gauge_set, recorder, series_observe, warn_event};

/// Env var holding the per-tick latency budget in milliseconds.
pub const SLO_BUDGET_ENV: &str = "AFTER_SLO_BUDGET_MS";

/// Deadline-budget configuration for one tick loop.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Per-tick latency budget in milliseconds.
    pub budget_ms: f64,
    /// Sliding window (in ticks) over which sustained slips are judged.
    pub sustain_window: usize,
    /// Misses within [`Self::sustain_window`] that count as a sustained
    /// breach.
    pub sustain_misses: usize,
    /// Ticks per windowed-series window for the latency series.
    pub series_window_ticks: u64,
}

impl SloConfig {
    /// Defaults (32-tick window, 8 misses, 8-tick series windows) around the
    /// given budget.
    pub fn new(budget_ms: f64) -> SloConfig {
        SloConfig { budget_ms, sustain_window: 32, sustain_misses: 8, series_window_ticks: 8 }
    }

    /// Reads [`SLO_BUDGET_ENV`]; `None` when unset, empty, or non-positive.
    pub fn from_env() -> Option<SloConfig> {
        let raw = std::env::var(SLO_BUDGET_ENV).ok()?;
        let budget: f64 = raw.trim().parse().ok()?;
        if budget > 0.0 && budget.is_finite() {
            Some(SloConfig::new(budget))
        } else {
            None
        }
    }
}

/// What [`SloTracker::record`] concluded about one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickVerdict {
    /// The tick ran over budget.
    pub missed: bool,
    /// This tick *entered* a sustained breach (≥ `sustain_misses` of the
    /// last `sustain_window` ticks missed, and the previous tick was not
    /// already in breach). The transition edge, so warnings fire once per
    /// slip episode rather than every tick.
    pub sustained_breach: bool,
}

/// Tracks one tick loop against a latency budget. See the module docs.
#[derive(Debug, Clone)]
pub struct SloTracker {
    config: SloConfig,
    scope: &'static str,
    labels: Vec<(String, String)>,
    ticks_name: String,
    miss_name: String,
    burn_name: String,
    series_name: String,
    recent: VecDeque<bool>,
    misses_in_window: usize,
    ticks: u64,
    misses: u64,
    in_breach: bool,
}

/// One flight dump per process on the first sustained breach — a breach
/// storm must not spend its time rewriting the same dump file.
static BREACH_DUMPED: AtomicBool = AtomicBool::new(false);

impl SloTracker {
    /// A tracker for `scope` (e.g. `"session.tick"`) with extra label pairs
    /// attached to every emitted metric.
    pub fn new(scope: &'static str, config: SloConfig, labels: &[(&str, &str)]) -> SloTracker {
        SloTracker {
            scope,
            labels: labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect(),
            ticks_name: format!("slo.{scope}.ticks"),
            miss_name: format!("slo.{scope}.deadline_miss"),
            burn_name: format!("slo.{scope}.budget_burn"),
            series_name: format!("slo.{scope}.ms"),
            recent: VecDeque::with_capacity(config.sustain_window),
            misses_in_window: 0,
            ticks: 0,
            misses: 0,
            in_breach: false,
            config,
        }
    }

    /// A tracker if [`SLO_BUDGET_ENV`] configures a budget, else `None`.
    pub fn from_env(scope: &'static str) -> Option<SloTracker> {
        Self::from_env_labeled(scope, &[])
    }

    /// Like [`Self::from_env`] with extra label pairs.
    pub fn from_env_labeled(scope: &'static str, labels: &[(&str, &str)]) -> Option<SloTracker> {
        SloConfig::from_env().map(|config| SloTracker::new(scope, config, labels))
    }

    /// The configured budget.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Ticks recorded so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Deadline misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Whether the loop is currently inside a sustained breach.
    pub fn in_breach(&self) -> bool {
        self.in_breach
    }

    /// Judges one tick that took `elapsed_ms`, emitting metrics and (on a
    /// sustained-breach edge) a warning plus a flight-recorder dump.
    pub fn record(&mut self, tick: u64, elapsed_ms: f64) -> TickVerdict {
        self.ticks += 1;
        let missed = elapsed_ms > self.config.budget_ms;
        if missed {
            self.misses += 1;
        }

        // sliding breach window
        if self.recent.len() == self.config.sustain_window && self.recent.pop_front() == Some(true) {
            self.misses_in_window -= 1;
        }
        self.recent.push_back(missed);
        if missed {
            self.misses_in_window += 1;
        }
        let sustained = self.misses_in_window >= self.config.sustain_misses;
        let entered_breach = sustained && !self.in_breach;
        self.in_breach = sustained;

        let labels: Vec<(&str, &str)> = self.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        counter_add(&self.ticks_name, &labels, 1);
        gauge_set(&self.burn_name, &labels, elapsed_ms / self.config.budget_ms);
        series_observe(&self.series_name, &labels, tick / self.config.series_window_ticks, elapsed_ms);
        if missed {
            counter_add(&self.miss_name, &labels, 1);
        }
        if entered_breach {
            warn_event!(
                "slo.sustained_breach",
                scope = self.scope,
                tick = tick,
                elapsed_ms = format!("{elapsed_ms:.3}"),
                budget_ms = self.config.budget_ms,
                window_misses = self.misses_in_window,
                window = self.config.sustain_window
            );
            counter_add(&format!("slo.{}.sustained_breach", self.scope), &labels, 1);
            if !BREACH_DUMPED.swap(true, Ordering::SeqCst) {
                recorder::dump_to_env_path("slo_breach");
            }
        }
        TickVerdict { missed, sustained_breach: entered_breach }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsCtx;

    #[test]
    fn stays_silent_under_budget() {
        let ctx = ObsCtx::new(true, false);
        let _g = ctx.install();
        let mut slo = SloTracker::new("test.quiet", SloConfig::new(10.0), &[]);
        for t in 0..100u64 {
            let v = slo.record(t, 1.5);
            assert!(!v.missed);
            assert!(!v.sustained_breach);
        }
        assert_eq!(slo.misses(), 0);
        assert!(!slo.in_breach());
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counter("slo.test.quiet.ticks"), Some(100));
        assert_eq!(snap.counter("slo.test.quiet.deadline_miss"), None);
        assert_eq!(snap.counter("events.slo.sustained_breach"), None);
        assert_eq!(snap.gauge("slo.test.quiet.budget_burn"), Some(0.15));
    }

    #[test]
    fn flags_an_injected_slow_tick() {
        let ctx = ObsCtx::new(true, false);
        let _g = ctx.install();
        let mut slo = SloTracker::new("test.slow", SloConfig::new(10.0), &[("method", "x")]);
        for t in 0..5u64 {
            assert!(!slo.record(t, 2.0).missed);
        }
        let v = slo.record(5, 50.0); // the injected artificially-slow tick
        assert!(v.missed);
        assert!(!v.sustained_breach, "one miss is not sustained");
        assert_eq!(slo.misses(), 1);
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counter("slo.test.slow.deadline_miss{method=x}"), Some(1));
        assert_eq!(snap.gauge("slo.test.slow.budget_burn{method=x}"), Some(5.0));
    }

    #[test]
    fn sustained_slips_fire_once_per_episode() {
        let ctx = ObsCtx::new(true, false);
        let _g = ctx.install();
        let mut config = SloConfig::new(10.0);
        config.sustain_window = 8;
        config.sustain_misses = 4;
        let mut slo = SloTracker::new("test.sustained", config, &[]);
        let mut edges = 0;
        for t in 0..8u64 {
            if slo.record(t, 50.0).sustained_breach {
                edges += 1;
            }
        }
        assert_eq!(edges, 1, "breach edge fires exactly once while slipping");
        assert!(slo.in_breach());
        // recovery clears the breach…
        for t in 8..16u64 {
            assert!(!slo.record(t, 1.0).sustained_breach);
        }
        assert!(!slo.in_breach());
        // …and a new slip episode fires a fresh edge
        for t in 16..24u64 {
            if slo.record(t, 50.0).sustained_breach {
                edges += 1;
            }
        }
        assert_eq!(edges, 2);
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counter("slo.test.sustained.sustained_breach"), Some(2));
        assert_eq!(snap.counter("events.slo.sustained_breach"), Some(2));
    }

    #[test]
    fn from_env_requires_a_positive_budget() {
        assert!(SloConfig::from_env().is_none() || std::env::var(SLO_BUDGET_ENV).is_ok());
        assert!(SloConfig::new(7.5).budget_ms == 7.5);
        // parse rules exercised without mutating process env (other tests run
        // concurrently in this process)
        let parse = |raw: &str| -> Option<f64> {
            let budget: f64 = raw.trim().parse().ok()?;
            (budget > 0.0 && budget.is_finite()).then_some(budget)
        };
        assert_eq!(parse("12.5"), Some(12.5));
        assert_eq!(parse(" 3 "), Some(3.0));
        assert_eq!(parse("0"), None);
        assert_eq!(parse("-1"), None);
        assert_eq!(parse("inf"), None);
        assert_eq!(parse("nan"), None);
        assert_eq!(parse(""), None);
    }
}
