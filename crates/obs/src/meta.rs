//! Self-describing run metadata and crash-safe file export.
//!
//! Perf artifacts (metrics JSON, `BENCH_*.json`) are only comparable across
//! runs when they say *how* they were produced. [`run_metadata`] captures
//! wall-clock and monotonic timestamps, the effective thread count, every
//! active `AFTER_*` env knob, and any facts subsystems have registered via
//! [`record_fact`] (e.g. `xr_tensor` reports whether SIMD dispatch is live).
//!
//! [`write_atomic`] is the temp-file-plus-rename export primitive all
//! exporters go through: a panic (or a second process reading mid-export)
//! can observe the old file or the new file, never a truncated one.

use std::io;
use std::path::Path;
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::json::Json;

static PROCESS_START: OnceLock<Instant> = OnceLock::new();

/// The process-start instant used for monotonic offsets in metadata. First
/// call pins it; [`crate::ObsSession::start`] calls this early so offsets
/// measure from session setup.
pub fn process_start() -> Instant {
    *PROCESS_START.get_or_init(Instant::now)
}

static FACTS: Mutex<Vec<(&'static str, Json)>> = Mutex::new(Vec::new());

/// Registers (or replaces) a process-wide fact exported under
/// `meta.facts.<key>` — e.g. `record_fact("simd_enabled", true)`.
pub fn record_fact(key: &'static str, value: impl Into<Json>) {
    let value = value.into();
    let mut facts = FACTS.lock().expect("facts poisoned");
    if let Some(slot) = facts.iter_mut().find(|(k, _)| *k == key) {
        slot.1 = value;
    } else {
        facts.push((key, value));
    }
}

/// `YYYY-MM-DDThh:mm:ssZ` for a unix timestamp (civil-from-days, no
/// external date crate).
fn iso8601_utc(unix_s: u64) -> String {
    let days = unix_s / 86_400;
    let secs = unix_s % 86_400;
    // Howard Hinnant's civil_from_days, shifted so day 0 = 1970-01-01.
    let z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z", y, m, d, secs / 3600, (secs % 3600) / 60, secs % 60)
}

/// The effective worker count: `AFTER_THREADS` when set and valid, else the
/// machine's available parallelism.
fn effective_threads() -> u64 {
    std::env::var("AFTER_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1))
}

/// The self-describing metadata block embedded in metrics JSON and
/// `BENCH_*.json` artifacts.
pub fn run_metadata() -> Json {
    let unix_s = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
    let mut env: Vec<(String, String)> = std::env::vars().filter(|(k, _)| k.starts_with("AFTER_")).collect();
    env.sort();
    let mut env_json = Json::obj();
    for (k, v) in &env {
        env_json = env_json.set(k, v.as_str());
    }
    let mut facts_json = Json::obj();
    for (k, v) in FACTS.lock().expect("facts poisoned").iter() {
        facts_json = facts_json.set(k, v.clone());
    }
    Json::obj()
        .set("unix_time_s", unix_s)
        .set("wall_clock_utc", iso8601_utc(unix_s))
        .set("monotonic_ms", process_start().elapsed().as_secs_f64() * 1e3)
        .set("threads", effective_threads())
        .set("env", env_json)
        .set("facts", facts_json)
}

/// Writes `contents` to `path` atomically: the bytes land in a sibling temp
/// file which is then renamed over the target, so readers (and crashes mid-
/// write) see either the previous complete file or the new one — never a
/// truncated export.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp_name = format!(".{}.tmp{}", file_name.to_string_lossy(), std::process::id());
    let tmp = match dir {
        Some(dir) => dir.join(&tmp_name),
        None => Path::new(&tmp_name).to_path_buf(),
    };
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        std::fs::remove_file(&tmp).ok();
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iso8601_matches_known_dates() {
        assert_eq!(iso8601_utc(0), "1970-01-01T00:00:00Z");
        assert_eq!(iso8601_utc(951_782_400), "2000-02-29T00:00:00Z");
        assert_eq!(iso8601_utc(1_754_611_200), "2025-08-08T00:00:00Z");
        assert_eq!(iso8601_utc(86_399), "1970-01-01T23:59:59Z");
    }

    #[test]
    fn metadata_has_the_self_describing_fields() {
        record_fact("meta_test_fact", 42u64);
        record_fact("meta_test_fact", 43u64); // replaces, not duplicates
        let meta = run_metadata();
        assert!(meta.get("unix_time_s").and_then(Json::as_f64).unwrap() > 1.7e9);
        assert!(meta.get("wall_clock_utc").and_then(Json::as_str).unwrap().ends_with('Z'));
        assert!(meta.get("monotonic_ms").and_then(Json::as_f64).unwrap() >= 0.0);
        assert!(meta.get("threads").and_then(Json::as_f64).unwrap() >= 1.0);
        assert!(meta.get("env").is_some());
        assert_eq!(
            meta.get("facts").and_then(|f| f.get("meta_test_fact")).and_then(Json::as_f64),
            Some(43.0)
        );
        assert!(Json::parse(&meta.pretty()).is_ok());
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("xr_obs_meta_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_atomic(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not survive a successful write");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_rejects_pathless_targets() {
        assert!(write_atomic(Path::new(".."), "x").is_err());
    }
}
