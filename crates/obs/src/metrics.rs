//! Global-style metrics registry: counters, gauges, and fixed-bucket
//! histograms addressable by name + label pairs.
//!
//! Accumulation is sharded: the key hash picks one of [`SHARDS`] independent
//! mutex-protected tables, so the `xr_eval::par` workers rarely contend on
//! the same lock, and totals merge exactly — a counter incremented from any
//! number of `std::thread::scope` workers reads the same as the
//! single-threaded sum (u64 adds are exact, and histogram bucket counts are
//! order-independent).
//!
//! Each shard is a small vector kept sorted by key, looked up by binary
//! search against the *borrowed* `(name, labels)` pair: recording into an
//! existing metric allocates nothing, which keeps the always-on cost of the
//! hot per-kernel timers (hundreds of observations per training epoch)
//! within the flight-recorder overhead budget. A `MetricKey` is only
//! materialised the first time a metric appears.
//!
//! Snapshots are deterministic: entries are sorted by `(name, labels)`, so
//! two runs that record the same values produce byte-identical exports
//! regardless of thread interleaving.

use std::cmp::Ordering;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use crate::json::{num3, Json};

/// Number of independent registry shards. Power of two, comfortably above
/// the worker counts the experiment runner uses.
const SHARDS: usize = 16;

/// Fully-qualified metric identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, `crate.component.phase[.unit]` by convention.
    pub name: String,
    /// Label pairs, sorted by key for a canonical identity.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    pub(crate) fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        MetricKey { name: name.to_string(), labels }
    }

    /// `name{k=v,...}` rendering used by the table exporter.
    pub fn display(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut out = format!("{}{{", self.name);
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}={v}");
        }
        out.push('}');
        out
    }
}

/// Runs `f` over a canonically sorted view of `labels` without allocating
/// when the input is already sorted — which covers every call site in the
/// workspace (the hot paths pass no labels at all).
fn with_sorted<R>(labels: &[(&str, &str)], f: impl FnOnce(&[(&str, &str)]) -> R) -> R {
    if labels.len() <= 1 || labels.windows(2).all(|w| w[0] <= w[1]) {
        f(labels)
    } else {
        let mut sorted = labels.to_vec();
        sorted.sort();
        f(&sorted)
    }
}

/// Orders a stored key against a borrowed `(name, sorted labels)` pair —
/// the comparison the allocation-free shard lookup binary-searches with.
/// Must agree with `MetricKey`'s derived `Ord`.
fn cmp_borrowed(key: &MetricKey, name: &str, labels: &[(&str, &str)]) -> Ordering {
    key.name.as_str().cmp(name).then_with(|| {
        for (stored, &(k, v)) in key.labels.iter().zip(labels) {
            let c = stored.0.as_str().cmp(k).then_with(|| stored.1.as_str().cmp(v));
            if c != Ordering::Equal {
                return c;
            }
        }
        key.labels.len().cmp(&labels.len())
    })
}

enum Metric {
    Counter(u64),
    Gauge(f64),
    Hist(Hist),
}

/// Fixed-bucket histogram state. Bucket `i` counts observations `v` with
/// `v <= BOUNDS[i]` (and `> BOUNDS[i-1]`); one overflow bucket catches the
/// rest. Exact `count`/`sum`/`min`/`max` ride along, so means are exact and
/// only the quantiles are bucket-resolution estimates.
#[derive(Debug, Clone)]
pub(crate) struct Hist {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Hist {
    pub(crate) fn new() -> Hist {
        Hist {
            buckets: vec![0; bucket_bounds().len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub(crate) fn observe(&mut self, v: f64) {
        let idx = bucket_index(v);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Exact merge of another histogram into this one: bucket counts,
    /// count, and sum are plain additions, so merging is commutative and
    /// associative — the property the windowed time-series layer relies on
    /// for cross-worker determinism.
    pub(crate) fn merge(&mut self, other: &Hist) {
        for (b, ob) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += ob;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Exported statistics of the current state.
    pub(crate) fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// Upper-bound estimate of the `q`-quantile from bucket counts, clamped
    /// into the exact observed `[min, max]` range.
    fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                let bounds = bucket_bounds();
                let upper = if i < bounds.len() { bounds[i] } else { self.max };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// The default histogram bucket upper bounds: log-spaced, four per decade,
/// from 1 µs-scale up past 10 s-scale (values are unit-agnostic; the
/// workspace convention is milliseconds, so the range covers 1 ns .. 10 s).
pub fn bucket_bounds() -> &'static [f64] {
    use std::sync::OnceLock;
    static BOUNDS: OnceLock<Vec<f64>> = OnceLock::new();
    BOUNDS.get_or_init(|| {
        // 10^(-6 + i/4) for i in 0..=44: 1e-6 .. 1e5, ratio ~1.778
        (0..=44).map(|i| 10f64.powf(-6.0 + i as f64 / 4.0)).collect()
    })
}

fn bucket_index(v: f64) -> usize {
    let bounds = bucket_bounds();
    bounds.partition_point(|&b| b < v)
}

/// The sharded metrics registry. Shareable across threads (`Sync`); clone an
/// `Arc<Registry>` per worker or reach it through the installed
/// [`crate::ObsCtx`].
pub struct Registry {
    shards: Vec<Mutex<Vec<(MetricKey, Metric)>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry { shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect() }
    }

    fn shard_index(name: &str, labels: &[(&str, &str)]) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut hasher);
        for &(k, v) in labels {
            k.hash(&mut hasher);
            v.hash(&mut hasher);
        }
        (hasher.finish() as usize) % SHARDS
    }

    /// Locks the owning shard and applies `apply` to the metric, creating it
    /// via `init` on first sight. Existing metrics are updated without any
    /// allocation: the sorted-shard binary search compares against the
    /// borrowed name/labels directly.
    fn update(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        init: impl FnOnce() -> Metric,
        apply: impl FnOnce(&mut Metric),
    ) {
        with_sorted(labels, |labels| {
            let mut shard =
                self.shards[Registry::shard_index(name, labels)].lock().expect("metrics shard poisoned");
            let slot = match shard.binary_search_by(|(k, _)| cmp_borrowed(k, name, labels)) {
                Ok(i) => i,
                Err(i) => {
                    shard.insert(i, (MetricKey::new(name, labels), init()));
                    i
                }
            };
            apply(&mut shard[slot].1);
        });
    }

    /// Adds `delta` to a counter, creating it at zero first.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        self.update(
            name,
            labels,
            || Metric::Counter(0),
            |m| match m {
                Metric::Counter(c) => *c += delta,
                _ => debug_assert!(false, "metric {name:?} is not a counter"),
            },
        );
    }

    /// Sets a gauge to `v` (last write wins).
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.update(
            name,
            labels,
            || Metric::Gauge(0.0),
            |m| match m {
                Metric::Gauge(g) => *g = v,
                _ => debug_assert!(false, "metric {name:?} is not a gauge"),
            },
        );
    }

    /// Records `v` into a histogram.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.update(
            name,
            labels,
            || Metric::Hist(Hist::new()),
            |m| match m {
                Metric::Hist(h) => h.observe(v),
                _ => debug_assert!(false, "metric {name:?} is not a histogram"),
            },
        );
    }

    /// A deterministic (sorted) point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("metrics shard poisoned");
            for (key, metric) in shard.iter() {
                match metric {
                    Metric::Counter(c) => counters.push((key.clone(), *c)),
                    Metric::Gauge(g) => gauges.push((key.clone(), *g)),
                    Metric::Hist(h) => histograms.push((key.clone(), h.snapshot())),
                }
            }
        }
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// Exported histogram statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Exact sum of observations.
    pub sum: f64,
    /// Exact minimum (0 when empty).
    pub min: f64,
    /// Exact maximum (0 when empty).
    pub max: f64,
    /// Bucket-resolution median.
    pub p50: f64,
    /// Bucket-resolution 95th percentile.
    pub p95: f64,
    /// Bucket-resolution 99th percentile.
    pub p99: f64,
}

impl HistSnapshot {
    /// Exact mean (`0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A sorted point-in-time view of the registry, ready for export.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(key, total)` counter rows.
    pub counters: Vec<(MetricKey, u64)>,
    /// `(key, last value)` gauge rows.
    pub gauges: Vec<(MetricKey, f64)>,
    /// `(key, stats)` histogram rows.
    pub histograms: Vec<(MetricKey, HistSnapshot)>,
}

impl MetricsSnapshot {
    /// Counter total by display name (`name` or `name{k=v}`), if present.
    pub fn counter(&self, display: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k.display() == display).map(|&(_, c)| c)
    }

    /// Gauge value by display name, if present.
    pub fn gauge(&self, display: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k.display() == display).map(|&(_, g)| g)
    }

    /// Histogram stats by display name, if present.
    pub fn histogram(&self, display: &str) -> Option<&HistSnapshot> {
        self.histograms.iter().find(|(k, _)| k.display() == display).map(|(_, h)| h)
    }

    /// Machine-readable export: `{"counters": {...}, "gauges": {...},
    /// "histograms": {name: {count, sum, mean, min, max, p50, p95, p99}}}`.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (key, c) in &self.counters {
            counters = counters.set(&key.display(), *c);
        }
        let mut gauges = Json::obj();
        for (key, g) in &self.gauges {
            gauges = gauges.set(&key.display(), *g);
        }
        let mut histograms = Json::obj();
        for (key, h) in &self.histograms {
            histograms = histograms.set(
                &key.display(),
                Json::obj()
                    .set("count", h.count)
                    .set("sum", num3(h.sum))
                    .set("mean", num3(h.mean()))
                    .set("min", num3(h.min))
                    .set("max", num3(h.max))
                    .set("p50", num3(h.p50))
                    .set("p95", num3(h.p95))
                    .set("p99", num3(h.p99)),
            );
        }
        Json::obj().set("counters", counters).set("gauges", gauges).set("histograms", histograms)
    }

    /// Human-readable summary table (counters, gauges, then histograms).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for (key, c) in &self.counters {
                let _ = writeln!(out, "  {:<52} {c}", key.display());
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges\n");
            for (key, g) in &self.gauges {
                let _ = writeln!(out, "  {:<52} {g:.4}", key.display());
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms                                     count      mean       p50       p95       p99\n");
            for (key, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<44} {:>7} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
                    key.display(),
                    h.count,
                    h.mean(),
                    h.p50,
                    h.p95,
                    h.p99
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let reg = Registry::new();
        reg.counter_add("a.calls", &[], 2);
        reg.counter_add("a.calls", &[], 3);
        reg.gauge_set("a.level", &[("m", "x")], 1.5);
        reg.gauge_set("a.level", &[("m", "x")], 2.5);
        reg.observe("a.ms", &[], 1.0);
        reg.observe("a.ms", &[], 3.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.calls"), Some(5));
        assert_eq!(snap.gauge("a.level{m=x}"), Some(2.5));
        let h = snap.histogram("a.ms").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 4.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = Registry::new();
        reg.counter_add("c", &[("a", "1"), ("b", "2")], 1);
        reg.counter_add("c", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(reg.snapshot().counter("c{a=1,b=2}"), Some(2));
    }

    #[test]
    fn bucket_index_respects_bounds() {
        let bounds = bucket_bounds();
        // a value exactly on a bound lands in that bucket (v <= bound)
        for (i, &b) in bounds.iter().enumerate() {
            assert_eq!(bucket_index(b), i, "bound {b} must fall in its own bucket");
        }
        // just above a bound spills into the next bucket
        assert_eq!(bucket_index(bounds[3] * 1.0001), 4);
        // beyond the last bound lands in the overflow bucket
        assert_eq!(bucket_index(bounds[bounds.len() - 1] * 10.0), bounds.len());
        assert_eq!(bucket_index(0.0), 0);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds_clamped_to_range() {
        let reg = Registry::new();
        for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
            reg.observe("h", &[], v);
        }
        let snap = reg.snapshot();
        let h = snap.histogram("h").unwrap();
        // p50: 3rd of 5 observations; value 2.0 < p50 <= bound above 3.0
        assert!(h.p50 >= 2.0 && h.p50 <= 3.2, "p50 = {}", h.p50);
        assert!(h.p99 <= 100.0 && h.p99 > 4.0, "p99 = {}", h.p99);
        assert!(h.p50 <= h.p95 && h.p95 <= h.p99);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Hist::new();
        assert_eq!(h.quantile(0.5), 0.0);
        let reg = Registry::new();
        reg.observe("h", &[], 5.0);
        let snap = reg.snapshot();
        assert!(snap.histogram("nope").is_none());
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let build = || {
            let reg = Registry::new();
            reg.counter_add("z", &[], 1);
            reg.counter_add("a", &[("k", "2")], 1);
            reg.counter_add("a", &[("k", "1")], 1);
            reg.gauge_set("g", &[], 0.5);
            reg.observe("h", &[], 1.0);
            reg.snapshot()
        };
        let s1 = build();
        let s2 = build();
        assert_eq!(s1, s2);
        let names: Vec<String> = s1.counters.iter().map(|(k, _)| k.display()).collect();
        assert_eq!(names, vec!["a{k=1}", "a{k=2}", "z"]);
        assert_eq!(s1.to_json().pretty(), s2.to_json().pretty());
    }

    #[test]
    fn json_export_parses_and_contains_required_keys() {
        let reg = Registry::new();
        reg.counter_add("c", &[], 7);
        reg.observe("h.ms", &[], 0.25);
        let json = reg.snapshot().to_json();
        let text = json.pretty();
        let back = crate::json::Json::parse(&text).unwrap();
        assert_eq!(back.get("counters").and_then(|c| c.get("c")).and_then(Json::as_f64), Some(7.0));
        let hist = back.get("histograms").and_then(|h| h.get("h.ms")).unwrap();
        for field in ["count", "sum", "mean", "min", "max", "p50", "p95", "p99"] {
            assert!(hist.get(field).is_some(), "missing {field}");
        }
    }
}
