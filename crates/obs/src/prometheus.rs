//! Prometheus text-format exporter (exposition format 0.0.4) over
//! [`crate::metrics::MetricsSnapshot`], so external scrapers can consume
//! the same registry the JSON/table exporters read.
//!
//! Counters and gauges map directly; histograms export as summaries —
//! `quantile="0.5"/"0.95"/"0.99"` sample lines plus `_sum`/`_count` — since
//! our quantiles are computed registry-side from the log buckets. Metric
//! names are sanitized to the Prometheus charset (anything outside
//! `[a-zA-Z0-9_:]` becomes `_`, a leading digit gains a `_` prefix), label
//! values are escaped per the spec, and the snapshot's sorted order keeps
//! each family's samples contiguous so one `# TYPE` line per family
//! suffices.

use std::fmt::Write as _;

use crate::metrics::{MetricKey, MetricsSnapshot};

/// `name` with every non-`[a-zA-Z0-9_:]` byte replaced by `_` (and a `_`
/// prefix when it would start with a digit).
fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        match ch {
            'a'..='z' | 'A'..='Z' | '_' | ':' => out.push(ch),
            '0'..='9' => {
                if i == 0 {
                    out.push('_');
                }
                out.push(ch);
            }
            _ => out.push('_'),
        }
    }
    out
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Renders `{k="v",...}` including `extra` pairs appended after the key's
/// own labels; empty string when there are none.
fn label_block(key: &MetricKey, extra: &[(&str, &str)]) -> String {
    if key.labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in key.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra.iter().copied()) {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", sanitize_name(k), escape_label_value(v));
    }
    out.push('}');
    out
}

fn write_value(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v}");
    }
}

fn type_line(out: &mut String, last_family: &mut String, family: &str, kind: &str) {
    if family != last_family {
        let _ = writeln!(out, "# TYPE {family} {kind}");
        *last_family = family.to_string();
    }
}

/// Renders the snapshot in the Prometheus text exposition format.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    for (key, c) in &snapshot.counters {
        let family = sanitize_name(&key.name);
        type_line(&mut out, &mut last_family, &family, "counter");
        let _ = writeln!(out, "{family}{} {c}", label_block(key, &[]));
    }
    for (key, g) in &snapshot.gauges {
        let family = sanitize_name(&key.name);
        type_line(&mut out, &mut last_family, &family, "gauge");
        let _ = write!(out, "{family}{} ", label_block(key, &[]));
        write_value(&mut out, *g);
        out.push('\n');
    }
    for (key, h) in &snapshot.histograms {
        let family = sanitize_name(&key.name);
        type_line(&mut out, &mut last_family, &family, "summary");
        for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
            let _ = write!(out, "{family}{} ", label_block(key, &[("quantile", q)]));
            write_value(&mut out, v);
            out.push('\n');
        }
        let _ = write!(out, "{family}_sum{} ", label_block(key, &[]));
        write_value(&mut out, h.sum);
        out.push('\n');
        let _ = writeln!(out, "{family}_count{} {}", label_block(key, &[]), h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsCtx;

    #[test]
    fn name_sanitization() {
        assert_eq!(sanitize_name("xr_eval.method.step.ms"), "xr_eval_method_step_ms");
        assert_eq!(sanitize_name("a:b_c9"), "a:b_c9");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("sweep.pair-tests"), "sweep_pair_tests");
    }

    #[test]
    fn renders_all_metric_kinds_with_one_type_line_per_family() {
        let ctx = ObsCtx::new(true, false);
        let _g = ctx.install();
        crate::counter_add("prom.calls", &[("method", "a")], 3);
        crate::counter_add("prom.calls", &[("method", "b")], 4);
        crate::gauge_set("prom.level", &[], 0.5);
        crate::observe("prom.step.ms", &[], 2.0);
        crate::observe("prom.step.ms", &[], 4.0);
        let text = render(&ctx.registry.snapshot());
        assert_eq!(text.matches("# TYPE prom_calls counter").count(), 1);
        assert!(text.contains("prom_calls{method=\"a\"} 3"));
        assert!(text.contains("prom_calls{method=\"b\"} 4"));
        assert!(text.contains("# TYPE prom_level gauge"));
        assert!(text.contains("prom_level 0.5"));
        assert!(text.contains("# TYPE prom_step_ms summary"));
        assert!(text.contains("prom_step_ms{quantile=\"0.5\"}"));
        assert!(text.contains("prom_step_ms{quantile=\"0.99\"}"));
        assert!(text.contains("prom_step_ms_sum 6"));
        assert!(text.contains("prom_step_ms_count 2"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn label_values_are_escaped() {
        let ctx = ObsCtx::new(true, false);
        let _g = ctx.install();
        crate::counter_add("prom.esc", &[("k", "a\"b\\c\nd")], 1);
        let text = render(&ctx.registry.snapshot());
        assert!(text.contains(r#"prom_esc{k="a\"b\\c\nd"} 1"#));
    }
}
