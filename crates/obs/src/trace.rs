//! Span/event tracing with a Chrome-trace (`chrome://tracing` / Perfetto)
//! exporter.
//!
//! Spans are RAII guards created by the [`crate::span!`] macro. When no
//! [`crate::ObsCtx`] is installed on the current thread the guard is a
//! no-op containing `None` — no `Instant::now`, no allocation. When a sink
//! is installed the guard records a monotonic start time, pushes its name on
//! a thread-local span stack (so nesting depth is known without parsing
//! timestamps), and on drop appends one complete ("X") event to the shared
//! buffer and/or a duration observation to the metrics registry.
//!
//! The buffer is capped: beyond [`TraceSink::DEFAULT_CAP`] events new spans
//! are counted as dropped instead of growing without bound, so tracing a
//! long run degrades gracefully rather than exhausting memory.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;

thread_local! {
    /// Names of the open spans on this thread, outermost first.
    static SPAN_STACK: std::cell::RefCell<Vec<&'static str>> = const { std::cell::RefCell::new(Vec::new()) };
    /// Small per-thread id used as the Chrome-trace `tid`.
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) fn current_tid() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// The dot-joined names of the spans currently open on this thread
/// (empty when none — e.g. when no sink is installed).
pub fn current_span_path() -> String {
    SPAN_STACK.with(|s| s.borrow().join("."))
}

/// One recorded trace event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span or event name (`crate.component.phase`).
    pub name: &'static str,
    /// Chrome phase: `'X'` = complete span, `'i'` = instant event.
    pub phase: char,
    /// Microseconds since the sink's epoch.
    pub ts_us: f64,
    /// Duration in microseconds (0 for instants).
    pub dur_us: f64,
    /// Per-thread track id.
    pub tid: u64,
    /// Formatted `key=value` arguments.
    pub args: Vec<(&'static str, String)>,
}

/// Shared, thread-safe trace buffer with a monotonic epoch.
pub struct TraceSink {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
    cap: usize,
    dropped: AtomicUsize,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

impl TraceSink {
    /// Default event cap (~4M events, roughly a few hundred MB of JSON).
    pub const DEFAULT_CAP: usize = 1 << 22;

    /// An empty sink whose epoch is "now".
    pub fn new() -> TraceSink {
        TraceSink {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            cap: Self::DEFAULT_CAP,
            dropped: AtomicUsize::new(0),
        }
    }

    /// Microseconds elapsed since the sink's epoch.
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    fn push(&self, event: TraceEvent) {
        let mut events = self.events.lock().expect("trace buffer poisoned");
        if events.len() >= self.cap {
            drop(events);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(event);
    }

    /// Appends a complete span event.
    pub fn complete(&self, name: &'static str, start_us: f64, args: Vec<(&'static str, String)>) {
        let ts = start_us;
        let dur = self.now_us() - start_us;
        self.push(TraceEvent { name, phase: 'X', ts_us: ts, dur_us: dur, tid: current_tid(), args });
    }

    /// Appends an instant event.
    pub fn instant(&self, name: &'static str, args: Vec<(&'static str, String)>) {
        self.push(TraceEvent {
            name,
            phase: 'i',
            ts_us: self.now_us(),
            dur_us: 0.0,
            tid: current_tid(),
            args,
        });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace buffer poisoned").len()
    }

    /// `true` when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events discarded after the cap was hit.
    pub fn dropped(&self) -> usize {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Exports the buffer in Chrome trace-event format (the JSON-object
    /// flavor: `{"traceEvents": [...], "displayTimeUnit": "ms"}`), which
    /// both `chrome://tracing` and Perfetto load directly. Events are
    /// sorted by `(tid, ts)` so the file is deterministic given identical
    /// recorded timings.
    pub fn to_chrome_json(&self) -> Json {
        let mut events = self.events.lock().expect("trace buffer poisoned").clone();
        events.sort_by(|a, b| {
            a.tid.cmp(&b.tid).then(a.ts_us.partial_cmp(&b.ts_us).unwrap_or(std::cmp::Ordering::Equal))
        });
        let rows: Vec<Json> = events
            .iter()
            .map(|e| {
                let mut row = Json::obj()
                    .set("name", e.name)
                    .set("ph", e.phase.to_string())
                    .set("ts", e.ts_us)
                    .set("pid", 1u64)
                    .set("tid", e.tid);
                if e.phase == 'X' {
                    row = row.set("dur", e.dur_us);
                } else {
                    // instant events need a scope; "t" = thread
                    row = row.set("s", "t");
                }
                if !e.args.is_empty() {
                    let mut args = Json::obj();
                    for (k, v) in &e.args {
                        args = args.set(k, v.as_str());
                    }
                    row = row.set("args", args);
                }
                row
            })
            .collect();
        let mut doc = Json::obj().set("traceEvents", Json::Arr(rows)).set("displayTimeUnit", "ms");
        let dropped = self.dropped();
        if dropped > 0 {
            doc = doc.set("droppedEvents", dropped);
        }
        doc
    }
}

/// RAII span guard. Construct through [`crate::span!`]; the inert (`None`)
/// form costs one thread-local lookup and nothing else.
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    name: &'static str,
    start: Instant,
    start_us: f64,
    args: Vec<(&'static str, String)>,
    ctx: std::sync::Arc<crate::ObsCtx>,
}

impl Span {
    /// Opens a span with no arguments (no-op without an installed context).
    pub fn enter(name: &'static str) -> Span {
        Span::enter_with(name, Vec::new)
    }

    /// Opens a span, calling `args` to format arguments only when a trace
    /// sink will consume them — argument construction is free on the no-op
    /// path and on the always-on recorder/metrics path (trace off), so hot
    /// spans may format freely.
    pub fn enter_with<F>(name: &'static str, args: F) -> Span
    where
        F: FnOnce() -> Vec<(&'static str, String)>,
    {
        match crate::current_ctx() {
            None => Span { inner: None },
            Some(ctx) => {
                SPAN_STACK.with(|s| s.borrow_mut().push(name));
                let (start_us, args) = match ctx.trace.as_ref() {
                    Some(trace) => (trace.now_us(), args()),
                    None => (0.0, Vec::new()),
                };
                Span { inner: Some(SpanInner { name, start: Instant::now(), start_us, args, ctx }) }
            }
        }
    }

    /// `true` when this span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        let elapsed_ms = inner.start.elapsed().as_secs_f64() * 1e3;
        inner.ctx.recorder.record_complete(inner.name, elapsed_ms * 1e3);
        if let Some(trace) = &inner.ctx.trace {
            trace.complete(inner.name, inner.start_us, inner.args);
        }
        if inner.ctx.metrics_on {
            inner.ctx.registry.observe(inner.name, &[], elapsed_ms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_records_and_exports_chrome_format() {
        let sink = TraceSink::new();
        let t0 = sink.now_us();
        sink.complete("unit.test.span", t0, vec![("k", "v".to_string())]);
        sink.instant("unit.test.event", Vec::new());
        assert_eq!(sink.len(), 2);
        let doc = sink.to_chrome_json();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        let span = events.iter().find(|e| e.get("ph").and_then(Json::as_str) == Some("X")).unwrap();
        assert!(span.get("dur").and_then(Json::as_f64).unwrap() >= 0.0);
        assert_eq!(span.get("args").and_then(|a| a.get("k")).and_then(Json::as_str), Some("v"));
        let inst = events.iter().find(|e| e.get("ph").and_then(Json::as_str) == Some("i")).unwrap();
        assert_eq!(inst.get("s").and_then(Json::as_str), Some("t"));
        // the export round-trips through the parser
        assert!(Json::parse(&doc.compact()).is_ok());
    }

    #[test]
    fn cap_counts_dropped_events() {
        let sink = TraceSink { cap: 2, ..TraceSink::new() };
        for _ in 0..5 {
            sink.instant("e", Vec::new());
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
        assert_eq!(sink.to_chrome_json().get("droppedEvents").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn span_without_context_is_inert() {
        let span = Span::enter("no.ctx");
        assert!(!span.is_recording());
        assert_eq!(current_span_path(), "");
    }
}
