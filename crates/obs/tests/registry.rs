//! Integration tests for the metrics registry's concurrency contract: the
//! sharded accumulation must merge *exactly* across `std::thread::scope`
//! workers, and snapshots must be deterministic at any worker count.

use xr_obs::metrics::bucket_bounds;
use xr_obs::ObsCtx;

fn bounds() -> &'static [f64] {
    bucket_bounds()
}

/// Runs `total` counter increments and `total` histogram observations split
/// across `workers` scoped threads sharing one context, returning the
/// snapshot.
fn run_with_workers(workers: usize, total: usize) -> xr_obs::MetricsSnapshot {
    let ctx = ObsCtx::new(true, false);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let ctx = ctx.clone();
            scope.spawn(move || {
                let _guard = ctx.install();
                let mut i = w;
                while i < total {
                    xr_obs::counter_add("merge.calls", &[], 1);
                    xr_obs::counter_add(
                        "merge.weighted",
                        &[("worker_class", if i % 2 == 0 { "even" } else { "odd" })],
                        i as u64,
                    );
                    xr_obs::observe("merge.value", &[], (i % 17) as f64 + 0.5);
                    i += workers;
                }
            });
        }
    });
    ctx.registry.snapshot()
}

#[test]
fn counter_merge_across_scope_workers_matches_single_threaded_totals() {
    let total = 10_000;
    let single = run_with_workers(1, total);
    for workers in [2, 3, 4, 8] {
        let multi = run_with_workers(workers, total);
        assert_eq!(multi.counter("merge.calls"), Some(total as u64), "{workers} workers");
        assert_eq!(
            multi.counter("merge.calls"),
            single.counter("merge.calls"),
            "{workers} workers vs single"
        );
        assert_eq!(
            multi.counter("merge.weighted{worker_class=even}"),
            single.counter("merge.weighted{worker_class=even}")
        );
        assert_eq!(
            multi.counter("merge.weighted{worker_class=odd}"),
            single.counter("merge.weighted{worker_class=odd}")
        );
    }
}

#[test]
fn snapshots_are_identical_at_any_worker_count() {
    // Histogram bucket counts, exact sums, and quantiles are all
    // order-independent, so the full snapshot must match bit-for-bit.
    let total = 5_000;
    let reference = run_with_workers(1, total);
    for workers in [2, 5, 16] {
        let snap = run_with_workers(workers, total);
        assert_eq!(snap, reference, "snapshot diverged at {workers} workers");
        assert_eq!(snap.to_json().pretty(), reference.to_json().pretty());
    }
}

#[test]
fn histogram_bucket_boundaries_are_log_spaced_and_inclusive() {
    let b = bounds();
    assert!(b.windows(2).all(|w| w[0] < w[1]), "bounds must be strictly increasing");
    // four buckets per decade, 1e-6 through 1e5
    assert!((b[0] - 1e-6).abs() < 1e-18);
    assert!((b[b.len() - 1] - 1e5).abs() < 1e-6);
    let ratio = b[1] / b[0];
    for w in b.windows(2) {
        assert!((w[1] / w[0] - ratio).abs() < 1e-9, "log spacing must be uniform");
    }

    // An observation exactly on a boundary is counted at or below it: the
    // quantile of a single boundary-valued observation is that boundary.
    let ctx = ObsCtx::new(true, false);
    let _g = ctx.install();
    xr_obs::observe("edge", &[], b[8]);
    let snap = ctx.registry.snapshot();
    let h = snap.histogram("edge").unwrap();
    assert_eq!(h.count, 1);
    assert!((h.p50 - b[8]).abs() < 1e-15, "p50 {} != bound {}", h.p50, b[8]);
    assert!((h.p99 - b[8]).abs() < 1e-15);
}

#[test]
fn quantiles_track_known_distributions() {
    let ctx = ObsCtx::new(true, false);
    let _g = ctx.install();
    // 100 observations 1..=100: p50 ≈ 50, p95 ≈ 95, p99 ≈ 99, within one
    // bucket ratio (~1.78×) of the true value
    for i in 1..=100 {
        xr_obs::observe("dist", &[], i as f64);
    }
    let snap = ctx.registry.snapshot();
    let h = snap.histogram("dist").unwrap();
    assert_eq!(h.count, 100);
    assert_eq!(h.min, 1.0);
    assert_eq!(h.max, 100.0);
    assert!((h.mean() - 50.5).abs() < 1e-12, "mean is exact");
    for (q, truth) in [(h.p50, 50.0), (h.p95, 95.0), (h.p99, 99.0)] {
        assert!(q >= truth && q <= truth * 1.79, "quantile {q} vs true {truth}");
    }
}
