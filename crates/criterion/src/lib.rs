//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so the workspace vendors
//! exactly the API surface the `crates/bench` benchmarks use: `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a simple
//! median-of-samples measurement printed to stdout — enough to run the
//! benches as smoke tests and get rough numbers, without statistics,
//! plotting, or baselines.

use std::time::Instant;

/// Opaque benchmark identifier, printed as `function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, like `criterion`'s.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }

    /// An id from just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-benchmark timing driver handed to the closure in `iter`.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Runs `f` repeatedly and records wall-clock samples.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // one warmup call, then timed samples
        black_box(f());
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = times[times.len() / 2];
        println!("    median {median:.4} ms over {} samples", self.samples);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run(&id.to_string(), f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Marks the group complete (no-op in the stand-in).
    pub fn finish(&mut self) {}

    fn run(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        println!("bench {}/{label}", self.name);
        let mut bencher = Bencher { samples: self.sample_size };
        f(&mut bencher);
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 20, _parent: self }
    }
}

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function list, mirroring `criterion`'s macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion`'s macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("forward", 64).to_string(), "forward/64");
        assert_eq!(BenchmarkId::from_parameter(100).to_string(), "100");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut calls = 0usize;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls >= 2);
    }
}
