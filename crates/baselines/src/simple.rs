//! The two trivial baselines: Random and Nearest (§V-A.2).

use poshgnn::recommender::{mask_from_indices, top_k_indices, AfterRecommender};
use poshgnn::StepView;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Randomly selects `k` surrounding users at each time step.
pub struct RandomRecommender {
    k: usize,
    seed: u64,
    rng: StdRng,
}

impl RandomRecommender {
    /// A random recommender selecting `k` users per step.
    pub fn new(k: usize, seed: u64) -> Self {
        RandomRecommender { k, seed, rng: StdRng::seed_from_u64(seed) }
    }
}

impl AfterRecommender for RandomRecommender {
    fn name(&self) -> String {
        "Random".to_string()
    }

    fn begin_episode(&mut self, _view: &StepView<'_>) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    fn recommend_step(&mut self, view: &StepView<'_>) -> Vec<bool> {
        let mut candidates: Vec<usize> = (0..view.n()).filter(|&w| w != view.target()).collect();
        candidates.shuffle(&mut self.rng);
        candidates.truncate(self.k);
        mask_from_indices(view.n(), &candidates)
    }
}

/// Recommends the `k` nearest users at each time step.
pub struct NearestRecommender {
    k: usize,
}

impl NearestRecommender {
    /// A nearest-neighbor recommender with top-`k` selection.
    pub fn new(k: usize) -> Self {
        NearestRecommender { k }
    }
}

impl AfterRecommender for NearestRecommender {
    fn name(&self) -> String {
        "Nearest".to_string()
    }

    fn begin_episode(&mut self, _view: &StepView<'_>) {}

    fn recommend_step(&mut self, view: &StepView<'_>) -> Vec<bool> {
        // negate distances so top-k picks the nearest
        let scores: Vec<f64> = view.distances().iter().map(|&d| -d).collect();
        let idx = top_k_indices(&scores, view.target(), self.k);
        mask_from_indices(view.n(), &idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_context;

    #[test]
    fn random_selects_exactly_k() {
        let ctx = tiny_context(10, 5, 1);
        let mut r = RandomRecommender::new(4, 7);
        let recs = r.run_episode(&ctx);
        for rec in &recs {
            assert_eq!(rec.iter().filter(|&&b| b).count(), 4);
            assert!(!rec[ctx.target]);
        }
    }

    #[test]
    fn random_is_reproducible_per_episode() {
        let ctx = tiny_context(10, 5, 2);
        let mut r = RandomRecommender::new(3, 9);
        let a = r.run_episode(&ctx);
        let b = r.run_episode(&ctx);
        assert_eq!(a, b, "begin_episode must reset the RNG");
    }

    #[test]
    fn nearest_selects_closest_users() {
        let ctx = tiny_context(10, 5, 3);
        let mut r = NearestRecommender::new(3);
        r.begin_episode(&StepView::new(&ctx, 0));
        let rec = r.recommend_step(&StepView::new(&ctx, 0));
        let selected: Vec<usize> = (0..ctx.n).filter(|&w| rec[w]).collect();
        assert_eq!(selected.len(), 3);
        // every selected user is nearer than every unselected non-target user
        let max_sel = selected.iter().map(|&w| ctx.distances[0][w]).fold(0.0, f64::max);
        #[allow(clippy::needless_range_loop)] // w is a user id, not a position
        for w in 0..ctx.n {
            if w != ctx.target && !rec[w] {
                assert!(ctx.distances[0][w] >= max_sel - 1e-12);
            }
        }
    }

    #[test]
    fn nearest_tracks_motion_over_time() {
        let ctx = tiny_context(12, 20, 4);
        let mut r = NearestRecommender::new(3);
        let recs = r.run_episode(&ctx);
        // moving crowd should change the nearest set at least once
        assert!(recs.windows(2).any(|w| w[0] != w[1]), "nearest set never changed");
    }
}
