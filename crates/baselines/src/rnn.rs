//! Recurrent GNN baselines: T-GCN [73] and DCRNN [72] kernels.
//!
//! Following §V-A.2, both share POSHGNN's scale (hidden dimension 8) and are
//! trained with the POSHGNN loss over full episodes, so any performance gap
//! against POSHGNN is architectural: they consume the *naive* attributed
//! occlusion graph (§IV-A's strawman — raw `p`, `s`, distance, interface on
//! the occlusion graph) without MIA's hybrid-participation pruning or Δ
//! structural-difference signal, and they have no LWP preservation gate.

use poshgnn::loss::{poshgnn_loss, LossParams};
use poshgnn::mia::Mia;
use poshgnn::recommender::{threshold_decision, AfterRecommender};
use poshgnn::{StepView, TargetContext};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xr_gnn::{transition_matrix, Activation, DcGruCell, Dense, TgcnCell};
use xr_tensor::{Adam, Matrix, Optimizer, ParamStore, Tape, Var};

/// Which recurrent kernel to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RnnKind {
    /// GCN + GRU (T-GCN).
    Tgcn,
    /// Diffusion-convolutional GRU (DCRNN).
    Dcrnn,
}

/// Configuration shared by the two recurrent baselines.
#[derive(Debug, Clone, Copy)]
pub struct RnnConfig {
    /// Hidden dimension (8, matching POSHGNN).
    pub hidden: usize,
    /// POSHGNN loss hyperparameters.
    pub loss: LossParams,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Gradient clip.
    pub grad_clip: f64,
    /// Decision threshold.
    pub threshold: f64,
    /// Parameter seed.
    pub seed: u64,
}

impl Default for RnnConfig {
    fn default() -> Self {
        RnnConfig {
            hidden: 8,
            loss: LossParams::default(),
            learning_rate: 1e-2,
            grad_clip: 5.0,
            threshold: 0.5,
            seed: 23,
        }
    }
}

enum Kernel {
    Tgcn(TgcnCell),
    Dcrnn(DcGruCell),
}

/// A recurrent-GNN AFTER recommender (T-GCN or DCRNN kernel).
pub struct RnnRecommender {
    kind: RnnKind,
    config: RnnConfig,
    store: ParamStore,
    optimizer: Adam,
    kernel: Kernel,
    readout: Dense,
    mia: Mia,
    state: Option<Matrix>,
}

const FEATURE_DIM: usize = 4;

impl RnnRecommender {
    /// Builds an untrained recurrent recommender.
    pub fn new(kind: RnnKind, config: RnnConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let h = config.hidden;
        let kernel = match kind {
            RnnKind::Tgcn => Kernel::Tgcn(TgcnCell::new(&mut store, "tgcn", FEATURE_DIM, h, h, &mut rng)),
            RnnKind::Dcrnn => Kernel::Dcrnn(DcGruCell::new(&mut store, "dcrnn", FEATURE_DIM, h, 2, &mut rng)),
        };
        let readout = Dense::new(&mut store, "readout", h, 1, Activation::Sigmoid, &mut rng);
        let optimizer = Adam::with_lr(config.learning_rate);
        RnnRecommender { kind, config, store, optimizer, kernel, readout, mia: Mia, state: None }
    }

    /// The graph operator each kernel consumes: the row-normalized random
    /// walk matrix for both kernels (mean aggregation keeps activations
    /// bounded on dense occlusion graphs; DCRNN's diffusion convolution is
    /// defined over it anyway).
    fn graph_operator(&self, adjacency: &Matrix) -> Matrix {
        transition_matrix(adjacency)
    }

    fn step_on_tape<'t>(
        &self,
        tape: &'t Tape,
        features: Matrix,
        graph_op: Matrix,
        h_prev: Var<'t>,
    ) -> (Var<'t>, Var<'t>) {
        let x = tape.constant(features);
        let g = tape.constant(graph_op);
        let h = match &self.kernel {
            Kernel::Tgcn(cell) => cell.step(tape, &self.store, x, g, h_prev),
            Kernel::Dcrnn(cell) => cell.step(tape, &self.store, x, g, h_prev),
        };
        let r = self.readout.forward(tape, &self.store, h);
        (r, h)
    }

    /// Trains with the POSHGNN loss over full episodes (BPTT), mirroring the
    /// POSHGNN trainer. Returns mean per-step loss per epoch.
    pub fn train(&mut self, contexts: &[TargetContext], epochs: usize) -> Vec<f64> {
        let mut history = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut epoch_loss = 0.0;
            for ctx in contexts {
                let tape = Tape::new();
                let n = ctx.n;
                let mut h_prev = tape.constant(Matrix::zeros(n, self.config.hidden));
                let mut r_prev = tape.constant(Matrix::zeros(n, 1));
                let mut total: Option<Var<'_>> = None;
                for t in 0..=ctx.t_max() {
                    let mia_out = self.mia.compute(ctx, t);
                    let (r, h) = self.step_on_tape(
                        &tape,
                        self.mia.raw_features(ctx, t),
                        self.graph_operator(&mia_out.adjacency),
                        h_prev,
                    );
                    let blocking = tape.constant_rc(mia_out.blocking.clone());
                    let l = poshgnn_loss(
                        &tape,
                        r,
                        r_prev,
                        &mia_out.p_hat,
                        &mia_out.s_hat,
                        blocking,
                        self.config.loss,
                    );
                    total = Some(match total {
                        Some(acc) => acc + l,
                        None => l,
                    });
                    h_prev = h;
                    r_prev = r;
                }
                let loss = total.expect("non-empty episode").scale(1.0 / (ctx.t_max() + 1) as f64);
                epoch_loss += loss.scalar();
                loss.backward(&mut self.store);
                self.store.clip_grad_norm(self.config.grad_clip);
                self.optimizer.step(&mut self.store);
            }
            history.push(epoch_loss / contexts.len().max(1) as f64);
        }
        history
    }
}

impl AfterRecommender for RnnRecommender {
    fn name(&self) -> String {
        match self.kind {
            RnnKind::Tgcn => "TGCN".to_string(),
            RnnKind::Dcrnn => "DCRNN".to_string(),
        }
    }

    fn begin_episode(&mut self, _view: &StepView<'_>) {
        self.state = None;
    }

    fn recommend_step(&mut self, view: &StepView<'_>) -> Vec<bool> {
        let h_prev_m = self.state.take().unwrap_or_else(|| Matrix::zeros(view.n(), self.config.hidden));
        let mia_out = self.mia.compute_view(view);
        let tape = Tape::new();
        let h_prev = tape.constant(h_prev_m);
        let (r, h) = self.step_on_tape(
            &tape,
            self.mia.raw_features_view(view),
            self.graph_operator(&mia_out.adjacency),
            h_prev,
        );
        self.state = Some(h.value());
        threshold_decision(&r.value().into_vec(), view.target(), self.config.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_context;

    #[test]
    fn both_kernels_run_episodes() {
        for kind in [RnnKind::Tgcn, RnnKind::Dcrnn] {
            let ctx = tiny_context(10, 6, 1);
            let mut model = RnnRecommender::new(kind, RnnConfig::default());
            let recs = model.run_episode(&ctx);
            assert_eq!(recs.len(), 7);
            assert!(recs.iter().all(|r| r.len() == 10 && !r[ctx.target]));
        }
    }

    #[test]
    fn training_reduces_loss_for_both() {
        for kind in [RnnKind::Tgcn, RnnKind::Dcrnn] {
            let ctx = tiny_context(10, 6, 2);
            let mut model = RnnRecommender::new(kind, RnnConfig::default());
            let hist = model.train(std::slice::from_ref(&ctx), 20);
            assert!(
                hist.last().unwrap() < &hist[0],
                "{kind:?} loss did not improve: {} → {}",
                hist[0],
                hist.last().unwrap()
            );
        }
    }

    #[test]
    fn names_match_paper_tables() {
        assert_eq!(RnnRecommender::new(RnnKind::Tgcn, RnnConfig::default()).name(), "TGCN");
        assert_eq!(RnnRecommender::new(RnnKind::Dcrnn, RnnConfig::default()).name(), "DCRNN");
    }

    #[test]
    fn episodes_are_independent() {
        let ctx = tiny_context(8, 5, 3);
        let mut model = RnnRecommender::new(RnnKind::Tgcn, RnnConfig::default());
        let a = model.run_episode(&ctx);
        let b = model.run_episode(&ctx);
        assert_eq!(a, b);
    }
}
