//! Shared fixtures for baseline tests.

use poshgnn::TargetContext;
use xr_datasets::{Dataset, DatasetKind, Scenario, ScenarioConfig};

/// A small Hubs-like scenario for fast tests.
pub fn tiny_scenario(n: usize, t: usize, seed: u64) -> Scenario {
    let dataset = Dataset::generate(DatasetKind::Hubs, 1);
    let cfg = ScenarioConfig {
        n_participants: n,
        vr_fraction: 0.5,
        time_steps: t,
        room_side: 6.0,
        body_radius: 0.15,
        seed,
    };
    dataset.sample_scenario(&cfg)
}

/// A [`TargetContext`] over [`tiny_scenario`] with target 0 and β = 0.5.
pub fn tiny_context(n: usize, t: usize, seed: u64) -> TargetContext {
    TargetContext::new(&tiny_scenario(n, t, seed), 0, 0.5)
}
