//! A combinatorial reference recommender: per-step weighted-MWIS on the
//! occlusion structure, solved *exactly* in polynomial time.
//!
//! This is not one of the paper's baselines — it is the reproduction's
//! *optimality reference*: at each step it solves the myopic problem
//! "maximize Σ w(u) over a non-occluding candidate set", with weights
//! `w(u) = (1-β)·p(v,u) + β·1[u was visible at t-1]·s(v,u)`, i.e. the exact
//! per-step AFTER payoff given the previous step's outcome. Because the
//! occlusion graphs produced by the converter are circular-arc graphs, the
//! myopic optimum is computed exactly with the polynomial circular-arc MWIS
//! DP (`xr_graph::circular`) — no branch-and-bound blow-up. Learned methods
//! can be scored against it to report an optimality gap (see the
//! `optimality_gap` binary).

use poshgnn::recommender::{mask_from_indices, AfterRecommender};
use poshgnn::StepView;
use xr_graph::circular::{mwis_circular_arcs, CircArc};

/// The myopic MWIS oracle.
pub struct MwisOracle {
    prev_visible: Vec<bool>,
}

impl MwisOracle {
    /// A fresh oracle.
    pub fn new() -> Self {
        MwisOracle { prev_visible: Vec::new() }
    }
}

impl Default for MwisOracle {
    fn default() -> Self {
        Self::new()
    }
}

impl AfterRecommender for MwisOracle {
    fn name(&self) -> String {
        "MWIS-Oracle".to_string()
    }

    fn begin_episode(&mut self, view: &StepView<'_>) {
        self.prev_visible = vec![false; view.n()];
    }

    fn recommend_step(&mut self, view: &StepView<'_>) -> Vec<bool> {
        let n = view.n();
        let (mask, preference, social) = (view.candidate_mask(), view.preference(), view.social());
        // per-step AFTER payoff under the previous visibility outcome
        let weights: Vec<f64> = (0..n)
            .map(|w| {
                if w == view.target() || !mask[w] {
                    0.0
                } else {
                    (1.0 - view.beta()) * preference[w]
                        + view.beta() * (self.prev_visible[w] as u8 as f64) * social[w]
                }
            })
            .collect();
        let arcs: Vec<Option<CircArc>> = view
            .converter()
            .arcs(view.target(), view.positions())
            .iter()
            .map(|a| a.as_ref().map(CircArc::from_view_arc))
            .collect();
        let solution = mwis_circular_arcs(&arcs, &weights);
        let rec = mask_from_indices(n, &solution.nodes);
        self.prev_visible = view.visibility(&rec);
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::NearestRecommender;
    use crate::test_support::tiny_context;
    use poshgnn::evaluate_sequence;

    #[test]
    fn oracle_sets_are_independent_and_respect_mask() {
        let ctx = tiny_context(14, 6, 1);
        let mut oracle = MwisOracle::new();
        let recs = oracle.run_episode(&ctx);
        for (t, rec) in recs.iter().enumerate() {
            let chosen: Vec<usize> = (0..ctx.n).filter(|&w| rec[w]).collect();
            assert!(ctx.occlusion[t].is_independent_set(&chosen), "conflict at t={t}");
            for &w in &chosen {
                assert!(ctx.candidate_mask[t][w], "masked candidate selected at t={t}");
            }
        }
    }

    #[test]
    fn oracle_dominates_nearest_on_after_utility() {
        // The myopic optimum should comfortably beat a heuristic baseline.
        for seed in [2u64, 3, 4] {
            let ctx = tiny_context(16, 10, seed);
            let mut oracle = MwisOracle::new();
            let oracle_u = evaluate_sequence(&ctx, &oracle.run_episode(&ctx)).after_utility;
            let mut nearest = NearestRecommender::new(5);
            let nearest_u = evaluate_sequence(&ctx, &nearest.run_episode(&ctx)).after_utility;
            assert!(oracle_u >= nearest_u, "seed {seed}: oracle {oracle_u} < nearest {nearest_u}");
        }
    }

    #[test]
    fn oracle_is_deterministic() {
        let ctx = tiny_context(12, 5, 5);
        let a = MwisOracle::new().run_episode(&ctx);
        let b = MwisOracle::new().run_episode(&ctx);
        assert_eq!(a, b);
    }
}
