//! MvAGC-like grouping baseline [66]: graph-filter-based attributed graph
//! clustering, followed by same-group recommendations.
//!
//! The original MvAGC smooths node attributes with a low-pass graph filter
//! (`X̄ = (I − ½L)^k X`), samples anchors, and clusters the filtered
//! representation. We reproduce the pipeline at the scale of a conferencing
//! room: filter the participants' utility profiles over their social graph,
//! run seeded k-means on the smoothed features, then — as grouping-based
//! recommenders do — display the members of the target's own group at every
//! time step (spatial information is ignored, which is exactly the weakness
//! the paper's experiments expose).

use poshgnn::recommender::AfterRecommender;
use poshgnn::StepView;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use xr_datasets::Scenario;

/// Seeded k-means over row-vector features. Returns cluster assignments.
pub fn kmeans(features: &[Vec<f64>], k: usize, iterations: usize, seed: u64) -> Vec<usize> {
    assert!(k >= 1, "need at least one cluster");
    let n = features.len();
    assert!(n >= k, "need at least k points");
    let dim = features[0].len();
    let mut rng = StdRng::seed_from_u64(seed);

    // Forgy init on distinct points.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut centroids: Vec<Vec<f64>> = order[..k].iter().map(|&i| features[i].clone()).collect();
    let mut assignment = vec![0usize; n];

    for _ in 0..iterations {
        // assign
        let mut changed = false;
        for (i, f) in features.iter().enumerate() {
            let mut best = (f64::INFINITY, 0usize);
            for (c, centroid) in centroids.iter().enumerate() {
                let d: f64 = f.iter().zip(centroid).map(|(a, b)| (a - b) * (a - b)).sum();
                if d < best.0 {
                    best = (d, c);
                }
            }
            if assignment[i] != best.1 {
                assignment[i] = best.1;
                changed = true;
            }
        }
        // update
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, f) in features.iter().enumerate() {
            let c = assignment[i];
            counts[c] += 1;
            for (s, &x) in sums[c].iter_mut().zip(f) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in sums[c].iter_mut() {
                    *s /= counts[c] as f64;
                }
                centroids[c] = sums[c].clone();
            }
        }
        if !changed {
            break;
        }
    }
    assignment
}

/// Applies `order` rounds of the low-pass filter `X ← ½(X + D⁻¹ A X)` over a
/// weighted adjacency (rows with zero degree stay unchanged).
pub fn graph_filter(adjacency: &[Vec<f64>], mut features: Vec<Vec<f64>>, order: usize) -> Vec<Vec<f64>> {
    let n = adjacency.len();
    let dim = if n > 0 { features[0].len() } else { 0 };
    for _ in 0..order {
        let mut next = vec![vec![0.0; dim]; n];
        for v in 0..n {
            let deg: f64 = adjacency[v].iter().sum();
            if deg > 0.0 {
                for w in 0..n {
                    let a = adjacency[v][w];
                    if a > 0.0 {
                        for d in 0..dim {
                            next[v][d] += a / deg * features[w][d];
                        }
                    }
                }
            }
            for d in 0..dim {
                next[v][d] = 0.5 * (features[v][d] + next[v][d]);
            }
        }
        features = next;
    }
    features
}

/// The MvAGC-like grouping recommender.
pub struct MvAgcRecommender {
    clusters: Vec<usize>,
    name: String,
}

impl MvAgcRecommender {
    /// Fits cluster assignments for a scenario: filters each participant's
    /// `[preference-profile ‖ social-profile]` feature rows over the social
    /// graph and clusters them into `k_clusters` groups.
    pub fn fit(scenario: &Scenario, k_clusters: usize, filter_order: usize, seed: u64) -> Self {
        let n = scenario.n();
        let k = k_clusters.min(n);
        // weighted adjacency from social ties among participants
        let adjacency: Vec<Vec<f64>> =
            (0..n).map(|v| (0..n).map(|w| scenario.social[v][w]).collect()).collect();
        let features: Vec<Vec<f64>> = (0..n)
            .map(|v| {
                let mut f = scenario.preference[v].clone();
                f.extend_from_slice(&scenario.social[v]);
                f
            })
            .collect();
        let smoothed = graph_filter(&adjacency, features, filter_order);
        let clusters = kmeans(&smoothed, k, 50, seed);
        MvAgcRecommender { clusters, name: "MvAGC".to_string() }
    }

    /// Cluster assignment per participant.
    pub fn clusters(&self) -> &[usize] {
        &self.clusters
    }
}

impl AfterRecommender for MvAgcRecommender {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn begin_episode(&mut self, _view: &StepView<'_>) {}

    fn recommend_step(&mut self, view: &StepView<'_>) -> Vec<bool> {
        let own = self.clusters[view.target()];
        (0..view.n()).map(|w| w != view.target() && self.clusters[w] == own).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_scenario;
    use poshgnn::TargetContext;

    #[test]
    fn kmeans_separates_obvious_clusters() {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + 0.01 * i as f64, 0.0]);
        }
        for i in 0..10 {
            pts.push(vec![10.0 + 0.01 * i as f64, 10.0]);
        }
        let a = kmeans(&pts, 2, 100, 1);
        // all of the first ten share a label; all of the last ten share the other
        assert!(a[..10].iter().all(|&c| c == a[0]));
        assert!(a[10..].iter().all(|&c| c == a[10]));
        assert_ne!(a[0], a[10]);
    }

    #[test]
    fn kmeans_is_deterministic() {
        let pts: Vec<Vec<f64>> = (0..20).map(|i| vec![(i % 7) as f64, (i % 3) as f64]).collect();
        assert_eq!(kmeans(&pts, 3, 50, 5), kmeans(&pts, 3, 50, 5));
    }

    #[test]
    fn graph_filter_smooths_toward_neighbors() {
        // two connected nodes with opposite features converge
        let adj = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let feats = vec![vec![1.0], vec![-1.0]];
        let sm = graph_filter(&adj, feats, 4);
        assert!(sm[0][0].abs() < 0.2, "filtering failed: {}", sm[0][0]);
        assert!((sm[0][0] + sm[1][0]).abs() < 1e-12, "symmetry preserved");
    }

    #[test]
    fn graph_filter_fixed_point_is_constant_vector() {
        let adj = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let feats = vec![vec![3.0], vec![3.0]];
        let sm = graph_filter(&adj, feats, 5);
        assert!((sm[0][0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn recommender_displays_own_group_only() {
        let scenario = tiny_scenario(16, 4, 2);
        let mut rec = MvAgcRecommender::fit(&scenario, 4, 2, 3);
        let ctx = TargetContext::new(&scenario, 0, 0.5);
        let decisions = rec.run_episode(&ctx);
        let first = &decisions[0];
        // static over time
        assert!(decisions.iter().all(|d| d == first));
        // displayed set is exactly the target's cluster minus herself
        let own = rec.clusters()[0];
        #[allow(clippy::needless_range_loop)] // w is a user id, not a position
        for w in 0..16 {
            let expect = w != 0 && rec.clusters()[w] == own;
            assert_eq!(first[w], expect);
        }
    }

    #[test]
    fn all_participants_get_a_cluster() {
        let scenario = tiny_scenario(20, 3, 4);
        let rec = MvAgcRecommender::fit(&scenario, 5, 2, 1);
        assert_eq!(rec.clusters().len(), 20);
        assert!(rec.clusters().iter().all(|&c| c < 5));
    }
}
