//! # xr-baselines
//!
//! The seven comparison methods of the paper's evaluation (§V-A.2), all
//! implementing [`poshgnn::AfterRecommender`]:
//!
//! | Method | Kind | Module |
//! |--------|------|--------|
//! | Random | trivial | [`simple`] |
//! | Nearest | trivial, spatial | [`simple`] |
//! | MvAGC [66] | static grouping | [`mvagc`] |
//! | GraFrank [31] | static personalized ranking | [`grafrank`] |
//! | TGCN [73] | recurrent GNN, POSHGNN loss | [`rnn`] |
//! | DCRNN [72] | recurrent GNN, POSHGNN loss | [`rnn`] |
//! | COMURNet [37] | per-step RL, hard no-occlusion | [`comurnet`] |
//!
//! Plus [`oracle`] — a per-step weighted-MWIS reference (not in the paper)
//! used to report optimality gaps of the learned methods.

pub mod comurnet;
pub mod grafrank;
pub mod mvagc;
pub mod oracle;
pub mod rnn;
pub mod simple;

#[cfg(test)]
pub(crate) mod test_support;

pub use comurnet::{ComurNetConfig, ComurNetRecommender};
pub use grafrank::{GraFrankConfig, GraFrankRecommender};
pub use mvagc::MvAgcRecommender;
pub use oracle::MwisOracle;
pub use rnn::{RnnConfig, RnnKind, RnnRecommender};
pub use simple::{NearestRecommender, RandomRecommender};
