//! GraFrank-like personalized-ranking baseline [31].
//!
//! GraFrank learns user embeddings from multi-faceted features with GNN
//! aggregation and a cross-facet attention module, trained pairwise so that
//! friends rank above strangers, then recommends each user's top-k. We keep
//! that pipeline, scaled to a conferencing room:
//!
//! * two facets per user — a *social* facet (degree, mean tie strength) and a
//!   *preference* facet (mean incoming/outgoing preference);
//! * one GCN aggregation per facet over the social graph;
//! * per-node attention combining the facet embeddings;
//! * pairwise ranking loss `−ln σ(score(v,w⁺) − score(v,w⁻))` (BPR) over
//!   sampled friend/stranger pairs;
//! * static top-k recommendation by the learned score — like the original,
//!   it knows nothing about trajectories or occlusion, which is the failure
//!   mode the paper's tables demonstrate.

use poshgnn::recommender::{mask_from_indices, top_k_indices, AfterRecommender};
use poshgnn::StepView;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use xr_datasets::Scenario;
use xr_gnn::{Activation, GcnLayer};
use xr_tensor::{init, Adam, Matrix, Optimizer, ParamStore, Tape};

/// Configuration for the GraFrank-like model.
#[derive(Debug, Clone, Copy)]
pub struct GraFrankConfig {
    /// Embedding dimension.
    pub embed_dim: usize,
    /// Number of BPR training iterations (one sampled triplet batch each).
    pub iterations: usize,
    /// Triplets per batch.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Users recommended per step.
    pub top_k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraFrankConfig {
    fn default() -> Self {
        GraFrankConfig {
            embed_dim: 8,
            iterations: 150,
            batch_size: 16,
            learning_rate: 1e-2,
            top_k: 10,
            seed: 17,
        }
    }
}

/// The fitted GraFrank-like recommender.
pub struct GraFrankRecommender {
    /// Final pairwise scores `score[v][w]`.
    scores: Vec<Vec<f64>>,
    top_k: usize,
}

impl GraFrankRecommender {
    /// Fits embeddings on a scenario's social structure.
    pub fn fit(scenario: &Scenario, config: GraFrankConfig) -> Self {
        let n = scenario.n();
        let mut rng = StdRng::seed_from_u64(config.seed);

        // facet features
        let social_facet = Matrix::from_fn(n, 2, |v, c| {
            let ties: Vec<f64> = (0..n).map(|w| scenario.social[v][w]).filter(|&x| x > 0.0).collect();
            match c {
                0 => ties.len() as f64 / n as f64,
                _ => {
                    if ties.is_empty() {
                        0.0
                    } else {
                        ties.iter().sum::<f64>() / ties.len() as f64
                    }
                }
            }
        });
        let pref_facet = Matrix::from_fn(n, 2, |v, c| match c {
            0 => (0..n).map(|w| scenario.preference[w][v]).sum::<f64>() / n as f64,
            _ => (0..n).map(|w| scenario.preference[v][w]).sum::<f64>() / n as f64,
        });
        // binary social adjacency
        let adj = Matrix::from_fn(n, n, |v, w| if scenario.social[v][w] > 0.0 { 1.0 } else { 0.0 });

        // model parameters
        let mut store = ParamStore::new();
        let d = config.embed_dim;
        let gcn_social = GcnLayer::new(&mut store, "gf.social", 2, d, Activation::Relu, &mut rng);
        let gcn_pref = GcnLayer::new(&mut store, "gf.pref", 2, d, Activation::Relu, &mut rng);
        let q_social = store.register("gf.q_social", init::xavier_uniform(d, 1, &mut rng));
        let q_pref = store.register("gf.q_pref", init::xavier_uniform(d, 1, &mut rng));
        let mut adam = Adam::with_lr(config.learning_rate);

        // collect friend pairs for BPR sampling
        let friends: Vec<(usize, usize)> = (0..n)
            .flat_map(|v| (0..n).filter(move |&w| w != v).map(move |w| (v, w)))
            .filter(|&(v, w)| scenario.social[v][w] > 0.0)
            .collect();

        if !friends.is_empty() {
            for _ in 0..config.iterations {
                let tape = Tape::new();
                let sf = tape.constant(social_facet.clone());
                let pf = tape.constant(pref_facet.clone());
                let a = tape.constant(adj.clone());
                let e_social = gcn_social.forward(&tape, &store, sf, a);
                let e_pref = gcn_pref.forward(&tape, &store, pf, a);
                // cross-facet attention: per-node gate from facet saliences
                let qs = tape.param(&store, q_social);
                let qp = tape.param(&store, q_pref);
                let gate = (e_social.matmul(qs) - e_pref.matmul(qp)).sigmoid(); // N×1
                let tile = tape.constant(Matrix::ones(1, d));
                let alpha = gate.matmul(tile); // N×d
                let embed = alpha * e_social + alpha.one_minus() * e_pref;

                // BPR over a sampled batch
                let mut loss = None;
                for _ in 0..config.batch_size {
                    let &(v, pos) = &friends[rng.gen_range(0..friends.len())];
                    // rejection-sample a stranger
                    let mut neg = rng.gen_range(0..n);
                    for _ in 0..16 {
                        if neg != v && scenario.social[v][neg] == 0.0 {
                            break;
                        }
                        neg = rng.gen_range(0..n);
                    }
                    if neg == v || scenario.social[v][neg] > 0.0 {
                        continue;
                    }
                    let one_hot = |i: usize| {
                        tape.constant(Matrix::from_fn(1, n, |_, c| if c == i { 1.0 } else { 0.0 }))
                    };
                    let ev = one_hot(v).matmul(embed);
                    let ep = one_hot(pos).matmul(embed);
                    let en = one_hot(neg).matmul(embed);
                    let diff = (ev * (ep - en)).sum();
                    // −ln σ(diff)
                    let term = diff.sigmoid().ln().scale(-1.0);
                    loss = Some(match loss {
                        Some(acc) => acc + term,
                        None => term,
                    });
                }
                if let Some(l) = loss {
                    let l = l.scale(1.0 / config.batch_size as f64);
                    l.backward(&mut store);
                    store.clip_grad_norm(5.0);
                    adam.step(&mut store);
                }
            }
        }

        // final embeddings → dense score table
        let tape = Tape::new();
        let sf = tape.constant(social_facet);
        let pf = tape.constant(pref_facet);
        let a = tape.constant(adj);
        let e_social = gcn_social.forward(&tape, &store, sf, a);
        let e_pref = gcn_pref.forward(&tape, &store, pf, a);
        let qs = tape.param(&store, q_social);
        let qp = tape.param(&store, q_pref);
        let gate = (e_social.matmul(qs) - e_pref.matmul(qp)).sigmoid();
        let tile = tape.constant(Matrix::ones(1, d));
        let alpha = gate.matmul(tile);
        let embed = (alpha * e_social + alpha.one_minus() * e_pref).value();
        let score_m = embed.matmul(&embed.transpose());
        let scores = (0..n).map(|v| score_m.row(v).to_vec()).collect();

        GraFrankRecommender { scores, top_k: config.top_k }
    }

    /// The learned pairwise score table.
    pub fn scores(&self) -> &[Vec<f64>] {
        &self.scores
    }
}

impl AfterRecommender for GraFrankRecommender {
    fn name(&self) -> String {
        "GraFrank".to_string()
    }

    fn begin_episode(&mut self, _view: &StepView<'_>) {}

    fn recommend_step(&mut self, view: &StepView<'_>) -> Vec<bool> {
        let idx = top_k_indices(&self.scores[view.target()], view.target(), self.top_k);
        mask_from_indices(view.n(), &idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_scenario;
    use poshgnn::TargetContext;

    fn quick_config() -> GraFrankConfig {
        GraFrankConfig { iterations: 60, top_k: 5, ..Default::default() }
    }

    #[test]
    fn fit_produces_square_score_table() {
        let scenario = tiny_scenario(14, 3, 1);
        let model = GraFrankRecommender::fit(&scenario, quick_config());
        assert_eq!(model.scores().len(), 14);
        assert!(model.scores().iter().all(|row| row.len() == 14));
        assert!(model.scores().iter().all(|row| row.iter().all(|s| s.is_finite())));
    }

    #[test]
    fn friends_rank_above_strangers_on_average() {
        let scenario = tiny_scenario(24, 3, 2);
        let model = GraFrankRecommender::fit(&scenario, GraFrankConfig { iterations: 250, ..quick_config() });
        let n = scenario.n();
        let mut friend_scores = Vec::new();
        let mut stranger_scores = Vec::new();
        for v in 0..n {
            for w in 0..n {
                if v == w {
                    continue;
                }
                if scenario.social[v][w] > 0.0 {
                    friend_scores.push(model.scores()[v][w]);
                } else {
                    stranger_scores.push(model.scores()[v][w]);
                }
            }
        }
        let mf: f64 = friend_scores.iter().sum::<f64>() / friend_scores.len() as f64;
        let ms: f64 = stranger_scores.iter().sum::<f64>() / stranger_scores.len() as f64;
        assert!(mf > ms, "BPR failed: friends {mf} vs strangers {ms}");
    }

    #[test]
    fn recommendation_is_static_topk() {
        let scenario = tiny_scenario(16, 5, 3);
        let mut model = GraFrankRecommender::fit(&scenario, quick_config());
        let ctx = TargetContext::new(&scenario, 2, 0.5);
        let recs = model.run_episode(&ctx);
        assert!(recs.iter().all(|r| r == &recs[0]), "GraFrank must be time-invariant");
        assert_eq!(recs[0].iter().filter(|&&b| b).count(), 5);
        assert!(!recs[0][2], "never recommends the target");
    }

    #[test]
    fn fit_is_deterministic() {
        let scenario = tiny_scenario(12, 3, 4);
        let a = GraFrankRecommender::fit(&scenario, quick_config());
        let b = GraFrankRecommender::fit(&scenario, quick_config());
        assert_eq!(a.scores(), b.scores());
    }
}
