//! COMURNet-like baseline [37]: reinforcement-learning user recommendation
//! with view occlusion as a *hard* constraint.
//!
//! Chen et al. 2022 train an actor-critic network that assembles, for each
//! time step independently, a set of recommended users among which no two
//! occlude each other (an independent set in the occlusion graph), aiming to
//! maximize the target's preference utility. Two properties follow — and the
//! paper's experiments hinge on both:
//!
//! * **0% view occlusion** among its recommendations (the hard constraint);
//! * **impractical runtime**: every time step pays for fresh policy rollouts
//!   and gradient updates (the original needs ~22 s per step at N = 200).
//!
//! Our re-creation keeps that per-step episodic structure: at every time
//! step it runs `rollouts` sampled set-construction episodes, updating the
//! actor (policy gradient with a critic baseline) before extracting a greedy
//! set. It deliberately ignores the hybrid-participation mask and any notion
//! of temporal continuity — its social-presence utility collapses, exactly
//! as Table III reports.

use poshgnn::recommender::{mask_from_indices, AfterRecommender};
use poshgnn::StepView;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use xr_gnn::{Activation, Mlp};
use xr_tensor::{Adam, Matrix, Optimizer, ParamStore, Tape};

/// COMURNet hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct ComurNetConfig {
    /// Policy rollouts (with gradient updates) per time step.
    pub rollouts: usize,
    /// Maximum users added per episode.
    pub max_actions: usize,
    /// Softmax temperature during sampled rollouts.
    pub temperature: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ComurNetConfig {
    fn default() -> Self {
        ComurNetConfig { rollouts: 25, max_actions: 15, temperature: 1.0, learning_rate: 1e-2, seed: 31 }
    }
}

const CAND_FEATURES: usize = 5;

/// The COMURNet-like recommender.
pub struct ComurNetRecommender {
    config: ComurNetConfig,
    store: ParamStore,
    actor: Mlp,
    critic: Mlp,
    optimizer: Adam,
    rng: StdRng,
}

impl ComurNetRecommender {
    /// Builds the actor-critic networks.
    pub fn new(config: ComurNetConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let actor = Mlp::new(
            &mut store,
            "actor",
            &[CAND_FEATURES, 16, 1],
            &[Activation::Relu, Activation::None],
            &mut rng,
        );
        let critic = Mlp::new(
            &mut store,
            "critic",
            &[CAND_FEATURES, 16, 1],
            &[Activation::Relu, Activation::None],
            &mut rng,
        );
        let optimizer = Adam::with_lr(config.learning_rate);
        ComurNetRecommender {
            config,
            store,
            actor,
            critic,
            optimizer,
            rng: StdRng::seed_from_u64(config.seed),
        }
    }

    /// Per-candidate feature row at the view's tick.
    fn candidate_features(view: &StepView<'_>, w: usize) -> [f64; CAND_FEATURES] {
        let deg = view.occlusion().degree(w) as f64 / view.n() as f64;
        let dist = (view.distances()[w] / view.room_diagonal()).min(1.0);
        [view.preference()[w], view.social()[w], deg, dist, if view.mr_mask()[w] { 1.0 } else { 0.0 }]
    }

    /// Runs one set-construction episode. When `sample` is true the policy
    /// is sampled (and trained); otherwise actions are greedy and no
    /// gradients are computed. Returns the selected set.
    fn episode(&mut self, view: &StepView<'_>, sample: bool) -> Vec<usize> {
        let n = view.n();
        let mut feasible: Vec<usize> = (0..n).filter(|&w| w != view.target()).collect();
        let mut selected = Vec::new();

        if sample {
            // one tape accumulates log-probs of the sampled trajectory
            let tape = Tape::new();
            let mut logp_total = None;
            let mean_features = {
                let mut m = [0.0; CAND_FEATURES];
                for &w in &feasible {
                    let f = Self::candidate_features(view, w);
                    for (acc, x) in m.iter_mut().zip(f) {
                        *acc += x;
                    }
                }
                let k = feasible.len().max(1) as f64;
                Matrix::from_fn(1, CAND_FEATURES, |_, c| m[c] / k)
            };

            while !feasible.is_empty() && selected.len() < self.config.max_actions {
                let c = feasible.len();
                let feats = Matrix::from_fn(c, CAND_FEATURES, |r, col| {
                    Self::candidate_features(view, feasible[r])[col]
                });
                let x = tape.constant(feats);
                let logits = self.actor.forward(&tape, &self.store, x); // c × 1
                let z = logits.value();
                // stable softmax over the column
                let m = z.as_slice().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let exps: Vec<f64> =
                    z.as_slice().iter().map(|&v| ((v - m) / self.config.temperature).exp()).collect();
                let sum: f64 = exps.iter().sum();
                let mut draw = self.rng.gen::<f64>() * sum;
                let mut pick = c - 1;
                for (i, &e) in exps.iter().enumerate() {
                    if draw < e {
                        pick = i;
                        break;
                    }
                    draw -= e;
                }
                // log π(a) = z_a/τ − ln Σ exp(z/τ) (built on the tape)
                let one_hot = tape.constant(Matrix::from_fn(1, c, |_, i| if i == pick { 1.0 } else { 0.0 }));
                let scaled =
                    logits.scale(1.0 / self.config.temperature).add_scalar(-m / self.config.temperature);
                let za = one_hot.matmul(scaled).sum();
                let lse = scaled.exp().sum().ln();
                let logp = za - lse;
                logp_total = Some(match logp_total {
                    Some(acc) => acc + logp,
                    None => logp,
                });

                // apply the hard no-occlusion constraint
                let chosen = feasible[pick];
                selected.push(chosen);
                feasible.retain(|&w| w != chosen && !view.occlusion().has_edge(w, chosen));
            }

            let reward: f64 = selected.iter().map(|&w| view.preference()[w]).sum();
            let state = tape.constant(mean_features);
            let value = self.critic.forward(&tape, &self.store, state).sum();
            let advantage = reward - value.scalar();
            if let Some(logp) = logp_total {
                let actor_loss = logp.scale(-advantage);
                let target = tape.constant(Matrix::full(1, 1, reward));
                let diff = value - target;
                let critic_loss = (diff * diff).sum();
                let total = actor_loss + critic_loss;
                total.backward(&mut self.store);
                self.store.clip_grad_norm(5.0);
                self.optimizer.step(&mut self.store);
            }
        } else {
            while !feasible.is_empty() && selected.len() < self.config.max_actions {
                let tape = Tape::new();
                let c = feasible.len();
                let feats = Matrix::from_fn(c, CAND_FEATURES, |r, col| {
                    Self::candidate_features(view, feasible[r])[col]
                });
                let x = tape.constant(feats);
                let z = self.actor.forward(&tape, &self.store, x).value();
                let pick = (0..c)
                    .max_by(|&a, &b| z[(a, 0)].partial_cmp(&z[(b, 0)]).unwrap())
                    .expect("non-empty feasible set");
                let chosen = feasible[pick];
                selected.push(chosen);
                feasible.retain(|&w| w != chosen && !view.occlusion().has_edge(w, chosen));
            }
        }
        selected
    }
}

impl AfterRecommender for ComurNetRecommender {
    fn name(&self) -> String {
        "COMURNet".to_string()
    }

    fn begin_episode(&mut self, _view: &StepView<'_>) {
        self.rng = StdRng::seed_from_u64(self.config.seed);
    }

    fn recommend_step(&mut self, view: &StepView<'_>) -> Vec<bool> {
        // per-step episodic training — the source of COMURNet's runtime cost
        for _ in 0..self.config.rollouts {
            self.episode(view, true);
        }
        let selected = self.episode(view, false);
        mask_from_indices(view.n(), &selected)
    }

    fn latency_steps(&self) -> usize {
        // Fig. 2b: COMURNet's per-step optimization cannot meet the
        // real-time budget; its decisions land steps late (the paper draws
        // the t = 0 result arriving after t = 2).
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_context;

    fn quick() -> ComurNetConfig {
        ComurNetConfig { rollouts: 5, max_actions: 6, ..Default::default() }
    }

    #[test]
    fn recommendations_form_independent_sets() {
        let ctx = tiny_context(14, 4, 1);
        let mut model = ComurNetRecommender::new(quick());
        let recs = model.run_episode(&ctx);
        for (t, rec) in recs.iter().enumerate() {
            let chosen: Vec<usize> = (0..ctx.n).filter(|&w| rec[w]).collect();
            assert!(ctx.occlusion[t].is_independent_set(&chosen), "occlusion constraint violated at t={t}");
            assert!(!rec[ctx.target]);
        }
    }

    #[test]
    fn respects_max_actions() {
        let ctx = tiny_context(16, 2, 2);
        let mut model =
            ComurNetRecommender::new(ComurNetConfig { max_actions: 3, rollouts: 2, ..Default::default() });
        let recs = model.run_episode(&ctx);
        assert!(recs.iter().all(|r| r.iter().filter(|&&b| b).count() <= 3));
    }

    #[test]
    fn fresh_models_are_deterministic() {
        // Weights continue training across episodes (RL), so determinism is
        // checked across two identically seeded fresh models.
        let ctx = tiny_context(12, 2, 3);
        let a = ComurNetRecommender::new(quick()).run_episode(&ctx);
        let b = ComurNetRecommender::new(quick()).run_episode(&ctx);
        assert_eq!(a, b);
    }

    #[test]
    fn rollouts_do_not_corrupt_parameters() {
        let ctx = tiny_context(10, 3, 4);
        let mut model = ComurNetRecommender::new(quick());
        model.run_episode(&ctx);
        assert!(model.store.export_flat().iter().all(|x| x.is_finite()));
    }
}
