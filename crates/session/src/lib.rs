//! # xr-session
//!
//! The streaming scene-session layer. Where the original pipeline
//! precomputed every target user's full episode up front (`TargetContext`
//! building N independent O(N²·T) passes over the same room — O(N³·T)
//! total), this crate maintains the scene **once per tick** and hands each
//! target a cheap view borrowing that shared state:
//!
//! * [`SceneEngine`] ingests one [`Frame`] (all positions at tick `t`) at a
//!   time and incrementally appends a [`SceneState`]: the symmetric pairwise
//!   distance matrix (each unordered pair measured once and mirrored —
//!   bit-exact, since IEEE negation is exact), the per-viewer occlusion
//!   structure, and the MR co-location candidate masks derived from it.
//! * [`TargetView`] borrows one `(viewer, tick)` slice of that shared state;
//!   it is what per-target code (compat wrappers, recommenders) reads.
//!
//! Per-viewer occlusion graphs are built with an angular sweep over arcs
//! sorted by center instead of the all-pairs intersection loop, so a tick
//! costs O(N² + V·(N log N + E)) shared work instead of V·O(N²) — the
//! O(N³·T) → O(N²·T) drop for a whole-scene session (V = N viewers). Every
//! candidate pair still goes through the *exact* [`xr_graph::ViewArc`]
//! intersection predicate and edges are inserted in the same lexicographic
//! order as the brute-force build, so the resulting graphs — and everything
//! derived from them — are structurally identical, not just equivalent.

pub mod engine;
pub mod prune;
pub mod serve32;

pub use engine::{Frame, SceneConfig, SceneEngine, SceneState, TargetView};
pub use prune::{CandidateSet, PruneIndex};
pub use serve32::{
    arc_f32, candidate_mask_f32, candidate_mask_f32_shortlist, distance_row_f32, occlusion_graph_f32,
    shortlist_f32, ViewArcF32,
};

/// Whether context construction should be backed by the streaming
/// [`SceneEngine`] (the default) or the legacy per-target precompute path.
/// Controlled by `AFTER_STREAMING` (`0` selects the legacy path); both paths
/// are pinned bit-identical by the `xr_check` differential subject and the
/// golden-replay CI matrix.
pub fn streaming_enabled() -> bool {
    std::env::var("AFTER_STREAMING").map(|v| v != "0").unwrap_or(true)
}

/// Whether scene state is maintained *incrementally* across ticks (the
/// default): delta distance rows for moved users, warm center-sorted sweep
/// candidates per viewer, and MIA edge-deltas downstream. Controlled by
/// `AFTER_INCREMENTAL` (`0` selects the from-scratch rebuild, kept as the
/// differential oracle); both paths are pinned bit-identical by the
/// `xr_check` `IncrementalVsFromScratch` subject and the golden-replay CI
/// matrix. [`SceneEngine::set_incremental`] overrides per engine.
pub fn incremental_enabled() -> bool {
    std::env::var("AFTER_INCREMENTAL").map(|v| v != "0").unwrap_or(true)
}

/// The crowd-scale shortlist size from `AFTER_PRUNE_K`: `K > 0` makes every
/// [`SceneEngine`] build per-viewer K-candidate shortlists (see
/// [`prune::CandidateSet`]) instead of dense full-scene state; `0` — the
/// default, and the differential oracle — keeps the exact full-N path.
/// Member-level quantities are bitwise equal to the full path's, so any
/// `K ≥ N−1` reproduces it bit for bit (pinned by the `xr_check`
/// `PrunedVsFull` subject). Unset or unparsable values fall back to `0`.
/// [`SceneEngine::set_prune_k`] overrides per engine.
pub fn prune_k_from_env() -> usize {
    std::env::var("AFTER_PRUNE_K").ok().and_then(|s| s.trim().parse::<usize>().ok()).unwrap_or(0)
}
