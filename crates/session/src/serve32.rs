//! f32 scene kernels for the serving path: distances, view arcs, occlusion
//! graphs, and candidate masks in single precision.
//!
//! The streaming [`crate::SceneEngine`] stays f64 — it feeds the bit-exact
//! train/replay pipeline. Serving re-derives the per-target scene quantities
//! in f32 so a recommend step never touches f64: the distance row is the
//! data-parallel hot kernel (wide-lane SIMD with a bit-identical scalar
//! reference — sub/mul/add/sqrt are all correctly rounded, so the lanes match
//! the scalar chain exactly), while arc construction and the occlusion /
//! candidate-mask logic mirror the f64 semantics
//! ([`xr_graph::OcclusionConverter::arc`] and the engine's shared-state mask)
//! with f32 trigonometry.

use xr_graph::UGraph;
use xr_tensor::serve32::{simd_enabled, LANES};

/// Euclidean distances from `(ox, oy)` to each point in `xs`/`ys`
/// (structure-of-arrays). Runtime SIMD dispatch; `AFTER_NO_SIMD=1` forces
/// the scalar path. Both variants are bit-identical.
pub fn distance_row_f32(ox: f32, oy: f32, xs: &[f32], ys: &[f32], out: &mut [f32]) {
    debug_assert_eq!(xs.len(), ys.len());
    debug_assert_eq!(xs.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() && xs.len() >= LANES {
        // SAFETY: simd_enabled() verified AVX2 at runtime.
        unsafe { distance_row_f32_avx2(ox, oy, xs, ys, out) };
        return;
    }
    distance_row_f32_scalar(ox, oy, xs, ys, out);
}

/// Scalar reference for the distance row.
pub fn distance_row_f32_scalar(ox: f32, oy: f32, xs: &[f32], ys: &[f32], out: &mut [f32]) {
    for i in 0..xs.len() {
        let dx = xs[i] - ox;
        let dy = ys[i] - oy;
        out[i] = (dx * dx + dy * dy).sqrt();
    }
}

/// AVX2 distance row: 8 agents per lane (`_mm256_sqrt_ps` is IEEE-exact, so
/// this matches the scalar reference bitwise).
///
/// # Safety
///
/// Caller must ensure AVX2 is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn distance_row_f32_avx2(ox: f32, oy: f32, xs: &[f32], ys: &[f32], out: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = xs.len();
    let n8 = n - n % LANES;
    let oxv = _mm256_set1_ps(ox);
    let oyv = _mm256_set1_ps(oy);
    let mut i = 0;
    while i < n8 {
        let dx = _mm256_sub_ps(_mm256_loadu_ps(xs.as_ptr().add(i)), oxv);
        let dy = _mm256_sub_ps(_mm256_loadu_ps(ys.as_ptr().add(i)), oyv);
        let d = _mm256_sqrt_ps(_mm256_add_ps(_mm256_mul_ps(dx, dx), _mm256_mul_ps(dy, dy)));
        _mm256_storeu_ps(out.as_mut_ptr().add(i), d);
        i += LANES;
    }
    for j in n8..n {
        let dx = xs[j] - ox;
        let dy = ys[j] - oy;
        out[j] = (dx * dx + dy * dy).sqrt();
    }
}

/// f32 view arc: angular position, half-width, and distance of one user in
/// the target's 360° view (f32 port of [`xr_graph::ViewArc`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViewArcF32 {
    /// Angular position of the user's center, in `[0, 2π)`.
    pub center: f32,
    /// Angular half-width of the occupied arc, in `[0, π]`.
    pub half_width: f32,
    /// Euclidean distance from the target.
    pub distance: f32,
}

impl ViewArcF32 {
    /// `true` when two arcs overlap on the circle.
    pub fn intersects(&self, other: &ViewArcF32) -> bool {
        angle_diff_f32(self.center, other.center) < self.half_width + other.half_width
    }
}

/// Circular distance between two angles, in `[0, π]`.
pub fn angle_diff_f32(a: f32, b: f32) -> f32 {
    let tau = std::f32::consts::TAU;
    let mut wa = a % tau;
    if wa < 0.0 {
        wa += tau;
    }
    let mut wb = b % tau;
    if wb < 0.0 {
        wb += tau;
    }
    let d = (wa - wb).abs();
    d.min(tau - d)
}

/// The view arc of the user at `(wx, wy)` as seen from `(tx, ty)`, or `None`
/// when the two coincide — the same `d < 1e-9` cutoff and `d ≤ r → π`
/// saturation as the f64 converter, in f32 arithmetic.
pub fn arc_f32(tx: f32, ty: f32, wx: f32, wy: f32, body_radius: f32) -> Option<ViewArcF32> {
    let rx = wx - tx;
    let ry = wy - ty;
    let d = (rx * rx + ry * ry).sqrt();
    if d < 1e-9 {
        return None;
    }
    let half_width = if d <= body_radius { std::f32::consts::PI } else { (body_radius / d).asin() };
    let mut center = ry.atan2(rx);
    if center < 0.0 {
        center += std::f32::consts::TAU;
    }
    Some(ViewArcF32 { center, half_width, distance: d })
}

/// The static occlusion graph for `target` from f32 positions: the target is
/// isolated and two users are adjacent iff their arcs intersect. Brute-force
/// over pairs — serving builds this for a single target per tick, so the
/// O(n²) loop is cheap at serving sizes and keeps the f32 graph free of the
/// sweep's f64-tuned margin.
pub fn occlusion_graph_f32(target: usize, xs: &[f32], ys: &[f32], body_radius: f32) -> UGraph {
    let n = xs.len();
    let arcs: Vec<Option<ViewArcF32>> = (0..n)
        .map(|w| if w == target { None } else { arc_f32(xs[target], ys[target], xs[w], ys[w], body_radius) })
        .collect();
    let mut g = UGraph::new(n);
    for i in 0..n {
        let Some(ai) = arcs[i] else { continue };
        for (j, aj) in arcs.iter().enumerate().skip(i + 1) {
            let Some(aj) = aj else { continue };
            if ai.intersects(aj) {
                g.add_edge(i, j);
            }
        }
    }
    g
}

/// f32 candidate mask `m_t` for one viewer — same semantics as the engine's
/// shared-state mask: the viewer never recommends herself; for an MR viewer a
/// candidate is pruned when coincident (`d < 1e-9`) or when a physically
/// present MR participant stands strictly nearer in an overlapping arc (read
/// off the occlusion graph).
pub fn candidate_mask_f32(
    viewer: usize,
    viewer_is_mr: bool,
    distances: &[f32],
    occlusion: &UGraph,
    mr_mask: &[bool],
) -> Vec<bool> {
    let n = distances.len();
    let mut mask = vec![true; n];
    mask[viewer] = false;
    if !viewer_is_mr {
        return mask;
    }
    #[allow(clippy::needless_range_loop)] // w is a user id, not a position
    for w in 0..n {
        if w == viewer {
            continue;
        }
        if distances[w] < 1e-9 {
            mask[w] = false;
            continue;
        }
        let blocked =
            occlusion.neighbors(w).iter().any(|&u| u != viewer && mr_mask[u] && distances[u] < distances[w]);
        if blocked {
            mask[w] = false;
        }
    }
    mask
}

/// The K-nearest shortlist of one viewer from an f32 distance row: member
/// ids in ascending order, selected by `(distance, id)` — the f32 analogue
/// of the engine's [`crate::CandidateSet`] membership rule, for the
/// degraded serving levels that re-derive scene quantities per tick.
pub fn shortlist_f32(viewer: usize, distances: &[f32], k: usize) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..distances.len() as u32).filter(|&w| w as usize != viewer).collect();
    if ids.len() > k {
        ids.select_nth_unstable_by(k, |&a, &b| {
            distances[a as usize].total_cmp(&distances[b as usize]).then(a.cmp(&b))
        });
        ids.truncate(k);
    }
    ids.sort_unstable();
    ids
}

/// f32 candidate-mask bits for the members of a shortlist (parallel to
/// `ids`): the [`candidate_mask_f32`] pruning rule restricted to shortlist
/// pairs — O(K²) arc tests instead of the O(N²) full graph. The
/// `(distance, id)` membership rule gives the same nearer-occluder closure
/// as the f64 path, so member bits agree with the full-graph mask up to f32
/// boundary rounding.
#[allow(clippy::too_many_arguments)]
pub fn candidate_mask_f32_shortlist(
    viewer: usize,
    viewer_is_mr: bool,
    ids: &[u32],
    distances: &[f32],
    xs: &[f32],
    ys: &[f32],
    body_radius: f32,
    mr_mask: &[bool],
) -> Vec<bool> {
    let len = ids.len();
    let mut mask = vec![true; len];
    if !viewer_is_mr {
        return mask;
    }
    let arcs: Vec<Option<ViewArcF32>> = ids
        .iter()
        .map(|&w| arc_f32(xs[viewer], ys[viewer], xs[w as usize], ys[w as usize], body_radius))
        .collect();
    for idx in 0..len {
        if distances[ids[idx] as usize] < 1e-9 {
            mask[idx] = false;
        }
    }
    for a in 0..len {
        let Some(aa) = arcs[a] else { continue };
        for b in (a + 1)..len {
            let Some(ab) = arcs[b] else { continue };
            if !aa.intersects(&ab) {
                continue;
            }
            let (da, db) = (distances[ids[a] as usize], distances[ids[b] as usize]);
            if mr_mask[ids[a] as usize] && da < db {
                mask[b] = false;
            }
            if mr_mask[ids[b] as usize] && db < da {
                mask[a] = false;
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use xr_graph::geom::Point2;
    use xr_graph::OcclusionConverter;

    #[test]
    fn distance_row_simd_matches_scalar_bitwise_including_tails() {
        let mut rng = StdRng::seed_from_u64(31);
        for &n in &[1usize, 7, 8, 9, 16, 29] {
            let xs: Vec<f32> = (0..n).map(|_| rng.gen_range(-6.0..6.0) as f32).collect();
            let ys: Vec<f32> = (0..n).map(|_| rng.gen_range(-6.0..6.0) as f32).collect();
            let (ox, oy) = (rng.gen_range(-6.0..6.0) as f32, rng.gen_range(-6.0..6.0) as f32);
            let mut scalar = vec![0.0f32; n];
            let mut wide = vec![0.0f32; n];
            distance_row_f32_scalar(ox, oy, &xs, &ys, &mut scalar);
            #[cfg(target_arch = "x86_64")]
            if is_x86_feature_detected!("avx2") {
                unsafe { distance_row_f32_avx2(ox, oy, &xs, &ys, &mut wide) };
                for i in 0..n {
                    assert_eq!(scalar[i].to_bits(), wide[i].to_bits(), "n={n} lane {i}");
                }
            }
            distance_row_f32(ox, oy, &xs, &ys, &mut wide);
            for i in 0..n {
                assert_eq!(scalar[i].to_bits(), wide[i].to_bits(), "dispatch n={n} lane {i}");
            }
            assert!(scalar.iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }

    #[test]
    fn arc_f32_matches_f64_converter_semantics() {
        let conv = OcclusionConverter::new(0.25);
        // regular arc
        let a64 = conv.arc(Point2::zero(), Point2::new(1.0, 0.5)).unwrap();
        let a32 = arc_f32(0.0, 0.0, 1.0, 0.5, 0.25).unwrap();
        assert!((a64.center - a32.center as f64).abs() < 1e-6);
        assert!((a64.half_width - a32.half_width as f64).abs() < 1e-6);
        assert!((a64.distance - a32.distance as f64).abs() < 1e-6);
        // coincident → None in both
        assert!(conv.arc(Point2::zero(), Point2::zero()).is_none());
        assert!(arc_f32(0.0, 0.0, 0.0, 0.0, 0.25).is_none());
        // inside body radius → π half-width in both
        let b32 = arc_f32(0.0, 0.0, 0.1, 0.0, 0.25).unwrap();
        assert_eq!(b32.half_width, std::f32::consts::PI);
    }

    #[test]
    fn arcs_wraparound_intersection() {
        let a = ViewArcF32 { center: 0.05, half_width: 0.2, distance: 1.0 };
        let b = ViewArcF32 { center: std::f32::consts::TAU - 0.05, half_width: 0.2, distance: 1.0 };
        assert!(a.intersects(&b));
        let c = ViewArcF32 { center: std::f32::consts::PI, half_width: 0.2, distance: 1.0 };
        assert!(!a.intersects(&c));
    }

    #[test]
    fn occlusion_graph_f32_matches_f64_on_random_scenes() {
        let mut rng = StdRng::seed_from_u64(32);
        let conv = OcclusionConverter::new(0.2);
        let mut mismatched_scenes = 0usize;
        for _ in 0..50 {
            let n = rng.gen_range(4..12);
            let pos: Vec<Point2> =
                (0..n).map(|_| Point2::new(rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0))).collect();
            let g64 = conv.static_graph(0, &pos);
            let xs: Vec<f32> = pos.iter().map(|p| p.x as f32).collect();
            let ys: Vec<f32> = pos.iter().map(|p| p.y as f32).collect();
            let g32 = occlusion_graph_f32(0, &xs, &ys, 0.2);
            // f32 rounding can flip pairs sitting exactly on the intersection
            // boundary; random scenes essentially never do, but tolerate a
            // rare single-edge flip rather than a brittle exact assert.
            let e64: std::collections::BTreeSet<_> = g64.edges().collect();
            let e32: std::collections::BTreeSet<_> = g32.edges().collect();
            let diff = e64.symmetric_difference(&e32).count();
            if diff > 0 {
                mismatched_scenes += 1;
                assert!(diff <= 1, "f32 occlusion graph diverged by {diff} edges");
            }
        }
        assert!(mismatched_scenes <= 2, "too many boundary flips: {mismatched_scenes}");
    }

    #[test]
    fn candidate_mask_f32_matches_f64_semantics() {
        // viewer 0 is MR; user 2 hides behind MR user 1; user 3 is clear
        let pos =
            [Point2::new(0.0, 0.0), Point2::new(1.0, 0.0), Point2::new(2.0, 0.05), Point2::new(0.0, 3.0)];
        let xs: Vec<f32> = pos.iter().map(|p| p.x as f32).collect();
        let ys: Vec<f32> = pos.iter().map(|p| p.y as f32).collect();
        let g = occlusion_graph_f32(0, &xs, &ys, 0.25);
        let mut d = vec![0.0f32; 4];
        distance_row_f32(xs[0], ys[0], &xs, &ys, &mut d);
        let mr = [true, true, false, false];
        let mask = candidate_mask_f32(0, true, &d, &g, &mr);
        assert!(!mask[0], "viewer excluded");
        assert!(mask[1], "front MR user is a candidate");
        assert!(!mask[2], "user behind a nearer MR participant is pruned");
        assert!(mask[3], "clear user is a candidate");
        // non-MR viewer keeps everyone but herself
        let mask_vr = candidate_mask_f32(0, false, &d, &g, &mr);
        assert_eq!(mask_vr, vec![false, true, true, true]);
    }

    #[test]
    fn shortlist_f32_selects_the_k_nearest_by_distance_then_id() {
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..20 {
            let n = rng.gen_range(3..40);
            let d: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0..9.0) as f32).collect();
            let viewer = rng.gen_range(0..n);
            for k in [1usize, 3, n - 1, n + 2] {
                let got = shortlist_f32(viewer, &d, k);
                let mut want: Vec<u32> = (0..n as u32).filter(|&w| w as usize != viewer).collect();
                want.sort_by(|&a, &b| d[a as usize].total_cmp(&d[b as usize]).then(a.cmp(&b)));
                want.truncate(k);
                want.sort_unstable();
                assert_eq!(got, want, "n={n} k={k} viewer={viewer}");
            }
        }
    }

    #[test]
    fn shortlist_mask_matches_the_full_f32_mask_on_members() {
        // complete shortlist (k = n−1): restricted O(K²) mask bits must
        // equal the full occlusion-graph mask on every member
        let mut rng = StdRng::seed_from_u64(72);
        for _ in 0..20 {
            let n = rng.gen_range(4..14);
            let xs: Vec<f32> = (0..n).map(|_| rng.gen_range(-3.0..3.0) as f32).collect();
            let ys: Vec<f32> = (0..n).map(|_| rng.gen_range(-3.0..3.0) as f32).collect();
            let mr: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
            let viewer = 0usize;
            let g = occlusion_graph_f32(viewer, &xs, &ys, 0.25);
            let mut d = vec![0.0f32; n];
            distance_row_f32(xs[viewer], ys[viewer], &xs, &ys, &mut d);
            let full = candidate_mask_f32(viewer, true, &d, &g, &mr);
            let ids = shortlist_f32(viewer, &d, n - 1);
            let restricted = candidate_mask_f32_shortlist(viewer, true, &ids, &d, &xs, &ys, 0.25, &mr);
            for (idx, &w) in ids.iter().enumerate() {
                assert_eq!(restricted[idx], full[w as usize], "member {w}");
            }
        }
    }
}
