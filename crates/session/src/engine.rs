//! The frame-driven scene engine and its shared per-tick state.
//!
//! One [`SceneEngine::push`] call advances the whole scene by one tick:
//! every quantity that is common to all target users — pairwise distances,
//! the occlusion/visibility structure, the MR co-location candidate masks —
//! is computed once and stored in a [`SceneState`]; per-target code borrows
//! it through [`TargetView`] instead of recomputing it.
//!
//! ## Bit-identicality contract
//!
//! The engine is an *optimization layer*, not an approximation:
//!
//! * Distances: `d(i,j)` is measured once per unordered pair with
//!   [`Point2::distance`] and mirrored. `(p_i − p_j)` and `(p_j − p_i)` are
//!   exact IEEE negations, so squares, sum, and square root agree bit for
//!   bit with the legacy per-target row `positions[v].distance(positions[w])`.
//! * Occlusion: per-viewer arcs come from the same
//!   [`OcclusionConverter::arcs`] call as the brute-force build; the angular
//!   sweep only *prunes pairs that cannot intersect* (forward gap beyond
//!   `half_width + max_half_width` plus a safety margin) and every surviving
//!   pair is decided by the exact [`ViewArc::intersects`] predicate. Edges
//!   are inserted in sorted `(min, max)` order — the same order the `i < j`
//!   brute-force loop produces — so the resulting [`UGraph`]s compare equal
//!   including adjacency-list order.
//! * Candidate masks re-derive the legacy `physical_candidate_mask`
//!   semantics from the shared state: a candidate `w` of an MR viewer is
//!   pruned iff it has no arc (coincident, `d < 1e-9`) or some co-located MR
//!   participant's arc overlaps `w`'s while standing strictly nearer — and
//!   "overlaps" is exactly occlusion-graph adjacency, so no arc intersection
//!   is ever re-tested.
//!
//! ## Incremental O(Δ) maintenance
//!
//! By default the engine maintains the shared state *incrementally* across
//! ticks (`AFTER_INCREMENTAL=0` restores the from-scratch build as the
//! differential oracle; both paths are pinned bitwise-identical by the
//! `xr_check` `IncrementalVsFromScratch` subject):
//!
//! * Frames are first *snapped*: a user whose raw position moved at most
//!   [`SceneEngine::snap_epsilon`] from the previous effective position
//!   keeps the previous position exactly. Snapping is shared ingest
//!   semantics — the oracle path applies it too — so equality holds at any
//!   epsilon, and the default `0.0` makes it a numeric no-op.
//! * Distance rows are delta-updated: the previous matrix is copied and only
//!   rows of *moved* users (effective position changed bits) are
//!   re-measured, each unordered pair in `(min, max)` order so the
//!   measurement convention — and therefore every bit — matches the
//!   from-scratch mirrored build.
//! * Each viewer's center-sorted sweep candidate array stays warm across
//!   ticks. A stationary viewer re-derives arcs only for moved users, merges
//!   them into the sorted order, keeps every previous edge whose endpoints
//!   both stand still (identical arcs ⇒ the exact predicate verdict cannot
//!   change), and re-decides only pairs involving a moved arc with a
//!   bidirectional bounded scan (`reach = hw + max_hw + SWEEP_MARGIN`, the
//!   same conservative slack as the full sweep; when `2·reach ≥ τ` the arc
//!   is tested against everyone). Every surviving pair still goes through
//!   [`ViewArc::intersects`]. A viewer that moved at all — walked, was
//!   snapped onto a new anchor, or teleported — falls back to a full
//!   rebuild, which also re-warms its cache.
//! * Unchanged structure is carried forward by pointer: [`SceneState`]
//!   holds `Arc<UGraph>` per viewer, so a tick with *zero* movers clones the
//!   whole previous state in O(viewers + n²-memcpy), and a stationary
//!   viewer whose merged edge list equals the previous tick's reuses the
//!   previous graph outright (an equal sorted-unique edge list constructs
//!   an `Eq` graph, adjacency order included, so reuse is bitwise-invisible).
//! * Candidate masks are *patched*, not recomputed: a stationary viewer
//!   re-derives bits only for `affected` users (movers plus endpoints of
//!   every added or dropped edge); everyone else's bit inputs — own
//!   distance, neighbor set, neighbor distances — are unchanged, so the
//!   previous bit is carried verbatim.
//! * A low-coherence tick (more than half the users moved) skips the delta
//!   machinery and takes the from-scratch build: it would re-decide nearly
//!   everything anyway. The crossover is a pure cost heuristic — both
//!   builds are bit-identical, so it is invisible to readers and oracles.
//!
//! ## Crowd-scale pruned mode (`AFTER_PRUNE_K`)
//!
//! With `AFTER_PRUNE_K=K > 0` (or [`SceneEngine::set_prune_k`]) the engine
//! stops materializing dense per-tick structure entirely — no `n×n`
//! distance matrix, no `n`-node occlusion graphs, no `n`-length masks — and
//! instead builds one [`CandidateSet`] shortlist per registered viewer from
//! a per-tick two-level [`PruneIndex`]: the K nearest other users by
//! `(distance, id)`, with exact member distances, restricted occlusion
//! edges, and mask bits. Per-viewer work drops from O(N log N + pairs) to
//! O(K log K + restricted pairs), which is what admits venue-scale scenes
//! (N=10k–100k). The contract (see [`crate::prune`]): member-level
//! quantities are *bitwise equal* to the full path's — distances by the
//! IEEE argument above, edges because each shortlist pair is decided by the
//! same exact predicate, mask bits by the nearer-occluder closure of the
//! `(distance, id)` selection order — so `K ≥ N−1` reproduces the full path
//! bit for bit (pinned by the `xr_check` `PrunedVsFull` subject), and
//! `AFTER_PRUNE_K=0` (the default) preserves the exact full-N behavior as
//! the differential oracle. Pruned states compose with the incremental
//! path: on a coherent tick a stationary viewer whose shortlist membership
//! and members all stood still carries its previous `Arc<CandidateSet>`
//! forward by pointer; [`SceneState::into_parts`] densifies a pruned state
//! on demand so batch consumers (context assembly, replay) stay
//! payload-agnostic.

use std::sync::Arc;

use crate::prune::{CandidateSet, PruneIndex};

use xr_datasets::Scenario;
use xr_graph::geom::Point2;
use xr_graph::{OcclusionConverter, UGraph, ViewArc};

/// Safety margin on the sweep's pruning bound: the forward gap and
/// `angle_diff` compute the same circular distance with different rounding,
/// so pairs within a few ULPs of the bound must still reach the exact
/// predicate. 1e-9 rad is ~10⁶ ULPs at this scale — vastly conservative and
/// still pruning everything that matters.
const SWEEP_MARGIN: f64 = 1e-9;

/// All participant positions at one tick — the unit of ingestion for
/// [`SceneEngine::push`].
#[derive(Debug, Clone)]
pub struct Frame {
    /// Position of every participant (index = user id).
    pub positions: Vec<Point2>,
}

impl Frame {
    /// Wraps a position vector as a frame.
    pub fn new(positions: Vec<Point2>) -> Self {
        Frame { positions }
    }
}

/// Scene-wide constants the engine needs besides the frames themselves.
#[derive(Debug, Clone)]
pub struct SceneConfig {
    /// Avatar body radius (meters) for the occlusion converter.
    pub body_radius: f64,
    /// Which participants join through MR (physically present).
    pub mr_mask: Vec<bool>,
    /// Room diagonal, used by consumers to normalize distances.
    pub room_diagonal: f64,
}

impl SceneConfig {
    /// Extracts the scene constants from a sampled scenario.
    pub fn from_scenario(scenario: &Scenario) -> Self {
        SceneConfig {
            body_radius: scenario.body_radius,
            mr_mask: scenario.mr_mask(),
            room_diagonal: (scenario.room.width().powi(2) + scenario.room.height().powi(2)).sqrt(),
        }
    }
}

/// The per-tick structure a [`SceneState`] holds: dense full-scene state,
/// or per-viewer K-candidate shortlists when pruning is on.
#[derive(Debug, Clone)]
enum StatePayload {
    /// The full-N path: dense distance matrix plus per-slot occlusion
    /// graphs and masks.
    Full {
        /// Flat row-major `n×n` symmetric distance matrix.
        distances: Vec<f64>,
        /// Static occlusion graph per *registered viewer* (slot order).
        /// `Arc`-shared so the incremental path can carry an unchanged
        /// graph into the next tick's state for a pointer bump instead of
        /// an O(n + m) rebuild-or-clone; readers only ever see `&UGraph`.
        occlusion: Vec<Arc<UGraph>>,
        /// Hybrid-participation candidate mask per registered viewer.
        candidate_mask: Vec<Vec<bool>>,
    },
    /// The crowd-scale path (`AFTER_PRUNE_K > 0`): one shortlist per
    /// registered viewer, nothing dense. `Arc`-shared so the incremental
    /// path can carry an unchanged shortlist forward by pointer.
    Pruned {
        /// The effective shortlist size (already clamped to `n − 1`).
        k: usize,
        /// Per-slot candidate shortlists.
        shortlists: Vec<Arc<CandidateSet>>,
    },
}

/// Shared scene state for one tick: everything per-target code consults,
/// computed once for the whole scene. Owned by the [`SceneEngine`]; borrowed
/// read-only through [`TargetView`].
#[derive(Debug, Clone)]
pub struct SceneState {
    n: usize,
    /// Positions at this tick.
    positions: Vec<Point2>,
    payload: StatePayload,
}

impl SceneState {
    /// Positions of every participant at this tick.
    pub fn positions(&self) -> &[Point2] {
        &self.positions
    }

    /// Distance between users `i` and `j` (symmetric, bit-exact). In pruned
    /// mode the pair is re-measured from positions — [`Point2::distance`]
    /// is bit-identical either direction, so the value matches the dense
    /// matrix entry the full path would hold.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        match &self.payload {
            StatePayload::Full { distances, .. } => distances[i * self.n + j],
            StatePayload::Pruned { .. } => {
                if i == j {
                    0.0
                } else {
                    let (a, b) = (i.min(j), i.max(j));
                    self.positions[a].distance(self.positions[b])
                }
            }
        }
    }

    /// The full distance row of user `v` (length `n`, `0.0` at `v`).
    ///
    /// # Panics
    ///
    /// Panics in pruned mode (`AFTER_PRUNE_K > 0`): dense rows are never
    /// materialized there — read [`SceneState::candidates`] (member
    /// distances) or [`SceneState::distance`] (a single exact pair).
    pub fn distance_row(&self, v: usize) -> &[f64] {
        match &self.payload {
            StatePayload::Full { distances, .. } => &distances[v * self.n..(v + 1) * self.n],
            StatePayload::Pruned { .. } => {
                panic!("dense distance rows are not materialized in pruned mode (AFTER_PRUNE_K > 0)")
            }
        }
    }

    /// Whether this state holds pruned per-viewer shortlists instead of
    /// dense full-scene structure.
    pub fn is_pruned(&self) -> bool {
        matches!(self.payload, StatePayload::Pruned { .. })
    }

    /// The effective shortlist size of a pruned state (0 in full mode).
    pub fn prune_k(&self) -> usize {
        match &self.payload {
            StatePayload::Full { .. } => 0,
            StatePayload::Pruned { k, .. } => *k,
        }
    }

    /// The candidate shortlist of the viewer in `slot` (slot order = the
    /// engine's registered-viewer order); `None` in full mode.
    pub fn candidates(&self, slot: usize) -> Option<&CandidateSet> {
        match &self.payload {
            StatePayload::Full { .. } => None,
            StatePayload::Pruned { shortlists, .. } => Some(&shortlists[slot]),
        }
    }

    /// Tears the state into its owned parts — positions, the flat `n×n`
    /// distance matrix, and the per-slot occlusion graphs and candidate
    /// masks (slot order = the engine's registered-viewer order). Lets batch
    /// consumers take ownership of the heavy per-viewer structures instead
    /// of cloning them.
    ///
    /// A pruned state is *densified* here — the single materialization
    /// point that keeps batch consumers payload-agnostic: the distance
    /// matrix is re-measured (bit-identical by the IEEE argument), each
    /// shortlist's restricted edges become an `n`-node [`UGraph`], and the
    /// dense mask carries each member's bit with every non-member `false`.
    /// At a complete shortlist (`K ≥ n−1`) the result is bitwise equal to
    /// the full path's parts; at serving K the mask *is* the candidate-set
    /// contract — users outside the shortlist are not candidates.
    pub fn into_parts(self) -> (Vec<Point2>, Vec<f64>, Vec<UGraph>, Vec<Vec<bool>>) {
        let n = self.n;
        match self.payload {
            StatePayload::Full { distances, occlusion, candidate_mask } => {
                let occlusion = occlusion
                    .into_iter()
                    // a graph still shared with a retained neighbor tick
                    // (the incremental path reuses unchanged graphs by
                    // pointer) has to be cloned out; a uniquely held one is
                    // moved for free
                    .map(|g| Arc::try_unwrap(g).unwrap_or_else(|shared| (*shared).clone()))
                    .collect();
                (self.positions, distances, occlusion, candidate_mask)
            }
            StatePayload::Pruned { shortlists, .. } => {
                let distances = pairwise_distances(&self.positions);
                let mut occlusion = Vec::with_capacity(shortlists.len());
                let mut masks = Vec::with_capacity(shortlists.len());
                for cs in &shortlists {
                    let edges: Vec<(usize, usize)> =
                        cs.edges().iter().map(|&(a, b)| (a as usize, b as usize)).collect();
                    occlusion.push(UGraph::from_sorted_unique_edges(n, edges));
                    let mut dense = vec![false; n];
                    for (idx, &id) in cs.ids().iter().enumerate() {
                        dense[id as usize] = cs.mask()[idx];
                    }
                    masks.push(dense);
                }
                (self.positions, distances, occlusion, masks)
            }
        }
    }
}

/// A cheap per-target window into one tick's [`SceneState`]. Borrowing —
/// never copying — the shared structures is what keeps per-target cost at
/// O(1) once the scene itself is maintained.
#[derive(Debug, Clone, Copy)]
pub struct TargetView<'a> {
    state: &'a SceneState,
    viewer: usize,
    slot: usize,
}

impl<'a> TargetView<'a> {
    /// The viewer this view belongs to.
    pub fn viewer(&self) -> usize {
        self.viewer
    }

    /// Positions at this tick.
    pub fn positions(&self) -> &'a [Point2] {
        &self.state.positions
    }

    /// The viewer's distance row.
    ///
    /// # Panics
    ///
    /// Panics in pruned mode — read [`TargetView::candidates`] instead.
    pub fn distances(&self) -> &'a [f64] {
        self.state.distance_row(self.viewer)
    }

    /// The viewer's static occlusion graph `O_t^v`.
    ///
    /// # Panics
    ///
    /// Panics in pruned mode — read [`TargetView::candidates`] instead.
    pub fn occlusion(&self) -> &'a UGraph {
        match &self.state.payload {
            StatePayload::Full { occlusion, .. } => &occlusion[self.slot],
            StatePayload::Pruned { .. } => {
                panic!("dense occlusion graphs are not materialized in pruned mode (AFTER_PRUNE_K > 0)")
            }
        }
    }

    /// The viewer's hybrid-participation candidate mask `m_t`.
    ///
    /// # Panics
    ///
    /// Panics in pruned mode — read [`TargetView::candidates`] instead.
    pub fn candidate_mask(&self) -> &'a [bool] {
        match &self.state.payload {
            StatePayload::Full { candidate_mask, .. } => &candidate_mask[self.slot],
            StatePayload::Pruned { .. } => {
                panic!("dense candidate masks are not materialized in pruned mode (AFTER_PRUNE_K > 0)")
            }
        }
    }

    /// The viewer's candidate shortlist; `None` in full mode.
    pub fn candidates(&self) -> Option<&'a CandidateSet> {
        self.state.candidates(self.slot)
    }

    /// Whether this view comes from a pruned state.
    pub fn is_pruned(&self) -> bool {
        self.state.is_pruned()
    }
}

/// One viewer's warm sweep state, carried across incremental ticks: the
/// center-sorted candidate array the full sweep would rebuild per tick.
#[derive(Debug, Clone, Default)]
struct WarmViewer {
    /// User ids sorted by the sweep key `(arc center, id)`.
    order: Vec<usize>,
    /// Arcs parallel to `order`.
    arcs: Vec<ViewArc>,
    /// Index of each user in `order`; `u32::MAX` when the user has no arc.
    pos: Vec<u32>,
}

/// An epoch-stamped sparse membership set over user ids, reused across
/// viewers and ticks without ever being cleared: `begin` bumps the epoch
/// (O(1) — stale stamps from earlier viewers become non-members for free),
/// `insert` stamps an id and records it, and consumers iterate the recorded
/// ids only. Replaces the per-viewer O(N) clear-and-resize bitset the mask
/// patcher used to rebuild on every churn tick.
#[derive(Debug, Clone, Default)]
struct AffectedSet {
    /// `stamps[i] == epoch` ⇔ user `i` is a member of the current set.
    stamps: Vec<u32>,
    epoch: u32,
    /// Members of the current set, insertion-ordered, duplicate-free.
    ids: Vec<usize>,
}

impl AffectedSet {
    /// Starts a fresh empty set over `n` users without touching old stamps.
    fn begin(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
        self.ids.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // epoch wrapped: old stamps could alias the new epoch, so pay
            // one full clear every 2³² sets
            self.stamps.fill(0);
            self.epoch = 1;
        }
    }

    fn insert(&mut self, i: usize) {
        if self.stamps[i] != self.epoch {
            self.stamps[i] = self.epoch;
            self.ids.push(i);
        }
    }

    /// Current members, insertion-ordered.
    fn ids(&self) -> &[usize] {
        &self.ids
    }
}

/// Reusable buffers for the incremental push path, kept on the engine so a
/// long-running room allocates per-tick structures once.
#[derive(Debug, Clone, Default)]
struct IncrScratch {
    moved_mask: Vec<bool>,
    moved_ids: Vec<usize>,
    /// Freshly derived arcs of moved users, sorted by the sweep key.
    incoming: Vec<(ViewArc, usize)>,
    order_buf: Vec<usize>,
    arcs_buf: Vec<ViewArc>,
    edges_new: Vec<(usize, usize)>,
    edges_merged: Vec<(usize, usize)>,
    /// Users whose candidate-mask entry must be re-derived for the current
    /// viewer: moved users plus endpoints of every changed (added or
    /// dropped) occlusion edge. Everyone else keeps the previous bit.
    affected: AffectedSet,
}

/// The streaming scene engine: feed it one [`Frame`] per tick, read shared
/// state back through [`SceneEngine::state`] / [`SceneEngine::view`].
///
/// Viewers (the target users whose occlusion structure is needed) are
/// registered up front so a single-target session does not pay for N
/// per-viewer graphs; the scene-wide distance matrix is maintained either
/// way and shared by all of them.
#[derive(Debug, Clone)]
pub struct SceneEngine {
    converter: OcclusionConverter,
    config: SceneConfig,
    n: usize,
    viewers: Vec<usize>,
    /// `slot_of[v]` is the slot index of viewer `v`, if registered.
    slot_of: Vec<Option<usize>>,
    states: Vec<SceneState>,
    /// Tick index of `states[0]` — nonzero once retention compacted history.
    base: usize,
    /// `Some(k)`: keep only the last `k` states (long-running serving);
    /// `None`: keep everything (episode replay/training).
    retain: Option<usize>,
    /// Per-tick deadline tracking, when `AFTER_SLO_BUDGET_MS` (or
    /// [`SceneEngine::set_slo`]) configured a budget.
    slo: Option<xr_obs::SloTracker>,
    /// `false` pins the from-scratch oracle path (`AFTER_INCREMENTAL=0`).
    incremental: bool,
    /// Snap radius for the shared ingest semantics (`AFTER_SNAP_EPS`).
    snap_epsilon: f64,
    /// Shortlist size for the crowd-scale pruned mode; 0 (the default /
    /// `AFTER_PRUNE_K=0`) keeps the exact full-N path.
    prune_k: usize,
    /// K-nearest query scratch for the pruned path.
    nearest_buf: Vec<(f64, u32)>,
    /// Warm sweep state per slot; meaningful only while `warm_tick` is the
    /// previous tick.
    warm: Vec<WarmViewer>,
    /// Tick the warm state describes, if any.
    warm_tick: Option<usize>,
    scratch: IncrScratch,
}

impl SceneEngine {
    /// An engine for an `n`-participant scene with the given registered
    /// viewers.
    ///
    /// # Panics
    ///
    /// Panics when `config.mr_mask` is not `n`-long or a viewer is out of
    /// range.
    pub fn new(n: usize, config: SceneConfig, viewers: &[usize]) -> Self {
        assert_eq!(config.mr_mask.len(), n, "mr_mask length mismatch");
        let mut slot_of = vec![None; n];
        let mut unique = Vec::with_capacity(viewers.len());
        for &v in viewers {
            assert!(v < n, "viewer {v} out of range (n={n})");
            if slot_of[v].is_none() {
                slot_of[v] = Some(unique.len());
                unique.push(v);
            }
        }
        let converter = OcclusionConverter::new(config.body_radius);
        let warm = vec![WarmViewer::default(); unique.len()];
        SceneEngine {
            converter,
            config,
            n,
            viewers: unique,
            slot_of,
            states: Vec::new(),
            base: 0,
            retain: None,
            slo: xr_obs::SloTracker::from_env("session.tick"),
            incremental: crate::incremental_enabled(),
            snap_epsilon: snap_epsilon_from_env(),
            prune_k: crate::prune_k_from_env(),
            nearest_buf: Vec::new(),
            warm,
            warm_tick: None,
            scratch: IncrScratch::default(),
        }
    }

    /// An engine over a sampled scenario's constants (frames still have to
    /// be pushed — typically the scenario's trajectory, one tick at a time).
    pub fn for_scenario(scenario: &Scenario, viewers: &[usize]) -> Self {
        SceneEngine::new(scenario.n(), SceneConfig::from_scenario(scenario), viewers)
    }

    /// Number of participants.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Registered viewers, in slot order.
    pub fn viewers(&self) -> &[usize] {
        &self.viewers
    }

    /// Scene constants.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// The occlusion converter (body radius) used for all visibility work.
    pub fn converter(&self) -> &OcclusionConverter {
        &self.converter
    }

    /// Number of ticks ingested so far (including compacted ones).
    pub fn ticks(&self) -> usize {
        self.base + self.states.len()
    }

    /// Bounds the retained scene-state history: `Some(k)` keeps only the
    /// last `k` ticks (compacting immediately and on every later push),
    /// `None` (the default) keeps every tick. Long-running serving sessions
    /// must bound retention — a room ticking for hours would otherwise
    /// accumulate O(n²) state per tick forever; episode replay and training
    /// keep the full history.
    ///
    /// # Panics
    ///
    /// Panics when `keep_last` is `Some(0)` — the current tick's state must
    /// always be readable after a push.
    pub fn set_state_retention(&mut self, keep_last: Option<usize>) {
        assert!(keep_last != Some(0), "retention must keep at least one state");
        self.retain = keep_last;
        self.compact();
    }

    /// The oldest tick whose state is still retained (0 until retention
    /// compacts history).
    pub fn first_retained_tick(&self) -> usize {
        self.base
    }

    fn compact(&mut self) {
        if let Some(keep) = self.retain {
            if self.states.len() > keep {
                let drop = self.states.len() - keep;
                self.states.drain(..drop);
                self.base += drop;
            }
        }
    }

    /// Installs (or clears) a per-tick deadline tracker, overriding the
    /// env-configured default.
    pub fn set_slo(&mut self, slo: Option<xr_obs::SloTracker>) {
        self.slo = slo;
    }

    /// The active deadline tracker, if any.
    pub fn slo(&self) -> Option<&xr_obs::SloTracker> {
        self.slo.as_ref()
    }

    /// Forces the maintenance path, overriding the `AFTER_INCREMENTAL`
    /// default: `true` maintains state incrementally across ticks, `false`
    /// rebuilds every tick from scratch (the differential oracle). Safe to
    /// toggle mid-session — switching invalidates the warm caches, so the
    /// next push rebuilds (and, when incremental, re-warms) from scratch.
    pub fn set_incremental(&mut self, on: bool) {
        if on != self.incremental {
            self.warm_tick = None;
        }
        self.incremental = on;
    }

    /// Whether the engine maintains state incrementally.
    pub fn incremental(&self) -> bool {
        self.incremental
    }

    /// Sets the ingest snap radius: a user whose raw position moved at most
    /// `eps` from the previous tick's effective position keeps the previous
    /// position exactly. Applied on *both* maintenance paths (shared ingest
    /// semantics), so any epsilon preserves the bitwise oracle equality; the
    /// default `0.0` makes snapping a numeric no-op.
    ///
    /// # Panics
    ///
    /// Panics when `eps` is negative or non-finite.
    pub fn set_snap_epsilon(&mut self, eps: f64) {
        assert!(eps.is_finite() && eps >= 0.0, "snap epsilon must be finite and non-negative");
        self.snap_epsilon = eps;
    }

    /// The active ingest snap radius.
    pub fn snap_epsilon(&self) -> f64 {
        self.snap_epsilon
    }

    /// Sets the crowd-scale shortlist size, overriding the `AFTER_PRUNE_K`
    /// default: `k > 0` makes every subsequent tick build per-viewer
    /// K-candidate shortlists instead of dense full-scene state, `0`
    /// restores the exact full-N path (the differential oracle). Safe to
    /// switch mid-session — changing the value invalidates the warm caches,
    /// so the next push rebuilds from scratch in the new mode.
    pub fn set_prune_k(&mut self, k: usize) {
        if k != self.prune_k {
            self.warm_tick = None;
        }
        self.prune_k = k;
    }

    /// The active shortlist size (0 = full-N mode).
    pub fn prune_k(&self) -> usize {
        self.prune_k
    }

    /// Ingests one frame, computing the tick's shared [`SceneState`].
    /// Returns the tick index the frame landed on.
    ///
    /// # Panics
    ///
    /// Panics when the frame's participant count differs from the engine's.
    pub fn push(&mut self, frame: Frame) -> usize {
        let t = self.ticks();
        let _span = xr_obs::span!("session.tick", t = t, n = self.n, viewers = self.viewers.len());
        // Instant::now only when someone will read the measurement
        let tick_start = self.slo.as_ref().map(|_| std::time::Instant::now());
        assert_eq!(frame.positions.len(), self.n, "frame has wrong participant count");
        let mut positions = frame.positions;

        // shared ingest semantics: snap each user onto the previous tick's
        // effective position unless the raw position moved beyond
        // `snap_epsilon`, and record who (still) moved. Both maintenance
        // paths see the snapped positions, so oracle equality holds for any
        // epsilon.
        let mut moved_mask = std::mem::take(&mut self.scratch.moved_mask);
        let mut moved_ids = std::mem::take(&mut self.scratch.moved_ids);
        moved_mask.clear();
        moved_ids.clear();
        if let Some(prev) = self.states.last() {
            for (i, p) in positions.iter_mut().enumerate() {
                let q = prev.positions[i];
                if p.distance(q) <= self.snap_epsilon {
                    *p = q;
                }
                let moved = p.x.to_bits() != q.x.to_bits() || p.y.to_bits() != q.y.to_bits();
                moved_mask.push(moved);
                if moved {
                    moved_ids.push(i);
                }
            }
        } else {
            moved_mask.resize(self.n, true);
            moved_ids.extend(0..self.n);
        }

        // warm caches describe tick t−1 and the previous state is retained:
        // the delta path is exact. Anything else (first tick, a mid-session
        // path toggle) rebuilds from scratch, which also re-warms. A
        // low-coherence tick (most users moved — a teleport storm, a scene
        // reset) also takes the scratch build: the delta machinery would
        // re-decide nearly everything anyway and only add merge overhead.
        // Purely a cost heuristic — both builds are bit-identical, so the
        // crossover choice is invisible to every reader and to the oracle.
        let warm_valid = t > 0 && self.warm_tick == Some(t - 1) && !self.states.is_empty();
        let low_coherence = moved_ids.len() * 2 > self.n;
        let mut pair_tests = 0u64;
        let state = if self.prune_k > 0 {
            self.build_state_pruned(positions, &moved_mask, &moved_ids, warm_valid, &mut pair_tests)
        } else if self.incremental && warm_valid && !low_coherence {
            xr_obs::counter_add("session.incremental.ticks", &[], 1);
            xr_obs::counter_add("session.incremental.moved", &[], moved_ids.len() as u64);
            self.build_state_incremental(positions, &moved_mask, &moved_ids, &mut pair_tests)
        } else {
            self.build_state_scratch(positions, &mut pair_tests)
        };
        if self.incremental {
            self.warm_tick = Some(t);
        }
        self.scratch.moved_mask = moved_mask;
        self.scratch.moved_ids = moved_ids;

        // shared-state reuse telemetry: one tick serves every registered
        // viewer, and the sweep's exact-predicate evaluations replace
        // V·N(N−1)/2 brute-force tests
        xr_obs::counter_add("session.ticks", &[], 1);
        xr_obs::counter_add("session.views_served", &[], self.viewers.len() as u64);
        xr_obs::counter_add("session.sweep.pair_tests", &[], pair_tests);
        let brute = (self.viewers.len() as u64) * (self.n as u64) * (self.n as u64 - 1) / 2;
        xr_obs::counter_add("session.sweep.pair_tests_saved", &[], brute.saturating_sub(pair_tests));

        self.states.push(state);
        self.compact();
        if let (Some(slo), Some(start)) = (&mut self.slo, tick_start) {
            let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
            slo.record(t as u64, elapsed_ms);
            xr_obs::series_observe(
                "session.tick.ms",
                &[],
                t as u64 / slo.config().series_window_ticks,
                elapsed_ms,
            );
        }
        t
    }

    /// From-scratch tick build (the differential oracle). When the engine is
    /// in incremental mode this also re-warms every viewer's sweep cache so
    /// the next tick can take the delta path.
    fn build_state_scratch(&mut self, positions: Vec<Point2>, pair_tests: &mut u64) -> SceneState {
        let distances = pairwise_distances(&positions);
        let mut warm = std::mem::take(&mut self.warm);
        let mut occlusion = Vec::with_capacity(self.viewers.len());
        let mut candidate_mask = Vec::with_capacity(self.viewers.len());
        for (slot, &v) in self.viewers.iter().enumerate() {
            let arcs = self.converter.arcs(v, &positions);
            let graph = if self.incremental {
                warm_full_build(&arcs, &mut warm[slot], pair_tests)
            } else {
                sweep_occlusion_graph(&arcs, pair_tests)
            };
            let row = &distances[v * self.n..(v + 1) * self.n];
            let mask =
                candidate_mask_from_shared(v, self.config.mr_mask[v], row, &graph, &self.config.mr_mask);
            occlusion.push(Arc::new(graph));
            candidate_mask.push(mask);
        }
        self.warm = warm;
        SceneState {
            n: self.n,
            positions,
            payload: StatePayload::Full { distances, occlusion, candidate_mask },
        }
    }

    /// Crowd-scale tick build (`prune_k > 0`): one two-level spatial index
    /// over the frame, then one K-candidate shortlist per registered viewer
    /// — O(N) scene maintenance plus O(K log K + restricted pairs) per
    /// viewer, with no dense structure anywhere. Composes with the
    /// incremental path: when the previous tick is a retained pruned state
    /// of the same K, a stationary viewer whose shortlist membership and
    /// members all stood still carries its previous `Arc<CandidateSet>`
    /// forward by pointer (distances, edges, and mask bits are functions of
    /// bit-identical positions, so reuse is bitwise-invisible).
    fn build_state_pruned(
        &mut self,
        positions: Vec<Point2>,
        moved_mask: &[bool],
        moved_ids: &[usize],
        warm_valid: bool,
        pair_tests: &mut u64,
    ) -> SceneState {
        let n = self.n;
        let k = self.prune_k.min(n.saturating_sub(1));
        xr_obs::counter_add("session.prune.ticks", &[], 1);
        // Arc handles to the previous tick's shortlists, when they are
        // reusable (retained pruned state of the same K on the delta path)
        let prev_pruned: Option<Vec<Arc<CandidateSet>>> =
            self.states.last().filter(|_| warm_valid && self.incremental).and_then(|s| match &s.payload {
                StatePayload::Pruned { k: pk, shortlists } if *pk == k => Some(shortlists.clone()),
                _ => None,
            });

        // nothing moved: every shortlist is a pure function of bit-identical
        // positions — carry the whole tick forward by pointer
        if let Some(shortlists) = &prev_pruned {
            if moved_ids.is_empty() {
                let shortlists = shortlists.clone();
                xr_obs::counter_add("session.prune.shortlists_reused", &[], shortlists.len() as u64);
                return SceneState { n, positions, payload: StatePayload::Pruned { k, shortlists } };
            }
        }

        let index = PruneIndex::build(&positions);
        let mut nearest = std::mem::take(&mut self.nearest_buf);
        let mut shortlists = Vec::with_capacity(self.viewers.len());
        let mut reused = 0u64;
        for (slot, &v) in self.viewers.iter().enumerate() {
            index.nearest_k_into(&positions, v, k, &mut nearest);
            // members in ascending-id order, distances carried along
            nearest.sort_unstable_by_key(|&(_, w)| w);
            let prev_cs = prev_pruned.as_ref().map(|s| &s[slot]);
            // pointer reuse: viewer still, same membership, members still ⇒
            // every stored quantity is a function of unchanged positions
            let reusable = prev_cs.is_some_and(|cs| {
                !moved_mask[v]
                    && cs.ids().len() == nearest.len()
                    && cs.ids().iter().zip(nearest.iter()).all(|(&a, &(_, b))| a == b)
                    && nearest.iter().all(|&(_, w)| !moved_mask[w as usize])
            });
            if reusable {
                shortlists.push(Arc::clone(prev_cs.unwrap()));
                reused += 1;
                continue;
            }
            let cs = build_candidate_set(
                v,
                k,
                &positions,
                &self.converter,
                &self.config.mr_mask,
                &nearest,
                pair_tests,
            );
            shortlists.push(Arc::new(cs));
        }
        xr_obs::counter_add("session.prune.shortlists_reused", &[], reused);
        nearest.clear();
        self.nearest_buf = nearest;
        SceneState { n, positions, payload: StatePayload::Pruned { k, shortlists } }
    }

    /// Incremental tick build: O(Δ) in the number of moved users. Distances
    /// are delta-updated row-wise; each stationary viewer's occlusion graph
    /// is patched through its warm sweep cache; a moved viewer falls back to
    /// a full (re-warming) rebuild. Bitwise-identical to
    /// [`SceneEngine::build_state_scratch`] by construction — see the module
    /// docs for the argument.
    fn build_state_incremental(
        &mut self,
        positions: Vec<Point2>,
        moved_mask: &[bool],
        moved_ids: &[usize],
        pair_tests: &mut u64,
    ) -> SceneState {
        let n = self.n;
        let mut warm = std::mem::take(&mut self.warm);
        let mut scratch = std::mem::take(&mut self.scratch);
        let prev = self.states.last().expect("incremental push needs a retained previous state");
        let (prev_distances, prev_occlusion, prev_mask) = match &prev.payload {
            StatePayload::Full { distances, occlusion, candidate_mask } => {
                (distances, occlusion, candidate_mask)
            }
            // switching out of pruned mode invalidates `warm_tick`, so the
            // delta path can never land on a pruned predecessor
            StatePayload::Pruned { .. } => {
                unreachable!("the incremental full path never follows a pruned state")
            }
        };

        // nothing moved (every position snapped or stood still): the whole
        // previous state is bit-identical, and the warm caches stay valid
        if moved_ids.is_empty() {
            let state = SceneState {
                n,
                positions,
                payload: StatePayload::Full {
                    distances: prev_distances.clone(),
                    occlusion: prev_occlusion.clone(),
                    candidate_mask: prev_mask.clone(),
                },
            };
            self.warm = warm;
            self.scratch = scratch;
            return state;
        }

        // stationary pairs keep their previous (bit-identical) distance;
        // moved rows re-measure each unordered pair in (min, max) endpoint
        // order — the from-scratch convention — and mirror
        let mut distances = prev_distances.clone();
        for &i in moved_ids {
            for j in 0..n {
                if j != i {
                    let (a, b) = (i.min(j), i.max(j));
                    let v = positions[a].distance(positions[b]);
                    distances[i * n + j] = v;
                    distances[j * n + i] = v;
                }
            }
        }

        let mut occlusion = Vec::with_capacity(self.viewers.len());
        let mut candidate_mask = Vec::with_capacity(self.viewers.len());
        let mut rebuilt = 0u64;
        for (slot, &v) in self.viewers.iter().enumerate() {
            let row_range = v * n..(v + 1) * n;
            let (graph, mask) = if moved_mask[v] {
                // the viewer's own anchor moved: every arc it sees changed
                rebuilt += 1;
                let arcs = self.converter.arcs(v, &positions);
                let graph = warm_full_build(&arcs, &mut warm[slot], pair_tests);
                let mask = candidate_mask_from_shared(
                    v,
                    self.config.mr_mask[v],
                    &distances[row_range],
                    &graph,
                    &self.config.mr_mask,
                );
                (Arc::new(graph), mask)
            } else {
                // `None`: the merged edge set came out identical to the
                // previous tick's, so the previous graph is carried forward
                // by pointer (it compares `Eq` by construction)
                let graph = match warm_delta_update(
                    v,
                    &positions,
                    &self.converter,
                    &prev_occlusion[slot],
                    &mut warm[slot],
                    moved_mask,
                    moved_ids,
                    &mut scratch,
                    pair_tests,
                ) {
                    Some(g) => Arc::new(g),
                    None => Arc::clone(&prev_occlusion[slot]),
                };
                // `warm_delta_update` left the viewer's affected set in
                // `scratch.affected`; everyone outside it keeps the
                // previous mask bit verbatim
                let mask = mask_delta_update(
                    &prev_mask[slot],
                    v,
                    self.config.mr_mask[v],
                    &distances[row_range],
                    &graph,
                    &self.config.mr_mask,
                    &scratch.affected,
                );
                (graph, mask)
            };
            occlusion.push(graph);
            candidate_mask.push(mask);
        }
        xr_obs::counter_add("session.incremental.viewers_rebuilt", &[], rebuilt);
        self.warm = warm;
        self.scratch = scratch;
        SceneState { n, positions, payload: StatePayload::Full { distances, occlusion, candidate_mask } }
    }

    /// Convenience: pushes every tick of a scenario's trajectory.
    pub fn push_scenario(&mut self, scenario: &Scenario) {
        for positions in &scenario.trajectories {
            self.push(Frame::new(positions.clone()));
        }
    }

    /// The shared scene state at tick `t`.
    ///
    /// # Panics
    ///
    /// Panics when tick `t` was compacted away by state retention (or never
    /// ingested).
    pub fn state(&self, t: usize) -> &SceneState {
        assert!(
            t >= self.base,
            "tick {t} was compacted away (retention keeps ticks {}..{})",
            self.base,
            self.ticks()
        );
        &self.states[t - self.base]
    }

    /// The most recent tick's state, if any frame has been ingested.
    pub fn latest_state(&self) -> Option<&SceneState> {
        self.states.last()
    }

    /// A borrowed per-target view at tick `t`.
    ///
    /// # Panics
    ///
    /// Panics when `viewer` was not registered at construction.
    pub fn view(&self, viewer: usize, t: usize) -> TargetView<'_> {
        let slot =
            self.slot_of[viewer].unwrap_or_else(|| panic!("viewer {viewer} not registered with this engine"));
        TargetView { state: self.state(t), viewer, slot }
    }

    /// The slot index of a registered viewer.
    pub fn slot_of(&self, viewer: usize) -> Option<usize> {
        self.slot_of.get(viewer).copied().flatten()
    }

    /// Consumes the engine, yielding every **retained** tick's shared state
    /// in order (all of them unless [`SceneEngine::set_state_retention`]
    /// compacted history). Use [`SceneState::into_parts`] to take ownership
    /// of the per-slot structures without a copy.
    pub fn into_states(self) -> Vec<SceneState> {
        self.states
    }
}

/// Flat row-major symmetric distance matrix: each unordered pair is measured
/// once and mirrored (bit-exact — see the module docs).
fn pairwise_distances(positions: &[Point2]) -> Vec<f64> {
    let n = positions.len();
    let mut d = vec![0.0; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let v = positions[i].distance(positions[j]);
            d[i * n + j] = v;
            d[j * n + i] = v;
        }
    }
    d
}

/// Builds one viewer's static occlusion graph from its arcs with an angular
/// sweep: arcs sorted by center, each compared only against arcs within
/// `half_width + max_half_width` forward gap. Candidate pairs are decided by
/// the exact [`ViewArc::intersects`] predicate and inserted in sorted order,
/// reproducing the brute-force graph structurally.
fn sweep_occlusion_graph(arcs: &[Option<ViewArc>], pair_tests: &mut u64) -> UGraph {
    let mut order = Vec::new();
    let mut sorted = Vec::new();
    sorted_arc_order(arcs, &mut order, &mut sorted);
    sweep_edges_from_sorted(arcs.len(), &order, &sorted, pair_tests)
}

/// Fills `order` with the ids of users that have an arc, sorted by the sweep
/// key `(center, id)`, and `sorted` with their arcs in the same order —
/// compact arrays so the hot loop never touches the Option-boxed arc slice.
fn sorted_arc_order(arcs: &[Option<ViewArc>], order: &mut Vec<usize>, sorted: &mut Vec<ViewArc>) {
    order.clear();
    order.extend((0..arcs.len()).filter(|&w| arcs[w].is_some()));
    order.sort_by(|&a, &b| arcs[a].unwrap().center.total_cmp(&arcs[b].unwrap().center).then(a.cmp(&b)));
    sorted.clear();
    sorted.extend(order.iter().map(|&w| arcs[w].unwrap()));
}

/// The sweep proper, over a pre-sorted arc array (see
/// [`sweep_occlusion_graph`] for the semantics and pruning argument).
fn sweep_edges_from_sorted(n: usize, order: &[usize], sorted: &[ViewArc], pair_tests: &mut u64) -> UGraph {
    UGraph::from_sorted_unique_edges(n, sweep_edge_list(order, sorted, pair_tests))
}

/// The sweep's edge enumeration, shared by the graph builder above and the
/// pruned path's restricted sweep (which runs it over shortlist-local
/// indices): sorted unique `(min, max)` pairs, every one decided by the
/// exact predicate.
fn sweep_edge_list(order: &[usize], sorted: &[ViewArc], pair_tests: &mut u64) -> Vec<(usize, usize)> {
    let m = order.len();
    if m < 2 {
        return Vec::new();
    }
    let max_half_width = sorted.iter().map(|a| a.half_width).fold(f64::NEG_INFINITY, f64::max);

    let mut edges: Vec<(usize, usize)> = Vec::new();
    for s in 0..m {
        let i = order[s];
        let ai = sorted[s];
        // beyond this forward gap no arc can reach back to `ai`; forward
        // gaps are nondecreasing along the sorted lap, so the first
        // out-of-reach arc ends the scan — pairs whose shorter gap runs the
        // other way are found from the partner's own forward scan
        let reach = ai.half_width + max_half_width + SWEEP_MARGIN;
        let mut wrap = true;
        for sj in (s + 1)..m {
            let gap = sorted[sj].center - ai.center; // ≥ 0: sorted
            if gap > reach {
                wrap = false;
                break;
            }
            *pair_tests += 1;
            if ai.intersects(&sorted[sj]) {
                let j = order[sj];
                edges.push((i.min(j), i.max(j)));
            }
        }
        if wrap {
            // wrapped portion of the lap; gaps stay nondecreasing across it
            for sj in 0..s {
                let gap = sorted[sj].center - ai.center + std::f64::consts::TAU;
                if gap > reach {
                    break;
                }
                *pair_tests += 1;
                if ai.intersects(&sorted[sj]) {
                    let j = order[sj];
                    edges.push((i.min(j), i.max(j)));
                }
            }
        }
    }
    // each intersecting pair can be reached from both endpoints' forward
    // scans; sorted dedup reproduces the brute-force i<j insertion order
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Builds one viewer's [`CandidateSet`] over its K-nearest members
/// (`members` = `(distance, id)` pairs in ascending-id order): arcs are
/// re-derived per member with the same converter call as the full path, the
/// restricted occlusion edges come from the same angular sweep over
/// shortlist-local indices, and mask bits apply the `mask_entry` rule over
/// those edges. The `(distance, id)` selection order makes every strictly
/// nearer user of a member also a member (nearer-occluder closure), so the
/// member bits are bitwise equal to the full-scene mask.
fn build_candidate_set(
    viewer: usize,
    k: usize,
    positions: &[Point2],
    converter: &OcclusionConverter,
    mr_mask: &[bool],
    members: &[(f64, u32)],
    pair_tests: &mut u64,
) -> CandidateSet {
    let len = members.len();
    let ids: Vec<u32> = members.iter().map(|&(_, w)| w).collect();
    let dists: Vec<f64> = members.iter().map(|&(d, _)| d).collect();

    // restricted sweep over local member indices: the edge set it yields is
    // the full edge set ∩ members×members, because each surviving pair is
    // decided by the exact predicate and the pruning bound stays
    // conservative on any subset (a subset's max_half_width only shrinks)
    let arcs: Vec<Option<ViewArc>> =
        ids.iter().map(|&w| converter.arc(positions[viewer], positions[w as usize])).collect();
    let mut order = Vec::new();
    let mut sorted = Vec::new();
    sorted_arc_order(&arcs, &mut order, &mut sorted);
    let local_edges = sweep_edge_list(&order, &sorted, pair_tests);

    let mut mask = vec![true; len];
    if mr_mask[viewer] {
        // the `mask_entry` rule restricted to members: coincident users are
        // pruned, and a strictly nearer MR member in an overlapping arc
        // prunes its partner (the viewer itself is never a member, so the
        // `u != viewer` guard is implicit)
        for idx in 0..len {
            if dists[idx] < 1e-9 {
                mask[idx] = false;
            }
        }
        for &(a, b) in &local_edges {
            if mr_mask[ids[a] as usize] && dists[a] < dists[b] {
                mask[b] = false;
            }
            if mr_mask[ids[b] as usize] && dists[b] < dists[a] {
                mask[a] = false;
            }
        }
    }

    // ascending local indices map monotonically to ascending global ids, so
    // the sorted-unique property carries over
    let edges: Vec<(u32, u32)> = local_edges.into_iter().map(|(a, b)| (ids[a], ids[b])).collect();
    CandidateSet::new(viewer, k, ids, dists, mask, edges)
}

/// Full sweep that also (re)warms one viewer's cache with the sorted arc
/// arrays it builds anyway.
fn warm_full_build(arcs: &[Option<ViewArc>], warm: &mut WarmViewer, pair_tests: &mut u64) -> UGraph {
    let n = arcs.len();
    sorted_arc_order(arcs, &mut warm.order, &mut warm.arcs);
    warm.pos.clear();
    warm.pos.resize(n, u32::MAX);
    for (s, &w) in warm.order.iter().enumerate() {
        warm.pos[w] = s as u32;
    }
    sweep_edges_from_sorted(n, &warm.order, &warm.arcs, pair_tests)
}

/// Patches one *stationary* viewer's occlusion graph through its warm sweep
/// cache, O(moved · log + affected) instead of O(n log n + pairs):
///
/// 1. Arcs are re-derived only for moved users and merged into the
///    center-sorted order (kept entries and incoming entries are each sorted
///    by the sweep key, so the merge reproduces the full sort exactly).
/// 2. Previous edges whose endpoints both stand still are kept verbatim —
///    their arcs are bit-identical, so the exact predicate's verdict cannot
///    change. Their sorted stream merges with the freshly decided moved-pair
///    edges (disjoint sets) into the full build's insertion order.
/// 3. Each moved arc is re-tested against neighbors within the same
///    conservative `reach` the full sweep uses, scanning outward in both
///    directions with wrap-around; if the slack covers the whole circle the
///    arc is tested against everyone. Every surviving pair is decided by the
///    exact [`ViewArc::intersects`] predicate.
///
/// Returns `None` when the merged edge list is identical to `prev_graph`'s —
/// under bounded motion the common case — so the caller can carry the
/// previous graph forward by `Arc` pointer instead of paying the O(n + m)
/// allocation-heavy [`UGraph`] construction. `from_sorted_unique_edges` of
/// an equal edge list yields a graph that compares `Eq` (adjacency order
/// included), so pointer reuse is bitwise-invisible to every reader.
#[allow(clippy::too_many_arguments)]
fn warm_delta_update(
    viewer: usize,
    positions: &[Point2],
    converter: &OcclusionConverter,
    prev_graph: &UGraph,
    warm: &mut WarmViewer,
    moved_mask: &[bool],
    moved_ids: &[usize],
    scratch: &mut IncrScratch,
    pair_tests: &mut u64,
) -> Option<UGraph> {
    let n = positions.len();

    // who can change a candidate-mask bit for this viewer: moved users, plus
    // endpoints of every changed (added or dropped) edge — filled as the
    // delta is decided below and consumed by `mask_delta_update`. The
    // epoch-stamped set makes this O(|affected|) per viewer, not O(N).
    let affected = &mut scratch.affected;
    affected.begin(n);
    for &w in moved_ids {
        affected.insert(w);
    }

    let incoming = &mut scratch.incoming;
    incoming.clear();
    for &w in moved_ids {
        debug_assert_ne!(w, viewer, "a moved viewer takes the full-rebuild path");
        if let Some(arc) = converter.arc(positions[viewer], positions[w]) {
            incoming.push((arc, w));
        }
    }
    incoming.sort_by(|x, y| x.0.center.total_cmp(&y.0.center).then(x.1.cmp(&y.1)));

    let (order_buf, arcs_buf) = (&mut scratch.order_buf, &mut scratch.arcs_buf);
    order_buf.clear();
    arcs_buf.clear();
    {
        let mut old = warm.order.iter().zip(warm.arcs.iter()).filter(|&(&w, _)| !moved_mask[w]).peekable();
        let mut new = incoming.iter().peekable();
        loop {
            let take_old = match (old.peek(), new.peek()) {
                (Some(&(&wo, ao)), Some(&&(an, wn))) => {
                    ao.center.total_cmp(&an.center).then(wo.cmp(&wn)).is_lt()
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_old {
                let (&w, &a) = old.next().unwrap();
                order_buf.push(w);
                arcs_buf.push(a);
            } else {
                let &(a, w) = new.next().unwrap();
                order_buf.push(w);
                arcs_buf.push(a);
            }
        }
    }
    std::mem::swap(&mut warm.order, order_buf);
    std::mem::swap(&mut warm.arcs, arcs_buf);
    warm.pos.clear();
    warm.pos.resize(n, u32::MAX);
    for (s, &w) in warm.order.iter().enumerate() {
        warm.pos[w] = s as u32;
    }

    let m = warm.order.len();
    let edges_new = &mut scratch.edges_new;
    edges_new.clear();
    if m >= 2 {
        let max_half_width = warm.arcs.iter().map(|a| a.half_width).fold(f64::NEG_INFINITY, f64::max);
        for &(aw, w) in incoming.iter() {
            let reach = aw.half_width + max_half_width + SWEEP_MARGIN;
            let s = warm.pos[w] as usize;
            if 2.0 * reach >= std::f64::consts::TAU {
                // an engulfing arc's slack covers the circle: the two
                // directional scans would overlap, so test everyone once
                for (sj, aj) in warm.arcs.iter().enumerate() {
                    if sj != s {
                        *pair_tests += 1;
                        if aw.intersects(aj) {
                            let u = warm.order[sj];
                            edges_new.push((w.min(u), w.max(u)));
                        }
                    }
                }
                continue;
            }
            // an intersecting partner sits within `reach` of `aw` on at
            // least one side (angle_diff is the min circular gap, and
            // intersection bounds it by hw_w + hw_u ≤ hw_w + max_hw); gaps
            // are nondecreasing along each directional lap, so scanning
            // until the first out-of-reach arc visits every candidate.
            // 2·reach < τ keeps the two laps disjoint (forward + backward
            // gap of a pair always sums to τ).
            let mut sj = s + 1;
            let mut lift = 0.0;
            loop {
                if sj == m {
                    if lift > 0.0 {
                        break;
                    }
                    sj = 0;
                    lift = std::f64::consts::TAU;
                    continue;
                }
                if lift > 0.0 && sj == s {
                    break;
                }
                if warm.arcs[sj].center - aw.center + lift > reach {
                    break;
                }
                *pair_tests += 1;
                if aw.intersects(&warm.arcs[sj]) {
                    let u = warm.order[sj];
                    edges_new.push((w.min(u), w.max(u)));
                }
                sj += 1;
            }
            let mut sj = s as isize - 1;
            let mut lift = 0.0;
            loop {
                if sj < 0 {
                    if lift > 0.0 {
                        break;
                    }
                    sj = m as isize - 1;
                    lift = std::f64::consts::TAU;
                    continue;
                }
                if lift > 0.0 && sj == s as isize {
                    break;
                }
                let aj = &warm.arcs[sj as usize];
                if aw.center - aj.center + lift > reach {
                    break;
                }
                *pair_tests += 1;
                if aw.intersects(aj) {
                    let u = warm.order[sj as usize];
                    edges_new.push((w.min(u), w.max(u)));
                }
                sj -= 1;
            }
        }
    }
    // a pair of two moved users is found from both endpoints' scans
    edges_new.sort_unstable();
    edges_new.dedup();
    for &(a, b) in edges_new.iter() {
        affected.insert(a);
        affected.insert(b);
    }
    // endpoints of dropped previous edges (any edge touching a mover was
    // discarded and re-decided; if it did not come back it changed)
    for (a, b) in prev_graph.edges() {
        if moved_mask[a] || moved_mask[b] {
            affected.insert(a);
            affected.insert(b);
        }
    }

    // retained (stationary-pair) edges and freshly decided moved-pair edges
    // are disjoint sorted runs; the merge is the full build's sorted order
    let merged = &mut scratch.edges_merged;
    merged.clear();
    let mut old = prev_graph.edges().filter(|&(a, b)| !moved_mask[a] && !moved_mask[b]).peekable();
    let mut new = edges_new.iter().copied().peekable();
    loop {
        match (old.peek(), new.peek()) {
            (Some(&eo), Some(&en)) => {
                if eo < en {
                    merged.push(eo);
                    old.next();
                } else {
                    merged.push(en);
                    new.next();
                }
            }
            (Some(&eo), None) => {
                merged.push(eo);
                old.next();
            }
            (None, Some(&en)) => {
                merged.push(en);
                new.next();
            }
            (None, None) => break,
        }
    }
    if merged.len() == prev_graph.edge_count() && merged.iter().copied().eq(prev_graph.edges()) {
        return None;
    }
    Some(UGraph::from_sorted_unique_edges(n, merged.clone()))
}

/// Snap epsilon from `AFTER_SNAP_EPS` (meters); unset, unparsable, negative,
/// or non-finite values fall back to `0.0` (snapping as a numeric no-op).
fn snap_epsilon_from_env() -> f64 {
    match std::env::var("AFTER_SNAP_EPS") {
        Ok(s) => match s.trim().parse::<f64>() {
            Ok(v) if v.is_finite() && v >= 0.0 => v,
            _ => 0.0,
        },
        Err(_) => 0.0,
    }
}

/// Candidate mask `m_t` for one viewer, derived from the shared state: the
/// legacy semantics (a physically present MR participant standing strictly
/// nearer in an overlapping arc prunes the candidate) with "overlapping arc"
/// read off the occlusion graph instead of re-tested.
fn candidate_mask_from_shared(
    viewer: usize,
    viewer_is_mr: bool,
    distances: &[f64],
    occlusion: &UGraph,
    mr_mask: &[bool],
) -> Vec<bool> {
    let n = distances.len();
    let mut mask = vec![true; n];
    mask[viewer] = false; // the target never recommends herself
    if !viewer_is_mr {
        return mask;
    }
    #[allow(clippy::needless_range_loop)] // w is a user id, not a position
    for w in 0..n {
        if w != viewer {
            mask[w] = mask_entry(viewer, distances, occlusion, mr_mask, w);
        }
    }
    mask
}

/// One candidate-mask bit: whether user `w` survives the MR-viewer pruning
/// rule. The single source of truth shared by the from-scratch mask build
/// and the incremental patcher.
fn mask_entry(viewer: usize, distances: &[f64], occlusion: &UGraph, mr_mask: &[bool], w: usize) -> bool {
    // no arc: coincident with the viewer (same 1e-9 cutoff as `arc()`)
    if distances[w] < 1e-9 {
        return false;
    }
    !occlusion.neighbors(w).iter().any(|&u| u != viewer && mr_mask[u] && distances[u] < distances[w])
}

/// Patches a stationary viewer's candidate mask in O(|affected|) bit
/// re-derivations. A user's bit depends only on its own distance to the
/// viewer, its occlusion neighbors, and those neighbors' distances — all
/// bit-identical to the previous tick unless the user moved or one of its
/// incident occlusion edges changed, which is exactly the `affected` set
/// `warm_delta_update` leaves behind.
fn mask_delta_update(
    prev_mask: &[bool],
    viewer: usize,
    viewer_is_mr: bool,
    distances: &[f64],
    occlusion: &UGraph,
    mr_mask: &[bool],
    affected: &AffectedSet,
) -> Vec<bool> {
    let mut mask = prev_mask.to_vec();
    if !viewer_is_mr {
        // non-MR viewers have a tick-invariant mask (all true bar themselves)
        return mask;
    }
    // iterate the recorded affected ids only — O(|affected|), not O(N)
    for &w in affected.ids() {
        if w != viewer {
            mask[w] = mask_entry(viewer, distances, occlusion, mr_mask, w);
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng as _;
    use rand::SeedableRng;

    fn random_positions(n: usize, side: f64, seed: u64) -> Vec<Point2> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Point2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side))).collect()
    }

    fn engine_for(n: usize, mr_every: usize, body_radius: f64) -> SceneEngine {
        let mr_mask: Vec<bool> = (0..n).map(|i| i % mr_every == 0).collect();
        let config = SceneConfig { body_radius, mr_mask, room_diagonal: 10.0 };
        let viewers: Vec<usize> = (0..n).collect();
        SceneEngine::new(n, config, &viewers)
    }

    #[test]
    fn slo_tracker_counts_every_tick_over_a_zero_budget() {
        // a (near-)zero budget makes every real tick a deadline miss — the
        // engine-level injected-breach case without sleeping
        let ctx = xr_obs::ObsCtx::new(true, false);
        let _g = ctx.install();
        let mut engine = engine_for(12, 2, 0.25);
        engine.set_slo(Some(xr_obs::SloTracker::new("session.tick", xr_obs::SloConfig::new(1e-9), &[])));
        for t in 0..5u64 {
            engine.push(Frame::new(random_positions(12, 8.0, t)));
        }
        let slo = engine.slo().unwrap();
        assert_eq!(slo.ticks(), 5);
        assert_eq!(slo.misses(), 5, "every tick must overrun a 1ns budget");
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counter("slo.session.tick.deadline_miss"), Some(5));
        // the windowed latency series recorded under the engine's window
        let series = xr_obs::series_snapshot().unwrap();
        assert!(series.series("session.tick.ms").is_some());
    }

    #[test]
    fn slo_tracker_stays_silent_under_a_huge_budget() {
        let ctx = xr_obs::ObsCtx::new(true, false);
        let _g = ctx.install();
        let mut engine = engine_for(12, 2, 0.25);
        engine.set_slo(Some(xr_obs::SloTracker::new("session.tick", xr_obs::SloConfig::new(1e9), &[])));
        for t in 0..5u64 {
            engine.push(Frame::new(random_positions(12, 8.0, t)));
        }
        assert_eq!(engine.slo().unwrap().misses(), 0);
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counter("slo.session.tick.deadline_miss"), None);
        assert_eq!(snap.counter("slo.session.tick.ticks"), Some(5));
    }

    #[test]
    fn no_budget_means_no_slo_metrics() {
        let ctx = xr_obs::ObsCtx::new(true, false);
        let _g = ctx.install();
        let mut engine = engine_for(8, 2, 0.25);
        engine.set_slo(None);
        engine.push(Frame::new(random_positions(8, 8.0, 1)));
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counter("slo.session.tick.ticks"), None);
        assert_eq!(snap.counter("session.ticks"), Some(1), "normal telemetry unaffected");
    }

    #[test]
    fn distances_match_legacy_rows_bit_for_bit() {
        let n = 24;
        let mut engine = engine_for(n, 2, 0.25);
        let positions = random_positions(n, 8.0, 7);
        engine.push(Frame::new(positions.clone()));
        let state = engine.state(0);
        for v in 0..n {
            let row = state.distance_row(v);
            for w in 0..n {
                let legacy = positions[v].distance(positions[w]);
                assert_eq!(row[w].to_bits(), legacy.to_bits(), "d({v},{w})");
            }
        }
    }

    #[test]
    fn sweep_graph_equals_brute_force_including_adjacency_order() {
        // structural equality (UGraph derives PartialEq over the adjacency
        // Vec) is stronger than edge-set equality: downstream CSR builds and
        // degree iterations must see the identical object
        let conv = OcclusionConverter::new(0.3);
        for seed in 0..30u64 {
            let n = 3 + (seed as usize % 22);
            let positions = random_positions(n, 4.0, seed);
            for viewer in [0, n / 2, n - 1] {
                let arcs = conv.arcs(viewer, &positions);
                let mut tests = 0;
                let swept = sweep_occlusion_graph(&arcs, &mut tests);
                let brute = conv.static_graph(viewer, &positions);
                assert_eq!(swept, brute, "seed {seed}, viewer {viewer}");
            }
        }
    }

    #[test]
    fn sweep_handles_coincident_and_engulfing_arcs() {
        // coincident users (no arc) and d <= r (half_width = π) are the
        // degenerate corners of the sweep's pruning bound
        let conv = OcclusionConverter::new(0.5);
        let positions = vec![
            Point2::new(0.0, 0.0),  // viewer
            Point2::new(0.3, 0.0),  // inside the body radius: π half-width
            Point2::new(0.0, 0.0),  // coincident: no arc
            Point2::new(-2.0, 0.1), // regular
            Point2::new(1.5, -1.5), // regular
        ];
        let arcs = conv.arcs(0, &positions);
        let mut tests = 0;
        assert_eq!(sweep_occlusion_graph(&arcs, &mut tests), conv.static_graph(0, &positions));
    }

    #[test]
    fn candidate_mask_matches_arc_level_definition() {
        // re-derive the mask the legacy way (arc scan) and compare
        let n = 20;
        let conv = OcclusionConverter::new(0.3);
        let mr_mask: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        for seed in 0..20u64 {
            let positions = random_positions(n, 4.0, 100 + seed);
            for viewer in 0..n {
                let arcs = conv.arcs(viewer, &positions);
                let mut expected = vec![true; n];
                expected[viewer] = false;
                if mr_mask[viewer] {
                    for w in 0..n {
                        if w == viewer {
                            continue;
                        }
                        let Some(aw) = arcs[w] else {
                            expected[w] = false;
                            continue;
                        };
                        for u in 0..n {
                            if u == w || u == viewer || !mr_mask[u] {
                                continue;
                            }
                            if let Some(au) = arcs[u] {
                                if au.distance < aw.distance && au.intersects(&aw) {
                                    expected[w] = false;
                                    break;
                                }
                            }
                        }
                    }
                }
                let mut tests = 0;
                let graph = sweep_occlusion_graph(&arcs, &mut tests);
                let distances: Vec<f64> = (0..n).map(|w| positions[viewer].distance(positions[w])).collect();
                let mask = candidate_mask_from_shared(viewer, mr_mask[viewer], &distances, &graph, &mr_mask);
                assert_eq!(mask, expected, "seed {seed}, viewer {viewer}");
            }
        }
    }

    #[test]
    fn incremental_pushes_match_from_scratch_rebuild() {
        // pushing frames one at a time must leave exactly the state a fresh
        // engine fed the same frames produces — the engine has no hidden
        // cross-tick coupling to drift on
        let n = 16;
        let frames: Vec<Vec<Point2>> = (0..6).map(|t| random_positions(n, 6.0, 40 + t)).collect();
        let mut incremental = engine_for(n, 3, 0.25);
        for f in &frames {
            incremental.push(Frame::new(f.clone()));
        }
        for t in 0..frames.len() {
            let mut fresh = engine_for(n, 3, 0.25);
            for f in &frames[..=t] {
                fresh.push(Frame::new(f.clone()));
            }
            assert_states_bitwise_equal(incremental.state(t), fresh.state(t), &format!("t={t}"));
        }
    }

    /// The dense parts of a full-mode state (tests only ever unpack full
    /// states through this; pruned states have their own assertions).
    fn full_parts(s: &SceneState) -> (&Vec<f64>, &Vec<Arc<UGraph>>, &Vec<Vec<bool>>) {
        match &s.payload {
            StatePayload::Full { distances, occlusion, candidate_mask } => {
                (distances, occlusion, candidate_mask)
            }
            StatePayload::Pruned { .. } => panic!("expected a full-mode state"),
        }
    }

    /// Bounded random walk with teleports: the workload the incremental path
    /// exists for. `mover_frac` of the users take a small step each tick,
    /// teleports land anywhere in the room.
    fn coherent_frames(
        n: usize,
        ticks: usize,
        side: f64,
        mover_frac: f64,
        teleport_prob: f64,
        seed: u64,
    ) -> Vec<Vec<Point2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cur = random_positions(n, side, seed ^ 0xABCD);
        let mut frames = vec![cur.clone()];
        for _ in 1..ticks {
            for p in cur.iter_mut() {
                if rng.gen_bool(teleport_prob) {
                    *p = Point2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
                } else if rng.gen_bool(mover_frac) {
                    let (dx, dy) = (rng.gen_range(-0.1..0.1), rng.gen_range(-0.1..0.1));
                    *p = Point2::new((p.x + dx).clamp(0.0, side), (p.y + dy).clamp(0.0, side));
                }
            }
            frames.push(cur.clone());
        }
        frames
    }

    fn assert_states_bitwise_equal(a: &SceneState, b: &SceneState, ctx: &str) {
        assert_eq!(a.positions, b.positions, "{ctx}: positions");
        let (ad, ao, am) = full_parts(a);
        let (bd, bo, bm) = full_parts(b);
        let da: Vec<u64> = ad.iter().map(|d| d.to_bits()).collect();
        let db: Vec<u64> = bd.iter().map(|d| d.to_bits()).collect();
        assert_eq!(da, db, "{ctx}: distance bits");
        assert_eq!(ao, bo, "{ctx}: occlusion (UGraph Eq)");
        assert_eq!(am, bm, "{ctx}: candidate masks");
    }

    #[test]
    fn incremental_path_is_bitwise_identical_to_from_scratch() {
        for seed in 0..8u64 {
            let n = 10 + (seed as usize % 15);
            let frames = coherent_frames(n, 12, 6.0, 0.3, 0.05, 900 + seed);
            let mut inc = engine_for(n, 3, 0.25);
            inc.set_incremental(true);
            let mut scratch = engine_for(n, 3, 0.25);
            scratch.set_incremental(false);
            for f in &frames {
                inc.push(Frame::new(f.clone()));
                scratch.push(Frame::new(f.clone()));
            }
            for t in 0..frames.len() {
                assert_states_bitwise_equal(inc.state(t), scratch.state(t), &format!("seed {seed}, t={t}"));
            }
        }
    }

    #[test]
    fn incremental_path_handles_fully_static_and_fully_teleporting_frames() {
        let n = 14;
        // frame 1 repeats frame 0 exactly (everyone stationary), frame 2
        // teleports everyone, frame 3 repeats frame 2
        let f0 = random_positions(n, 5.0, 77);
        let f2 = random_positions(n, 5.0, 78);
        let frames = vec![f0.clone(), f0, f2.clone(), f2];
        let mut inc = engine_for(n, 2, 0.25);
        inc.set_incremental(true);
        let mut scratch = engine_for(n, 2, 0.25);
        scratch.set_incremental(false);
        for f in &frames {
            inc.push(Frame::new(f.clone()));
            scratch.push(Frame::new(f.clone()));
        }
        for t in 0..frames.len() {
            assert_states_bitwise_equal(inc.state(t), scratch.state(t), &format!("t={t}"));
        }
    }

    #[test]
    fn incremental_with_retention_one_still_matches_the_oracle() {
        // retention=1 compacts everything but the newest state right after
        // each push — the previous-state lookup must still see tick t−1
        let n = 12;
        let frames = coherent_frames(n, 10, 6.0, 0.4, 0.1, 55);
        let mut inc = engine_for(n, 2, 0.25);
        inc.set_incremental(true);
        inc.set_state_retention(Some(1));
        let mut scratch = engine_for(n, 2, 0.25);
        scratch.set_incremental(false);
        for f in &frames {
            inc.push(Frame::new(f.clone()));
            scratch.push(Frame::new(f.clone()));
        }
        let last = frames.len() - 1;
        assert_eq!(inc.first_retained_tick(), last);
        assert_states_bitwise_equal(inc.state(last), scratch.state(last), "retention=1 final tick");
    }

    #[test]
    fn toggling_incremental_mid_session_rebuilds_cleanly() {
        let n = 12;
        let frames = coherent_frames(n, 9, 6.0, 0.4, 0.1, 66);
        let mut toggled = engine_for(n, 2, 0.25);
        let mut scratch = engine_for(n, 2, 0.25);
        scratch.set_incremental(false);
        for (t, f) in frames.iter().enumerate() {
            // flip the path every third tick: stale warm caches must never
            // leak across the switch
            toggled.set_incremental((t / 3) % 2 == 0);
            toggled.push(Frame::new(f.clone()));
            scratch.push(Frame::new(f.clone()));
        }
        for t in 0..frames.len() {
            assert_states_bitwise_equal(toggled.state(t), scratch.state(t), &format!("t={t}"));
        }
    }

    #[test]
    fn snap_epsilon_is_shared_ingest_semantics_on_both_paths() {
        // with a positive epsilon, sub-epsilon jitter snaps to the previous
        // effective position on BOTH paths — and the paths agree bitwise
        let n = 10;
        let mut rng = StdRng::seed_from_u64(99);
        let base = random_positions(n, 5.0, 99);
        let mut frames = vec![base.clone()];
        for _ in 1..8 {
            let prev = frames.last().unwrap().clone();
            let jittered: Vec<Point2> = prev
                .iter()
                .map(|p| Point2::new(p.x + rng.gen_range(-1e-4..1e-4), p.y + rng.gen_range(-1e-4..1e-4)))
                .collect();
            frames.push(jittered);
        }
        let mut inc = engine_for(n, 2, 0.25);
        inc.set_incremental(true);
        inc.set_snap_epsilon(1e-3);
        let mut scratch = engine_for(n, 2, 0.25);
        scratch.set_incremental(false);
        scratch.set_snap_epsilon(1e-3);
        for f in &frames {
            inc.push(Frame::new(f.clone()));
            scratch.push(Frame::new(f.clone()));
        }
        for t in 0..frames.len() {
            assert_states_bitwise_equal(inc.state(t), scratch.state(t), &format!("t={t}"));
            // jitter stays under the snap radius: everyone holds position
            assert_eq!(inc.state(t).positions(), inc.state(0).positions(), "t={t}: snapped still");
        }
        // zero epsilon leaves raw positions untouched (numeric no-op)
        let mut raw = engine_for(n, 2, 0.25);
        raw.push(Frame::new(frames[0].clone()));
        raw.push(Frame::new(frames[1].clone()));
        assert_eq!(raw.state(1).positions(), &frames[1][..]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_snap_epsilon_panics() {
        engine_for(4, 2, 0.25).set_snap_epsilon(-1.0);
    }

    #[test]
    fn retention_keeps_the_last_k_states_at_stable_tick_indices() {
        let n = 12;
        let mut bounded = engine_for(n, 2, 0.25);
        bounded.set_state_retention(Some(3));
        let mut unbounded = engine_for(n, 2, 0.25);
        for t in 0..10u64 {
            let f = random_positions(n, 6.0, 200 + t);
            assert_eq!(bounded.push(Frame::new(f.clone())), t as usize, "tick indices unaffected");
            unbounded.push(Frame::new(f));
        }
        assert_eq!(bounded.ticks(), 10);
        assert_eq!(bounded.first_retained_tick(), 7);
        for t in 7..10 {
            // retained states are addressed by their original tick index and
            // identical to the unbounded engine's
            assert_eq!(full_parts(bounded.state(t)).0, full_parts(unbounded.state(t)).0, "t={t}");
            assert_eq!(bounded.view(0, t).candidate_mask(), unbounded.view(0, t).candidate_mask());
        }
        assert_eq!(bounded.latest_state().unwrap().positions(), unbounded.state(9).positions());
        assert_eq!(bounded.into_states().len(), 3);
    }

    #[test]
    fn retention_can_be_tightened_mid_session() {
        let mut engine = engine_for(6, 2, 0.25);
        for t in 0..5u64 {
            engine.push(Frame::new(random_positions(6, 5.0, 300 + t)));
        }
        assert_eq!(engine.first_retained_tick(), 0);
        engine.set_state_retention(Some(1));
        assert_eq!(engine.first_retained_tick(), 4, "tightening compacts immediately");
        assert_eq!(engine.ticks(), 5);
    }

    #[test]
    #[should_panic(expected = "compacted away")]
    fn reading_a_compacted_tick_panics() {
        let mut engine = engine_for(6, 2, 0.25);
        engine.set_state_retention(Some(1));
        for t in 0..3u64 {
            engine.push(Frame::new(random_positions(6, 5.0, 400 + t)));
        }
        engine.state(0);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn zero_retention_panics() {
        engine_for(4, 2, 0.25).set_state_retention(Some(0));
    }

    #[test]
    fn views_expose_the_registered_viewers_slice() {
        let n = 10;
        let config = SceneConfig { body_radius: 0.2, mr_mask: vec![false; n], room_diagonal: 10.0 };
        let mut engine = SceneEngine::new(n, config, &[4, 7, 4]); // duplicate collapses
        assert_eq!(engine.viewers(), &[4, 7]);
        engine.push(Frame::new(random_positions(n, 5.0, 9)));
        let view = engine.view(7, 0);
        assert_eq!(view.viewer(), 7);
        assert_eq!(view.distances().len(), n);
        assert_eq!(view.candidate_mask().iter().filter(|&&b| !b).count(), 1);
        assert_eq!(view.occlusion().node_count(), n);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_viewer_panics() {
        let n = 6;
        let config = SceneConfig { body_radius: 0.2, mr_mask: vec![false; n], room_diagonal: 8.0 };
        let mut engine = SceneEngine::new(n, config, &[1]);
        engine.push(Frame::new(random_positions(n, 5.0, 3)));
        engine.view(2, 0);
    }

    #[test]
    #[should_panic(expected = "wrong participant count")]
    fn wrong_frame_width_panics() {
        let mut engine = engine_for(4, 2, 0.2);
        engine.push(Frame::new(random_positions(5, 5.0, 1)));
    }

    #[test]
    fn pruned_at_full_k_densifies_bitwise_identical_to_the_full_path() {
        // K ≥ n−1 makes every shortlist complete, so into_parts of the
        // pruned state must reproduce the full path's parts bit for bit —
        // the heart of the AFTER_PRUNE_K=0 oracle contract
        for seed in 0..6u64 {
            let n = 8 + (seed as usize % 10);
            let frames = coherent_frames(n, 6, 5.0, 0.4, 0.1, 500 + seed);
            let mut full = engine_for(n, 2, 0.25);
            full.set_prune_k(0);
            let mut pruned = engine_for(n, 2, 0.25);
            pruned.set_prune_k(n - 1);
            for f in &frames {
                full.push(Frame::new(f.clone()));
                pruned.push(Frame::new(f.clone()));
            }
            for t in 0..frames.len() {
                assert!(pruned.state(t).is_pruned());
                let (fp, fd, fo, fm) = full.state(t).clone().into_parts();
                let (pp, pd, po, pm) = pruned.state(t).clone().into_parts();
                assert_eq!(fp, pp, "seed {seed} t={t}: positions");
                let fb: Vec<u64> = fd.iter().map(|d| d.to_bits()).collect();
                let pb: Vec<u64> = pd.iter().map(|d| d.to_bits()).collect();
                assert_eq!(fb, pb, "seed {seed} t={t}: distance bits");
                assert_eq!(fo, po, "seed {seed} t={t}: occlusion graphs");
                assert_eq!(fm, pm, "seed {seed} t={t}: masks");
            }
        }
    }

    #[test]
    fn pruned_member_quantities_match_the_full_scene_at_serving_k() {
        // at a small serving K the member-level contract still holds: ids
        // are the brute K nearest by (distance, id), member distances and
        // mask bits are bitwise equal to the full scene's, and the
        // restricted edges are the full edge set ∩ members×members
        for seed in 0..6u64 {
            let n = 18;
            let k = 6;
            let positions = random_positions(n, 5.0, 700 + seed);
            let mut full = engine_for(n, 2, 0.25);
            full.set_prune_k(0);
            full.push(Frame::new(positions.clone()));
            let mut pruned = engine_for(n, 2, 0.25);
            pruned.set_prune_k(k);
            pruned.push(Frame::new(positions.clone()));

            for v in 0..n {
                let fv = full.view(v, 0);
                let cs = pruned.view(v, 0).candidates().expect("pruned view");
                assert_eq!(cs.viewer(), v);
                // brute-force K nearest by (distance, id)
                let mut all: Vec<(f64, u32)> = (0..n)
                    .filter(|&w| w != v)
                    .map(|w| (positions[v].distance(positions[w]), w as u32))
                    .collect();
                all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                all.truncate(k);
                let mut want: Vec<u32> = all.iter().map(|&(_, w)| w).collect();
                want.sort_unstable();
                assert_eq!(cs.ids(), &want[..], "seed {seed} v={v}: membership");
                for (idx, &w) in cs.ids().iter().enumerate() {
                    let w = w as usize;
                    assert_eq!(
                        cs.distances()[idx].to_bits(),
                        fv.distances()[w].to_bits(),
                        "seed {seed} v={v} w={w}: distance"
                    );
                    assert_eq!(
                        cs.mask()[idx],
                        fv.candidate_mask()[w],
                        "seed {seed} v={v} w={w}: mask bit (nearer-occluder closure)"
                    );
                }
                let restricted: Vec<(u32, u32)> = fv
                    .occlusion()
                    .edges()
                    .filter(|&(a, b)| cs.contains(a) && cs.contains(b))
                    .map(|(a, b)| (a as u32, b as u32))
                    .collect();
                assert_eq!(cs.edges(), &restricted[..], "seed {seed} v={v}: restricted edges");
            }
        }
    }

    #[test]
    fn pruned_incremental_reuse_matches_per_tick_rebuild() {
        // the delta path's Arc reuse must be invisible: an incremental
        // pruned engine and a fresh-per-prefix pruned engine agree exactly
        let n = 14;
        let k = 5;
        let frames = coherent_frames(n, 8, 5.0, 0.25, 0.05, 31);
        let mut inc = engine_for(n, 3, 0.25);
        inc.set_prune_k(k);
        inc.set_incremental(true);
        let mut scratch = engine_for(n, 3, 0.25);
        scratch.set_prune_k(k);
        scratch.set_incremental(false);
        for f in &frames {
            inc.push(Frame::new(f.clone()));
            scratch.push(Frame::new(f.clone()));
        }
        for t in 0..frames.len() {
            for v in 0..n {
                let a = inc.view(v, t).candidates().unwrap();
                let b = scratch.view(v, t).candidates().unwrap();
                assert_eq!(a, b, "t={t} v={v}");
            }
        }
    }

    #[test]
    fn pruned_static_frames_reuse_shortlists_by_pointer() {
        let n = 12;
        let f0 = random_positions(n, 5.0, 91);
        let mut engine = engine_for(n, 2, 0.25);
        engine.set_prune_k(4);
        engine.set_incremental(true);
        engine.push(Frame::new(f0.clone()));
        engine.push(Frame::new(f0.clone()));
        for v in 0..n {
            let a = engine.view(v, 0).candidates().unwrap() as *const CandidateSet;
            let b = engine.view(v, 1).candidates().unwrap() as *const CandidateSet;
            assert_eq!(a, b, "v={v}: static tick must carry the shortlist by pointer");
        }
    }

    #[test]
    fn pruned_state_distance_matches_dense_bitwise() {
        let n = 10;
        let positions = random_positions(n, 6.0, 44);
        let mut engine = engine_for(n, 2, 0.25);
        engine.set_prune_k(3);
        engine.push(Frame::new(positions.clone()));
        let state = engine.state(0);
        for i in 0..n {
            for j in 0..n {
                let want = if i == j { 0.0 } else { positions[i].distance(positions[j]) };
                assert_eq!(state.distance(i, j).to_bits(), want.to_bits(), "d({i},{j})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "not materialized in pruned mode")]
    fn pruned_distance_row_panics() {
        let mut engine = engine_for(6, 2, 0.25);
        engine.set_prune_k(2);
        engine.push(Frame::new(random_positions(6, 5.0, 8)));
        engine.state(0).distance_row(0);
    }

    #[test]
    #[should_panic(expected = "not materialized in pruned mode")]
    fn pruned_candidate_mask_panics() {
        let mut engine = engine_for(6, 2, 0.25);
        engine.set_prune_k(2);
        engine.push(Frame::new(random_positions(6, 5.0, 8)));
        engine.view(0, 0).candidate_mask();
    }

    #[test]
    fn toggling_prune_k_mid_session_rebuilds_cleanly() {
        // pruned → full must not leave stale warm caches behind: the full
        // ticks after the switch still match a from-scratch oracle
        let n = 12;
        let frames = coherent_frames(n, 9, 5.0, 0.3, 0.1, 77);
        let mut toggled = engine_for(n, 2, 0.25);
        toggled.set_incremental(true);
        let mut oracle = engine_for(n, 2, 0.25);
        oracle.set_incremental(false);
        for (t, f) in frames.iter().enumerate() {
            toggled.set_prune_k(if (t / 3) % 2 == 0 { 4 } else { 0 });
            toggled.push(Frame::new(f.clone()));
            oracle.push(Frame::new(f.clone()));
        }
        for (t, _) in frames.iter().enumerate() {
            if toggled.state(t).is_pruned() {
                continue;
            }
            assert_states_bitwise_equal(toggled.state(t), oracle.state(t), &format!("t={t}"));
        }
    }
}
