//! The frame-driven scene engine and its shared per-tick state.
//!
//! One [`SceneEngine::push`] call advances the whole scene by one tick:
//! every quantity that is common to all target users — pairwise distances,
//! the occlusion/visibility structure, the MR co-location candidate masks —
//! is computed once and stored in a [`SceneState`]; per-target code borrows
//! it through [`TargetView`] instead of recomputing it.
//!
//! ## Bit-identicality contract
//!
//! The engine is an *optimization layer*, not an approximation:
//!
//! * Distances: `d(i,j)` is measured once per unordered pair with
//!   [`Point2::distance`] and mirrored. `(p_i − p_j)` and `(p_j − p_i)` are
//!   exact IEEE negations, so squares, sum, and square root agree bit for
//!   bit with the legacy per-target row `positions[v].distance(positions[w])`.
//! * Occlusion: per-viewer arcs come from the same
//!   [`OcclusionConverter::arcs`] call as the brute-force build; the angular
//!   sweep only *prunes pairs that cannot intersect* (forward gap beyond
//!   `half_width + max_half_width` plus a safety margin) and every surviving
//!   pair is decided by the exact [`ViewArc::intersects`] predicate. Edges
//!   are inserted in sorted `(min, max)` order — the same order the `i < j`
//!   brute-force loop produces — so the resulting [`UGraph`]s compare equal
//!   including adjacency-list order.
//! * Candidate masks re-derive the legacy `physical_candidate_mask`
//!   semantics from the shared state: a candidate `w` of an MR viewer is
//!   pruned iff it has no arc (coincident, `d < 1e-9`) or some co-located MR
//!   participant's arc overlaps `w`'s while standing strictly nearer — and
//!   "overlaps" is exactly occlusion-graph adjacency, so no arc intersection
//!   is ever re-tested.

use xr_datasets::Scenario;
use xr_graph::geom::Point2;
use xr_graph::{OcclusionConverter, UGraph, ViewArc};

/// Safety margin on the sweep's pruning bound: the forward gap and
/// `angle_diff` compute the same circular distance with different rounding,
/// so pairs within a few ULPs of the bound must still reach the exact
/// predicate. 1e-9 rad is ~10⁶ ULPs at this scale — vastly conservative and
/// still pruning everything that matters.
const SWEEP_MARGIN: f64 = 1e-9;

/// All participant positions at one tick — the unit of ingestion for
/// [`SceneEngine::push`].
#[derive(Debug, Clone)]
pub struct Frame {
    /// Position of every participant (index = user id).
    pub positions: Vec<Point2>,
}

impl Frame {
    /// Wraps a position vector as a frame.
    pub fn new(positions: Vec<Point2>) -> Self {
        Frame { positions }
    }
}

/// Scene-wide constants the engine needs besides the frames themselves.
#[derive(Debug, Clone)]
pub struct SceneConfig {
    /// Avatar body radius (meters) for the occlusion converter.
    pub body_radius: f64,
    /// Which participants join through MR (physically present).
    pub mr_mask: Vec<bool>,
    /// Room diagonal, used by consumers to normalize distances.
    pub room_diagonal: f64,
}

impl SceneConfig {
    /// Extracts the scene constants from a sampled scenario.
    pub fn from_scenario(scenario: &Scenario) -> Self {
        SceneConfig {
            body_radius: scenario.body_radius,
            mr_mask: scenario.mr_mask(),
            room_diagonal: (scenario.room.width().powi(2) + scenario.room.height().powi(2)).sqrt(),
        }
    }
}

/// Shared scene state for one tick: everything per-target code consults,
/// computed once for the whole scene. Owned by the [`SceneEngine`]; borrowed
/// read-only through [`TargetView`].
#[derive(Debug, Clone)]
pub struct SceneState {
    n: usize,
    /// Positions at this tick.
    positions: Vec<Point2>,
    /// Flat row-major `n×n` symmetric distance matrix.
    distances: Vec<f64>,
    /// Static occlusion graph per *registered viewer* (slot order).
    occlusion: Vec<UGraph>,
    /// Hybrid-participation candidate mask per registered viewer.
    candidate_mask: Vec<Vec<bool>>,
}

impl SceneState {
    /// Positions of every participant at this tick.
    pub fn positions(&self) -> &[Point2] {
        &self.positions
    }

    /// Distance between users `i` and `j` (symmetric, bit-exact).
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        self.distances[i * self.n + j]
    }

    /// The full distance row of user `v` (length `n`, `0.0` at `v`).
    pub fn distance_row(&self, v: usize) -> &[f64] {
        &self.distances[v * self.n..(v + 1) * self.n]
    }

    /// Tears the state into its owned parts — positions, the flat `n×n`
    /// distance matrix, and the per-slot occlusion graphs and candidate
    /// masks (slot order = the engine's registered-viewer order). Lets batch
    /// consumers take ownership of the heavy per-viewer structures instead
    /// of cloning them.
    pub fn into_parts(self) -> (Vec<Point2>, Vec<f64>, Vec<UGraph>, Vec<Vec<bool>>) {
        (self.positions, self.distances, self.occlusion, self.candidate_mask)
    }
}

/// A cheap per-target window into one tick's [`SceneState`]. Borrowing —
/// never copying — the shared structures is what keeps per-target cost at
/// O(1) once the scene itself is maintained.
#[derive(Debug, Clone, Copy)]
pub struct TargetView<'a> {
    state: &'a SceneState,
    viewer: usize,
    slot: usize,
}

impl<'a> TargetView<'a> {
    /// The viewer this view belongs to.
    pub fn viewer(&self) -> usize {
        self.viewer
    }

    /// Positions at this tick.
    pub fn positions(&self) -> &'a [Point2] {
        &self.state.positions
    }

    /// The viewer's distance row.
    pub fn distances(&self) -> &'a [f64] {
        self.state.distance_row(self.viewer)
    }

    /// The viewer's static occlusion graph `O_t^v`.
    pub fn occlusion(&self) -> &'a UGraph {
        &self.state.occlusion[self.slot]
    }

    /// The viewer's hybrid-participation candidate mask `m_t`.
    pub fn candidate_mask(&self) -> &'a [bool] {
        &self.state.candidate_mask[self.slot]
    }
}

/// The streaming scene engine: feed it one [`Frame`] per tick, read shared
/// state back through [`SceneEngine::state`] / [`SceneEngine::view`].
///
/// Viewers (the target users whose occlusion structure is needed) are
/// registered up front so a single-target session does not pay for N
/// per-viewer graphs; the scene-wide distance matrix is maintained either
/// way and shared by all of them.
#[derive(Debug, Clone)]
pub struct SceneEngine {
    converter: OcclusionConverter,
    config: SceneConfig,
    n: usize,
    viewers: Vec<usize>,
    /// `slot_of[v]` is the slot index of viewer `v`, if registered.
    slot_of: Vec<Option<usize>>,
    states: Vec<SceneState>,
    /// Tick index of `states[0]` — nonzero once retention compacted history.
    base: usize,
    /// `Some(k)`: keep only the last `k` states (long-running serving);
    /// `None`: keep everything (episode replay/training).
    retain: Option<usize>,
    /// Per-tick deadline tracking, when `AFTER_SLO_BUDGET_MS` (or
    /// [`SceneEngine::set_slo`]) configured a budget.
    slo: Option<xr_obs::SloTracker>,
}

impl SceneEngine {
    /// An engine for an `n`-participant scene with the given registered
    /// viewers.
    ///
    /// # Panics
    ///
    /// Panics when `config.mr_mask` is not `n`-long or a viewer is out of
    /// range.
    pub fn new(n: usize, config: SceneConfig, viewers: &[usize]) -> Self {
        assert_eq!(config.mr_mask.len(), n, "mr_mask length mismatch");
        let mut slot_of = vec![None; n];
        let mut unique = Vec::with_capacity(viewers.len());
        for &v in viewers {
            assert!(v < n, "viewer {v} out of range (n={n})");
            if slot_of[v].is_none() {
                slot_of[v] = Some(unique.len());
                unique.push(v);
            }
        }
        let converter = OcclusionConverter::new(config.body_radius);
        SceneEngine {
            converter,
            config,
            n,
            viewers: unique,
            slot_of,
            states: Vec::new(),
            base: 0,
            retain: None,
            slo: xr_obs::SloTracker::from_env("session.tick"),
        }
    }

    /// An engine over a sampled scenario's constants (frames still have to
    /// be pushed — typically the scenario's trajectory, one tick at a time).
    pub fn for_scenario(scenario: &Scenario, viewers: &[usize]) -> Self {
        SceneEngine::new(scenario.n(), SceneConfig::from_scenario(scenario), viewers)
    }

    /// Number of participants.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Registered viewers, in slot order.
    pub fn viewers(&self) -> &[usize] {
        &self.viewers
    }

    /// Scene constants.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// The occlusion converter (body radius) used for all visibility work.
    pub fn converter(&self) -> &OcclusionConverter {
        &self.converter
    }

    /// Number of ticks ingested so far (including compacted ones).
    pub fn ticks(&self) -> usize {
        self.base + self.states.len()
    }

    /// Bounds the retained scene-state history: `Some(k)` keeps only the
    /// last `k` ticks (compacting immediately and on every later push),
    /// `None` (the default) keeps every tick. Long-running serving sessions
    /// must bound retention — a room ticking for hours would otherwise
    /// accumulate O(n²) state per tick forever; episode replay and training
    /// keep the full history.
    ///
    /// # Panics
    ///
    /// Panics when `keep_last` is `Some(0)` — the current tick's state must
    /// always be readable after a push.
    pub fn set_state_retention(&mut self, keep_last: Option<usize>) {
        assert!(keep_last != Some(0), "retention must keep at least one state");
        self.retain = keep_last;
        self.compact();
    }

    /// The oldest tick whose state is still retained (0 until retention
    /// compacts history).
    pub fn first_retained_tick(&self) -> usize {
        self.base
    }

    fn compact(&mut self) {
        if let Some(keep) = self.retain {
            if self.states.len() > keep {
                let drop = self.states.len() - keep;
                self.states.drain(..drop);
                self.base += drop;
            }
        }
    }

    /// Installs (or clears) a per-tick deadline tracker, overriding the
    /// env-configured default.
    pub fn set_slo(&mut self, slo: Option<xr_obs::SloTracker>) {
        self.slo = slo;
    }

    /// The active deadline tracker, if any.
    pub fn slo(&self) -> Option<&xr_obs::SloTracker> {
        self.slo.as_ref()
    }

    /// Ingests one frame, computing the tick's shared [`SceneState`].
    /// Returns the tick index the frame landed on.
    ///
    /// # Panics
    ///
    /// Panics when the frame's participant count differs from the engine's.
    pub fn push(&mut self, frame: Frame) -> usize {
        let t = self.ticks();
        let _span = xr_obs::span!("session.tick", t = t, n = self.n, viewers = self.viewers.len());
        // Instant::now only when someone will read the measurement
        let tick_start = self.slo.as_ref().map(|_| std::time::Instant::now());
        assert_eq!(frame.positions.len(), self.n, "frame has wrong participant count");
        let positions = frame.positions;
        let distances = pairwise_distances(&positions);

        let mut occlusion = Vec::with_capacity(self.viewers.len());
        let mut candidate_mask = Vec::with_capacity(self.viewers.len());
        let mut pair_tests = 0u64;
        for &v in &self.viewers {
            let arcs = self.converter.arcs(v, &positions);
            let graph = sweep_occlusion_graph(&arcs, &mut pair_tests);
            let row = &distances[v * self.n..(v + 1) * self.n];
            let mask =
                candidate_mask_from_shared(v, self.config.mr_mask[v], row, &graph, &self.config.mr_mask);
            occlusion.push(graph);
            candidate_mask.push(mask);
        }
        // shared-state reuse telemetry: one tick serves every registered
        // viewer, and the sweep's exact-predicate evaluations replace
        // V·N(N−1)/2 brute-force tests
        xr_obs::counter_add("session.ticks", &[], 1);
        xr_obs::counter_add("session.views_served", &[], self.viewers.len() as u64);
        xr_obs::counter_add("session.sweep.pair_tests", &[], pair_tests);
        let brute = (self.viewers.len() as u64) * (self.n as u64) * (self.n as u64 - 1) / 2;
        xr_obs::counter_add("session.sweep.pair_tests_saved", &[], brute.saturating_sub(pair_tests));

        self.states.push(SceneState { n: self.n, positions, distances, occlusion, candidate_mask });
        self.compact();
        if let (Some(slo), Some(start)) = (&mut self.slo, tick_start) {
            let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
            slo.record(t as u64, elapsed_ms);
            xr_obs::series_observe(
                "session.tick.ms",
                &[],
                t as u64 / slo.config().series_window_ticks,
                elapsed_ms,
            );
        }
        t
    }

    /// Convenience: pushes every tick of a scenario's trajectory.
    pub fn push_scenario(&mut self, scenario: &Scenario) {
        for positions in &scenario.trajectories {
            self.push(Frame::new(positions.clone()));
        }
    }

    /// The shared scene state at tick `t`.
    ///
    /// # Panics
    ///
    /// Panics when tick `t` was compacted away by state retention (or never
    /// ingested).
    pub fn state(&self, t: usize) -> &SceneState {
        assert!(
            t >= self.base,
            "tick {t} was compacted away (retention keeps ticks {}..{})",
            self.base,
            self.ticks()
        );
        &self.states[t - self.base]
    }

    /// The most recent tick's state, if any frame has been ingested.
    pub fn latest_state(&self) -> Option<&SceneState> {
        self.states.last()
    }

    /// A borrowed per-target view at tick `t`.
    ///
    /// # Panics
    ///
    /// Panics when `viewer` was not registered at construction.
    pub fn view(&self, viewer: usize, t: usize) -> TargetView<'_> {
        let slot =
            self.slot_of[viewer].unwrap_or_else(|| panic!("viewer {viewer} not registered with this engine"));
        TargetView { state: self.state(t), viewer, slot }
    }

    /// The slot index of a registered viewer.
    pub fn slot_of(&self, viewer: usize) -> Option<usize> {
        self.slot_of.get(viewer).copied().flatten()
    }

    /// Consumes the engine, yielding every **retained** tick's shared state
    /// in order (all of them unless [`SceneEngine::set_state_retention`]
    /// compacted history). Use [`SceneState::into_parts`] to take ownership
    /// of the per-slot structures without a copy.
    pub fn into_states(self) -> Vec<SceneState> {
        self.states
    }
}

/// Flat row-major symmetric distance matrix: each unordered pair is measured
/// once and mirrored (bit-exact — see the module docs).
fn pairwise_distances(positions: &[Point2]) -> Vec<f64> {
    let n = positions.len();
    let mut d = vec![0.0; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let v = positions[i].distance(positions[j]);
            d[i * n + j] = v;
            d[j * n + i] = v;
        }
    }
    d
}

/// Builds one viewer's static occlusion graph from its arcs with an angular
/// sweep: arcs sorted by center, each compared only against arcs within
/// `half_width + max_half_width` forward gap. Candidate pairs are decided by
/// the exact [`ViewArc::intersects`] predicate and inserted in sorted order,
/// reproducing the brute-force graph structurally.
fn sweep_occlusion_graph(arcs: &[Option<ViewArc>], pair_tests: &mut u64) -> UGraph {
    let n = arcs.len();
    let mut order: Vec<usize> = (0..n).filter(|&w| arcs[w].is_some()).collect();
    order.sort_by(|&a, &b| arcs[a].unwrap().center.total_cmp(&arcs[b].unwrap().center).then(a.cmp(&b)));
    let m = order.len();
    if m < 2 {
        return UGraph::new(n);
    }
    // compact sorted arrays: the hot loop touches only these, not the
    // Option-boxed arc slice
    let sorted: Vec<ViewArc> = order.iter().map(|&w| arcs[w].unwrap()).collect();
    let max_half_width = sorted.iter().map(|a| a.half_width).fold(f64::NEG_INFINITY, f64::max);

    let mut edges: Vec<(usize, usize)> = Vec::new();
    for s in 0..m {
        let i = order[s];
        let ai = sorted[s];
        // beyond this forward gap no arc can reach back to `ai`; forward
        // gaps are nondecreasing along the sorted lap, so the first
        // out-of-reach arc ends the scan — pairs whose shorter gap runs the
        // other way are found from the partner's own forward scan
        let reach = ai.half_width + max_half_width + SWEEP_MARGIN;
        let mut wrap = true;
        for sj in (s + 1)..m {
            let gap = sorted[sj].center - ai.center; // ≥ 0: sorted
            if gap > reach {
                wrap = false;
                break;
            }
            *pair_tests += 1;
            if ai.intersects(&sorted[sj]) {
                let j = order[sj];
                edges.push((i.min(j), i.max(j)));
            }
        }
        if wrap {
            // wrapped portion of the lap; gaps stay nondecreasing across it
            for sj in 0..s {
                let gap = sorted[sj].center - ai.center + std::f64::consts::TAU;
                if gap > reach {
                    break;
                }
                *pair_tests += 1;
                if ai.intersects(&sorted[sj]) {
                    let j = order[sj];
                    edges.push((i.min(j), i.max(j)));
                }
            }
        }
    }
    // each intersecting pair can be reached from both endpoints' forward
    // scans; sorted dedup reproduces the brute-force i<j insertion order
    edges.sort_unstable();
    edges.dedup();
    UGraph::from_sorted_unique_edges(n, edges)
}

/// Candidate mask `m_t` for one viewer, derived from the shared state: the
/// legacy semantics (a physically present MR participant standing strictly
/// nearer in an overlapping arc prunes the candidate) with "overlapping arc"
/// read off the occlusion graph instead of re-tested.
fn candidate_mask_from_shared(
    viewer: usize,
    viewer_is_mr: bool,
    distances: &[f64],
    occlusion: &UGraph,
    mr_mask: &[bool],
) -> Vec<bool> {
    let n = distances.len();
    let mut mask = vec![true; n];
    mask[viewer] = false; // the target never recommends herself
    if !viewer_is_mr {
        return mask;
    }
    #[allow(clippy::needless_range_loop)] // w is a user id, not a position
    for w in 0..n {
        if w == viewer {
            continue;
        }
        // no arc: coincident with the viewer (same 1e-9 cutoff as `arc()`)
        if distances[w] < 1e-9 {
            mask[w] = false;
            continue;
        }
        let blocked =
            occlusion.neighbors(w).iter().any(|&u| u != viewer && mr_mask[u] && distances[u] < distances[w]);
        if blocked {
            mask[w] = false;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng as _;
    use rand::SeedableRng;

    fn random_positions(n: usize, side: f64, seed: u64) -> Vec<Point2> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Point2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side))).collect()
    }

    fn engine_for(n: usize, mr_every: usize, body_radius: f64) -> SceneEngine {
        let mr_mask: Vec<bool> = (0..n).map(|i| i % mr_every == 0).collect();
        let config = SceneConfig { body_radius, mr_mask, room_diagonal: 10.0 };
        let viewers: Vec<usize> = (0..n).collect();
        SceneEngine::new(n, config, &viewers)
    }

    #[test]
    fn slo_tracker_counts_every_tick_over_a_zero_budget() {
        // a (near-)zero budget makes every real tick a deadline miss — the
        // engine-level injected-breach case without sleeping
        let ctx = xr_obs::ObsCtx::new(true, false);
        let _g = ctx.install();
        let mut engine = engine_for(12, 2, 0.25);
        engine.set_slo(Some(xr_obs::SloTracker::new("session.tick", xr_obs::SloConfig::new(1e-9), &[])));
        for t in 0..5u64 {
            engine.push(Frame::new(random_positions(12, 8.0, t)));
        }
        let slo = engine.slo().unwrap();
        assert_eq!(slo.ticks(), 5);
        assert_eq!(slo.misses(), 5, "every tick must overrun a 1ns budget");
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counter("slo.session.tick.deadline_miss"), Some(5));
        // the windowed latency series recorded under the engine's window
        let series = xr_obs::series_snapshot().unwrap();
        assert!(series.series("session.tick.ms").is_some());
    }

    #[test]
    fn slo_tracker_stays_silent_under_a_huge_budget() {
        let ctx = xr_obs::ObsCtx::new(true, false);
        let _g = ctx.install();
        let mut engine = engine_for(12, 2, 0.25);
        engine.set_slo(Some(xr_obs::SloTracker::new("session.tick", xr_obs::SloConfig::new(1e9), &[])));
        for t in 0..5u64 {
            engine.push(Frame::new(random_positions(12, 8.0, t)));
        }
        assert_eq!(engine.slo().unwrap().misses(), 0);
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counter("slo.session.tick.deadline_miss"), None);
        assert_eq!(snap.counter("slo.session.tick.ticks"), Some(5));
    }

    #[test]
    fn no_budget_means_no_slo_metrics() {
        let ctx = xr_obs::ObsCtx::new(true, false);
        let _g = ctx.install();
        let mut engine = engine_for(8, 2, 0.25);
        engine.set_slo(None);
        engine.push(Frame::new(random_positions(8, 8.0, 1)));
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counter("slo.session.tick.ticks"), None);
        assert_eq!(snap.counter("session.ticks"), Some(1), "normal telemetry unaffected");
    }

    #[test]
    fn distances_match_legacy_rows_bit_for_bit() {
        let n = 24;
        let mut engine = engine_for(n, 2, 0.25);
        let positions = random_positions(n, 8.0, 7);
        engine.push(Frame::new(positions.clone()));
        let state = engine.state(0);
        for v in 0..n {
            let row = state.distance_row(v);
            for w in 0..n {
                let legacy = positions[v].distance(positions[w]);
                assert_eq!(row[w].to_bits(), legacy.to_bits(), "d({v},{w})");
            }
        }
    }

    #[test]
    fn sweep_graph_equals_brute_force_including_adjacency_order() {
        // structural equality (UGraph derives PartialEq over the adjacency
        // Vec) is stronger than edge-set equality: downstream CSR builds and
        // degree iterations must see the identical object
        let conv = OcclusionConverter::new(0.3);
        for seed in 0..30u64 {
            let n = 3 + (seed as usize % 22);
            let positions = random_positions(n, 4.0, seed);
            for viewer in [0, n / 2, n - 1] {
                let arcs = conv.arcs(viewer, &positions);
                let mut tests = 0;
                let swept = sweep_occlusion_graph(&arcs, &mut tests);
                let brute = conv.static_graph(viewer, &positions);
                assert_eq!(swept, brute, "seed {seed}, viewer {viewer}");
            }
        }
    }

    #[test]
    fn sweep_handles_coincident_and_engulfing_arcs() {
        // coincident users (no arc) and d <= r (half_width = π) are the
        // degenerate corners of the sweep's pruning bound
        let conv = OcclusionConverter::new(0.5);
        let positions = vec![
            Point2::new(0.0, 0.0),  // viewer
            Point2::new(0.3, 0.0),  // inside the body radius: π half-width
            Point2::new(0.0, 0.0),  // coincident: no arc
            Point2::new(-2.0, 0.1), // regular
            Point2::new(1.5, -1.5), // regular
        ];
        let arcs = conv.arcs(0, &positions);
        let mut tests = 0;
        assert_eq!(sweep_occlusion_graph(&arcs, &mut tests), conv.static_graph(0, &positions));
    }

    #[test]
    fn candidate_mask_matches_arc_level_definition() {
        // re-derive the mask the legacy way (arc scan) and compare
        let n = 20;
        let conv = OcclusionConverter::new(0.3);
        let mr_mask: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        for seed in 0..20u64 {
            let positions = random_positions(n, 4.0, 100 + seed);
            for viewer in 0..n {
                let arcs = conv.arcs(viewer, &positions);
                let mut expected = vec![true; n];
                expected[viewer] = false;
                if mr_mask[viewer] {
                    for w in 0..n {
                        if w == viewer {
                            continue;
                        }
                        let Some(aw) = arcs[w] else {
                            expected[w] = false;
                            continue;
                        };
                        for u in 0..n {
                            if u == w || u == viewer || !mr_mask[u] {
                                continue;
                            }
                            if let Some(au) = arcs[u] {
                                if au.distance < aw.distance && au.intersects(&aw) {
                                    expected[w] = false;
                                    break;
                                }
                            }
                        }
                    }
                }
                let mut tests = 0;
                let graph = sweep_occlusion_graph(&arcs, &mut tests);
                let distances: Vec<f64> = (0..n).map(|w| positions[viewer].distance(positions[w])).collect();
                let mask = candidate_mask_from_shared(viewer, mr_mask[viewer], &distances, &graph, &mr_mask);
                assert_eq!(mask, expected, "seed {seed}, viewer {viewer}");
            }
        }
    }

    #[test]
    fn incremental_pushes_match_from_scratch_rebuild() {
        // pushing frames one at a time must leave exactly the state a fresh
        // engine fed the same frames produces — the engine has no hidden
        // cross-tick coupling to drift on
        let n = 16;
        let frames: Vec<Vec<Point2>> = (0..6).map(|t| random_positions(n, 6.0, 40 + t)).collect();
        let mut incremental = engine_for(n, 3, 0.25);
        for f in &frames {
            incremental.push(Frame::new(f.clone()));
        }
        for t in 0..frames.len() {
            let mut fresh = engine_for(n, 3, 0.25);
            for f in &frames[..=t] {
                fresh.push(Frame::new(f.clone()));
            }
            let (a, b) = (incremental.state(t), fresh.state(t));
            assert_eq!(a.distances, b.distances, "t={t}");
            assert_eq!(a.occlusion, b.occlusion, "t={t}");
            assert_eq!(a.candidate_mask, b.candidate_mask, "t={t}");
        }
    }

    #[test]
    fn retention_keeps_the_last_k_states_at_stable_tick_indices() {
        let n = 12;
        let mut bounded = engine_for(n, 2, 0.25);
        bounded.set_state_retention(Some(3));
        let mut unbounded = engine_for(n, 2, 0.25);
        for t in 0..10u64 {
            let f = random_positions(n, 6.0, 200 + t);
            assert_eq!(bounded.push(Frame::new(f.clone())), t as usize, "tick indices unaffected");
            unbounded.push(Frame::new(f));
        }
        assert_eq!(bounded.ticks(), 10);
        assert_eq!(bounded.first_retained_tick(), 7);
        for t in 7..10 {
            // retained states are addressed by their original tick index and
            // identical to the unbounded engine's
            assert_eq!(bounded.state(t).distances, unbounded.state(t).distances, "t={t}");
            assert_eq!(bounded.view(0, t).candidate_mask(), unbounded.view(0, t).candidate_mask());
        }
        assert_eq!(bounded.latest_state().unwrap().positions(), unbounded.state(9).positions());
        assert_eq!(bounded.into_states().len(), 3);
    }

    #[test]
    fn retention_can_be_tightened_mid_session() {
        let mut engine = engine_for(6, 2, 0.25);
        for t in 0..5u64 {
            engine.push(Frame::new(random_positions(6, 5.0, 300 + t)));
        }
        assert_eq!(engine.first_retained_tick(), 0);
        engine.set_state_retention(Some(1));
        assert_eq!(engine.first_retained_tick(), 4, "tightening compacts immediately");
        assert_eq!(engine.ticks(), 5);
    }

    #[test]
    #[should_panic(expected = "compacted away")]
    fn reading_a_compacted_tick_panics() {
        let mut engine = engine_for(6, 2, 0.25);
        engine.set_state_retention(Some(1));
        for t in 0..3u64 {
            engine.push(Frame::new(random_positions(6, 5.0, 400 + t)));
        }
        engine.state(0);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn zero_retention_panics() {
        engine_for(4, 2, 0.25).set_state_retention(Some(0));
    }

    #[test]
    fn views_expose_the_registered_viewers_slice() {
        let n = 10;
        let config = SceneConfig { body_radius: 0.2, mr_mask: vec![false; n], room_diagonal: 10.0 };
        let mut engine = SceneEngine::new(n, config, &[4, 7, 4]); // duplicate collapses
        assert_eq!(engine.viewers(), &[4, 7]);
        engine.push(Frame::new(random_positions(n, 5.0, 9)));
        let view = engine.view(7, 0);
        assert_eq!(view.viewer(), 7);
        assert_eq!(view.distances().len(), n);
        assert_eq!(view.candidate_mask().iter().filter(|&&b| !b).count(), 1);
        assert_eq!(view.occlusion().node_count(), n);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_viewer_panics() {
        let n = 6;
        let config = SceneConfig { body_radius: 0.2, mr_mask: vec![false; n], room_diagonal: 8.0 };
        let mut engine = SceneEngine::new(n, config, &[1]);
        engine.push(Frame::new(random_positions(n, 5.0, 3)));
        engine.view(2, 0);
    }

    #[test]
    #[should_panic(expected = "wrong participant count")]
    fn wrong_frame_width_panics() {
        let mut engine = engine_for(4, 2, 0.2);
        engine.push(Frame::new(random_positions(5, 5.0, 1)));
    }
}
