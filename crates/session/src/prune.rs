//! Hierarchical K-candidate pruning: a two-level spatial index and the
//! per-viewer [`CandidateSet`] shortlist every crowd-scale stage operates on.
//!
//! ## Why
//!
//! Every per-viewer stage of the pipeline — the occlusion sweep, candidate
//! masks, MIA edge-deltas, PDR/LWP scoring, the serving top-k decision — is
//! O(N) or worse in the participant count when it walks the implicit all-N
//! candidate set. At venue scale (stadium/concert scenes, N=10k–100k) that
//! caps a tick; the shortlist contract makes per-viewer work O(K) instead:
//! the scene maintains one [`PruneIndex`] per tick (O(N) counting sort) and
//! each registered viewer reads a K-nearest shortlist out of it.
//!
//! ## The candidate-set contract
//!
//! A [`CandidateSet`] for viewer `v` is the `K` nearest other users ordered
//! by the total key `(distance, id)` — `f64::total_cmp` on the exact f64
//! distance, ties broken by ascending user id. Two invariants follow and
//! everything downstream leans on them:
//!
//! * **Nearer-occluder closure.** If `w` is in the shortlist, every user
//!   *strictly nearer* than `w` is also in the shortlist (it precedes `w`
//!   under the selection key). The candidate-mask rule prunes `w` only when
//!   a strictly nearer MR participant overlaps it, so a shortlist member's
//!   mask bit computed on the *restricted* occlusion graph is bitwise equal
//!   to the full-scene bit.
//! * **Exact restriction.** Each shortlist-pair occlusion edge is decided by
//!   the same exact [`xr_graph::ViewArc::intersects`] predicate as the full
//!   sweep, so the restricted edge set equals the full edge set intersected
//!   with `shortlist × shortlist` — no re-derived quantity is approximate,
//!   only the candidate universe shrinks.
//!
//! Consequently `AFTER_PRUNE_K = K ≥ N−1` reproduces the full path bit for
//! bit (the shortlist is complete), which is what the `xr_check`
//! `PrunedVsFull` subject pins; at serving K the only divergence is
//! candidates falling outside the K nearest, bounded by a top-k agreement
//! floor.
//!
//! ## The index
//!
//! [`PruneIndex`] is a two-level uniform grid (the ORCA `NeighborGrid` idiom
//! from `xr_crowd`, lifted here so the session layer owns it): a fine
//! CSR-bucketed cell grid sized for a constant expected occupancy, plus a
//! coarse level of 4×4-cell super-cell occupancy counts. K-nearest queries
//! expand Chebyshev rings of fine cells outward from the viewer's cell;
//! the coarse counts let the scan skip empty super-cell blocks without
//! touching the fine CSR at all — at venue densities most of a large ring
//! is empty stands or out-of-bounds lobby space. A ring `ρ` cell's nearest
//! point lies at Euclidean distance ≥ `(ρ−1)·cell` from the viewer, so the
//! expansion stops as soon as `K` candidates are held and the next ring
//! cannot beat the current `K`-th best — an *exact* K-nearest result, not a
//! heuristic one.

use xr_graph::geom::Point2;

/// Fine cells per coarse super-cell, per axis.
const SUPER: usize = 4;
/// Target average occupancy of a fine cell (users per cell).
const TARGET_OCCUPANCY: f64 = 4.0;
/// Hard cap on fine-grid resolution per axis.
const MAX_DIM: usize = 1024;

/// One viewer's pruned candidate shortlist at one tick: the `K` nearest
/// other users by `(distance, id)`, with the per-member scene quantities
/// every downstream stage needs — exact f64 distances, the hybrid-
/// participation mask bits, and the restricted occlusion edges among
/// members. Members are stored in ascending user-id order; `distances` and
/// `mask` are parallel to `ids`.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateSet {
    viewer: usize,
    k: usize,
    ids: Vec<u32>,
    distances: Vec<f64>,
    mask: Vec<bool>,
    edges: Vec<(u32, u32)>,
}

impl CandidateSet {
    /// Assembles a shortlist. `ids` must be strictly ascending with
    /// `distances`/`mask` parallel; `edges` must be sorted unique `(min,
    /// max)` pairs over members.
    pub(crate) fn new(
        viewer: usize,
        k: usize,
        ids: Vec<u32>,
        distances: Vec<f64>,
        mask: Vec<bool>,
        edges: Vec<(u32, u32)>,
    ) -> CandidateSet {
        debug_assert_eq!(ids.len(), distances.len());
        debug_assert_eq!(ids.len(), mask.len());
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "member ids must be strictly ascending");
        debug_assert!(!ids.iter().any(|&w| w as usize == viewer), "the viewer is never a member");
        debug_assert!(edges.windows(2).all(|e| e[0] < e[1]), "edges must be sorted unique");
        debug_assert!(
            edges
                .iter()
                .all(|&(a, b)| a < b && ids.binary_search(&a).is_ok() && ids.binary_search(&b).is_ok()),
            "edge endpoints must be members in (min, max) order"
        );
        CandidateSet { viewer, k, ids, distances, mask, edges }
    }

    /// The viewer this shortlist belongs to.
    pub fn viewer(&self) -> usize {
        self.viewer
    }

    /// The requested shortlist size `K` (the member count is smaller when
    /// fewer than `K` other users exist).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the shortlist has no members.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Member user ids, strictly ascending.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Exact f64 viewer→member distances, parallel to [`CandidateSet::ids`]
    /// (bit-identical to the full path's distance-matrix entries).
    pub fn distances(&self) -> &[f64] {
        &self.distances
    }

    /// Hybrid-participation mask bits, parallel to [`CandidateSet::ids`].
    /// For members these are bitwise equal to the full-scene mask (see the
    /// nearer-occluder closure in the module docs).
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }

    /// Restricted occlusion edges among members, sorted unique `(min, max)`
    /// global-id pairs — the full occlusion edge set intersected with
    /// `members × members`.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Whether user `w` is a member.
    pub fn contains(&self, w: usize) -> bool {
        u32::try_from(w).map(|w| self.ids.binary_search(&w).is_ok()).unwrap_or(false)
    }

    /// The member index of user `w`, if present.
    pub fn index_of(&self, w: usize) -> Option<usize> {
        u32::try_from(w).ok().and_then(|w| self.ids.binary_search(&w).ok())
    }

    /// The serving decision over the shortlist: the `top_k` nearest
    /// mask-true members by `(distance, id)`, returned nearest-first. At a
    /// complete shortlist (`K ≥ N−1`) this selects exactly the users the
    /// full-path [`decide_topk`](https://docs.rs) rule selects.
    pub fn decide_topk(&self, top_k: usize) -> Vec<u32> {
        let mut picks: Vec<usize> = (0..self.ids.len()).filter(|&i| self.mask[i]).collect();
        picks.sort_by(|&a, &b| {
            self.distances[a].total_cmp(&self.distances[b]).then(self.ids[a].cmp(&self.ids[b]))
        });
        picks.truncate(top_k);
        picks.into_iter().map(|i| self.ids[i]).collect()
    }
}

/// Two-level uniform spatial grid over one tick's positions: fine
/// CSR-bucketed cells sized for constant occupancy plus coarse super-cell
/// occupancy counts for empty-block skipping. Built once per tick in O(N);
/// see the module docs for the query algorithm.
#[derive(Debug, Clone)]
pub struct PruneIndex {
    min_x: f64,
    min_y: f64,
    cell: f64,
    inv_cell: f64,
    nx: usize,
    ny: usize,
    /// CSR cell starts, `nx·ny + 1` entries.
    starts: Vec<u32>,
    /// User ids bucketed by cell, ascending within each cell.
    items: Vec<u32>,
    snx: usize,
    /// Occupancy per coarse super-cell (`SUPER × SUPER` fine cells).
    super_counts: Vec<u32>,
}

impl PruneIndex {
    /// Builds the index over one frame's positions.
    pub fn build(positions: &[Point2]) -> PruneIndex {
        let n = positions.len();
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in positions {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        if n == 0 {
            (min_x, min_y, max_x, max_y) = (0.0, 0.0, 0.0, 0.0);
        }
        let extent = (max_x - min_x).max(max_y - min_y).max(1e-9);
        // resolution for ~TARGET_OCCUPANCY users per fine cell on average
        let dim = ((n as f64 / TARGET_OCCUPANCY).sqrt().ceil() as usize).clamp(1, MAX_DIM);
        let cell = extent / dim as f64;
        let inv_cell = 1.0 / cell;
        let nx = (((max_x - min_x) * inv_cell).floor() as usize + 1).min(dim.max(1));
        let ny = (((max_y - min_y) * inv_cell).floor() as usize + 1).min(dim.max(1));

        let cell_of = |p: &Point2| -> usize {
            let cx = (((p.x - min_x) * inv_cell) as usize).min(nx - 1);
            let cy = (((p.y - min_y) * inv_cell) as usize).min(ny - 1);
            cy * nx + cx
        };

        // counting sort into CSR; filling in ascending user-id order keeps
        // each bucket ascending, which keeps every query deterministic
        let mut starts = vec![0u32; nx * ny + 1];
        for p in positions {
            starts[cell_of(p) + 1] += 1;
        }
        for c in 0..nx * ny {
            starts[c + 1] += starts[c];
        }
        let mut cursor = starts.clone();
        let mut items = vec![0u32; n];
        for (i, p) in positions.iter().enumerate() {
            let c = cell_of(p);
            items[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }

        let snx = nx.div_ceil(SUPER);
        let sny = ny.div_ceil(SUPER);
        let mut super_counts = vec![0u32; snx * sny];
        for cy in 0..ny {
            for cx in 0..nx {
                let c = cy * nx + cx;
                super_counts[(cy / SUPER) * snx + cx / SUPER] += starts[c + 1] - starts[c];
            }
        }

        PruneIndex { min_x, min_y, cell, inv_cell, nx, ny, starts, items, snx, super_counts }
    }

    /// Fine-grid cell coordinates of a point.
    fn cell_coords(&self, p: Point2) -> (usize, usize) {
        let cx = (((p.x - self.min_x) * self.inv_cell) as usize).min(self.nx - 1);
        let cy = (((p.y - self.min_y) * self.inv_cell) as usize).min(self.ny - 1);
        (cx, cy)
    }

    /// Scans one row segment `y, x0..=x1` of fine cells into `out`,
    /// skipping empty coarse super-cell blocks wholesale.
    fn scan_row(
        &self,
        positions: &[Point2],
        viewer: usize,
        y: usize,
        x0: usize,
        x1: usize,
        out: &mut Vec<(f64, u32)>,
    ) {
        let origin = positions[viewer];
        let sy = (y / SUPER) * self.snx;
        let mut x = x0;
        while x <= x1 {
            // coarse level: an empty super-cell block clears SUPER cells at
            // once without touching the fine CSR
            if self.super_counts[sy + x / SUPER] == 0 {
                x = (x / SUPER + 1) * SUPER;
                continue;
            }
            let c = y * self.nx + x;
            for &id in &self.items[self.starts[c] as usize..self.starts[c + 1] as usize] {
                if id as usize != viewer {
                    out.push((origin.distance(positions[id as usize]), id));
                }
            }
            x += 1;
        }
    }

    /// Exact K-nearest-other-users query by `(distance, id)`, filled into
    /// `out` (nearest first). Distances are the exact f64
    /// [`Point2::distance`] values — bit-identical to the full scene path.
    pub fn nearest_k_into(&self, positions: &[Point2], viewer: usize, k: usize, out: &mut Vec<(f64, u32)>) {
        out.clear();
        if k == 0 || positions.len() < 2 {
            return;
        }
        let (cx, cy) = self.cell_coords(positions[viewer]);
        let max_ring = self.nx.max(self.ny);
        let mut ring = 0usize;
        loop {
            // the cells at Chebyshev distance `ring` from the viewer's cell
            if ring == 0 {
                self.scan_row(positions, viewer, cy, cx, cx, out);
            } else {
                let x0 = cx.saturating_sub(ring);
                let x1 = (cx + ring).min(self.nx - 1);
                if cy >= ring {
                    self.scan_row(positions, viewer, cy - ring, x0, x1, out);
                }
                if cy + ring < self.ny {
                    self.scan_row(positions, viewer, cy + ring, x0, x1, out);
                }
                let y0 = cy.saturating_sub(ring.saturating_sub(1)).max(cy.saturating_sub(ring - 1));
                let y1 = (cy + ring - 1).min(self.ny - 1);
                for y in y0..=y1 {
                    if !(cy >= ring && y == cy - ring) && y != cy + ring {
                        if cx >= ring {
                            self.scan_row(positions, viewer, y, cx - ring, cx - ring, out);
                        }
                        if cx + ring < self.nx {
                            self.scan_row(positions, viewer, y, cx + ring, cx + ring, out);
                        }
                    }
                }
            }
            out.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            out.truncate(k);
            // any cell at ring ρ ≥ ring+1 lies entirely at distance
            // ≥ ring·cell from the viewer (the viewer sits somewhere inside
            // its own cell), so once the K-th best beats that bound no
            // farther ring can improve the shortlist
            if out.len() >= k && (ring as f64) * self.cell > out[k - 1].0 {
                break;
            }
            if ring >= max_ring {
                break;
            }
            ring += 1;
        }
    }

    /// Convenience allocation wrapper over [`PruneIndex::nearest_k_into`].
    pub fn nearest_k(&self, positions: &[Point2], viewer: usize, k: usize) -> Vec<(f64, u32)> {
        let mut out = Vec::with_capacity(k.min(positions.len()));
        self.nearest_k_into(positions, viewer, k, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_k(positions: &[Point2], viewer: usize, k: usize) -> Vec<(f64, u32)> {
        let mut all: Vec<(f64, u32)> = (0..positions.len())
            .filter(|&w| w != viewer)
            .map(|w| (positions[viewer].distance(positions[w]), w as u32))
            .collect();
        all.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        all.truncate(k);
        all
    }

    #[test]
    fn nearest_k_matches_brute_force_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..40 {
            let n: usize = rng.gen_range(2..120);
            let positions: Vec<Point2> =
                (0..n).map(|_| Point2::new(rng.gen_range(-9.0..9.0), rng.gen_range(-9.0..9.0))).collect();
            let index = PruneIndex::build(&positions);
            for &k in &[1usize, 3, 8, n.saturating_sub(1), n + 4] {
                for viewer in [0, n / 2, n - 1] {
                    let fast = index.nearest_k(&positions, viewer, k);
                    let brute = brute_k(&positions, viewer, k);
                    assert_eq!(fast.len(), brute.len(), "trial {trial} n={n} k={k} v={viewer}");
                    for (a, b) in fast.iter().zip(&brute) {
                        assert_eq!(a.1, b.1, "trial {trial} n={n} k={k} v={viewer}");
                        assert_eq!(a.0.to_bits(), b.0.to_bits(), "trial {trial} k={k}");
                    }
                }
            }
        }
    }

    #[test]
    fn handles_coincident_clusters_and_degenerate_extents() {
        // everyone on one point (a parked lobby crowd): ties broken by id
        let positions = vec![Point2::new(20.0, 20.0); 7];
        let index = PruneIndex::build(&positions);
        let got = index.nearest_k(&positions, 3, 4);
        assert_eq!(got.iter().map(|&(_, w)| w).collect::<Vec<_>>(), vec![0, 1, 2, 4]);
        assert!(got.iter().all(|&(d, _)| d == 0.0));
        // collinear points (zero y-extent)
        let line: Vec<Point2> = (0..9).map(|i| Point2::new(i as f64, 5.0)).collect();
        let index = PruneIndex::build(&line);
        assert_eq!(index.nearest_k(&line, 0, 2).iter().map(|&(_, w)| w).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn zoned_density_queries_stay_exact() {
        // a dense cluster far from a sparse halo, with a parked lobby blob —
        // the venue shape the coarse skip level exists for
        let mut rng = StdRng::seed_from_u64(5);
        let mut positions = Vec::new();
        for _ in 0..400 {
            positions.push(Point2::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)));
        }
        for _ in 0..40 {
            positions.push(Point2::new(rng.gen_range(-60.0..60.0), rng.gen_range(-60.0..60.0)));
        }
        for _ in 0..30 {
            positions.push(Point2::new(200.0, 200.0));
        }
        let index = PruneIndex::build(&positions);
        for viewer in [0usize, 401, 445] {
            let fast = index.nearest_k(&positions, viewer, 16);
            let brute = brute_k(&positions, viewer, 16);
            assert_eq!(
                fast.iter().map(|&(_, w)| w).collect::<Vec<_>>(),
                brute.iter().map(|&(_, w)| w).collect::<Vec<_>>(),
                "viewer {viewer}"
            );
        }
    }

    #[test]
    fn candidate_set_accessors_and_topk() {
        let cs = CandidateSet::new(
            2,
            4,
            vec![0, 1, 3, 5],
            vec![1.0, 0.5, 0.5, 2.0],
            vec![true, true, false, true],
            vec![(1, 3)],
        );
        assert_eq!(cs.viewer(), 2);
        assert_eq!(cs.len(), 4);
        assert!(cs.contains(3) && !cs.contains(2) && !cs.contains(4));
        assert_eq!(cs.index_of(5), Some(3));
        // mask-false member 3 is skipped; ties by id put 1 before 0
        assert_eq!(cs.decide_topk(2), vec![1, 0]);
        assert_eq!(cs.decide_topk(9), vec![1, 0, 5]);
    }
}
