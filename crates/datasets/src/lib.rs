//! # xr-datasets
//!
//! Synthetic social-XR datasets standing in for the paper's gated data
//! (Timik, SMM, Mozilla Hubs) plus the scenario sampler that turns a social
//! universe into a conferencing-room instance of the AFTER problem.
//!
//! * [`generators`] — Barabási–Albert, Watts–Strogatz, and stochastic block
//!   model social graphs with graded tie strengths.
//! * [`utility`] — preference `p(v,w)` and social-presence `s(v,w)` models.
//! * [`embedding`] — spectral node embeddings (the "pre-trained social
//!   embeddings" MIA consumes), an alternative preference signal.
//! * [`scenario`] — participants, MR/VR interfaces, ORCA trajectories.
//! * [`catalog`] — the three dataset analogues with paper-default configs.
//! * [`venue`] — crowd-scale stadium/concert generators (N = 10k–100k) with
//!   zoned density, join/leave churn, teleports, and multi-room portal hops.

pub mod catalog;
pub mod embedding;
pub mod generators;
pub mod scenario;
pub mod utility;
pub mod venue;

pub use catalog::{Dataset, DatasetKind};
pub use embedding::{spectral_embedding, SpectralEmbedding};
pub use scenario::{
    apply_motion_profile, generate_trajectories_with_motion, Interface, MotionProfile, Scenario,
    ScenarioConfig,
};
pub use utility::PreferenceModel;
pub use venue::{MultiVenue, VenueConfig, VenueKind, VenueSim, VenueZone};
