//! Random social-network generators.
//!
//! The paper's datasets are gated (Timik.pl crawl, SMMnet, Mozilla Hubs
//! logs), so we synthesize graphs with matching *structural* signatures:
//!
//! * Barabási–Albert preferential attachment — scale-free degree tails, as in
//!   the Timik social metaverse crawl (a few celebrity hubs, many leaves).
//! * Stochastic block model — community structure with per-node attributes,
//!   as in SMMnet's nationality-clustered player interactions.
//! * Watts–Strogatz — high clustering at small scale, matching the tightly
//!   knit Mozilla Hubs workshop crowd.
//!
//! Tie strengths are sampled uniformly from `[0.3, 1.0]` (strangers have no
//! tie at all), so social-presence utilities are both sparse and graded.

use rand::seq::SliceRandom;
use rand::Rng;
use xr_graph::SocialGraph;

fn tie_weight(rng: &mut impl Rng) -> f64 {
    rng.gen_range(0.3..1.0)
}

/// Barabási–Albert preferential attachment: each new node attaches to `m`
/// existing nodes with probability proportional to their degree.
///
/// # Panics
///
/// Panics when `n < m + 1` or `m == 0`.
pub fn barabasi_albert(n: usize, m: usize, rng: &mut impl Rng) -> SocialGraph {
    assert!(m >= 1, "m must be at least 1");
    assert!(n > m, "need more nodes than attachment edges");
    let mut g = SocialGraph::new(n);
    // degree-weighted urn: node id appears once per incident edge endpoint
    let mut urn: Vec<usize> = Vec::with_capacity(2 * n * m);

    // seed clique over the first m+1 nodes
    for a in 0..=m {
        for b in a + 1..=m {
            g.add_tie(a, b, tie_weight(rng));
            urn.push(a);
            urn.push(b);
        }
    }

    for v in m + 1..n {
        // BTreeSet keeps iteration order deterministic, which keeps the urn
        // (and therefore the whole generator) reproducible under a seed.
        let mut targets = std::collections::BTreeSet::new();
        while targets.len() < m {
            let &candidate = urn.choose(rng).expect("urn is never empty after seeding");
            targets.insert(candidate);
        }
        for &t in &targets {
            g.add_tie(v, t, tie_weight(rng));
            urn.push(v);
            urn.push(t);
        }
    }
    g
}

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors per
/// side... (`k` total, must be even), each edge rewired with probability
/// `p_rewire`.
///
/// # Panics
///
/// Panics when `k` is odd, zero, or `k >= n`.
pub fn watts_strogatz(n: usize, k: usize, p_rewire: f64, rng: &mut impl Rng) -> SocialGraph {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be a positive even number");
    assert!(k < n, "k must be smaller than n");
    let mut g = SocialGraph::new(n);
    for v in 0..n {
        for d in 1..=k / 2 {
            let mut w = (v + d) % n;
            if rng.gen::<f64>() < p_rewire {
                // rewire to a uniform non-self, non-duplicate target
                for _ in 0..16 {
                    let cand = rng.gen_range(0..n);
                    if cand != v && !g.are_friends(v, cand) {
                        w = cand;
                        break;
                    }
                }
            }
            if v != w && !g.are_friends(v, w) {
                g.add_tie(v, w, tie_weight(rng));
            }
        }
    }
    g
}

/// Stochastic block model: `community_sizes.len()` communities; an edge
/// appears with probability `p_in` inside a community and `p_out` across.
/// Intra-community ties are stronger (`[0.5, 1.0]`) than inter ones
/// (`[0.3, 0.6]`).
///
/// Returns the graph and each node's community (the "nationality" attribute
/// in the SMM analogy).
pub fn stochastic_block_model(
    community_sizes: &[usize],
    p_in: f64,
    p_out: f64,
    rng: &mut impl Rng,
) -> (SocialGraph, Vec<usize>) {
    let n: usize = community_sizes.iter().sum();
    assert!(n > 0, "need at least one node");
    let mut community = Vec::with_capacity(n);
    for (c, &size) in community_sizes.iter().enumerate() {
        community.extend(std::iter::repeat_n(c, size));
    }
    let mut g = SocialGraph::new(n);
    for a in 0..n {
        for b in a + 1..n {
            let same = community[a] == community[b];
            let p = if same { p_in } else { p_out };
            if rng.gen::<f64>() < p {
                let w = if same { rng.gen_range(0.5..1.0) } else { rng.gen_range(0.3..0.6) };
                g.add_tie(a, b, w);
            }
        }
    }
    (g, community)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ba_has_expected_edge_count_and_scale_free_tail() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 400;
        let m = 4;
        let g = barabasi_albert(n, m, &mut rng);
        assert_eq!(g.node_count(), n);
        // clique edges + m per subsequent node
        let expected = m * (m + 1) / 2 + (n - m - 1) * m;
        assert_eq!(g.edge_count(), expected);
        // hubs: max degree far above the mean (scale-free signature)
        let max_deg = (0..n).map(|v| g.degree(v)).max().unwrap();
        assert!((max_deg as f64) > 3.0 * g.mean_degree(), "max degree {max_deg} vs mean {}", g.mean_degree());
        // minimum degree is m
        assert!((0..n).all(|v| g.degree(v) >= m));
    }

    #[test]
    fn ws_ring_without_rewiring_is_regular() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = watts_strogatz(30, 4, 0.0, &mut rng);
        assert!((0..30).all(|v| g.degree(v) == 4));
        // the pristine ring lattice has high clustering
        assert!(g.transitivity() > 0.3, "transitivity {}", g.transitivity());
    }

    #[test]
    fn ws_rewiring_keeps_graph_connected_typically() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = watts_strogatz(100, 6, 0.1, &mut rng);
        let d = g.hop_distances(0);
        let reachable = d.iter().filter(|&&x| x != usize::MAX).count();
        assert!(reachable > 90, "only {reachable} reachable");
    }

    #[test]
    fn sbm_denser_inside_communities() {
        let mut rng = StdRng::seed_from_u64(4);
        let (g, community) = stochastic_block_model(&[50, 50], 0.3, 0.02, &mut rng);
        assert_eq!(community.len(), 100);
        let mut within = 0;
        let mut across = 0;
        for a in 0..100 {
            for b in a + 1..100 {
                if g.are_friends(a, b) {
                    if community[a] == community[b] {
                        within += 1;
                    } else {
                        across += 1;
                    }
                }
            }
        }
        assert!(within > 4 * across, "within {within} across {across}");
    }

    #[test]
    fn sbm_tie_strengths_reflect_membership() {
        let mut rng = StdRng::seed_from_u64(5);
        let (g, community) = stochastic_block_model(&[40, 40], 0.4, 0.05, &mut rng);
        let mut sum_in = (0.0, 0usize);
        let mut sum_out = (0.0, 0usize);
        for a in 0..80 {
            for &(b, w) in g.ties(a) {
                if community[a] == community[b] {
                    sum_in = (sum_in.0 + w, sum_in.1 + 1);
                } else {
                    sum_out = (sum_out.0 + w, sum_out.1 + 1);
                }
            }
        }
        let mean_in = sum_in.0 / sum_in.1 as f64;
        let mean_out = sum_out.0 / sum_out.1 as f64;
        assert!(mean_in > mean_out, "{mean_in} vs {mean_out}");
    }

    #[test]
    fn generators_are_deterministic_under_seed() {
        let g1 = barabasi_albert(100, 3, &mut StdRng::seed_from_u64(9));
        let g2 = barabasi_albert(100, 3, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1.edge_count(), g2.edge_count());
        for v in 0..100 {
            assert_eq!(g1.degree(v), g2.degree(v));
        }
    }

    #[test]
    #[should_panic(expected = "more nodes")]
    fn ba_rejects_tiny_n() {
        barabasi_albert(3, 3, &mut StdRng::seed_from_u64(0));
    }
}
