//! Crowd-scale venue generators: stadium and concert scenes at N = 10k–100k.
//!
//! The conferencing-room sampler ([`crate::scenario`]) drives the ORCA
//! simulator — faithful local avoidance, but built for rooms of hundreds.
//! Venue-scale serving benchmarks need *frames*, not collision-accurate
//! trajectories: tens of thousands of users with realistic density structure
//! (zoned annuli — a mosh pit is 10× denser than the fringe), temporal
//! coherence (bounded per-tick steps, so incremental maintenance has
//! something to feed on), and the churn patterns that stress a serving
//! layer: mid-session join/leave, teleporting users, and portal hops
//! between rooms.
//!
//! [`VenueSim`] is a streaming generator: O(N) state, O(N) per frame, fully
//! deterministic in its seed. Join/leave churn under a fixed frame width is
//! modeled by *parking*: a departed user sits **bitwise exactly** at the
//! lobby point until they rejoin (what the engine's coincidence rule masks
//! out, and what snap-epsilon ingest and incremental reuse feed on).
//! [`MultiVenue`] runs several venues side by side and hops users through
//! portals — park in the source room, unpark in the destination.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xr_crowd::Room;
use xr_graph::geom::Point2;

/// Venue archetype — selects the zone layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VenueKind {
    /// Sparse center (the pitch), dense seating annuli around it.
    Stadium,
    /// Dense center (the mosh pit), thinning toward the fringe.
    Concert,
}

/// One density zone: an annulus around the venue center holding a fraction
/// of the crowd, with its own motion amplitude.
#[derive(Debug, Clone, Copy)]
pub struct VenueZone {
    /// Zone label for diagnostics.
    pub name: &'static str,
    /// Inner radius as a fraction of the venue half-side.
    pub inner: f64,
    /// Outer radius as a fraction of the venue half-side.
    pub outer: f64,
    /// Fraction of the crowd placed in this zone.
    pub fraction: f64,
    /// Per-tick step amplitude multiplier (a mosh pit churns, a seated bowl
    /// barely moves).
    pub step_scale: f64,
}

const STADIUM_ZONES: &[VenueZone] = &[
    VenueZone { name: "pitch", inner: 0.0, outer: 0.15, fraction: 0.02, step_scale: 1.5 },
    VenueZone { name: "lower_bowl", inner: 0.35, outer: 0.65, fraction: 0.58, step_scale: 0.3 },
    VenueZone { name: "upper_bowl", inner: 0.65, outer: 0.95, fraction: 0.40, step_scale: 0.2 },
];

const CONCERT_ZONES: &[VenueZone] = &[
    VenueZone { name: "mosh_pit", inner: 0.0, outer: 0.25, fraction: 0.45, step_scale: 1.8 },
    VenueZone { name: "floor", inner: 0.25, outer: 0.60, fraction: 0.40, step_scale: 0.8 },
    VenueZone { name: "fringe", inner: 0.60, outer: 0.95, fraction: 0.15, step_scale: 0.5 },
];

/// Parameters of a venue simulation.
#[derive(Debug, Clone, Copy)]
pub struct VenueConfig {
    /// Venue archetype.
    pub kind: VenueKind,
    /// Frame width `N` (active + parked users).
    pub n: usize,
    /// RNG seed; every emitted frame is deterministic in it.
    pub seed: u64,
    /// Side length of the square venue, meters.
    pub room_side: f64,
    /// Avatar body radius, meters.
    pub body_radius: f64,
    /// Fraction of MR (physically present) users, spread evenly over ids.
    pub mr_fraction: f64,
    /// Base per-tick step amplitude, meters (scaled per zone).
    pub max_step: f64,
    /// Per-user, per-tick probability of leaving (parking at the lobby) and,
    /// symmetrically, of a parked user rejoining their zone.
    pub churn_prob: f64,
    /// Per-user, per-tick probability of an instantaneous teleport to a
    /// fresh point of the user's own zone.
    pub teleport_prob: f64,
}

impl VenueConfig {
    /// A stadium: 100 m bowl, seated crowd with a sparse pitch, light churn.
    pub fn stadium(n: usize, seed: u64) -> VenueConfig {
        VenueConfig {
            kind: VenueKind::Stadium,
            n,
            seed,
            room_side: 100.0,
            body_radius: 0.25,
            mr_fraction: 0.3,
            max_step: 0.4,
            churn_prob: 0.002,
            teleport_prob: 0.001,
        }
    }

    /// A concert: 60 m floor, dense pit, heavier churn and teleports.
    pub fn concert(n: usize, seed: u64) -> VenueConfig {
        VenueConfig {
            kind: VenueKind::Concert,
            n,
            seed,
            room_side: 60.0,
            body_radius: 0.25,
            mr_fraction: 0.5,
            max_step: 0.6,
            churn_prob: 0.005,
            teleport_prob: 0.003,
        }
    }

    /// The zone layout of this venue's archetype.
    pub fn zones(&self) -> &'static [VenueZone] {
        match self.kind {
            VenueKind::Stadium => STADIUM_ZONES,
            VenueKind::Concert => CONCERT_ZONES,
        }
    }

    /// The venue floor.
    pub fn room(&self) -> Room {
        Room::new(self.room_side, self.room_side)
    }

    /// The lobby parking spot — outside the floor, shared bitwise by every
    /// parked user.
    pub fn lobby(&self) -> Point2 {
        Point2::new(self.room_side + 10.0, self.room_side + 10.0)
    }

    /// Room diagonal for distance normalization.
    pub fn room_diagonal(&self) -> f64 {
        self.room_side * std::f64::consts::SQRT_2
    }

    /// MR mask: `mr_fraction` of users, spread evenly over ids (not a
    /// prefix) so shortlists mix interfaces at every scale.
    pub fn mr_mask(&self) -> Vec<bool> {
        let threshold = (self.mr_fraction.clamp(0.0, 1.0) * 1000.0).round() as u64;
        (0..self.n as u64).map(|i| i.wrapping_mul(2654435761) % 1000 < threshold).collect()
    }
}

/// A streaming venue crowd: O(N) state, one frame per call, deterministic.
#[derive(Debug)]
pub struct VenueSim {
    config: VenueConfig,
    rng: StdRng,
    positions: Vec<Point2>,
    /// Zone index per user (fixed at placement; rejoin returns to it).
    zone: Vec<u8>,
    parked: Vec<bool>,
    tick: u64,
    parks: u64,
    unparks: u64,
    teleports: u64,
}

impl VenueSim {
    /// Places the crowd zone by zone (area-uniform within each annulus).
    pub fn new(config: VenueConfig) -> VenueSim {
        assert!(config.n > 0, "venue needs at least one user");
        assert!((0.0..=1.0).contains(&config.churn_prob), "churn_prob out of range");
        assert!((0.0..=1.0).contains(&config.teleport_prob), "teleport_prob out of range");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let zones = config.zones();
        // zone sizes by fraction, remainder into the last zone
        let mut counts: Vec<usize> =
            zones.iter().map(|z| (z.fraction * config.n as f64).floor() as usize).collect();
        let assigned: usize = counts.iter().sum();
        *counts.last_mut().expect("zone layouts are non-empty") += config.n - assigned.min(config.n);
        let mut positions = Vec::with_capacity(config.n);
        let mut zone = Vec::with_capacity(config.n);
        for (zi, &count) in counts.iter().enumerate() {
            for _ in 0..count {
                if positions.len() == config.n {
                    break;
                }
                positions.push(sample_zone_point(&config, zones[zi], &mut rng));
                zone.push(zi as u8);
            }
        }
        let parked = vec![false; config.n];
        VenueSim { config, rng, positions, zone, parked, tick: 0, parks: 0, unparks: 0, teleports: 0 }
    }

    /// The venue configuration.
    pub fn config(&self) -> &VenueConfig {
        &self.config
    }

    /// Current positions (the last emitted frame).
    pub fn positions(&self) -> &[Point2] {
        &self.positions
    }

    /// Users currently on the floor (not parked).
    pub fn active_count(&self) -> usize {
        self.parked.iter().filter(|&&p| !p).count()
    }

    /// Whether user `i` is parked at the lobby.
    pub fn is_parked(&self, i: usize) -> bool {
        self.parked[i]
    }

    /// Leave events so far.
    pub fn parks(&self) -> u64 {
        self.parks
    }

    /// Rejoin events so far.
    pub fn unparks(&self) -> u64 {
        self.unparks
    }

    /// Teleport events so far.
    pub fn teleports(&self) -> u64 {
        self.teleports
    }

    /// Emits the next frame: the initial placement on the first call, then
    /// one churn/teleport/step update per call.
    pub fn next_frame(&mut self) -> Vec<Point2> {
        if self.tick == 0 {
            self.tick = 1;
            return self.positions.clone();
        }
        self.tick += 1;
        let zones = self.config.zones();
        let lobby = self.config.lobby();
        let room = self.config.room();
        for i in 0..self.config.n {
            if self.parked[i] {
                if self.config.churn_prob > 0.0 && self.rng.gen_bool(self.config.churn_prob) {
                    // rejoin: teleport back into the user's own zone
                    self.positions[i] =
                        sample_zone_point(&self.config, zones[self.zone[i] as usize], &mut self.rng);
                    self.parked[i] = false;
                    self.unparks += 1;
                }
                // else: hold the lobby point bitwise — no RNG, no drift
                continue;
            }
            if self.config.churn_prob > 0.0 && self.rng.gen_bool(self.config.churn_prob) {
                self.positions[i] = lobby;
                self.parked[i] = true;
                self.parks += 1;
                continue;
            }
            if self.config.teleport_prob > 0.0 && self.rng.gen_bool(self.config.teleport_prob) {
                self.positions[i] =
                    sample_zone_point(&self.config, zones[self.zone[i] as usize], &mut self.rng);
                self.teleports += 1;
                continue;
            }
            let s = self.config.max_step * zones[self.zone[i] as usize].step_scale;
            if s > 0.0 {
                let p = self.positions[i];
                let r = self.config.body_radius;
                self.positions[i] = Point2::new(
                    (p.x + self.rng.gen_range(-s..s)).clamp(room.min.x + r, room.max.x - r),
                    (p.y + self.rng.gen_range(-s..s)).clamp(room.min.y + r, room.max.y - r),
                );
            }
        }
        self.positions.clone()
    }

    /// Parks user `i` at the lobby (portal-hop source side).
    fn force_park(&mut self, i: usize) {
        if !self.parked[i] {
            self.positions[i] = self.config.lobby();
            self.parked[i] = true;
            self.parks += 1;
        }
    }

    /// Unparks user `i` into their zone (portal-hop destination side).
    fn force_unpark(&mut self, i: usize) {
        if self.parked[i] {
            let z = self.config.zones()[self.zone[i] as usize];
            self.positions[i] = sample_zone_point(&self.config, z, &mut self.rng);
            self.parked[i] = false;
            self.unparks += 1;
        }
    }
}

/// Area-uniform point of an annulus zone around the venue center.
fn sample_zone_point(config: &VenueConfig, zone: VenueZone, rng: &mut StdRng) -> Point2 {
    let half = config.room_side / 2.0 - config.body_radius;
    let (r0, r1) = (zone.inner * half, zone.outer * half);
    let r = (r0 * r0 + rng.gen::<f64>() * (r1 * r1 - r0 * r0)).sqrt();
    let theta = rng.gen_range(0.0..std::f64::consts::TAU);
    let c = config.room_side / 2.0;
    Point2::new(c + r * theta.cos(), c + r * theta.sin())
}

/// Several venues served side by side, with portal hops between them: each
/// tick, every room moves at most one user through a portal into the next
/// room (park here, unpark there) — the cross-room churn a multi-room
/// server has to absorb.
#[derive(Debug)]
pub struct MultiVenue {
    sims: Vec<VenueSim>,
    rng: StdRng,
    /// Per-room, per-tick probability of one portal departure.
    hop_prob: f64,
    hops: u64,
}

impl MultiVenue {
    /// `rooms` venues from `config`, each seeded independently
    /// (`seed + room index`).
    pub fn new(rooms: usize, config: VenueConfig, hop_prob: f64) -> MultiVenue {
        assert!(rooms >= 2, "portal hops need at least two rooms");
        assert!((0.0..=1.0).contains(&hop_prob), "hop_prob out of range");
        let sims = (0..rooms)
            .map(|r| VenueSim::new(VenueConfig { seed: config.seed.wrapping_add(r as u64), ..config }))
            .collect();
        MultiVenue { sims, rng: StdRng::seed_from_u64(config.seed ^ 0x9e3779b97f4a7c15), hop_prob, hops: 0 }
    }

    /// The per-room simulators.
    pub fn sims(&self) -> &[VenueSim] {
        &self.sims
    }

    /// Portal hops so far.
    pub fn hops(&self) -> u64 {
        self.hops
    }

    /// Advances every room one tick and applies portal hops; returns one
    /// frame per room.
    pub fn next_frames(&mut self) -> Vec<Vec<Point2>> {
        let mut frames: Vec<Vec<Point2>> = self.sims.iter_mut().map(|s| s.next_frame()).collect();
        let rooms = self.sims.len();
        for r in 0..rooms {
            if self.hop_prob == 0.0 || !self.rng.gen_bool(self.hop_prob) {
                continue;
            }
            let n = self.sims[r].config.n;
            let start = self.rng.gen_range(0..n);
            // depart: the first active user at or after a random index
            let Some(src) = (0..n).map(|o| (start + o) % n).find(|&i| !self.sims[r].parked[i]) else {
                continue;
            };
            let dst_room = (r + 1) % rooms;
            // arrive: the same slot rejoins in the next room if it was away,
            // else the first parked user there
            let dst = if self.sims[dst_room].parked[src] {
                Some(src)
            } else {
                (0..n).map(|o| (start + o) % n).find(|&i| self.sims[dst_room].parked[i])
            };
            self.sims[r].force_park(src);
            if let Some(d) = dst {
                self.sims[dst_room].force_unpark(d);
            }
            self.hops += 1;
            frames[r] = self.sims[r].positions.clone();
            frames[dst_room] = self.sims[dst_room].positions.clone();
        }
        frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_deterministic_in_seed() {
        let mut a = VenueSim::new(VenueConfig::stadium(500, 9));
        let mut b = VenueSim::new(VenueConfig::stadium(500, 9));
        for _ in 0..6 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
        let mut c = VenueSim::new(VenueConfig::stadium(500, 10));
        assert_ne!(a.positions(), c.next_frame().as_slice());
    }

    #[test]
    fn zoned_density_matches_the_layout() {
        let config = VenueConfig::concert(2000, 3);
        let sim = VenueSim::new(config);
        let half = config.room_side / 2.0 - config.body_radius;
        let c = Point2::new(config.room_side / 2.0, config.room_side / 2.0);
        // mosh pit annulus covers ~6% of the floor but holds ~45% of the crowd
        let pit = sim.positions().iter().filter(|p| p.distance(c) <= 0.25 * half + 1e-9).count();
        assert!((850..=950).contains(&pit), "mosh pit holds {pit}/2000, expected ~900");
        // fringe is the thinnest despite the largest area
        let fringe = sim.positions().iter().filter(|p| p.distance(c) > 0.60 * half).count();
        assert!((250..=350).contains(&fringe), "fringe holds {fringe}/2000, expected ~300");
    }

    #[test]
    fn parked_users_sit_bitwise_at_the_lobby() {
        let mut config = VenueConfig::concert(300, 11);
        config.churn_prob = 0.05;
        let lobby = config.lobby();
        let mut sim = VenueSim::new(config);
        for _ in 0..20 {
            sim.next_frame();
        }
        assert!(sim.parks() > 0, "churn_prob=0.05 over 6000 user-ticks produced no departures");
        let parked: Vec<usize> = (0..300).filter(|&i| sim.is_parked(i)).collect();
        for &i in &parked {
            assert_eq!(sim.positions()[i], lobby, "parked user {i} drifted off the lobby point");
        }
        assert_eq!(sim.active_count(), 300 - parked.len());
    }

    #[test]
    fn active_users_stay_on_the_floor_and_move() {
        let config = VenueConfig::stadium(400, 5);
        let room = config.room();
        let mut sim = VenueSim::new(config);
        let first = sim.next_frame();
        let mut moved = 0.0;
        for _ in 0..10 {
            let frame = sim.next_frame();
            for (i, &p) in frame.iter().enumerate() {
                if !sim.is_parked(i) {
                    assert!(room.contains(p), "active user {i} left the floor: {p:?}");
                }
            }
        }
        for (i, p) in first.iter().enumerate() {
            if !sim.is_parked(i) {
                moved += p.distance(sim.positions()[i]);
            }
        }
        assert!(moved > 1.0, "crowd is frozen: total displacement {moved}");
    }

    #[test]
    fn teleports_jump_beyond_the_step_clamp() {
        let mut config = VenueConfig::concert(300, 17);
        config.churn_prob = 0.0;
        config.teleport_prob = 0.05;
        let mut sim = VenueSim::new(config);
        let mut prev = sim.next_frame();
        let max_plain = config.max_step * 1.8 * std::f64::consts::SQRT_2;
        let mut jumps = 0usize;
        for _ in 0..10 {
            let frame = sim.next_frame();
            for (p0, p1) in prev.iter().zip(&frame) {
                if p0.distance(*p1) > max_plain + 1e-9 {
                    jumps += 1;
                }
            }
            prev = frame;
        }
        assert!(sim.teleports() > 0 && jumps > 0, "teleport_prob=0.05 produced no jumps");
    }

    #[test]
    fn portal_hops_move_users_between_rooms() {
        let mut config = VenueConfig::concert(120, 23);
        config.churn_prob = 0.0;
        let mut mv = MultiVenue::new(3, config, 0.9);
        for _ in 0..30 {
            let frames = mv.next_frames();
            assert_eq!(frames.len(), 3);
            for f in &frames {
                assert_eq!(f.len(), 120, "portal hops must preserve the frame width");
            }
        }
        assert!(mv.hops() > 0, "hop_prob=0.9 over 30 ticks produced no portal hops");
        // hopped-away users are parked in their source room
        let away: usize = mv.sims().iter().map(|s| 120 - s.active_count()).sum();
        assert!(away > 0, "hops happened but nobody is parked anywhere");
    }

    #[test]
    fn crowd_scale_placement_is_cheap_and_well_formed() {
        let config = VenueConfig::stadium(10_000, 1);
        let mut sim = VenueSim::new(config);
        let f0 = sim.next_frame();
        let f1 = sim.next_frame();
        assert_eq!(f0.len(), 10_000);
        assert_eq!(f1.len(), 10_000);
        assert_eq!(config.mr_mask().len(), 10_000);
        let mr = config.mr_mask().iter().filter(|&&b| b).count();
        assert!((2800..=3200).contains(&mr), "mr_fraction=0.3 produced {mr}/10000 MR users");
    }
}
