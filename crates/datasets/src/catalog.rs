//! The three dataset analogues used throughout the evaluation.
//!
//! | Paper dataset | Structure | Our analogue |
//! |---------------|-----------|--------------|
//! | Timik [68] — 850k-user social metaverse crawl | scale-free, celebrity hubs | Barabási–Albert universe |
//! | SMM [69] — 880k Super Mario players with nationalities | community-clustered | stochastic block model with community attributes |
//! | Hubs [70] — 17k trajectory points from a small VR workshop | small, dense, highly clustered | Watts–Strogatz small world |
//!
//! Universe sizes are scaled to what the experiments actually consume
//! (scenarios sample at most 500 participants); the *structural* properties
//! the recommenders are sensitive to are preserved, not the raw user counts.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xr_graph::SocialGraph;

use crate::generators::{barabasi_albert, stochastic_block_model, watts_strogatz};
use crate::scenario::{sample_scenario, Scenario, ScenarioConfig};
use crate::utility::{social_presence_matrix, PreferenceModel};

/// Which paper dataset a synthetic universe emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Timik-like: scale-free social metaverse.
    Timik,
    /// SMM-like: nationality-community game network.
    Smm,
    /// Hubs-like: small VR workshop.
    Hubs,
}

impl DatasetKind {
    /// Canonical display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Timik => "Timik",
            DatasetKind::Smm => "SMM",
            DatasetKind::Hubs => "Hubs",
        }
    }

    /// All three datasets.
    pub fn all() -> [DatasetKind; 3] {
        [DatasetKind::Timik, DatasetKind::Smm, DatasetKind::Hubs]
    }
}

/// A generated dataset universe: the social graph plus precomputed utility
/// matrices.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which paper dataset this emulates.
    pub kind: DatasetKind,
    /// The universe social graph.
    pub social_graph: SocialGraph,
    /// Community attribute per user (SMM nationalities; `None` elsewhere).
    pub community: Option<Vec<usize>>,
    /// Full preference matrix `p[v][w]` over the universe.
    pub preference: Vec<Vec<f64>>,
    /// Full social-presence matrix `s[v][w]` over the universe.
    pub social_presence: Vec<Vec<f64>>,
}

impl Dataset {
    /// Generates a dataset universe deterministically from `seed`.
    pub fn generate(kind: DatasetKind, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let (graph, community) = match kind {
            DatasetKind::Timik => (barabasi_albert(600, 5, &mut rng), None),
            DatasetKind::Smm => {
                // 10 "nationalities" of 60 players each
                let (g, c) = stochastic_block_model(&[60; 10], 0.12, 0.004, &mut rng);
                (g, Some(c))
            }
            DatasetKind::Hubs => (watts_strogatz(64, 8, 0.15, &mut rng), None),
        };
        let preference = PreferenceModel::default().preference_matrix(&graph);
        let social_presence = social_presence_matrix(&graph);
        Dataset { kind, social_graph: graph, community, preference, social_presence }
    }

    /// Number of users in the universe.
    pub fn universe_size(&self) -> usize {
        self.social_graph.node_count()
    }

    /// Samples a conferencing-room scenario from this universe.
    pub fn sample_scenario(&self, config: &ScenarioConfig) -> Scenario {
        sample_scenario(self.kind.name(), &self.social_graph, &self.preference, &self.social_presence, config)
    }

    /// The paper's default scenario configuration for this dataset:
    /// `T = 100, N = 200, 50% VR` for the large datasets; a small workshop
    /// room with a few dozen users for Hubs.
    pub fn default_scenario_config(&self, seed: u64) -> ScenarioConfig {
        match self.kind {
            DatasetKind::Timik | DatasetKind::Smm => ScenarioConfig { seed, ..ScenarioConfig::default() },
            DatasetKind::Hubs => ScenarioConfig {
                n_participants: 40,
                vr_fraction: 0.5,
                time_steps: 100,
                room_side: 8.0,
                body_radius: 0.25,
                seed,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_generate() {
        for kind in DatasetKind::all() {
            let d = Dataset::generate(kind, 1);
            assert!(d.universe_size() > 0);
            assert_eq!(d.preference.len(), d.universe_size());
            assert_eq!(d.social_presence.len(), d.universe_size());
            assert!(!d.kind.name().is_empty());
        }
    }

    #[test]
    fn smm_has_communities_others_do_not() {
        assert!(Dataset::generate(DatasetKind::Smm, 2).community.is_some());
        assert!(Dataset::generate(DatasetKind::Timik, 2).community.is_none());
        assert!(Dataset::generate(DatasetKind::Hubs, 2).community.is_none());
    }

    #[test]
    fn timik_is_scale_free_hubs_is_clustered() {
        let timik = Dataset::generate(DatasetKind::Timik, 3);
        let hubs = Dataset::generate(DatasetKind::Hubs, 3);
        let g = &timik.social_graph;
        let max_deg = (0..g.node_count()).map(|v| g.degree(v)).max().unwrap() as f64;
        assert!(max_deg > 3.0 * g.mean_degree(), "Timik lacks hubs");
        assert!(hubs.social_graph.transitivity() > 0.2, "Hubs lacks clustering");
    }

    #[test]
    fn default_configs_match_paper() {
        let d = Dataset::generate(DatasetKind::Smm, 4);
        let c = d.default_scenario_config(9);
        assert_eq!(c.n_participants, 200);
        assert_eq!(c.time_steps, 100);
        assert_eq!(c.vr_fraction, 0.5);
        let h = Dataset::generate(DatasetKind::Hubs, 4).default_scenario_config(9);
        assert!(h.n_participants < 64);
    }

    #[test]
    fn scenario_sampling_round_trip() {
        let d = Dataset::generate(DatasetKind::Hubs, 5);
        let cfg = ScenarioConfig { n_participants: 20, time_steps: 10, ..d.default_scenario_config(5) };
        let s = d.sample_scenario(&cfg);
        assert_eq!(s.n(), 20);
        assert_eq!(s.dataset, "Hubs");
        // restricted utilities must match the universe matrices
        let v = s.participants[0];
        let w = s.participants[1];
        assert_eq!(s.preference[0][1], d.preference[v][w]);
        assert_eq!(s.social[0][1], d.social_presence[v][w]);
    }
}
