//! Conferencing-room scenarios: participants, interfaces, utilities, and
//! simulated trajectories — everything an AFTER recommender consumes.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use xr_crowd::{Agent, CrowdSimulator, Room, SimConfig};
use xr_graph::geom::Point2;

/// The interface a participant joins through (paper **F3**): in-person MR or
/// remote VR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interface {
    /// In-person participant with an MR headset: physically present, so she
    /// occludes (and is occluded) regardless of recommendations.
    Mr,
    /// Remote participant in VR: rendered only when recommended.
    Vr,
}

/// Parameters of a sampled conferencing-room scenario.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Number of participants `N` in the room.
    pub n_participants: usize,
    /// Fraction of VR (remote) users; the rest are co-located MR users.
    pub vr_fraction: f64,
    /// Number of recommendation steps `T` (the scenario has `T + 1` frames).
    pub time_steps: usize,
    /// Side length of the square room, meters.
    pub room_side: f64,
    /// Avatar body radius, meters (drives both collisions and occlusion).
    pub body_radius: f64,
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        // Paper defaults: T = 100, N = 200, 50% VR, 10 m virtual room.
        ScenarioConfig {
            n_participants: 200,
            vr_fraction: 0.5,
            time_steps: 100,
            room_side: 10.0,
            body_radius: 0.25,
            seed: 7,
        }
    }
}

/// A fully materialized scenario for one conferencing room.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Dataset name this scenario was sampled from.
    pub dataset: String,
    /// Global user ids of the participants (indices into the dataset graph).
    pub participants: Vec<usize>,
    /// Interface per participant (local index).
    pub interfaces: Vec<Interface>,
    /// Preference utilities `p[v][w]`, restricted and reindexed to `0..N`.
    pub preference: Vec<Vec<f64>>,
    /// Social-presence utilities `s[v][w]`, restricted and reindexed.
    pub social: Vec<Vec<f64>>,
    /// Positions: `trajectories[t][i]` for `t ∈ 0..=T`.
    pub trajectories: Vec<Vec<Point2>>,
    /// The room everyone moves in.
    pub room: Room,
    /// Avatar body radius, meters.
    pub body_radius: f64,
}

impl Scenario {
    /// Number of participants.
    pub fn n(&self) -> usize {
        self.interfaces.len()
    }

    /// Number of recommendation steps `T` (frames − 1).
    pub fn t_max(&self) -> usize {
        self.trajectories.len() - 1
    }

    /// Positions at time `t`.
    pub fn positions_at(&self, t: usize) -> &[Point2] {
        &self.trajectories[t]
    }

    /// Boolean mask of MR (physically present) participants.
    pub fn mr_mask(&self) -> Vec<bool> {
        self.interfaces.iter().map(|&i| i == Interface::Mr).collect()
    }

    /// Number of MR participants.
    pub fn mr_count(&self) -> usize {
        self.interfaces.iter().filter(|&&i| i == Interface::Mr).count()
    }
}

/// Samples non-overlapping initial positions by rejection.
fn initial_positions(n: usize, room: Room, radius: f64, rng: &mut StdRng) -> Vec<Point2> {
    let mut positions: Vec<Point2> = Vec::with_capacity(n);
    let min_sep = 2.0 * radius;
    'outer: for _attempt in 0..(n * 2000) {
        if positions.len() == n {
            break;
        }
        let p = Point2::new(
            rng.gen_range(room.min.x + radius..room.max.x - radius),
            rng.gen_range(room.min.y + radius..room.max.y - radius),
        );
        for &q in &positions {
            if p.distance(q) < min_sep {
                continue 'outer;
            }
        }
        positions.push(p);
    }
    // Fall back to jittered grid placement if rejection sampling stalls
    // (only relevant at extreme densities).
    while positions.len() < n {
        let i = positions.len();
        let cols = (n as f64).sqrt().ceil() as usize;
        let cell = (room.width() - 2.0 * radius) / cols as f64;
        let r = i / cols;
        let c = i % cols;
        positions.push(Point2::new(
            room.min.x + radius + (c as f64 + 0.5) * cell,
            room.min.y + radius + (r as f64 + 0.5) * cell.min(room.height() - 2.0 * radius),
        ));
    }
    positions
}

/// Generates trajectories with a random-waypoint policy on top of the ORCA
/// simulator: each participant walks to a goal; on arrival a fresh uniform
/// goal is drawn.
pub fn generate_trajectories(
    n: usize,
    time_steps: usize,
    room: Room,
    body_radius: f64,
    rng: &mut StdRng,
) -> Vec<Vec<Point2>> {
    let starts = initial_positions(n, room, body_radius, rng);
    let sample_goal = |rng: &mut StdRng| {
        Point2::new(
            rng.gen_range(room.min.x + body_radius..room.max.x - body_radius),
            rng.gen_range(room.min.y + body_radius..room.max.y - body_radius),
        )
    };
    let agents: Vec<Agent> = starts
        .iter()
        .map(|&p| {
            let mut a = Agent::new(p, sample_goal(rng));
            a.radius = body_radius;
            a.pref_speed = rng.gen_range(0.6..1.2); // human walking-speed spread
            a
        })
        .collect();
    let mut sim = CrowdSimulator::new(agents, room, SimConfig::default());

    let mut frames = Vec::with_capacity(time_steps + 1);
    frames.push(sim.positions());
    for _ in 0..time_steps {
        // waypoint churn
        for i in 0..n {
            if sim.agents()[i].at_goal(0.3) {
                let g = sample_goal(rng);
                sim.set_goal(i, g);
            }
        }
        sim.step();
        frames.push(sim.positions());
    }
    frames
}

/// Temporal-coherence shaping for generated trajectories: the knobs
/// benchmarks sweep to model bounded per-tick motion, idle dwellers, and
/// teleports/churn (a user "leaving" and "re-joining" is a teleport to and
/// from a parking spot under a fixed-width frame).
///
/// The default profile is the identity — [`apply_motion_profile`] then
/// touches neither the frames nor the RNG, so legacy trajectories (and the
/// golden replay built on them) are bit-for-bit unchanged.
#[derive(Debug, Clone, Copy)]
pub struct MotionProfile {
    /// Per-tick displacement clamp, meters: a user's step from the previous
    /// shaped position toward the raw simulated position is truncated to
    /// this length. `None` leaves steps unclamped.
    pub max_step: Option<f64>,
    /// Per-user, per-tick probability of an instantaneous teleport to a
    /// uniform point in the room.
    pub teleport_prob: f64,
    /// Per-user, per-tick probability of holding the previous position
    /// *exactly* (bitwise dwell — what incremental maintenance feeds on).
    pub dwell_prob: f64,
    /// Sensor-noise amplitude, meters: every emitted position is the shaped
    /// *anchor* plus a fresh uniform offset in `[-jitter, jitter]²`. Unlike
    /// the walk knobs the noise oscillates *around* the anchor instead of
    /// accumulating, which is what head-tracking jitter looks like — and
    /// what an ingest snap epsilon `≥ 2·√2·jitter` absorbs entirely. `0.0`
    /// (the default) emits the anchors themselves, bit-for-bit the
    /// pre-jitter behavior, and draws no randomness.
    pub jitter: f64,
}

impl Default for MotionProfile {
    fn default() -> Self {
        MotionProfile { max_step: None, teleport_prob: 0.0, dwell_prob: 0.0, jitter: 0.0 }
    }
}

impl MotionProfile {
    /// `true` when the profile changes nothing (the default).
    pub fn is_identity(&self) -> bool {
        self.max_step.is_none() && self.teleport_prob == 0.0 && self.dwell_prob == 0.0 && self.jitter == 0.0
    }
}

/// Reshapes simulated trajectories in place per a [`MotionProfile`]: frame 0
/// is kept; each later frame's *anchor* is rebuilt per user as teleport /
/// exact dwell / (possibly clamped) step toward the raw simulated position,
/// in that precedence, and the emitted position is the anchor plus sensor
/// jitter. Anchors — not emitted positions — chain across ticks, so jitter
/// oscillates in place instead of compounding into a random walk. RNG draws
/// happen only for enabled knobs, so an identity profile consumes no
/// randomness and `jitter: 0.0` leaves the draw stream of the walk knobs
/// untouched.
pub fn apply_motion_profile(
    frames: &mut [Vec<Point2>],
    room: Room,
    body_radius: f64,
    profile: &MotionProfile,
    rng: &mut StdRng,
) {
    if profile.is_identity() || frames.len() < 2 {
        return;
    }
    assert!((0.0..=1.0).contains(&profile.teleport_prob), "teleport_prob out of range");
    assert!((0.0..=1.0).contains(&profile.dwell_prob), "dwell_prob out of range");
    if let Some(step) = profile.max_step {
        assert!(step.is_finite() && step >= 0.0, "max_step must be finite and non-negative");
    }
    assert!(profile.jitter.is_finite() && profile.jitter >= 0.0, "jitter must be finite and non-negative");
    let n = frames[0].len();
    let mut anchors = frames[0].clone();
    for frame in frames.iter_mut().skip(1) {
        for i in 0..n {
            let prev = anchors[i];
            anchors[i] = if profile.teleport_prob > 0.0 && rng.gen_bool(profile.teleport_prob) {
                Point2::new(
                    rng.gen_range(room.min.x + body_radius..room.max.x - body_radius),
                    rng.gen_range(room.min.y + body_radius..room.max.y - body_radius),
                )
            } else if profile.dwell_prob > 0.0 && rng.gen_bool(profile.dwell_prob) {
                prev
            } else {
                let target = frame[i];
                match profile.max_step {
                    Some(max_step) if prev.distance(target) > max_step => {
                        let scale = max_step / prev.distance(target);
                        Point2::new(
                            prev.x + (target.x - prev.x) * scale,
                            prev.y + (target.y - prev.y) * scale,
                        )
                    }
                    _ => target,
                }
            };
            frame[i] = if profile.jitter > 0.0 {
                let j = profile.jitter;
                Point2::new(anchors[i].x + rng.gen_range(-j..j), anchors[i].y + rng.gen_range(-j..j))
            } else {
                anchors[i]
            };
        }
    }
}

/// [`generate_trajectories`] followed by [`apply_motion_profile`] — the
/// coherence-swept generator entry point for benchmarks and differential
/// workloads. An identity profile is bit-for-bit `generate_trajectories`.
pub fn generate_trajectories_with_motion(
    n: usize,
    time_steps: usize,
    room: Room,
    body_radius: f64,
    profile: &MotionProfile,
    rng: &mut StdRng,
) -> Vec<Vec<Point2>> {
    let mut frames = generate_trajectories(n, time_steps, room, body_radius, rng);
    apply_motion_profile(&mut frames, room, body_radius, profile, rng);
    frames
}

/// Snowball-samples `n` participants from the universe: a random seed user's
/// social neighborhood is expanded breadth-first (shuffled per ring) until
/// `n` users are collected, falling back to uniform fill when the component
/// is exhausted. Conference attendees know each other — uniform sampling
/// from an 850k-user universe would yield a room of mutual strangers, and
/// the social-presence term of the AFTER utility would be vacuous.
pub fn snowball_sample(social: &xr_graph::SocialGraph, n: usize, rng: &mut StdRng) -> Vec<usize> {
    let universe = social.node_count();
    let n = n.min(universe);
    let mut picked = Vec::with_capacity(n);
    let mut seen = vec![false; universe];
    let mut frontier = vec![rng.gen_range(0..universe)];
    seen[frontier[0]] = true;
    while picked.len() < n {
        if frontier.is_empty() {
            // component exhausted: restart from a fresh unseen seed
            let remaining: Vec<usize> = (0..universe).filter(|&v| !seen[v]).collect();
            if remaining.is_empty() {
                break;
            }
            let seed = remaining[rng.gen_range(0..remaining.len())];
            seen[seed] = true;
            frontier.push(seed);
        }
        let mut next = Vec::new();
        frontier.shuffle(rng);
        for v in frontier.drain(..) {
            if picked.len() >= n {
                break;
            }
            picked.push(v);
            for &(w, _) in social.ties(v) {
                if !seen[w] {
                    seen[w] = true;
                    next.push(w);
                }
            }
        }
        frontier = next;
    }
    picked
}

/// Builds a scenario from a universe social graph and its utility matrices.
pub fn sample_scenario(
    dataset_name: &str,
    social_graph: &xr_graph::SocialGraph,
    preference_full: &[Vec<f64>],
    social_full: &[Vec<f64>],
    config: &ScenarioConfig,
) -> Scenario {
    let universe_size = social_graph.node_count();
    assert!(
        config.n_participants <= universe_size,
        "cannot sample {} participants from a universe of {universe_size}",
        config.n_participants
    );
    assert!((0.0..=1.0).contains(&config.vr_fraction), "vr_fraction out of range");
    let mut rng = StdRng::seed_from_u64(config.seed);

    let participants: Vec<usize> = snowball_sample(social_graph, config.n_participants, &mut rng);

    let n = participants.len();
    let n_vr = (config.vr_fraction * n as f64).round() as usize;
    let mut interfaces = vec![Interface::Vr; n_vr];
    interfaces.extend(std::iter::repeat_n(Interface::Mr, n - n_vr));
    interfaces.shuffle(&mut rng);

    let preference = crate::utility::restrict_matrix(preference_full, &participants);
    let social = crate::utility::restrict_matrix(social_full, &participants);

    let room = Room::new(config.room_side, config.room_side);
    let trajectories = generate_trajectories(n, config.time_steps, room, config.body_radius, &mut rng);

    Scenario {
        dataset: dataset_name.to_string(),
        participants,
        interfaces,
        preference,
        social,
        trajectories,
        room,
        body_radius: config.body_radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph(n: usize) -> xr_graph::SocialGraph {
        // ring graph so snowball sampling always finds neighbors
        let mut g = xr_graph::SocialGraph::new(n);
        for v in 0..n {
            g.add_tie(v, (v + 1) % n, 0.5);
        }
        g
    }

    fn tiny_full(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|v| (0..n).map(|w| if v == w { 0.0 } else { ((v * 31 + w) % 10) as f64 / 10.0 }).collect())
            .collect()
    }

    fn cfg(n: usize, t: usize, seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            n_participants: n,
            vr_fraction: 0.5,
            time_steps: t,
            room_side: 10.0,
            body_radius: 0.15,
            seed,
        }
    }

    #[test]
    fn scenario_shapes_are_consistent() {
        let full = tiny_full(50);
        let s = sample_scenario("test", &tiny_graph(50), &full, &full, &cfg(20, 10, 1));
        assert_eq!(s.n(), 20);
        assert_eq!(s.t_max(), 10);
        assert_eq!(s.trajectories.len(), 11);
        assert_eq!(s.preference.len(), 20);
        assert_eq!(s.preference[0].len(), 20);
        assert_eq!(s.interfaces.len(), 20);
        assert_eq!(s.positions_at(0).len(), 20);
    }

    #[test]
    fn vr_fraction_is_respected() {
        let full = tiny_full(60);
        let s = sample_scenario("test", &tiny_graph(60), &full, &full, &cfg(40, 5, 2));
        let vr = s.interfaces.iter().filter(|&&i| i == Interface::Vr).count();
        assert_eq!(vr, 20);
        assert_eq!(s.mr_count(), 20);
        assert_eq!(s.mr_mask().iter().filter(|&&b| b).count(), 20);
    }

    #[test]
    fn participants_are_distinct_and_in_range() {
        let full = tiny_full(30);
        let s = sample_scenario("test", &tiny_graph(30), &full, &full, &cfg(30, 3, 3));
        let mut sorted = s.participants.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
        assert!(sorted.iter().all(|&v| v < 30));
    }

    #[test]
    fn trajectories_stay_in_room_and_move() {
        let full = tiny_full(40);
        let s = sample_scenario("test", &tiny_graph(40), &full, &full, &cfg(25, 20, 4));
        for frame in &s.trajectories {
            for &p in frame {
                assert!(s.room.contains(p), "{p:?} escaped the room");
            }
        }
        // the crowd actually moves
        let moved: f64 =
            (0..s.n()).map(|i| s.trajectories[0][i].distance(s.trajectories[s.t_max()][i])).sum();
        assert!(moved > 1.0, "crowd is frozen: total displacement {moved}");
    }

    #[test]
    fn scenarios_are_deterministic_in_seed() {
        let full = tiny_full(40);
        let a = sample_scenario("test", &tiny_graph(40), &full, &full, &cfg(15, 8, 99));
        let b = sample_scenario("test", &tiny_graph(40), &full, &full, &cfg(15, 8, 99));
        assert_eq!(a.participants, b.participants);
        assert_eq!(a.trajectories[8], b.trajectories[8]);
        let c = sample_scenario("test", &tiny_graph(40), &full, &full, &cfg(15, 8, 100));
        assert_ne!(a.participants, c.participants);
    }

    #[test]
    fn initial_positions_respect_separation() {
        let mut rng = StdRng::seed_from_u64(5);
        let room = Room::new(10.0, 10.0);
        let pos = initial_positions(50, room, 0.15, &mut rng);
        for i in 0..50 {
            for j in i + 1..50 {
                assert!(pos[i].distance(pos[j]) >= 0.3 - 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let full = tiny_full(5);
        sample_scenario("test", &tiny_graph(5), &full, &full, &cfg(10, 2, 1));
    }

    #[test]
    fn identity_motion_profile_is_bitwise_legacy() {
        let room = Room::new(8.0, 8.0);
        let mut rng_a = StdRng::seed_from_u64(42);
        let a = generate_trajectories(12, 10, room, 0.2, &mut rng_a);
        let mut rng_b = StdRng::seed_from_u64(42);
        let b = generate_trajectories_with_motion(12, 10, room, 0.2, &MotionProfile::default(), &mut rng_b);
        assert_eq!(a, b, "identity profile must not perturb frames or RNG state");
        // and the RNG streams stayed in lockstep
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn max_step_bounds_per_tick_displacement() {
        let room = Room::new(8.0, 8.0);
        let mut rng = StdRng::seed_from_u64(43);
        let profile = MotionProfile { max_step: Some(0.05), ..MotionProfile::default() };
        let frames = generate_trajectories_with_motion(15, 20, room, 0.2, &profile, &mut rng);
        for w in frames.windows(2) {
            for (p0, p1) in w[0].iter().zip(&w[1]) {
                let d = p0.distance(*p1);
                assert!(d <= 0.05 + 1e-12, "step {d} exceeds the clamp");
                assert!(room.contains(*p1));
            }
        }
    }

    #[test]
    fn dwell_produces_bitwise_stationary_users_and_teleports_jump() {
        let room = Room::new(8.0, 8.0);
        let mut rng = StdRng::seed_from_u64(44);
        let profile =
            MotionProfile { max_step: Some(0.1), teleport_prob: 0.05, dwell_prob: 0.6, jitter: 0.0 };
        let frames = generate_trajectories_with_motion(20, 30, room, 0.2, &profile, &mut rng);
        let mut dwells = 0usize;
        let mut jumps = 0usize;
        for w in frames.windows(2) {
            for (p0, p1) in w[0].iter().zip(&w[1]) {
                let d = p0.distance(*p1);
                if p1 == p0 {
                    dwells += 1;
                } else if d > 0.1 + 1e-12 {
                    jumps += 1; // beyond the clamp ⇒ must be a teleport
                }
                assert!(room.contains(*p1));
            }
        }
        assert!(dwells > 100, "dwell_prob=0.6 over 600 user-ticks produced only {dwells} dwells");
        assert!(jumps > 0, "teleport_prob=0.05 produced no jumps");
    }

    #[test]
    fn jitter_oscillates_around_anchors_without_drifting() {
        let room = Room::new(8.0, 8.0);
        let mut rng = StdRng::seed_from_u64(45);
        // max_step 0 pins every anchor at frame 0, so all emitted motion is
        // pure sensor noise — it must stay inside the jitter box forever
        // instead of compounding into a random walk
        let profile =
            MotionProfile { max_step: Some(0.0), teleport_prob: 0.0, dwell_prob: 0.0, jitter: 0.01 };
        let frames = generate_trajectories_with_motion(15, 40, room, 0.2, &profile, &mut rng);
        for (t, frame) in frames.iter().enumerate().skip(1) {
            for i in 0..15 {
                let d = frame[i].distance(frames[0][i]);
                assert!(
                    d <= 0.01 * std::f64::consts::SQRT_2 + 1e-12,
                    "tick {t}: user {i} drifted {d} from its anchor"
                );
            }
        }
        assert_ne!(frames[1], frames[0], "jitter must actually perturb emitted positions");
    }
}
