//! Conferencing-room scenarios: participants, interfaces, utilities, and
//! simulated trajectories — everything an AFTER recommender consumes.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use xr_crowd::{Agent, CrowdSimulator, Room, SimConfig};
use xr_graph::geom::Point2;

/// The interface a participant joins through (paper **F3**): in-person MR or
/// remote VR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interface {
    /// In-person participant with an MR headset: physically present, so she
    /// occludes (and is occluded) regardless of recommendations.
    Mr,
    /// Remote participant in VR: rendered only when recommended.
    Vr,
}

/// Parameters of a sampled conferencing-room scenario.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Number of participants `N` in the room.
    pub n_participants: usize,
    /// Fraction of VR (remote) users; the rest are co-located MR users.
    pub vr_fraction: f64,
    /// Number of recommendation steps `T` (the scenario has `T + 1` frames).
    pub time_steps: usize,
    /// Side length of the square room, meters.
    pub room_side: f64,
    /// Avatar body radius, meters (drives both collisions and occlusion).
    pub body_radius: f64,
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        // Paper defaults: T = 100, N = 200, 50% VR, 10 m virtual room.
        ScenarioConfig {
            n_participants: 200,
            vr_fraction: 0.5,
            time_steps: 100,
            room_side: 10.0,
            body_radius: 0.25,
            seed: 7,
        }
    }
}

/// A fully materialized scenario for one conferencing room.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Dataset name this scenario was sampled from.
    pub dataset: String,
    /// Global user ids of the participants (indices into the dataset graph).
    pub participants: Vec<usize>,
    /// Interface per participant (local index).
    pub interfaces: Vec<Interface>,
    /// Preference utilities `p[v][w]`, restricted and reindexed to `0..N`.
    pub preference: Vec<Vec<f64>>,
    /// Social-presence utilities `s[v][w]`, restricted and reindexed.
    pub social: Vec<Vec<f64>>,
    /// Positions: `trajectories[t][i]` for `t ∈ 0..=T`.
    pub trajectories: Vec<Vec<Point2>>,
    /// The room everyone moves in.
    pub room: Room,
    /// Avatar body radius, meters.
    pub body_radius: f64,
}

impl Scenario {
    /// Number of participants.
    pub fn n(&self) -> usize {
        self.interfaces.len()
    }

    /// Number of recommendation steps `T` (frames − 1).
    pub fn t_max(&self) -> usize {
        self.trajectories.len() - 1
    }

    /// Positions at time `t`.
    pub fn positions_at(&self, t: usize) -> &[Point2] {
        &self.trajectories[t]
    }

    /// Boolean mask of MR (physically present) participants.
    pub fn mr_mask(&self) -> Vec<bool> {
        self.interfaces.iter().map(|&i| i == Interface::Mr).collect()
    }

    /// Number of MR participants.
    pub fn mr_count(&self) -> usize {
        self.interfaces.iter().filter(|&&i| i == Interface::Mr).count()
    }
}

/// Samples non-overlapping initial positions by rejection.
fn initial_positions(n: usize, room: Room, radius: f64, rng: &mut StdRng) -> Vec<Point2> {
    let mut positions: Vec<Point2> = Vec::with_capacity(n);
    let min_sep = 2.0 * radius;
    'outer: for _attempt in 0..(n * 2000) {
        if positions.len() == n {
            break;
        }
        let p = Point2::new(
            rng.gen_range(room.min.x + radius..room.max.x - radius),
            rng.gen_range(room.min.y + radius..room.max.y - radius),
        );
        for &q in &positions {
            if p.distance(q) < min_sep {
                continue 'outer;
            }
        }
        positions.push(p);
    }
    // Fall back to jittered grid placement if rejection sampling stalls
    // (only relevant at extreme densities).
    while positions.len() < n {
        let i = positions.len();
        let cols = (n as f64).sqrt().ceil() as usize;
        let cell = (room.width() - 2.0 * radius) / cols as f64;
        let r = i / cols;
        let c = i % cols;
        positions.push(Point2::new(
            room.min.x + radius + (c as f64 + 0.5) * cell,
            room.min.y + radius + (r as f64 + 0.5) * cell.min(room.height() - 2.0 * radius),
        ));
    }
    positions
}

/// Generates trajectories with a random-waypoint policy on top of the ORCA
/// simulator: each participant walks to a goal; on arrival a fresh uniform
/// goal is drawn.
pub fn generate_trajectories(
    n: usize,
    time_steps: usize,
    room: Room,
    body_radius: f64,
    rng: &mut StdRng,
) -> Vec<Vec<Point2>> {
    let starts = initial_positions(n, room, body_radius, rng);
    let sample_goal = |rng: &mut StdRng| {
        Point2::new(
            rng.gen_range(room.min.x + body_radius..room.max.x - body_radius),
            rng.gen_range(room.min.y + body_radius..room.max.y - body_radius),
        )
    };
    let agents: Vec<Agent> = starts
        .iter()
        .map(|&p| {
            let mut a = Agent::new(p, sample_goal(rng));
            a.radius = body_radius;
            a.pref_speed = rng.gen_range(0.6..1.2); // human walking-speed spread
            a
        })
        .collect();
    let mut sim = CrowdSimulator::new(agents, room, SimConfig::default());

    let mut frames = Vec::with_capacity(time_steps + 1);
    frames.push(sim.positions());
    for _ in 0..time_steps {
        // waypoint churn
        for i in 0..n {
            if sim.agents()[i].at_goal(0.3) {
                let g = sample_goal(rng);
                sim.set_goal(i, g);
            }
        }
        sim.step();
        frames.push(sim.positions());
    }
    frames
}

/// Snowball-samples `n` participants from the universe: a random seed user's
/// social neighborhood is expanded breadth-first (shuffled per ring) until
/// `n` users are collected, falling back to uniform fill when the component
/// is exhausted. Conference attendees know each other — uniform sampling
/// from an 850k-user universe would yield a room of mutual strangers, and
/// the social-presence term of the AFTER utility would be vacuous.
pub fn snowball_sample(social: &xr_graph::SocialGraph, n: usize, rng: &mut StdRng) -> Vec<usize> {
    let universe = social.node_count();
    let n = n.min(universe);
    let mut picked = Vec::with_capacity(n);
    let mut seen = vec![false; universe];
    let mut frontier = vec![rng.gen_range(0..universe)];
    seen[frontier[0]] = true;
    while picked.len() < n {
        if frontier.is_empty() {
            // component exhausted: restart from a fresh unseen seed
            let remaining: Vec<usize> = (0..universe).filter(|&v| !seen[v]).collect();
            if remaining.is_empty() {
                break;
            }
            let seed = remaining[rng.gen_range(0..remaining.len())];
            seen[seed] = true;
            frontier.push(seed);
        }
        let mut next = Vec::new();
        frontier.shuffle(rng);
        for v in frontier.drain(..) {
            if picked.len() >= n {
                break;
            }
            picked.push(v);
            for &(w, _) in social.ties(v) {
                if !seen[w] {
                    seen[w] = true;
                    next.push(w);
                }
            }
        }
        frontier = next;
    }
    picked
}

/// Builds a scenario from a universe social graph and its utility matrices.
pub fn sample_scenario(
    dataset_name: &str,
    social_graph: &xr_graph::SocialGraph,
    preference_full: &[Vec<f64>],
    social_full: &[Vec<f64>],
    config: &ScenarioConfig,
) -> Scenario {
    let universe_size = social_graph.node_count();
    assert!(
        config.n_participants <= universe_size,
        "cannot sample {} participants from a universe of {universe_size}",
        config.n_participants
    );
    assert!((0.0..=1.0).contains(&config.vr_fraction), "vr_fraction out of range");
    let mut rng = StdRng::seed_from_u64(config.seed);

    let participants: Vec<usize> = snowball_sample(social_graph, config.n_participants, &mut rng);

    let n = participants.len();
    let n_vr = (config.vr_fraction * n as f64).round() as usize;
    let mut interfaces = vec![Interface::Vr; n_vr];
    interfaces.extend(std::iter::repeat_n(Interface::Mr, n - n_vr));
    interfaces.shuffle(&mut rng);

    let preference = crate::utility::restrict_matrix(preference_full, &participants);
    let social = crate::utility::restrict_matrix(social_full, &participants);

    let room = Room::new(config.room_side, config.room_side);
    let trajectories = generate_trajectories(n, config.time_steps, room, config.body_radius, &mut rng);

    Scenario {
        dataset: dataset_name.to_string(),
        participants,
        interfaces,
        preference,
        social,
        trajectories,
        room,
        body_radius: config.body_radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph(n: usize) -> xr_graph::SocialGraph {
        // ring graph so snowball sampling always finds neighbors
        let mut g = xr_graph::SocialGraph::new(n);
        for v in 0..n {
            g.add_tie(v, (v + 1) % n, 0.5);
        }
        g
    }

    fn tiny_full(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|v| (0..n).map(|w| if v == w { 0.0 } else { ((v * 31 + w) % 10) as f64 / 10.0 }).collect())
            .collect()
    }

    fn cfg(n: usize, t: usize, seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            n_participants: n,
            vr_fraction: 0.5,
            time_steps: t,
            room_side: 10.0,
            body_radius: 0.15,
            seed,
        }
    }

    #[test]
    fn scenario_shapes_are_consistent() {
        let full = tiny_full(50);
        let s = sample_scenario("test", &tiny_graph(50), &full, &full, &cfg(20, 10, 1));
        assert_eq!(s.n(), 20);
        assert_eq!(s.t_max(), 10);
        assert_eq!(s.trajectories.len(), 11);
        assert_eq!(s.preference.len(), 20);
        assert_eq!(s.preference[0].len(), 20);
        assert_eq!(s.interfaces.len(), 20);
        assert_eq!(s.positions_at(0).len(), 20);
    }

    #[test]
    fn vr_fraction_is_respected() {
        let full = tiny_full(60);
        let s = sample_scenario("test", &tiny_graph(60), &full, &full, &cfg(40, 5, 2));
        let vr = s.interfaces.iter().filter(|&&i| i == Interface::Vr).count();
        assert_eq!(vr, 20);
        assert_eq!(s.mr_count(), 20);
        assert_eq!(s.mr_mask().iter().filter(|&&b| b).count(), 20);
    }

    #[test]
    fn participants_are_distinct_and_in_range() {
        let full = tiny_full(30);
        let s = sample_scenario("test", &tiny_graph(30), &full, &full, &cfg(30, 3, 3));
        let mut sorted = s.participants.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
        assert!(sorted.iter().all(|&v| v < 30));
    }

    #[test]
    fn trajectories_stay_in_room_and_move() {
        let full = tiny_full(40);
        let s = sample_scenario("test", &tiny_graph(40), &full, &full, &cfg(25, 20, 4));
        for frame in &s.trajectories {
            for &p in frame {
                assert!(s.room.contains(p), "{p:?} escaped the room");
            }
        }
        // the crowd actually moves
        let moved: f64 =
            (0..s.n()).map(|i| s.trajectories[0][i].distance(s.trajectories[s.t_max()][i])).sum();
        assert!(moved > 1.0, "crowd is frozen: total displacement {moved}");
    }

    #[test]
    fn scenarios_are_deterministic_in_seed() {
        let full = tiny_full(40);
        let a = sample_scenario("test", &tiny_graph(40), &full, &full, &cfg(15, 8, 99));
        let b = sample_scenario("test", &tiny_graph(40), &full, &full, &cfg(15, 8, 99));
        assert_eq!(a.participants, b.participants);
        assert_eq!(a.trajectories[8], b.trajectories[8]);
        let c = sample_scenario("test", &tiny_graph(40), &full, &full, &cfg(15, 8, 100));
        assert_ne!(a.participants, c.participants);
    }

    #[test]
    fn initial_positions_respect_separation() {
        let mut rng = StdRng::seed_from_u64(5);
        let room = Room::new(10.0, 10.0);
        let pos = initial_positions(50, room, 0.15, &mut rng);
        for i in 0..50 {
            for j in i + 1..50 {
                assert!(pos[i].distance(pos[j]) >= 0.3 - 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let full = tiny_full(5);
        sample_scenario("test", &tiny_graph(5), &full, &full, &cfg(10, 2, 1));
    }
}
