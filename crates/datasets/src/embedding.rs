//! Spectral social-network embeddings.
//!
//! MIA (§IV-A) consumes "pre-trained user social network embeddings". We
//! provide a dependency-free stand-in: the top-`k` eigenvectors of the
//! symmetrically normalized adjacency `D^{-1/2} A D^{-1/2}`, computed by
//! power iteration with deflation. Nodes that are close in the graph get
//! similar embedding rows, so cosine similarity over the embedding is an
//! alternative preference signal to the Adamic–Adar mixture in
//! [`crate::utility`].

use rand::rngs::StdRng;
use rand::SeedableRng;
use xr_graph::SocialGraph;

/// A node embedding: `vectors[v]` is node `v`'s `k`-dimensional coordinate.
#[derive(Debug, Clone)]
pub struct SpectralEmbedding {
    /// Per-node embedding rows (n × k).
    pub vectors: Vec<Vec<f64>>,
    /// The eigenvalues corresponding to each dimension, largest first.
    pub eigenvalues: Vec<f64>,
}

impl SpectralEmbedding {
    /// Number of embedded nodes.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// `true` when no nodes are embedded.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Cosine similarity between two nodes' embeddings (0 for zero vectors).
    pub fn cosine(&self, a: usize, b: usize) -> f64 {
        let va = &self.vectors[a];
        let vb = &self.vectors[b];
        let dot: f64 = va.iter().zip(vb).map(|(x, y)| x * y).sum();
        let na: f64 = va.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = vb.iter().map(|x| x * x).sum::<f64>().sqrt();
        if na < 1e-12 || nb < 1e-12 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

/// Multiplies the normalized adjacency `D^{-1/2} A D^{-1/2}` by `x` without
/// materializing the matrix.
fn norm_adj_mul(g: &SocialGraph, inv_sqrt_deg: &[f64], x: &[f64]) -> Vec<f64> {
    let n = g.node_count();
    let mut out = vec![0.0; n];
    for v in 0..n {
        for &(w, _) in g.ties(v) {
            out[v] += inv_sqrt_deg[v] * inv_sqrt_deg[w] * x[w];
        }
    }
    out
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Computes the top-`k` spectral embedding by power iteration with Gram–
/// Schmidt deflation.
///
/// Deterministic under `seed`. Isolated nodes embed to ~zero vectors.
pub fn spectral_embedding(g: &SocialGraph, k: usize, iterations: usize, seed: u64) -> SpectralEmbedding {
    let n = g.node_count();
    let k = k.min(n);
    let inv_sqrt_deg: Vec<f64> = (0..n)
        .map(|v| {
            let d = g.degree(v) as f64;
            if d > 0.0 {
                1.0 / d.sqrt()
            } else {
                0.0
            }
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut eigenvalues = Vec::with_capacity(k);

    for _ in 0..k {
        // random start, orthogonal to the found eigenvectors
        let mut x: Vec<f64> = (0..n).map(|_| xr_tensor::init::standard_normal(&mut rng)).collect();
        for _ in 0..iterations {
            let mut y = norm_adj_mul(g, &inv_sqrt_deg, &x);
            // deflate
            for b in &basis {
                let c = dot(&y, b);
                for (yi, bi) in y.iter_mut().zip(b) {
                    *yi -= c * bi;
                }
            }
            let len = norm(&y);
            if len < 1e-12 {
                break;
            }
            for yi in y.iter_mut() {
                *yi /= len;
            }
            x = y;
        }
        let ax = norm_adj_mul(g, &inv_sqrt_deg, &x);
        eigenvalues.push(dot(&x, &ax));
        basis.push(x);
    }

    // scale each eigenvector by sqrt(|λ|) so dimensions carry their weight
    let vectors: Vec<Vec<f64>> = (0..n)
        .map(|v| basis.iter().zip(&eigenvalues).map(|(b, &l)| b[v] * l.abs().sqrt()).collect())
        .collect();
    SpectralEmbedding { vectors, eigenvalues }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::stochastic_block_model;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn eigenvalues_are_sorted_and_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, _) = stochastic_block_model(&[30, 30], 0.3, 0.02, &mut rng);
        let emb = spectral_embedding(&g, 4, 60, 7);
        assert_eq!(emb.dim(), 4);
        assert_eq!(emb.len(), 60);
        // normalized adjacency has spectrum in [-1, 1]; leading eigenvalue = 1
        assert!((emb.eigenvalues[0] - 1.0).abs() < 0.05, "λ₀ = {}", emb.eigenvalues[0]);
        for w in emb.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 0.1, "eigenvalues out of order: {:?}", emb.eigenvalues);
        }
        assert!(emb.eigenvalues.iter().all(|&l| l.abs() <= 1.0 + 1e-6));
    }

    #[test]
    fn communities_are_separable_in_embedding_space() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, community) = stochastic_block_model(&[40, 40], 0.3, 0.01, &mut rng);
        let emb = spectral_embedding(&g, 3, 80, 3);
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for a in 0..80 {
            for b in a + 1..80 {
                let c = emb.cosine(a, b);
                if community[a] == community[b] {
                    same.push(c);
                } else {
                    diff.push(c);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&same) > mean(&diff) + 0.2,
            "no separation: same {} vs diff {}",
            mean(&same),
            mean(&diff)
        );
    }

    #[test]
    fn isolated_nodes_embed_to_zero() {
        let g = SocialGraph::new(5); // no ties at all
        let emb = spectral_embedding(&g, 2, 20, 1);
        for v in 0..5 {
            assert!(emb.vectors[v].iter().all(|&x| x.abs() < 1e-9));
        }
        assert_eq!(emb.cosine(0, 1), 0.0);
    }

    #[test]
    fn embedding_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(4);
        let (g, _) = stochastic_block_model(&[20, 20], 0.3, 0.05, &mut rng);
        let a = spectral_embedding(&g, 3, 50, 9);
        let b = spectral_embedding(&g, 3, 50, 9);
        assert_eq!(a.vectors, b.vectors);
    }

    #[test]
    fn k_is_capped_at_n() {
        let mut g = SocialGraph::new(3);
        g.add_tie(0, 1, 1.0);
        g.add_tie(1, 2, 1.0);
        let emb = spectral_embedding(&g, 10, 30, 1);
        assert_eq!(emb.dim(), 3);
    }
}
