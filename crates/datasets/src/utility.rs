//! Preference and social-presence utility models.
//!
//! The paper assumes `p(v,w) ∈ [0,1]` comes from a *pre-trained personalized
//! recommender* and `s(v,w) ∈ [0,1]` from tie strength. We derive both from
//! the synthetic social graph:
//!
//! * **Preference** blends structural similarity (Adamic–Adar, the workhorse
//!   of classical friend-recommendation), global popularity (celebrities
//!   attract everyone — the paper's "idols" motivating example), and a
//!   deterministic per-pair idiosyncratic taste term.
//! * **Social presence** is the tie strength itself: you only feel "being
//!   together" with actual friends, graded by closeness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xr_graph::SocialGraph;

/// Weights of the preference mixture.
#[derive(Debug, Clone, Copy)]
pub struct PreferenceModel {
    /// Weight of normalized Adamic–Adar structural similarity.
    pub similarity: f64,
    /// Weight of normalized degree (popularity / celebrity effect).
    pub popularity: f64,
    /// Weight of the idiosyncratic per-pair taste term.
    pub taste: f64,
    /// Seed making the taste term reproducible.
    pub seed: u64,
}

impl Default for PreferenceModel {
    fn default() -> Self {
        PreferenceModel { similarity: 0.5, popularity: 0.25, taste: 0.25, seed: 0xAF7E }
    }
}

impl PreferenceModel {
    /// Full `n × n` preference matrix `p[v][w]`; the diagonal is zero.
    #[allow(clippy::needless_range_loop)] // index-coupled math over v/w is clearer
    pub fn preference_matrix(&self, g: &SocialGraph) -> Vec<Vec<f64>> {
        let n = g.node_count();
        let max_deg = (0..n).map(|v| g.degree(v)).max().unwrap_or(1).max(1) as f64;
        // Adamic–Adar contribution of each common-neighbor hub, precomputed
        // once; the batch accumulation below is O(Σ_z deg(z)²) instead of the
        // O(n² · deg) pairwise formulation.
        let inv_log_deg: Vec<f64> = (0..n)
            .map(|z| {
                let d = g.degree(z) as f64;
                if d > 1.0 {
                    1.0 / d.ln()
                } else {
                    1.0 / (2.0_f64).ln()
                }
            })
            .collect();
        let mut out = vec![vec![0.0; n]; n];
        let mut aa = vec![0.0; n];
        for v in 0..n {
            aa.iter_mut().for_each(|x| *x = 0.0);
            for &(z, _) in g.ties(v) {
                for &(w, _) in g.ties(z) {
                    if w != v {
                        aa[w] += inv_log_deg[z];
                    }
                }
            }
            let aa_max = aa.iter().cloned().fold(0.0_f64, f64::max).max(1e-9);
            for w in 0..n {
                if w == v {
                    continue;
                }
                let sim = aa[w] / aa_max;
                let pop = g.degree(w) as f64 / max_deg;
                let taste = pair_taste(self.seed, v, w);
                out[v][w] =
                    (self.similarity * sim + self.popularity * pop + self.taste * taste).clamp(0.0, 1.0);
            }
        }
        out
    }
}

/// Deterministic pseudo-random taste in `[0,1)` for an ordered pair.
fn pair_taste(seed: u64, v: usize, w: usize) -> f64 {
    // splitmix-style mix of (seed, v, w) → one uniform draw
    let mut rng = StdRng::seed_from_u64(
        seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (w as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9),
    );
    rng.gen::<f64>()
}

/// Full `n × n` social-presence matrix `s[v][w]` (tie strengths; zero
/// diagonal, zero for strangers).
#[allow(clippy::needless_range_loop)] // index-coupled math over v/w is clearer
pub fn social_presence_matrix(g: &SocialGraph) -> Vec<Vec<f64>> {
    let n = g.node_count();
    let mut out = vec![vec![0.0; n]; n];
    for v in 0..n {
        for &(w, strength) in g.ties(v) {
            out[v][w] = strength;
        }
    }
    out
}

/// Restricts a full utility matrix to a participant subset, reindexed to
/// `0..participants.len()`.
pub fn restrict_matrix(full: &[Vec<f64>], participants: &[usize]) -> Vec<Vec<f64>> {
    participants.iter().map(|&v| participants.iter().map(|&w| full[v][w]).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::barabasi_albert;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph() -> SocialGraph {
        barabasi_albert(60, 3, &mut StdRng::seed_from_u64(42))
    }

    #[test]
    fn preference_matrix_is_valid() {
        let g = graph();
        let p = PreferenceModel::default().preference_matrix(&g);
        assert_eq!(p.len(), 60);
        #[allow(clippy::needless_range_loop)] // v, w are user ids, not positions
        for v in 0..60 {
            assert_eq!(p[v][v], 0.0, "diagonal must be zero");
            for w in 0..60 {
                assert!((0.0..=1.0).contains(&p[v][w]), "p[{v}][{w}] = {}", p[v][w]);
            }
        }
    }

    #[test]
    fn hubs_are_preferred_on_average() {
        let g = graph();
        let p = PreferenceModel::default().preference_matrix(&g);
        let n = g.node_count();
        let mut by_deg: Vec<(usize, f64)> = (0..n)
            .map(|w| {
                let mean_in: f64 = (0..n).filter(|&v| v != w).map(|v| p[v][w]).sum::<f64>() / (n - 1) as f64;
                (g.degree(w), mean_in)
            })
            .collect();
        by_deg.sort_by_key(|&(d, _)| d);
        let low: f64 = by_deg[..10].iter().map(|&(_, m)| m).sum::<f64>() / 10.0;
        let high: f64 = by_deg[n - 10..].iter().map(|&(_, m)| m).sum::<f64>() / 10.0;
        assert!(high > low, "celebrity effect missing: high {high} vs low {low}");
    }

    #[test]
    fn taste_is_deterministic_but_pair_specific() {
        assert_eq!(pair_taste(1, 3, 5), pair_taste(1, 3, 5));
        assert_ne!(pair_taste(1, 3, 5), pair_taste(1, 5, 3));
        assert_ne!(pair_taste(1, 3, 5), pair_taste(2, 3, 5));
    }

    #[test]
    fn social_presence_matches_ties() {
        let g = graph();
        let s = social_presence_matrix(&g);
        #[allow(clippy::needless_range_loop)] // v, w are user ids, not positions
        for v in 0..g.node_count() {
            for w in 0..g.node_count() {
                assert_eq!(s[v][w], g.tie_strength(v, w));
                assert!((s[v][w] - s[w][v]).abs() < 1e-12, "symmetry");
            }
        }
    }

    #[test]
    fn restriction_reindexes() {
        let full = vec![
            vec![0.0, 0.1, 0.2, 0.3],
            vec![1.0, 0.0, 1.2, 1.3],
            vec![2.0, 2.1, 0.0, 2.3],
            vec![3.0, 3.1, 3.2, 0.0],
        ];
        let r = restrict_matrix(&full, &[3, 1]);
        assert_eq!(r, vec![vec![0.0, 3.1], vec![1.3, 0.0]]);
    }
}
