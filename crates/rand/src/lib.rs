//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace vendors the slice of the `rand 0.8` API it actually uses:
//! [`rngs::StdRng`] (+ [`SeedableRng::seed_from_u64`]), the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`, and
//! [`seq::SliceRandom`]'s `shuffle`/`choose`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), which is fine here: nothing in
//! the repo depends on the literal byte stream, only on determinism under a
//! fixed seed. All sampling is deterministic and platform-independent.

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types sampleable uniformly from an `Rng` via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Half-open ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Debiased multiply-shift (Lemire); span ≤ 2^64 always here.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * span;
                let mut lo = m as u64;
                if (lo as u128) < span {
                    let threshold = (u64::MAX as u128 + 1 - span) % span;
                    while (lo as u128) < threshold {
                        x = rng.next_u64();
                        m = (x as u128) * span;
                        lo = m as u64;
                    }
                }
                (self.start as i128 + (m >> 64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample of type `T` (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, per the
            // xoshiro reference implementation's seeding recommendation.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling (subset of `rand::seq`).

    use super::Rng;

    /// Shuffling and random element choice on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` for an empty slice).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3.0..7.5);
            assert!((3.0..7.5).contains(&x));
            let k = rng.gen_range(10usize..20);
            assert!((10..20).contains(&k));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn integer_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some bucket never sampled: {seen:?}");
    }

    #[test]
    fn uniformity_is_plausible() {
        // mean of U[0,1) over 100k samples ≈ 0.5 well within 3σ ≈ 0.0027
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<usize> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits = {hits}");
    }
}
