// placeholder
