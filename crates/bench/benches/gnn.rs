//! Autodiff-engine and GNN-layer costs: forward-only vs forward+backward,
//! and the occlusion-graph conversion cost — the substrate budget behind
//! POSHGNN's ~real-time per-step latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xr_gnn::{Activation, GcnLayer};
use xr_graph::geom::Point2;
use xr_graph::OcclusionConverter;
use xr_tensor::{init, Matrix, ParamStore, Tape};

fn bench_gcn(c: &mut Criterion) {
    let mut group = c.benchmark_group("gcn_layer");
    for n in [50usize, 100, 200] {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let layer = GcnLayer::new(&mut store, "g", 8, 8, Activation::Relu, &mut rng);
        let x = init::randn(n, 8, 1.0, &mut rng);
        let a = Matrix::from_fn(n, n, |i, j| if (i + j) % 7 == 0 && i != j { 1.0 } else { 0.0 });

        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| {
                let tape = Tape::new();
                let xv = tape.constant(x.clone());
                let av = tape.constant(a.clone());
                layer.forward(&tape, &store, xv, av).value()
            })
        });
        group.bench_with_input(BenchmarkId::new("forward+backward", n), &n, |b, _| {
            b.iter(|| {
                let tape = Tape::new();
                let xv = tape.constant(x.clone());
                let av = tape.constant(a.clone());
                let loss = layer.forward(&tape, &store, xv, av).sum();
                loss.backward(&mut store);
                store.zero_grads();
            })
        });
    }
    group.finish();
}

fn bench_occlusion_converter(c: &mut Criterion) {
    let mut group = c.benchmark_group("occlusion_graph");
    for n in [50usize, 200, 500] {
        let mut rng = StdRng::seed_from_u64(5);
        let positions: Vec<Point2> = (0..n)
            .map(|_| {
                Point2::new(
                    rand::Rng::gen_range(&mut rng, 0.0..10.0),
                    rand::Rng::gen_range(&mut rng, 0.0..10.0),
                )
            })
            .collect();
        let conv = OcclusionConverter::new(0.25);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| conv.static_graph(0, &positions))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gcn, bench_occlusion_converter);
criterion_main!(benches);
