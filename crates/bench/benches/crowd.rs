//! ORCA crowd-simulation step cost vs. crowd size — the trajectory
//! substrate that replaces the RVO2 library.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xr_crowd::{Agent, CrowdSimulator, Room, SimConfig};
use xr_graph::geom::Point2;

fn simulator(n: usize) -> CrowdSimulator {
    let mut rng = StdRng::seed_from_u64(7);
    let room = Room::new(10.0, 10.0);
    let agents = (0..n)
        .map(|_| {
            let p = Point2::new(rng.gen_range(0.5..9.5), rng.gen_range(0.5..9.5));
            let g = Point2::new(rng.gen_range(0.5..9.5), rng.gen_range(0.5..9.5));
            let mut a = Agent::new(p, g);
            a.radius = 0.15;
            a
        })
        .collect();
    CrowdSimulator::new(agents, room, SimConfig::default())
}

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("crowd_step");
    for n in [50usize, 100, 200, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut sim = simulator(n);
            b.iter(|| sim.step())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
