//! Per-step recommendation latency for every method — regenerates the
//! "Running Time (ms)" rows of Tables II–IV. The shape to verify: Random /
//! Nearest are microseconds, the learned GNNs are ~real-time, and COMURNet
//! is orders of magnitude above everything (its per-step RL rollouts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use poshgnn::recommender::AfterRecommender;
use poshgnn::{PoshGnn, PoshGnnConfig, StepView, TargetContext};
use xr_baselines::{
    ComurNetConfig, ComurNetRecommender, GraFrankConfig, GraFrankRecommender, MvAgcRecommender,
    NearestRecommender, RandomRecommender, RnnConfig, RnnKind, RnnRecommender,
};
use xr_datasets::{Dataset, DatasetKind, Scenario, ScenarioConfig};

fn scene(n: usize) -> (Scenario, TargetContext) {
    let dataset = Dataset::generate(DatasetKind::Timik, 1);
    let cfg = ScenarioConfig { n_participants: n, time_steps: 20, seed: 5, ..Default::default() };
    let scenario = dataset.sample_scenario(&cfg);
    let ctx = TargetContext::new(&scenario, 0, 0.5);
    (scenario, ctx)
}

fn bench_methods(c: &mut Criterion) {
    let (scenario, ctx) = scene(100);
    let start = StepView::new(&ctx, 0);
    let view = StepView::new(&ctx, 10);
    let mut group = c.benchmark_group("recommend_step_n100");

    let mut posh = PoshGnn::new(PoshGnnConfig::default());
    posh.begin_episode(&start);
    group.bench_function("POSHGNN", |b| b.iter(|| posh.recommend_step(&view)));

    let mut random = RandomRecommender::new(10, 1);
    group.bench_function("Random", |b| b.iter(|| random.recommend_step(&view)));

    let mut nearest = NearestRecommender::new(10);
    group.bench_function("Nearest", |b| b.iter(|| nearest.recommend_step(&view)));

    let mut mvagc = MvAgcRecommender::fit(&scenario, 10, 2, 3);
    group.bench_function("MvAGC", |b| b.iter(|| mvagc.recommend_step(&view)));

    let mut grafrank =
        GraFrankRecommender::fit(&scenario, GraFrankConfig { iterations: 30, ..Default::default() });
    group.bench_function("GraFrank", |b| b.iter(|| grafrank.recommend_step(&view)));

    let mut dcrnn = RnnRecommender::new(RnnKind::Dcrnn, RnnConfig::default());
    dcrnn.begin_episode(&start);
    group.bench_function("DCRNN", |b| b.iter(|| dcrnn.recommend_step(&view)));

    let mut tgcn = RnnRecommender::new(RnnKind::Tgcn, RnnConfig::default());
    tgcn.begin_episode(&start);
    group.bench_function("TGCN", |b| b.iter(|| tgcn.recommend_step(&view)));

    group.sample_size(10);
    let mut comur = ComurNetRecommender::new(ComurNetConfig::default());
    comur.begin_episode(&start);
    group.bench_function("COMURNet", |b| b.iter(|| comur.recommend_step(&view)));

    group.finish();
}

fn bench_poshgnn_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("poshgnn_step_vs_n");
    for n in [50usize, 100, 200] {
        let (_, ctx) = scene(n);
        let mut posh = PoshGnn::new(PoshGnnConfig::default());
        posh.begin_episode(&StepView::new(&ctx, 0));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| posh.recommend_step(&StepView::new(&ctx, 10)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods, bench_poshgnn_scaling);
criterion_main!(benches);
