//! MWIS solver cost on unit-disk geometric intersection graphs — the
//! combinatorial heart of the NP-hardness result. Exact branch-and-bound
//! cost grows explosively with instance size; the greedy approximation and
//! its local-search refinement stay polynomial.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xr_graph::{local_search_improve, mwis_exact, mwis_greedy, DiskGig};

fn instance(n: usize) -> (DiskGig, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(n as u64);
    let side = (n as f64).sqrt() * 1.6;
    let gig = DiskGig::random_unit_disks(n, side, 1.0, &mut rng);
    let weights = (0..n).map(|i| 1.0 + (i % 7) as f64 / 7.0).collect();
    (gig, weights)
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("mwis_exact");
    group.sample_size(10);
    for n in [16usize, 24, 32] {
        let (gig, w) = instance(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| mwis_exact(&gig.graph, &w))
        });
    }
    group.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("mwis_greedy_ls");
    for n in [16usize, 64, 256] {
        let (gig, w) = instance(n);
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| mwis_greedy(&gig.graph, &w))
        });
        group.bench_with_input(BenchmarkId::new("greedy+ls", n), &n, |b, _| {
            b.iter(|| {
                let g = mwis_greedy(&gig.graph, &w);
                local_search_improve(&gig.graph, &w, &g)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact, bench_greedy);
criterion_main!(benches);
