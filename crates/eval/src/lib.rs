//! # xr-eval
//!
//! Evaluation harness for the AFTER/POSHGNN reproduction:
//!
//! * [`stats`] — descriptive statistics, Pearson/Spearman correlations, and
//!   Welch's t-test with incomplete-beta p-values.
//! * [`runner`] — method training/timing/evaluation, the eight-method
//!   comparison (Tables II–IV), and the ablation runner (Table V).
//! * [`par`] — scoped-thread work-queue parallelism for the independent
//!   (method × scenario × seed) experiment cells; `AFTER_THREADS` overrides
//!   the worker count, and results are identical at any thread count. (The
//!   implementation lives in `xr_serve::par`, shared with the multi-room
//!   scheduler; this re-export is the stable path.)
//! * [`userstudy`] — the 48-participant user-study simulator (Fig. 4 and
//!   Table VIII).
//!
//! The table/figure regeneration binaries live in `src/bin/` — one per paper
//! artifact (`table2` … `table8`, `fig2_walkthrough`, `fig4`).
//!
//! ## Observability
//!
//! The runner and binaries are instrumented with `xr_obs`: spans around the
//! comparison/ablation drivers and every method cell, per-method wall-time
//! histograms, and objective-value gauges. All binaries accept
//! `--trace[=PATH]` / `--metrics[=PATH]` flags (or the `AFTER_TRACE` /
//! `AFTER_METRICS` environment variables) to write a Chrome/Perfetto trace
//! and a metrics snapshot; with neither set, the instrumentation is inert.
//! [`par`] propagates the caller's sink context into its workers, so cell
//! telemetry merges into one registry regardless of `AFTER_THREADS`.

pub mod report;
pub mod runner;
pub mod stats;
pub mod userstudy;

// The worker pool moved to `xr_serve::par` when the multi-room scheduler
// became its second consumer; re-exported here so `xr_eval::par` paths (and
// the `AFTER_THREADS` discipline they document) keep working unchanged.
pub use runner::{
    build_contexts, pick_targets, run_ablation, run_comparison, run_method, Comparison, ComparisonConfig,
    DelayedRecommender, MethodResult, RenderAllRecommender,
};
pub use stats::{mean, pearson, spearman, std_dev, variance, welch_t_test, WelchResult};
pub use userstudy::{run_user_study, CorrelationTable, StudyOutcome, UserStudyConfig, UserStudyResult};
pub use xr_serve::par;
pub use xr_serve::par::{par_map_indexed, par_map_indexed_with, thread_count};
