//! # xr-eval
//!
//! Evaluation harness for the AFTER/POSHGNN reproduction:
//!
//! * [`stats`] — descriptive statistics, Pearson/Spearman correlations, and
//!   Welch's t-test with incomplete-beta p-values.
//! * [`runner`] — method training/timing/evaluation, the eight-method
//!   comparison (Tables II–IV), and the ablation runner (Table V).
//! * [`userstudy`] — the 48-participant user-study simulator (Fig. 4 and
//!   Table VIII).
//!
//! The table/figure regeneration binaries live in `src/bin/` — one per paper
//! artifact (`table2` … `table8`, `fig2_walkthrough`, `fig4`).

pub mod report;
pub mod runner;
pub mod stats;
pub mod userstudy;

pub use runner::{
    build_contexts, pick_targets, run_ablation, run_comparison, run_method, Comparison, DelayedRecommender,
    ComparisonConfig, MethodResult, RenderAllRecommender,
};
pub use stats::{mean, pearson, spearman, std_dev, variance, welch_t_test, WelchResult};
pub use userstudy::{run_user_study, CorrelationTable, StudyOutcome, UserStudyConfig, UserStudyResult};
