//! # xr-eval
//!
//! Evaluation harness for the AFTER/POSHGNN reproduction:
//!
//! * [`stats`] — descriptive statistics, Pearson/Spearman correlations, and
//!   Welch's t-test with incomplete-beta p-values.
//! * [`runner`] — method training/timing/evaluation, the eight-method
//!   comparison (Tables II–IV), and the ablation runner (Table V).
//! * [`par`] — scoped-thread work-queue parallelism for the independent
//!   (method × scenario × seed) experiment cells; `AFTER_THREADS` overrides
//!   the worker count, and results are identical at any thread count.
//! * [`userstudy`] — the 48-participant user-study simulator (Fig. 4 and
//!   Table VIII).
//!
//! The table/figure regeneration binaries live in `src/bin/` — one per paper
//! artifact (`table2` … `table8`, `fig2_walkthrough`, `fig4`).

pub mod par;
pub mod report;
pub mod runner;
pub mod stats;
pub mod userstudy;

pub use par::{par_map_indexed, par_map_indexed_with, thread_count};
pub use runner::{
    build_contexts, pick_targets, run_ablation, run_comparison, run_method, Comparison, ComparisonConfig,
    DelayedRecommender, MethodResult, RenderAllRecommender,
};
pub use stats::{mean, pearson, spearman, std_dev, variance, welch_t_test, WelchResult};
pub use userstudy::{run_user_study, CorrelationTable, StudyOutcome, UserStudyConfig, UserStudyResult};
