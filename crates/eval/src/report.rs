//! Output helpers for the table/figure regeneration binaries: everything is
//! printed to stdout *and* written under `results/` next to the workspace
//! root, so `EXPERIMENTS.md` can reference stable artifacts.

use std::fs;
use std::path::PathBuf;

/// Directory the binaries write into (created on demand).
pub fn results_dir() -> PathBuf {
    // Walk up from the current dir until a Cargo workspace root is found;
    // fall back to the current directory.
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            break;
        }
        if !dir.pop() {
            dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            break;
        }
    }
    dir.join("results")
}

/// Prints `text` and writes it to `results/<name>`.
pub fn emit(name: &str, text: &str) {
    println!("{text}");
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    if let Err(e) = fs::write(&path, text) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        eprintln!("[written to {}]", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_under_workspace() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }
}
