use poshgnn::{AfterRecommender, PoshGnn, PoshGnnConfig};
use xr_datasets::{Dataset, DatasetKind, ScenarioConfig};
use xr_eval::{build_contexts, pick_targets};

fn main() {
    let dataset = Dataset::generate(DatasetKind::Timik, 1);
    let sc = ScenarioConfig { n_participants: 200, time_steps: 60, seed: 11, ..ScenarioConfig::default() };
    let test_scenario = dataset.sample_scenario(&sc);
    let train_scenario = dataset.sample_scenario(&ScenarioConfig { seed: 12, ..sc });
    let targets = pick_targets(&test_scenario, 3, 11 ^ 0x7A46);
    let train_targets = pick_targets(&train_scenario, 3, 12 ^ 0x7A46);
    let test_ctx = build_contexts(&test_scenario, &targets, 0.5);
    let train_ctx = build_contexts(&train_scenario, &train_targets, 0.5);

    let mut model = PoshGnn::new(PoshGnnConfig::default());
    for epoch in 0..12 {
        let h = model.train(&train_ctx, 15);
        for (i, ctx) in test_ctx.iter().enumerate() {
            model.begin_episode(ctx);
            let soft = model.soft_recommend(ctx, 0);
            let above: usize = soft.iter().filter(|&&x| x > 0.5).count();
            print!("  [tgt{} #>0.5 {:3}]", i, above);
        }
        println!("  loss {:8.3} (epoch {})", h.last().unwrap(), (epoch + 1) * 15);
    }
}
