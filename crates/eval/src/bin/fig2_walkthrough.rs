//! Regenerates the qualitative walkthrough of the paper's Fig. 2: a
//! six-user scene (target A plus B–F) stepped through t = 0, 1, 2, showing
//! which users each family of approaches renders and which end up visible.
//!
//! Scene (mirroring Fig. 2a): A is an in-person MR user; D is an irrelevant
//! co-located MR participant standing right in front of A; B is A's most
//! preferred remote user; C is moderately preferred; E and F are A's
//! friends, with E initially hidden behind D and walking clear by t = 2.
//!
//! Usage: `cargo run --release -p xr-eval --bin fig2_walkthrough`

use poshgnn::recommender::AfterRecommender;
use poshgnn::{PoshGnn, PoshGnnConfig, TargetContext};
use xr_crowd::Room;
use xr_datasets::{Interface, Scenario};
use xr_eval::report::emit;
use xr_graph::geom::Point2;

const NAMES: [&str; 6] = ["A", "B", "C", "D", "E", "F"];

fn scene() -> Scenario {
    // room 8×8, target A at center-left looking around
    let a = Point2::new(2.0, 4.0);
    let t0 = vec![
        a,
        Point2::new(4.5, 6.0),  // B: clear, north-east
        Point2::new(5.0, 2.5),  // C: south-east
        Point2::new(3.0, 4.0),  // D: co-located MR, right in front of A
        Point2::new(5.5, 4.05), // E: friend, hidden behind D (same bearing, farther)
        Point2::new(2.0, 6.5),  // F: friend, clear to the north
    ];
    let mut t1 = t0.clone();
    t1[4] = Point2::new(5.3, 4.8); // E starts stepping out of D's shadow
    let mut t2 = t1.clone();
    t2[4] = Point2::new(4.0, 7.2); // E fully clear by t = 2

    // preference: A loves B (0.9), likes C (0.55), ignores D (0.05),
    // friends E (0.6), F (0.5)
    let p_a = vec![0.0, 0.9, 0.55, 0.05, 0.6, 0.5];
    // social presence only with friends E, F
    let s_a = vec![0.0, 0.0, 0.0, 0.0, 0.85, 0.7];
    let zeros = vec![0.0; 6];
    Scenario {
        dataset: "fig2".into(),
        participants: (0..6).collect(),
        interfaces: vec![
            Interface::Mr, // A
            Interface::Vr, // B
            Interface::Vr, // C
            Interface::Mr, // D (physically present for A)
            Interface::Vr, // E
            Interface::Vr, // F
        ],
        preference: vec![p_a, zeros.clone(), zeros.clone(), zeros.clone(), zeros.clone(), zeros.clone()],
        social: vec![s_a, zeros.clone(), zeros.clone(), zeros.clone(), zeros.clone(), zeros],
        trajectories: vec![t0, t1, t2],
        room: Room::new(8.0, 8.0),
        body_radius: 0.25,
    }
}

fn describe(ctx: &TargetContext, t: usize, rec: &[bool]) -> String {
    let vis = ctx.visibility(t, rec);
    let rendered: Vec<&str> = (1..6).filter(|&w| rec[w]).map(|w| NAMES[w]).collect();
    let visible: Vec<&str> = (1..6).filter(|&w| rec[w] && vis[w]).map(|w| NAMES[w]).collect();
    let occluded: Vec<&str> = (1..6).filter(|&w| rec[w] && !vis[w]).map(|w| NAMES[w]).collect();
    format!(
        "renders {{{}}} → visible {{{}}}{}",
        rendered.join(","),
        visible.join(","),
        if occluded.is_empty() { String::new() } else { format!(", occluded {{{}}}", occluded.join(",")) }
    )
}

fn main() {
    let _obs = xr_obs::init_cli_env();
    let scenario = scene();
    let ctx = TargetContext::new(&scenario, 0, 0.5);
    let mut out = String::from("Fig. 2 walkthrough: user A's view under each approach\n\n");
    out.push_str("Scene: D is an irrelevant co-located MR participant in front of A;\n");
    out.push_str("E (friend) is hidden behind D at t=0 and walks clear by t=2.\n\n");

    // I. Personalized ranking: top-2 by preference, blind to space.
    out.push_str("I. Personalized recommendation (top-2 by preference, spatial-blind):\n");
    for t in 0..=2 {
        let idx = poshgnn::top_k_indices(&ctx.preference, 0, 2);
        let rec = poshgnn::mask_from_indices(6, &idx);
        out.push_str(&format!("  t={t}: {}\n", describe(&ctx, t, &rec)));
    }
    out.push_str("  → A's friend E is never prioritized; social presence suffers.\n\n");

    // II. Grouping: render the friend group {E, F} regardless of occlusion.
    out.push_str("II. Friend grouping (render A's group {E,F}):\n");
    for t in 0..=2 {
        let rec = vec![false, false, false, false, true, true];
        out.push_str(&format!("  t={t}: {}\n", describe(&ctx, t, &rec)));
    }
    out.push_str("  → E is rendered but physically occluded by D at t=0; A's favorite B never shows.\n\n");

    // III. COMURNet-style: per-step independent sets delivered late.
    out.push_str("III. COMURNet-style (hard no-occlusion, delivered 2+ steps late):\n");
    out.push_str("  t=0: renders {} (first result still computing)\n");
    out.push_str("  t=1: renders {} (still computing)\n");
    out.push_str("  t=2: renders the set optimized for t=0 — stale by two steps.\n\n");

    // IV. POSHGNN, briefly trained on this scene.
    out.push_str("IV. POSHGNN (ours):\n");
    let mut model = PoshGnn::new(PoshGnnConfig::default());
    model.train(std::slice::from_ref(&ctx), 150);
    let recs = model.run_episode(&ctx);
    for (t, rec) in recs.iter().enumerate() {
        out.push_str(&format!("  t={t}: {}\n", describe(&ctx, t, rec)));
    }
    let final_vis = ctx.visibility(2, &recs[2]);
    if final_vis[4] {
        out.push_str("  → once E steps clear of the physical blocker, POSHGNN surfaces her;\n");
        out.push_str("    attractive users stay rendered throughout for continual social presence.\n");
    } else {
        out.push_str("  → POSHGNN avoids wasting renders on users hidden behind the physical participant.\n");
    }

    emit("fig2_walkthrough.txt", &out);
}
