//! CI regression gate over two `bench_summary` outputs: compares every
//! numeric `"speedup"` field of the current summary against the committed
//! baseline. Also gates the `obs_overhead` section's `overhead_pct` values
//! against an absolute ceiling, so the always-on observability layer cannot
//! quietly grow past its <3% budget (the default ceiling leaves headroom
//! for noisy CI machines).
//!
//! Speedups are ratios of two arms measured in the same process on the same
//! machine, which makes them far more stable across hosts than raw
//! milliseconds — that is why the gate compares them instead of wall times.
//! Even so, individual sub-millisecond kernels on shared single-core CI
//! runners swing by 2x run to run (an interfering tenant during one arm
//! skews that one ratio), so per-field thresholds alone would red-herring
//! constantly. The gate therefore fails on either of two signals:
//!
//! 1. The **geometric mean** of `current/baseline` across all shared
//!    speedup fields drops below `1 - tolerance` — broad throughput loss;
//!    per-field interference noise averages out of this statistic.
//! 2. Any **single field's** ratio drops below `1 - single-tolerance` — a
//!    catastrophic collapse (e.g. a kernel silently falling back to the
//!    naive path) that a mean would dilute.
//!
//! Per-field drops between the two thresholds are reported as warnings.
//!
//! Usage:
//! `cargo run --release -p xr-eval --bin bench_compare -- \`
//! `    --baseline=BENCH_pr6.json --current=BENCH_pr7.json \`
//! `    [--tolerance=0.15] [--single-tolerance=0.6] [--max-overhead-pct=6]`
//!
//! Sections present only in the baseline (removed benchmarks) or only in
//! the current summary (new benchmarks) are reported as warnings, never
//! failures: a new PR legitimately adds benchmark sections.

use std::process::exit;

use xr_obs::Json;

/// Recursively collects `(path, value)` for every numeric `"speedup"` field.
/// Array elements are addressed by index, so two summaries with the same
/// shape produce directly comparable paths.
fn collect_speedups(json: &Json, prefix: &str, out: &mut Vec<(String, f64)>) {
    match json {
        Json::Obj(entries) => {
            for (key, value) in entries {
                let path = if prefix.is_empty() { key.clone() } else { format!("{prefix}.{key}") };
                if key == "speedup" {
                    if let Some(x) = value.as_f64() {
                        out.push((path, x));
                        continue;
                    }
                }
                collect_speedups(value, &path, out);
            }
        }
        Json::Arr(items) => {
            for (i, value) in items.iter().enumerate() {
                collect_speedups(value, &format!("{prefix}[{i}]"), out);
            }
        }
        _ => {}
    }
}

/// Comparison outcome: hard failures plus informational warnings.
#[derive(Debug, Default, PartialEq)]
struct Verdict {
    regressions: Vec<String>,
    warnings: Vec<String>,
}

impl Verdict {
    fn pass(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares every shared speedup path. `tolerance` bounds the allowed drop
/// of the geometric-mean ratio across all shared fields (0.15 = the overall
/// throughput may sit up to 15% below baseline); `single_tolerance` bounds
/// the drop of any one field (0.6 = a single speedup collapsing to less
/// than 40% of baseline fails on its own). Per-field drops beyond
/// `tolerance` but short of `single_tolerance` are warnings.
fn compare_speedups(baseline: &Json, current: &Json, tolerance: f64, single_tolerance: f64) -> Verdict {
    let mut base = Vec::new();
    let mut cur = Vec::new();
    collect_speedups(baseline, "", &mut base);
    collect_speedups(current, "", &mut cur);
    let mut verdict = Verdict::default();
    let mut log_ratio_sum = 0.0;
    let mut shared = 0usize;
    for (path, b) in &base {
        match cur.iter().find(|(p, _)| p == path) {
            Some((_, c)) if *b > 0.0 && *c > 0.0 => {
                let ratio = c / b;
                log_ratio_sum += ratio.ln();
                shared += 1;
                if ratio < 1.0 - single_tolerance {
                    verdict.regressions.push(format!(
                        "{path}: speedup {c:.3} collapsed to {:.0}% of baseline {b:.3} \
                         (single-field floor {:.0}%)",
                        ratio * 100.0,
                        (1.0 - single_tolerance) * 100.0
                    ));
                } else if ratio < 1.0 - tolerance {
                    verdict
                        .warnings
                        .push(format!("{path}: speedup {c:.3} is {:.0}% of baseline {b:.3}", ratio * 100.0));
                }
            }
            Some((_, c)) => verdict
                .warnings
                .push(format!("{path}: non-positive speedup (baseline {b:.3}, current {c:.3})")),
            None => verdict.warnings.push(format!("{path}: present in baseline only")),
        }
    }
    if shared > 0 {
        let geomean = (log_ratio_sum / shared as f64).exp();
        if geomean < 1.0 - tolerance {
            verdict.regressions.push(format!(
                "geometric mean of {shared} speedup ratios is {:.1}% of baseline \
                 (floor {:.0}%)",
                geomean * 100.0,
                (1.0 - tolerance) * 100.0
            ));
        } else {
            println!(
                "bench_compare: geometric mean of {shared} speedup ratios is {:.1}% of baseline",
                geomean * 100.0
            );
        }
    }
    for (path, _) in &cur {
        if !base.iter().any(|(p, _)| p == path) {
            verdict.warnings.push(format!("{path}: new in current summary"));
        }
    }
    verdict
}

/// Gates `obs_overhead.*.overhead_pct` in the current summary against an
/// absolute ceiling. Absent sections are warnings (older baselines predate
/// the overhead benchmark), present-but-over-budget values are failures.
fn check_overhead(current: &Json, max_pct: f64) -> Verdict {
    let mut verdict = Verdict::default();
    let Some(section) = current.get("obs_overhead") else {
        verdict.warnings.push("obs_overhead: section missing from current summary".into());
        return verdict;
    };
    for arm in ["train_epoch", "recommend_step"] {
        match section.get(arm).and_then(|a| a.get("overhead_pct")).and_then(Json::as_f64) {
            Some(pct) if pct > max_pct => verdict
                .regressions
                .push(format!("obs_overhead.{arm}: {pct:.2}% exceeds the {max_pct:.1}% ceiling")),
            Some(_) => {}
            None => verdict.warnings.push(format!("obs_overhead.{arm}: overhead_pct missing")),
        }
    }
    verdict
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    let eq = format!("{name}=");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(v) = arg.strip_prefix(&eq) {
            return Some(v.to_string());
        }
        if arg == name {
            return iter.next().cloned();
        }
    }
    None
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_compare FAIL: cannot read {path}: {e}");
        exit(1);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_compare FAIL: {path} is not valid JSON: {e}");
        exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(baseline_path), Some(current_path)) =
        (flag_value(&args, "--baseline"), flag_value(&args, "--current"))
    else {
        eprintln!(
            "usage: bench_compare --baseline=OLD.json --current=NEW.json \
             [--tolerance=0.15] [--single-tolerance=0.6] [--max-overhead-pct=6]"
        );
        exit(2);
    };
    let tolerance: f64 = flag_value(&args, "--tolerance").map_or(0.15, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("bench_compare FAIL: bad --tolerance {v:?}");
            exit(2);
        })
    });
    let single_tolerance: f64 = flag_value(&args, "--single-tolerance").map_or(0.6, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("bench_compare FAIL: bad --single-tolerance {v:?}");
            exit(2);
        })
    });
    let max_overhead_pct: f64 = flag_value(&args, "--max-overhead-pct").map_or(6.0, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("bench_compare FAIL: bad --max-overhead-pct {v:?}");
            exit(2);
        })
    });

    let baseline = load(&baseline_path);
    let current = load(&current_path);
    let mut verdict = compare_speedups(&baseline, &current, tolerance, single_tolerance);
    let overhead = check_overhead(&current, max_overhead_pct);
    verdict.regressions.extend(overhead.regressions);
    verdict.warnings.extend(overhead.warnings);

    for w in &verdict.warnings {
        eprintln!("bench_compare warning: {w}");
    }
    if !verdict.pass() {
        for r in &verdict.regressions {
            eprintln!("bench_compare REGRESSION: {r}");
        }
        eprintln!("bench_compare FAIL: {} regression(s) vs {baseline_path}", verdict.regressions.len());
        exit(1);
    }
    println!(
        "bench_compare PASS: {current_path} holds throughput within {:.0}% of {baseline_path} \
         (no single field below {:.0}% of its baseline)",
        tolerance * 100.0,
        (1.0 - single_tolerance) * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(spmm_speedup: f64, row_speedup: f64) -> Json {
        Json::obj().set("spmm", Json::obj().set("dense_ms", 4.0).set("speedup", spmm_speedup)).set(
            "matmul",
            Json::Arr(vec![
                Json::obj().set("m", 128u64).set("speedup", row_speedup),
                Json::obj().set("m", 256u64).set("speedup", 3.0),
            ]),
        )
    }

    #[test]
    fn collects_nested_and_indexed_speedups() {
        let mut out = Vec::new();
        collect_speedups(&summary(2.0, 5.0), "", &mut out);
        out.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(
            out,
            vec![
                ("matmul[0].speedup".to_string(), 5.0),
                ("matmul[1].speedup".to_string(), 3.0),
                ("spmm.speedup".to_string(), 2.0),
            ]
        );
    }

    #[test]
    fn equal_summaries_pass() {
        let v = compare_speedups(&summary(2.0, 5.0), &summary(2.0, 5.0), 0.15, 0.6);
        assert!(v.pass());
        assert!(v.warnings.is_empty());
    }

    #[test]
    fn broad_drop_fails_the_geomean_but_noise_on_one_field_warns() {
        // two of three fields down 25-30%: geomean ~81% < the 85% floor
        let v = compare_speedups(&summary(2.0, 5.0), &summary(1.5, 3.5), 0.15, 0.6);
        assert_eq!(v.regressions.len(), 1, "{:?}", v.regressions);
        assert!(v.regressions[0].starts_with("geometric mean"), "{:?}", v.regressions);
        // one field 30% down, the rest flat: warning only (geomean ~89%)
        let v = compare_speedups(&summary(2.0, 5.0), &summary(1.4, 5.0), 0.15, 0.6);
        assert!(v.pass(), "{:?}", v.regressions);
        assert!(v.warnings.iter().any(|w| w.starts_with("spmm.speedup")), "{:?}", v.warnings);
    }

    #[test]
    fn single_field_collapse_fails_on_its_own() {
        // spmm down to 25% of baseline: below the 40% single-field floor
        // (the geomean fails here too — both signals fire)
        let v = compare_speedups(&summary(2.0, 5.0), &summary(0.5, 5.0), 0.15, 0.6);
        assert!(v.regressions.iter().any(|r| r.starts_with("spmm.speedup")), "{:?}", v.regressions);
        // one collapse among many flat fields: geomean survives, field fails
        let base = Json::obj()
            .set("a", Json::obj().set("speedup", 2.0))
            .set("b", Json::obj().set("speedup", 2.0))
            .set("c", Json::obj().set("speedup", 2.0))
            .set("d", Json::obj().set("speedup", 2.0))
            .set("e", Json::obj().set("speedup", 2.0));
        let cur = Json::obj()
            .set("a", Json::obj().set("speedup", 0.5))
            .set("b", Json::obj().set("speedup", 2.0))
            .set("c", Json::obj().set("speedup", 2.0))
            .set("d", Json::obj().set("speedup", 2.0))
            .set("e", Json::obj().set("speedup", 2.0));
        let v = compare_speedups(&base, &cur, 0.5, 0.6);
        assert_eq!(v.regressions.len(), 1, "{:?}", v.regressions);
        assert!(v.regressions[0].starts_with("a.speedup"), "{:?}", v.regressions);
    }

    #[test]
    fn shape_changes_warn_without_failing() {
        let baseline = summary(2.0, 5.0);
        let current = Json::obj()
            .set("spmm", Json::obj().set("speedup", 2.0))
            .set("brand_new", Json::obj().set("speedup", 1.0));
        let v = compare_speedups(&baseline, &current, 0.15, 0.6);
        assert!(v.pass());
        assert_eq!(v.warnings.len(), 3, "{:?}", v.warnings); // 2 removed rows + 1 new section
    }

    #[test]
    fn overhead_gate_fires_only_above_the_ceiling() {
        let make = |train: f64, step: f64| {
            Json::obj().set(
                "obs_overhead",
                Json::obj()
                    .set("train_epoch", Json::obj().set("overhead_pct", train))
                    .set("recommend_step", Json::obj().set("overhead_pct", step)),
            )
        };
        assert!(check_overhead(&make(1.2, 2.9), 6.0).pass());
        let v = check_overhead(&make(1.2, 7.5), 6.0);
        assert_eq!(v.regressions.len(), 1);
        assert!(v.regressions[0].contains("recommend_step"));
        // negative overhead (obs arm measured faster) is fine
        assert!(check_overhead(&make(-0.4, 0.0), 6.0).pass());
    }

    #[test]
    fn missing_overhead_section_is_a_warning_not_a_failure() {
        let v = check_overhead(&Json::obj().set("spmm", Json::obj()), 6.0);
        assert!(v.pass());
        assert_eq!(v.warnings.len(), 1);
    }
}
