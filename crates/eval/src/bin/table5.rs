//! Regenerates Table V: POSHGNN ablation study (Full / PDR w/ MIA / Only
//! PDR) on the Hubs-like dataset.
//!
//! Usage: `cargo run --release -p xr-eval --bin table5`

use xr_datasets::{Dataset, DatasetKind};
use xr_eval::report::emit;
use xr_eval::{run_ablation, ComparisonConfig};

fn main() {
    let _obs = xr_obs::init_cli_env();
    let dataset = Dataset::generate(DatasetKind::Hubs, 4);
    let cfg = ComparisonConfig::paper_defaults(dataset.default_scenario_config(105));
    let cmp = run_ablation(&dataset, &cfg);
    let text = cmp.render_table("Table V: ablation study for POSHGNN on the Hubs-like dataset");
    emit("table5.txt", &text);
    emit("table5.csv", &cmp.to_csv());
}
