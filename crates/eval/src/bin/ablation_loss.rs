//! Design-choice ablation (beyond the paper's Table V): the occlusion
//! penalty form. The paper's Def. 7 penalizes `α·rᵀA_t r` — a symmetric
//! *edge count* among recommended users. Our default refines this to a
//! depth-weighted blocking matrix `B_t` (`B[w][u] = p̂_w` when `u` stands in
//! front of `w`), which prices occlusion in units of utility actually lost.
//! This experiment trains both on identical data and reports delivered
//! AFTER utility.
//!
//! Usage: `cargo run --release -p xr-eval --bin ablation_loss`

use poshgnn::{LossParams, PoshGnn, PoshGnnConfig};
use xr_datasets::{Dataset, DatasetKind, ScenarioConfig};
use xr_eval::report::emit;
use xr_eval::runner::{build_contexts, pick_targets, run_method};

fn main() {
    let _obs = xr_obs::init_cli_env();
    let dataset = Dataset::generate(DatasetKind::Timik, 9);
    let cfg = ScenarioConfig { n_participants: 120, time_steps: 60, seed: 901, ..Default::default() };
    let test_scenario = dataset.sample_scenario(&cfg);
    let train_scenario = dataset.sample_scenario(&ScenarioConfig { seed: 902, ..cfg });
    let test_ctx = build_contexts(&test_scenario, &pick_targets(&test_scenario, 4, 1), 0.5);
    let train_ctx = build_contexts(&train_scenario, &pick_targets(&train_scenario, 4, 2), 0.5);

    let mut text = String::from("Loss-design ablation: occlusion penalty form (Timik-like, N=120)\n");
    text.push_str(&format!(
        "{:<44}{:>10}{:>12}{:>12}{:>12}\n",
        "penalty", "AFTER", "preference", "soc. pres.", "occlusion"
    ));

    let configs = [
        ("depth-weighted blocking rᵀB r (α = 0.4)", false, 0.4),
        ("symmetric edge count rᵀA r (α = 0.01, paper)", true, 0.01),
        ("symmetric edge count rᵀA r (α = 0.4)", true, 0.4),
    ];
    for (label, symmetric, alpha) in configs {
        let mut model = PoshGnn::new(PoshGnnConfig {
            symmetric_penalty: symmetric,
            loss: LossParams { alpha, beta: 0.5 },
            ..Default::default()
        });
        model.train(&train_ctx, 60);
        let r = run_method(&mut model, &test_ctx);
        text.push_str(&format!(
            "{:<44}{:>10.1}{:>12.1}{:>12.1}{:>11.1}%\n",
            label,
            r.mean.after_utility,
            r.mean.preference,
            r.mean.social_presence,
            100.0 * r.mean.view_occlusion_rate
        ));
    }
    emit("ablation_loss.txt", &text);
}
