//! Self-validating observability smoke test: runs a small instrumented
//! comparison with both sinks forced on, then parses the files the session
//! wrote back and checks the schema end to end. Exits non-zero on any
//! missing file, unparseable JSON, or absent required key — this is the CI
//! guard that keeps `AFTER_METRICS` / `AFTER_TRACE` output loadable.
//!
//! Usage: `cargo run --release -p xr-eval --bin obs_smoke [outdir]`
//! With no explicit outdir (and no `AFTER_METRICS`/`AFTER_TRACE` override)
//! the files go to a process-unique temp directory and are removed after
//! validation — a smoke run leaves nothing behind. An explicit outdir or
//! env override keeps its files.

use std::path::PathBuf;
use std::process::exit;

use xr_datasets::{Dataset, DatasetKind, ScenarioConfig};
use xr_eval::runner::{run_comparison, ComparisonConfig};
use xr_obs::{Json, ObsOptions, ObsSession};

fn fail(msg: &str) -> ! {
    eprintln!("obs_smoke FAIL: {msg}");
    exit(1);
}

fn load_json(path: &PathBuf) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    Json::parse(&text).unwrap_or_else(|e| fail(&format!("{} is not valid JSON: {e}", path.display())))
}

fn check_metrics(path: &PathBuf) {
    let json = load_json(path);
    for section in ["counters", "gauges", "histograms"] {
        if json.get(section).is_none() {
            fail(&format!("{} missing top-level key {section:?}", path.display()));
        }
    }
    let histograms = json.get("histograms").unwrap();
    let Json::Obj(entries) = histograms else {
        fail(&format!("{}: \"histograms\" is not an object", path.display()));
    };
    if entries.is_empty() {
        fail(&format!("{}: no histograms recorded by the comparison run", path.display()));
    }
    for (name, hist) in entries {
        for key in ["count", "sum", "mean", "min", "max", "p50", "p95", "p99"] {
            if hist.get(key).and_then(Json::as_f64).is_none() {
                fail(&format!("{}: histogram {name:?} missing numeric key {key:?}", path.display()));
            }
        }
    }
    // the comparison runner must have produced its own telemetry
    for required in ["xr_eval.comparison", "xr_eval.run_method", "xr_tensor.csr.spmm.ms"] {
        if histograms.get(required).is_none() {
            fail(&format!("{}: expected histogram {required:?} not present", path.display()));
        }
    }
    if json.get("counters").unwrap().get("events.xr_eval.par.item_done").is_none() {
        fail(&format!("{}: expected counter \"events.xr_eval.par.item_done\"", path.display()));
    }
    // self-describing run metadata (PR 7): when/where/how the numbers were made
    let meta = json
        .get("meta")
        .unwrap_or_else(|| fail(&format!("{} missing top-level key \"meta\"", path.display())));
    for key in ["unix_time_s", "wall_clock_utc", "threads"] {
        if meta.get(key).is_none() {
            fail(&format!("{}: \"meta\" missing key {key:?}", path.display()));
        }
    }
    // windowed time-series export with the runner's per-step latency series
    let timeseries = json
        .get("timeseries")
        .unwrap_or_else(|| fail(&format!("{} missing top-level key \"timeseries\"", path.display())));
    let series = timeseries
        .get("series")
        .unwrap_or_else(|| fail(&format!("{}: \"timeseries\" missing \"series\"", path.display())));
    let Json::Obj(series_entries) = series else {
        fail(&format!("{}: \"timeseries.series\" is not an object", path.display()));
    };
    if !series_entries.iter().any(|(name, _)| name.starts_with("xr_eval.step.ms")) {
        fail(&format!("{}: no \"xr_eval.step.ms\" windowed series", path.display()));
    }
    eprintln!(
        "obs_smoke: metrics OK ({} histograms, {} windowed series)",
        entries.len(),
        series_entries.len()
    );
}

fn check_prometheus(path: &PathBuf) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    if !text.contains("# TYPE ") {
        fail(&format!("{}: no \"# TYPE\" lines in Prometheus export", path.display()));
    }
    for required in ["xr_eval_comparison", "events_xr_eval_par_item_done"] {
        if !text.contains(required) {
            fail(&format!("{}: expected Prometheus family {required:?}", path.display()));
        }
    }
    eprintln!("obs_smoke: prometheus OK ({} lines)", text.lines().count());
}

fn check_trace(path: &PathBuf) {
    let json = load_json(path);
    let events = json
        .get("traceEvents")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| fail(&format!("{}: missing \"traceEvents\" array", path.display())));
    if events.is_empty() {
        fail(&format!("{}: traceEvents is empty", path.display()));
    }
    let mut saw_comparison = false;
    for ev in events {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            if ev.get(key).is_none() {
                fail(&format!("{}: trace event missing key {key:?}", path.display()));
            }
        }
        if ev.get("name").and_then(Json::as_str) == Some("xr_eval.comparison") {
            saw_comparison = true;
        }
    }
    if !saw_comparison {
        fail(&format!("{}: no \"xr_eval.comparison\" span in trace", path.display()));
    }
    eprintln!("obs_smoke: trace OK ({} events)", events.len());
}

fn main() {
    let explicit_outdir = std::env::args().nth(1).map(PathBuf::from);
    // no explicit outdir → a process-unique tempdir, removed after validation
    let scratch = explicit_outdir.is_none();
    let outdir = explicit_outdir
        .unwrap_or_else(|| std::env::temp_dir().join(format!("obs_smoke-{}", std::process::id())));
    std::fs::create_dir_all(&outdir)
        .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", outdir.display())));
    // honor AFTER_METRICS / AFTER_TRACE when set (as CI does); otherwise
    // default both sinks into outdir — this binary always runs fully sinked
    let env_opts = ObsOptions::from_env();
    let metrics_path = env_opts.metrics_path.unwrap_or_else(|| outdir.join("obs_smoke_metrics.json"));
    let trace_path = env_opts.trace_path.unwrap_or_else(|| outdir.join("obs_smoke_trace.json"));
    let prom_path = env_opts.prom_path.unwrap_or_else(|| outdir.join("obs_smoke_metrics.prom"));

    let mut session = ObsSession::start(ObsOptions {
        trace_path: Some(trace_path.clone()),
        metrics_path: Some(metrics_path.clone()),
        prom_path: Some(prom_path.clone()),
        slo_budget_ms: env_opts.slo_budget_ms,
        flight_dump_path: env_opts.flight_dump_path,
    });

    let dataset = Dataset::generate(DatasetKind::Hubs, 1);
    let cfg = ComparisonConfig {
        scenario: ScenarioConfig { n_participants: 30, time_steps: 15, seed: 5, ..ScenarioConfig::default() },
        n_targets: 2,
        train_epochs: 5,
        include_comurnet: false,
        ..ComparisonConfig::paper_defaults(ScenarioConfig::default())
    };
    let cmp = run_comparison(&dataset, &cfg);
    if cmp.results.is_empty() {
        fail("comparison produced no results");
    }
    session.finish();

    check_metrics(&metrics_path);
    check_trace(&trace_path);
    check_prometheus(&prom_path);
    if scratch {
        // only the tempdir this run created; env-overridden paths outside it
        // survive (they were asked for explicitly)
        if let Err(e) = std::fs::remove_dir_all(&outdir) {
            eprintln!("obs_smoke: warning: could not clean up {}: {e}", outdir.display());
        }
    }
    println!("obs_smoke PASS");
}
