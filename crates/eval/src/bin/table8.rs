//! Regenerates Table VIII: Pearson/Spearman correlations between the
//! defined utilities and (simulated) user satisfaction feedback.
//!
//! Usage: `cargo run --release -p xr-eval --bin table8`

use xr_eval::report::emit;
use xr_eval::{run_user_study, UserStudyConfig};

fn main() {
    let _obs = xr_obs::init_cli_env();
    let result = run_user_study(&UserStudyConfig::default());
    let c = result.correlations();
    let mut text = String::from("Table VIII: correlation analysis of utilities vs satisfaction\n");
    text.push_str(&format!(
        "{:<12}{:>12}{:>18}{:>28}\n",
        "Correlation", "Preference", "Social Presence", "AFTER util. (satisfaction)"
    ));
    text.push_str(&format!(
        "{:<12}{:>12.3}{:>18.3}{:>28.3}\n",
        "Pearson", c.pearson_preference, c.pearson_social, c.pearson_after
    ));
    text.push_str(&format!(
        "{:<12}{:>12.3}{:>18.3}{:>28.3}\n",
        "Spearman", c.spearman_preference, c.spearman_social, c.spearman_after
    ));
    emit("table8.txt", &text);

    let csv = format!(
        "correlation,preference,social_presence,after\npearson,{:.4},{:.4},{:.4}\nspearman,{:.4},{:.4},{:.4}\n",
        c.pearson_preference, c.pearson_social, c.pearson_after,
        c.spearman_preference, c.spearman_social, c.spearman_after
    );
    emit("table8.csv", &csv);
}
