use xr_datasets::{Dataset, DatasetKind, ScenarioConfig};
use xr_eval::{run_comparison, ComparisonConfig};

fn main() {
    let alpha: f64 = std::env::var("ALPHA").ok().and_then(|x| x.parse().ok()).unwrap_or(0.75);
    let epochs: usize = std::env::var("EPOCHS").ok().and_then(|x| x.parse().ok()).unwrap_or(60);
    println!("alpha={alpha} epochs={epochs}");
    let dataset = Dataset::generate(DatasetKind::Timik, 1);
    let cfg = ComparisonConfig {
        scenario: ScenarioConfig {
            n_participants: 200,
            time_steps: 60,
            seed: 11,
            ..ScenarioConfig::default()
        },
        train_seed: 12,
        beta: 0.5,
        alpha,
        n_targets: 4,
        train_epochs: epochs,
        top_k: 10,
        include_comurnet: true,
    };
    let cmp = run_comparison(&dataset, &cfg);
    println!("{}", cmp.render_table("scratch Timik-ish"));
    for r in &cmp.results {
        println!("{:<10} mean_recommended = {:.1}", r.name, r.mean.mean_recommended);
    }
}
