//! COMURNet staleness sweep — quantifying the paper's practicality argument.
//!
//! The original COMURNet needs ~22 s *per time step* at N = 200 (Tables
//! II/III), so in a live conference its decisions arrive many steps late
//! (Fig. 2b sketches ≥2). Our re-creation is compute-lighter (fewer RL
//! rollouts), so at small fixed latencies it is a *stronger* baseline than
//! the original. This sweep shows how its delivered AFTER utility collapses
//! as the delivery latency approaches paper-faithful magnitudes, while a
//! real-time method (POSHGNN's budget is ≪ one step) pays nothing.
//!
//! Usage: `cargo run --release -p xr-eval --bin comurnet_latency`

use xr_baselines::{ComurNetConfig, ComurNetRecommender};
use xr_datasets::{Dataset, DatasetKind, ScenarioConfig};
use xr_eval::report::emit;
use xr_eval::runner::{build_contexts, pick_targets, run_method, DelayedRecommender};

fn main() {
    let _obs = xr_obs::init_cli_env();
    let dataset = Dataset::generate(DatasetKind::Smm, 3);
    let cfg = ScenarioConfig { seed: 103, ..ScenarioConfig::default() };
    let scenario = dataset.sample_scenario(&cfg);
    let ctx = build_contexts(&scenario, &pick_targets(&scenario, 4, cfg.seed ^ 0x7A46), 0.5);

    let mut text =
        String::from("COMURNet delivered utility vs delivery latency (SMM-like, N = 200, T = 100)\n");
    text.push_str(&format!(
        "{:>10}{:>16}{:>14}{:>16}{:>14}\n",
        "latency", "AFTER utility", "preference", "social pres.", "occlusion"
    ));
    for latency in [0usize, 3, 10, 20, 40] {
        let inner = ComurNetRecommender::new(ComurNetConfig::default());
        let mut delayed = DelayedRecommender::new(inner, latency);
        let r = run_method(&mut delayed, &ctx);
        text.push_str(&format!(
            "{:>10}{:>16.1}{:>14.1}{:>16.1}{:>13.1}%\n",
            latency,
            r.mean.after_utility,
            r.mean.preference,
            r.mean.social_presence,
            100.0 * r.mean.view_occlusion_rate
        ));
    }
    text.push_str(
        "\nThe paper-reported 22 s/step at N = 200 corresponds to dozens of\nsimulation steps of staleness — the right edge of this sweep.\n",
    );
    emit("comurnet_latency.txt", &text);
}
