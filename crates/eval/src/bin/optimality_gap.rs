//! Optimality-gap report: POSHGNN vs the per-step weighted-MWIS oracle
//! (greedy + local search on the exact per-step AFTER payoff). The oracle is
//! myopic but combinatorially strong; the ratio quantifies how much of the
//! attainable utility the real-time learned model delivers (the paper's C2
//! efficiency/effectiveness dilemma, measured).
//!
//! Usage: `cargo run --release -p xr-eval --bin optimality_gap`

use poshgnn::{PoshGnn, PoshGnnConfig};
use xr_baselines::MwisOracle;
use xr_datasets::{Dataset, DatasetKind, ScenarioConfig};
use xr_eval::report::emit;
use xr_eval::runner::{build_contexts, pick_targets, run_method};

fn main() {
    let _obs = xr_obs::init_cli_env();
    let mut text = String::from("Optimality gap: POSHGNN vs myopic MWIS oracle\n");
    text.push_str(&format!(
        "{:<10}{:>6}{:>16}{:>16}{:>12}{:>16}{:>16}\n",
        "dataset", "N", "POSHGNN AFTER", "oracle AFTER", "ratio", "POSHGNN ms", "oracle ms"
    ));
    for (kind, n) in [(DatasetKind::Hubs, 30usize), (DatasetKind::Timik, 100)] {
        let dataset = Dataset::generate(kind, 12);
        let cfg = ScenarioConfig { n_participants: n, time_steps: 60, seed: 121, ..Default::default() };
        let test_scenario = dataset.sample_scenario(&cfg);
        let train_scenario = dataset.sample_scenario(&ScenarioConfig { seed: 122, ..cfg });
        let test_ctx = build_contexts(&test_scenario, &pick_targets(&test_scenario, 4, 3), 0.5);
        let train_ctx = build_contexts(&train_scenario, &pick_targets(&train_scenario, 4, 4), 0.5);

        let mut model = PoshGnn::new(PoshGnnConfig::default());
        model.train(&train_ctx, 60);
        let ours = run_method(&mut model, &test_ctx);
        let oracle = run_method(&mut MwisOracle::new(), &test_ctx);

        text.push_str(&format!(
            "{:<10}{:>6}{:>16.1}{:>16.1}{:>11.1}%{:>16.3}{:>16.3}\n",
            dataset.kind.name(),
            n,
            ours.mean.after_utility,
            oracle.mean.after_utility,
            100.0 * ours.mean.after_utility / oracle.mean.after_utility.max(1e-9),
            ours.ms_per_step,
            oracle.ms_per_step
        ));
    }
    emit("optimality_gap.txt", &text);
}
