//! Regenerates Table VII: sensitivity of POSHGNN to the proportion of VR
//! (remote) users, N = 200 on the SMM-like dataset.
//!
//! Usage: `cargo run --release -p xr-eval --bin table7`

use poshgnn::{LossParams, PoshGnn, PoshGnnConfig};
use xr_datasets::{Dataset, DatasetKind, ScenarioConfig};
use xr_eval::report::emit;
use xr_eval::runner::{build_contexts, pick_targets, run_method};

fn main() {
    let _obs = xr_obs::init_cli_env();
    let dataset = Dataset::generate(DatasetKind::Smm, 7);
    let fractions = [0.75, 0.5, 0.25];
    let mut rows = Vec::new();
    for &vr in &fractions {
        let scenario_cfg =
            ScenarioConfig { vr_fraction: vr, time_steps: 50, seed: 107, ..ScenarioConfig::default() };
        let test_scenario = dataset.sample_scenario(&scenario_cfg);
        let train_scenario = dataset.sample_scenario(&ScenarioConfig { seed: 207, ..scenario_cfg });
        let test_ctx = build_contexts(&test_scenario, &pick_targets(&test_scenario, 3, 7), 0.5);
        let train_ctx = build_contexts(&train_scenario, &pick_targets(&train_scenario, 3, 8), 0.5);
        let mut model = PoshGnn::new(PoshGnnConfig { loss: LossParams::default(), ..Default::default() });
        model.train(&train_ctx, 50);
        rows.push((vr, run_method(&mut model, &test_ctx)));
    }

    let mut text = String::from("Table VII: sensitivity test on the proportion of VR users (N = 200)\n");
    text.push_str(&format!("{:<22}", "Metrics"));
    for (vr, _) in &rows {
        text.push_str(&format!("{:>12}", format!("VR = {:.0}%", vr * 100.0)));
    }
    text.push('\n');
    #[allow(clippy::type_complexity)] // local row-formatter table
    let metric_rows: [(&str, fn(&xr_eval::MethodResult) -> String); 3] = [
        ("AFTER Utility ^", |r| format!("{:.1}", r.mean.after_utility)),
        ("Preference ^", |r| format!("{:.1}", r.mean.preference)),
        ("Social Presence ^", |r| format!("{:.1}", r.mean.social_presence)),
    ];
    for (label, f) in metric_rows {
        text.push_str(&format!("{label:<22}"));
        for (_, r) in &rows {
            text.push_str(&format!("{:>12}", f(r)));
        }
        text.push('\n');
    }
    emit("table7.txt", &text);

    let mut csv = String::from("vr_fraction,after_utility,preference,social_presence\n");
    for (vr, r) in &rows {
        csv.push_str(&format!(
            "{},{:.4},{:.4},{:.4}\n",
            vr, r.mean.after_utility, r.mean.preference, r.mean.social_presence
        ));
    }
    emit("table7.csv", &csv);
}
