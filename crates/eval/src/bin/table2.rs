//! Regenerates Table II: POSHGNN vs. baselines on the Timik-like dataset
//! (N = 200, T = 100, β = 0.5, 50% VR, 10 m room).
//!
//! Usage: `cargo run --release -p xr-eval --bin table2`

use xr_datasets::{Dataset, DatasetKind};
use xr_eval::report::emit;
use xr_eval::{run_comparison, ComparisonConfig};

fn main() {
    let _obs = xr_obs::init_cli_env();
    let dataset = Dataset::generate(DatasetKind::Timik, 2);
    let cfg = ComparisonConfig::paper_defaults(dataset.default_scenario_config(102));
    let cmp = run_comparison(&dataset, &cfg);
    let mut text = cmp.render_table("Table II: results on the Timik-like dataset");
    text.push_str("\np-values (Welch) of POSHGNN vs baselines on per-target AFTER utility:\n");
    for (name, p) in cmp.p_values_vs_first() {
        text.push_str(&format!("  vs {name:<10} p = {p:.4}\n"));
    }
    emit("table2.txt", &text);
    emit("table2.csv", &cmp.to_csv());
}
