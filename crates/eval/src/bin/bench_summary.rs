//! Machine-readable performance summary for the hot-path overhaul: blocked
//! vs. naive matmul, sparse vs. dense GNN kernels, grid vs. brute-force
//! crowd neighbor queries, and serial vs. parallel experiment cells.
//!
//! Writes `BENCH_pr2.json` at the workspace root (next to `Cargo.toml`) via
//! the `xr_obs` JSON exporter and prints it to stdout. All "before" numbers
//! are the pre-overhaul code paths, which are kept callable behind flags
//! (`matmul_naive`, `dense_kernels`, `use_spatial_grid: false`,
//! `AFTER_THREADS=1`), so the comparison runs both sides in one build.
//!
//! Usage: `cargo run --release -p xr-eval --bin bench_summary`
//! Accepts `--trace[=PATH]` / `--metrics[=PATH]` (or `AFTER_TRACE` /
//! `AFTER_METRICS`) to additionally capture the instrumented kernels'
//! own telemetry while the benchmarks run.

use std::time::Instant;

use poshgnn::{PoshGnn, PoshGnnConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xr_crowd::{Agent, CrowdSimulator, Room, SimConfig};
use xr_datasets::{Dataset, DatasetKind, ScenarioConfig};
use xr_eval::report::results_dir;
use xr_eval::runner::{build_contexts, pick_targets, run_comparison, run_method, ComparisonConfig};
use xr_graph::geom::Point2;
use xr_obs::json::{num3, Json};
use xr_tensor::{CsrAdj, Matrix};

/// Median wall-clock milliseconds of `f` over `reps` runs (after one warmup).
fn time_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f(); // warmup
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect()).unwrap()
}

fn bench_matmul() -> Json {
    let mut rng = StdRng::seed_from_u64(1);
    let shapes = [(128usize, 128usize, 128usize), (256, 256, 256), (512, 512, 512), (200, 16, 200)];
    let rows: Vec<Json> = shapes
        .iter()
        .map(|&(m, k, n)| {
            let a = random_matrix(m, k, &mut rng);
            let b = random_matrix(k, n, &mut rng);
            let naive = time_ms(5, || {
                std::hint::black_box(a.matmul_naive(&b));
            });
            let blocked = time_ms(5, || {
                std::hint::black_box(a.matmul(&b));
            });
            Json::obj()
                .set("m", m)
                .set("k", k)
                .set("n", n)
                .set("naive_ms", num3(naive))
                .set("blocked_ms", num3(blocked))
                .set("speedup", num3(naive / blocked))
        })
        .collect();
    Json::from(rows)
}

fn bench_spmm() -> Json {
    // adjacency with ~6 neighbors per node, the occlusion-graph regime
    let n = 500usize;
    let cols = 16usize;
    let mut rng = StdRng::seed_from_u64(2);
    let mut entries = Vec::new();
    for i in 0..n {
        for _ in 0..6 {
            entries.push((i, rng.gen_range(0..n), 1.0));
        }
    }
    let csr = CsrAdj::from_entries(n, n, &entries).row_normalized();
    let dense = csr.to_dense();
    let x = random_matrix(n, cols, &mut rng);
    let dense_ms = time_ms(9, || {
        std::hint::black_box(dense.matmul(&x));
    });
    let sparse_ms = time_ms(9, || {
        std::hint::black_box(csr.matmul_dense(&x));
    });
    Json::obj()
        .set("n", n)
        .set("cols", cols)
        .set("nnz", csr.nnz())
        .set("dense_ms", num3(dense_ms))
        .set("sparse_ms", num3(sparse_ms))
        .set("speedup", num3(dense_ms / sparse_ms))
}

fn bench_crowd() -> Json {
    let n = 500usize;
    let mut rng = StdRng::seed_from_u64(3);
    let room = 22.0; // ~1 agent/m², the paper's dense-room regime
    let agents: Vec<Agent> = (0..n)
        .map(|_| {
            Agent::new(
                Point2::new(rng.gen_range(0.5..room - 0.5), rng.gen_range(0.5..room - 0.5)),
                Point2::new(rng.gen_range(0.5..room - 0.5), rng.gen_range(0.5..room - 0.5)),
            )
        })
        .collect();
    let steps = 10;
    let run = |use_grid: bool| {
        let config = SimConfig { use_spatial_grid: use_grid, ..SimConfig::default() };
        time_ms(3, || {
            let mut sim = CrowdSimulator::new(agents.clone(), Room::new(room, room), config);
            for _ in 0..steps {
                sim.step();
            }
            std::hint::black_box(sim.positions());
        })
    };
    let brute_ms = run(false);
    let grid_ms = run(true);
    Json::obj()
        .set("n", n)
        .set("steps", steps as u64)
        .set("brute_ms", num3(brute_ms))
        .set("grid_ms", num3(grid_ms))
        .set("speedup", num3(brute_ms / grid_ms))
}

fn bench_poshgnn_step() -> Json {
    let dataset = Dataset::generate(DatasetKind::Timik, 2);
    let sizes = [100usize, 200];
    let rows: Vec<Json> = sizes
        .iter()
        .map(|&n| {
            let scenario_cfg =
                ScenarioConfig { n_participants: n, time_steps: 30, seed: 11, ..ScenarioConfig::default() };
            let scenario = dataset.sample_scenario(&scenario_cfg);
            let ctxs = build_contexts(&scenario, &pick_targets(&scenario, 2, 7), 0.5);
            let mut ms = [0.0f64; 2];
            for (slot, dense) in [(0usize, false), (1, true)] {
                let mut model = PoshGnn::new(PoshGnnConfig { dense_kernels: dense, ..Default::default() });
                model.train(&ctxs, 2); // params only; step cost is training-independent
                ms[slot] = run_method(&mut model, &ctxs).ms_per_step;
            }
            Json::obj()
                .set("n", n)
                .set("sparse_ms_per_step", num3(ms[0]))
                .set("dense_ms_per_step", num3(ms[1]))
                .set("speedup", num3(ms[1] / ms[0]))
        })
        .collect();
    Json::from(rows)
}

fn bench_parallel_runner() -> Json {
    let dataset = Dataset::generate(DatasetKind::Hubs, 1);
    let cfg = ComparisonConfig {
        scenario: ScenarioConfig { n_participants: 40, time_steps: 20, seed: 9, ..ScenarioConfig::default() },
        n_targets: 2,
        train_epochs: 20,
        include_comurnet: false,
        ..ComparisonConfig::paper_defaults(ScenarioConfig::default())
    };
    let wall = |threads: Option<usize>| {
        match threads {
            Some(t) => std::env::set_var("AFTER_THREADS", t.to_string()),
            None => std::env::remove_var("AFTER_THREADS"),
        }
        let start = Instant::now();
        std::hint::black_box(run_comparison(&dataset, &cfg));
        start.elapsed().as_secs_f64()
    };
    let serial_s = wall(Some(1));
    let parallel_s = wall(None);
    std::env::remove_var("AFTER_THREADS");
    Json::obj()
        .set("methods", 7u64)
        .set("threads", xr_eval::thread_count())
        .set("serial_s", num3(serial_s))
        .set("parallel_s", num3(parallel_s))
        .set("speedup", num3(serial_s / parallel_s))
}

fn main() {
    let mut obs = xr_obs::init_cli_env();
    eprintln!("[1/5] blocked vs naive matmul");
    let matmul = bench_matmul();
    eprintln!("[2/5] sparse vs dense aggregation (SpMM)");
    let spmm = bench_spmm();
    eprintln!("[3/5] grid vs brute-force crowd neighbors");
    let crowd = bench_crowd();
    eprintln!("[4/5] POSHGNN recommend step, sparse vs dense kernels");
    let posh = bench_poshgnn_step();
    eprintln!("[5/5] comparison runner, 1 thread vs all cores");
    let runner = bench_parallel_runner();

    let out = Json::obj()
        .set("matmul", matmul)
        .set("spmm", spmm)
        .set("crowd_step", crowd)
        .set("poshgnn_step", posh)
        .set("comparison_runner", runner);
    let text = out.pretty();
    println!("{text}");
    let root = results_dir().parent().map(|p| p.to_path_buf()).unwrap_or_default();
    let path = root.join("BENCH_pr2.json");
    match std::fs::write(&path, format!("{text}\n")) {
        Ok(()) => eprintln!("[written to {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
    obs.finish();
}
